//! Shared integration-test helpers.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-process counter so two tests in the same binary can never collide
/// on a directory name, whatever the test scheduler does.
static NEXT_TEMP_DIR: AtomicUsize = AtomicUsize::new(0);

/// A uniquely-named scratch directory under the system temp dir, removed
/// on drop (including panic unwinds, so a failing test does not leak
/// state into the next run). The name combines a caller prefix, the
/// process id, and a per-process counter, making roots unique per test
/// *and* across concurrently running test binaries.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Claims a fresh directory root; any stale leftover of the same name
    /// (a previous hard-killed run) is removed first.
    pub fn new(prefix: &str) -> TempDir {
        let n = NEXT_TEMP_DIR.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("{prefix}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        TempDir { path }
    }

    /// The directory root (not created; stores create it on open).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// A checkpoint [`pgss_ckpt::Store`] opened in its own [`TempDir`] — the
/// standard per-test store setup, deduplicated from the checkpoint, fault
/// and serve suites. The returned `TempDir` owns the store's directory:
/// keep it bound for as long as the store is in use.
#[allow(dead_code)] // not every test binary that includes util/ opens a store
pub fn temp_store(prefix: &str) -> (TempDir, pgss_ckpt::Store) {
    let dir = TempDir::new(prefix);
    let store = pgss_ckpt::Store::open(dir.path()).expect("open per-test checkpoint store");
    (dir, store)
}
