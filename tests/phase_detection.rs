//! Integration: the online phase detector discovers *planted* phase
//! structure in custom-built workloads.

use pgss::analysis::{deltas, detection_rate, interval_profile, phase_threshold_sweep};
use pgss::{OnlineSimPoint, PgssSim, Technique};
use pgss_cpu::MachineConfig;
use pgss_workloads::{Kernel, WorkloadBuilder};

/// Two strongly-contrasting segments alternating every 500k ops.
fn two_planted_phases() -> pgss_workloads::Workload {
    let mut b = WorkloadBuilder::new("planted-2", 11);
    let fast = b.add_segment(Kernel::ComputeInt {
        chains: 6,
        ops_per_chain: 3,
    });
    let slow = b.add_segment(Kernel::Chase {
        ring_words: 1 << 18,
        chains: 1,
        compute_per_step: 2,
    });
    b.alternate(&[(fast, 500_000), (slow, 500_000)], 10);
    b.finish()
}

/// Three segments in a repeating A-B-A-C pattern.
fn three_planted_phases() -> pgss_workloads::Workload {
    let mut b = WorkloadBuilder::new("planted-3", 12);
    let a = b.add_segment(Kernel::ComputeInt {
        chains: 4,
        ops_per_chain: 3,
    });
    let bb = b.add_segment(Kernel::Branchy {
        table_words: 2048,
        bias: 128,
        work_per_side: 2,
    });
    let c = b.add_segment(Kernel::Stream {
        region_words: 1 << 15,
        stride_words: 1,
        compute_per_load: 2,
    });
    b.alternate(
        &[(a, 400_000), (bb, 400_000), (a, 400_000), (c, 400_000)],
        4,
    );
    b.finish()
}

#[test]
fn profile_shows_exactly_two_phases() {
    let w = two_planted_phases();
    let profile = interval_profile(&w, &MachineConfig::default(), 100_000, 1);
    let rows = phase_threshold_sweep(&profile, &[pgss::threshold(0.05)]);
    // 2 planted behaviours; transitions may add one mixed pseudo-phase.
    assert!(
        (2..=4).contains(&rows[0].num_phases),
        "found {} phases in a 2-phase workload",
        rows[0].num_phases
    );
    // The alternation is every 5 intervals; changes must be frequent.
    assert!(
        rows[0].num_changes >= 8,
        "only {} changes",
        rows[0].num_changes
    );
}

#[test]
fn every_planted_transition_is_detected() {
    let w = two_planted_phases();
    let profile = interval_profile(&w, &MachineConfig::default(), 100_000, 1);
    let d = deltas(&profile);
    // Significant IPC changes (>0.5σ) coincide with the planted segment
    // switches; the hashed BBV must catch essentially all of them at the
    // paper's 0.05π threshold.
    let rate = detection_rate(&d, pgss::threshold(0.05), 0.5).expect("has significant changes");
    assert!(rate > 0.9, "detection rate {rate}");
}

#[test]
fn online_simpoint_matches_planted_phase_count() {
    let w = three_planted_phases();
    let est = OnlineSimPoint {
        interval_ops: 400_000,
        ..OnlineSimPoint::default()
    }
    .run(&w);
    let p = est.phases.unwrap();
    // 3 planted behaviours (A appears twice per round but is one phase).
    assert!(
        (3..=5).contains(&p.phases),
        "online simpoint found {} phases in a 3-phase workload",
        p.phases
    );
}

#[test]
fn pgss_weights_match_planted_proportions() {
    // fast:slow planted 50:50 by ops.
    let w = two_planted_phases();
    let est = PgssSim {
        ff_ops: 100_000,
        spacing_ops: 200_000,
        ..PgssSim::default()
    }
    .run(&w);
    let p = est.phases.unwrap();
    // The two dominant phases must each hold roughly half the weight.
    let mut weights = p.weights.clone();
    weights.sort_by(|a, b| b.partial_cmp(a).unwrap());
    assert!(
        weights[0] > 0.3 && weights[0] < 0.7,
        "weights {:?}",
        p.weights
    );
    assert!(weights[1] > 0.2, "weights {:?}", p.weights);
}

#[test]
fn pgss_estimate_is_accurate_on_planted_phases() {
    let w = two_planted_phases();
    let truth = pgss::FullDetailed::new().ground_truth(&w);
    let est = PgssSim {
        ff_ops: 100_000,
        spacing_ops: 200_000,
        ..PgssSim::default()
    }
    .run(&w);
    let err = est.error_vs(&truth);
    assert!(err < 0.12, "error {err:.4} on a clean two-phase workload");
}

#[test]
fn threshold_sweep_collapses_phases_at_high_thresholds() {
    let w = three_planted_phases();
    let profile = interval_profile(&w, &MachineConfig::default(), 100_000, 1);
    let rows = phase_threshold_sweep(
        &profile,
        &[pgss::threshold(0.05), std::f64::consts::FRAC_PI_2 + 0.01],
    );
    assert!(rows[0].num_phases > rows[1].num_phases);
    assert_eq!(rows[1].num_phases, 1);
    // With one phase, within-phase variation equals overall variation.
    assert!((rows[1].ipc_variation_sigmas - 1.0).abs() < 1e-9);
}
