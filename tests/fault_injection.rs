//! Fault-injection integration: campaigns must survive everything we can
//! deterministically throw at them.
//!
//! Requires the `fault-inject` feature:
//!
//! ```text
//! cargo test --release --features fault-inject --test fault_injection
//! ```
//!
//! Each test installs a [`pgss::faults::FaultPlan`] — targeted worker
//! panics and/or checkpoint-store faults (failed puts, failed / corrupted
//! / truncated gets) — runs a real campaign, and proves the fault-
//! tolerance contract: every cell not named by the plan is bit-identical
//! to a fault-free run, every fault is ledgered with its context, and the
//! same plan + retry seed reproduces the report byte for byte.

mod util;

use pgss::faults::{self, CellPanic, FaultPlan, StoreFaultPlan};
use pgss::{campaign, PgssSim, Smarts, Technique};
use pgss_ckpt::Store;
use pgss_cpu::MachineConfig;
use pgss_workloads::Workload;

fn suite() -> Vec<Workload> {
    vec![
        pgss_workloads::gzip(0.01),
        pgss_workloads::mesa(0.01),
        pgss_workloads::twolf(0.01),
    ]
}

fn smarts() -> Smarts {
    Smarts {
        period_ops: 50_000,
        ..Smarts::default()
    }
}

fn pgss_sim() -> PgssSim {
    PgssSim {
        ff_ops: 50_000,
        spacing_ops: 50_000,
        ..PgssSim::default()
    }
}

fn temp_store(tag: &str) -> (util::TempDir, Store) {
    util::temp_store(&format!("pgss-fault-{tag}"))
}

#[test]
fn injected_worker_panic_is_isolated_and_ledgered() {
    let workloads = suite();
    let smarts = smarts();
    let pgss = pgss_sim();
    let techs: Vec<&(dyn Technique + Sync)> = vec![&smarts, &pgss];
    let jobs = campaign::grid(&workloads, &techs, MachineConfig::default());

    let clean = campaign::run(&jobs);
    assert!(clean.is_complete());

    // Permanently poison one exact cell.
    let _guard = faults::install(FaultPlan {
        cell_panics: vec![CellPanic {
            workload: "177.mesa".to_string(),
            technique: pgss.name(),
            times: u32::MAX,
        }],
        ..FaultPlan::default()
    });
    let faulty = campaign::run(&jobs);

    // Exactly that cell failed, after its full retry budget, with its
    // workload / technique / cause in the ledger.
    assert_eq!(faulty.failures.len(), 1);
    let failure = &faulty.failures[0];
    assert_eq!(failure.workload, "177.mesa");
    assert_eq!(failure.technique, pgss.name());
    assert_eq!(failure.attempts, 2);
    match &failure.error {
        campaign::CellError::Panicked(msg) => {
            assert!(msg.contains("injected worker panic"), "{msg:?}")
        }
        other => panic!("unexpected cell error {other:?}"),
    }
    assert!(faulty.ledger().contains("177.mesa"));

    // Every surviving cell is bit-identical to the fault-free campaign.
    assert_eq!(faulty.cells.len(), clean.cells.len() - 1);
    for cell in &faulty.cells {
        assert_eq!(
            clean.cell(&cell.workload, &cell.technique),
            Some(cell),
            "{} × {} changed under an unrelated fault",
            cell.workload,
            cell.technique
        );
    }
}

#[test]
fn transient_injected_panic_heals_and_replays_byte_identically() {
    let workloads = suite();
    let smarts = smarts();
    let techs: Vec<&(dyn Technique + Sync)> = vec![&smarts];
    let jobs = campaign::grid(&workloads, &techs, MachineConfig::default());

    let clean = campaign::run(&jobs);

    // One transient fault: the cell's first attempt panics, the retry
    // heals it.
    let run_with_fault = || {
        let _guard = faults::install(FaultPlan {
            cell_panics: vec![CellPanic {
                workload: "300.twolf".to_string(),
                technique: smarts.name(),
                times: 1,
            }],
            ..FaultPlan::default()
        });
        campaign::run(&jobs)
    };
    let healed = run_with_fault();
    assert!(healed.is_complete(), "{}", healed.ledger());
    assert_eq!(healed.retries, 1);
    assert_eq!(
        healed.cells, clean.cells,
        "a healed transient fault must leave no trace in the results"
    );

    // Same fault schedule, same retry seed: byte-identical reports.
    let replay = run_with_fault();
    assert_eq!(healed, replay);
    assert_eq!(format!("{healed:?}"), format!("{replay:?}"));
}

#[test]
fn injected_record_corruption_is_quarantined_and_results_unchanged() {
    let workloads = vec![pgss_workloads::gzip(0.01)];
    let smarts = smarts();
    let pgss = pgss_sim();
    let techs: Vec<&(dyn Technique + Sync)> = vec![&smarts, &pgss];
    let jobs = campaign::grid(&workloads, &techs, MachineConfig::default());
    let (dir, store) = temp_store("corrupt");

    let clean = campaign::run_checkpointed(&jobs, 50_000, Some(&store)).unwrap();
    assert!(clean.checkpoint_faults.is_empty());
    assert!(clean.ladder.capture_ops > 0);

    // Load order is meta (get #0) then rungs (#1..): corrupt the first
    // rung read. The store sees a checksum mismatch — indistinguishable
    // from on-disk bit rot — quarantines the record, and the ladder
    // recaptures.
    let run_with_fault = || {
        let _guard = faults::install(FaultPlan {
            store: StoreFaultPlan {
                corrupt_gets: vec![1],
                ..StoreFaultPlan::default()
            },
            ..FaultPlan::default()
        });
        campaign::run_checkpointed(&jobs, 50_000, Some(&store)).unwrap()
    };
    let healed = run_with_fault();
    assert_eq!(
        clean.cells, healed.cells,
        "corruption must not change any cell"
    );
    assert!(healed.is_complete());
    assert!(
        healed
            .checkpoint_faults
            .iter()
            .any(|f| f.contains("corrupt checkpoint rung") && f.contains("quarantined")),
        "{:?}",
        healed.checkpoint_faults
    );
    assert!(
        healed.ladder.capture_ops > 0,
        "must recapture after quarantine"
    );
    // The quarantine sidecar preserved exactly the one faulted record
    // (only get #1 was corrupted, and nothing has been quarantined yet).
    assert_eq!(
        std::fs::read_dir(dir.path().join("quarantine"))
            .unwrap()
            .count(),
        1
    );

    // Same fault schedule twice: byte-identical reports.
    let replay = run_with_fault();
    assert_eq!(healed, replay);
    assert_eq!(format!("{healed:?}"), format!("{replay:?}"));

    // With faults cleared the recaptured store loads clean.
    let after = campaign::run_checkpointed(&jobs, 50_000, Some(&store)).unwrap();
    assert_eq!(clean.cells, after.cells);
    assert_eq!(after.ladder.capture_ops, 0);
    assert!(
        after.checkpoint_faults.is_empty(),
        "{:?}",
        after.checkpoint_faults
    );
}

#[test]
fn injected_store_io_errors_degrade_gracefully() {
    let workloads = vec![pgss_workloads::twolf(0.01)];
    let smarts = smarts();
    let techs: Vec<&(dyn Technique + Sync)> = vec![&smarts];
    let jobs = campaign::grid(&workloads, &techs, MachineConfig::default());
    let (_dir, store) = temp_store("io");

    let plain = campaign::run(&jobs);

    // First campaign: the very first rung write-back fails with an I/O
    // error. Capture still accelerates this run; only persistence is
    // lost, and the ledger says so.
    {
        let _guard = faults::install(FaultPlan {
            store: StoreFaultPlan {
                fail_puts: vec![0],
                ..StoreFaultPlan::default()
            },
            ..FaultPlan::default()
        });
        let report = campaign::run_checkpointed(&jobs, 50_000, Some(&store)).unwrap();
        assert_eq!(plain.cells, report.cells);
        assert!(report.is_complete());
        assert!(
            report
                .checkpoint_faults
                .iter()
                .any(|f| f.contains("write-back") && f.contains("failed")),
            "{:?}",
            report.checkpoint_faults
        );
        // The plan names exactly one fault (put #0), so exactly one
        // injection must have fired — no more, no fewer.
        assert_eq!(faults::injection_log().len(), 1);
    }

    // Second campaign: the meta read (get #0) fails with an I/O error.
    // The ladder falls back to recapture; results are unchanged.
    {
        let _guard = faults::install(FaultPlan {
            store: StoreFaultPlan {
                fail_gets: vec![0],
                ..StoreFaultPlan::default()
            },
            ..FaultPlan::default()
        });
        let report = campaign::run_checkpointed(&jobs, 50_000, Some(&store)).unwrap();
        assert_eq!(plain.cells, report.cells);
        assert!(report.is_complete());
    }

    // Faults cleared: the store heals to a fully-loadable state.
    let healed = campaign::run_checkpointed(&jobs, 50_000, Some(&store)).unwrap();
    assert_eq!(plain.cells, healed.cells);
    assert_eq!(
        healed.ladder.capture_ops, 0,
        "{:?}",
        healed.checkpoint_faults
    );
}

#[test]
fn combined_panic_and_store_faults_in_one_campaign() {
    let workloads = vec![pgss_workloads::gzip(0.01), pgss_workloads::mesa(0.01)];
    let smarts = smarts();
    let pgss = pgss_sim();
    let techs: Vec<&(dyn Technique + Sync)> = vec![&smarts, &pgss];
    let jobs = campaign::grid(&workloads, &techs, MachineConfig::default());
    let (_dir, store) = temp_store("combined");

    let clean = campaign::run_checkpointed(&jobs, 50_000, Some(&store)).unwrap();

    // Everything at once: a transient worker panic on one cell plus a
    // corrupted rung read. The campaign heals both and stays bit-exact.
    let _guard = faults::install(FaultPlan {
        cell_panics: vec![CellPanic {
            workload: "164.gzip".to_string(),
            technique: smarts.name(),
            times: 1,
        }],
        store: StoreFaultPlan {
            corrupt_gets: vec![1],
            ..StoreFaultPlan::default()
        },
        ..FaultPlan::default()
    });
    let report = campaign::run_checkpointed(&jobs, 50_000, Some(&store)).unwrap();
    assert!(report.is_complete(), "{}", report.ledger());
    assert_eq!(clean.cells, report.cells);
    assert_eq!(report.retries, 1);
    assert!(!report.checkpoint_faults.is_empty());
}
