//! Golden tests for the metrics export: the JSONL emitted by a campaign's
//! [`pgss::MetricsReport`] is a *stable artifact* — byte-identical across
//! reruns and across `PGSS_WORKERS` settings, with a pinned schema. Tools
//! downstream (experiment logs, diffing, dashboards) rely on both.

mod util;

use pgss::{
    campaign, MetricsRecorder, MetricsReport, PgssSim, RankedSet, Recorder, Signature, Smarts,
    Technique, TwoPhaseStratified,
};
use pgss_cpu::MachineConfig;

const METRICS_SCHEMA_VERSION: u32 = 1;

fn jobs_jsonl(threads: usize) -> String {
    let workloads = [pgss_workloads::gzip(0.01), pgss_workloads::art(0.01)];
    let smarts = Smarts {
        period_ops: 50_000,
        ..Smarts::default()
    };
    let pgss = PgssSim {
        ff_ops: 100_000,
        spacing_ops: 100_000,
        ..PgssSim::default()
    };
    let two_phase = TwoPhaseStratified {
        ff_ops: 100_000,
        budget: 20,
        ..TwoPhaseStratified::default()
    };
    let ranked = RankedSet {
        ff_ops: 100_000,
        ..RankedSet::default()
    };
    let pgss_mav = PgssSim {
        signature: Signature::Mav,
        ..pgss
    };
    let techs: Vec<&(dyn Technique + Sync)> = vec![&smarts, &pgss, &two_phase, &ranked, &pgss_mav];
    let jobs = campaign::grid(&workloads, &techs, MachineConfig::default());
    let report = campaign::run_on(&jobs, threads).expect("campaign runs");
    assert!(report.is_complete());
    report.metrics.to_jsonl()
}

/// The acceptance criterion of the observability layer: worker count is a
/// performance knob, not an observable — 1, 2, and 8 workers produce the
/// same bytes, and a rerun reproduces them.
#[test]
fn jsonl_is_byte_identical_across_worker_counts_and_reruns() {
    let one = jobs_jsonl(1);
    assert_eq!(one, jobs_jsonl(2), "1 vs 2 workers");
    assert_eq!(one, jobs_jsonl(8), "1 vs 8 workers");
    assert_eq!(one, jobs_jsonl(1), "rerun");
    // Every line is a scope record of the pinned schema version.
    for line in one.lines() {
        assert!(
            line.starts_with(&format!("{{\"v\":{METRICS_SCHEMA_VERSION},\"scope\":")),
            "unexpected line prefix: {line}"
        );
    }
    // Campaign scope first, then one scope per cell in job order
    // (2 workloads × 5 techniques).
    assert_eq!(one.lines().count(), 1 + 10);
    assert!(one.starts_with("{\"v\":1,\"scope\":\"campaign\","));
}

/// Pins the exported schema version: bump [`pgss::METRICS_SCHEMA_VERSION`]
/// deliberately (and update this test plus any downstream consumers), never
/// accidentally.
#[test]
fn schema_version_is_pinned() {
    assert_eq!(pgss::METRICS_SCHEMA_VERSION, METRICS_SCHEMA_VERSION);
}

/// The campaign server's own observability rides the same pinned
/// schema: scope `serve`, a `"v"`-tagged line, and a pinned
/// `serve.jobs.*` / `serve.cells.*` counter vocabulary plus the
/// `serve.job.run` span. New counters are a deliberate schema change —
/// extend the pinned list here when adding one.
#[test]
fn serve_scope_schema_is_pinned() {
    use pgss_serve::{json, Client, Listen, ServeConfig, Server};

    let tmp = util::TempDir::new("pgss-serve-schema");
    let cfg = ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(tmp.path(), Listen::Tcp("127.0.0.1:0".into()), cfg).unwrap();
    let addr = server.addr().clone();
    let job = Client::connect(&addr)
        .unwrap()
        .submit(
            "pin",
            r#"{"suite":[{"name":"164.gzip","scale":0.003}],
                "techniques":[{"kind":"smarts","period_ops":50000}],"stride":50000}"#,
        )
        .unwrap();
    let mut events = 0;
    let phase = Client::connect(&addr)
        .unwrap()
        .watch(&job, |_| {
            events += 1;
            true
        })
        .unwrap();
    assert_eq!(phase, "done");
    assert_eq!(events, 1, "one cell, one stream event");
    let line = Client::connect(&addr).unwrap().metrics().unwrap();
    server.stop();

    assert!(
        line.starts_with(&format!(
            "{{\"v\":{METRICS_SCHEMA_VERSION},\"scope\":\"serve\","
        )),
        "serve metrics line left the pinned schema: {line}"
    );
    let v = json::parse(&line).unwrap();
    let json::Value::Obj(counters) = v.get("counters").unwrap() else {
        panic!("no counters object: {line}")
    };
    let serve_keys: Vec<&str> = counters
        .keys()
        .filter(|k| k.starts_with("serve."))
        .map(String::as_str)
        .collect();
    assert_eq!(
        serve_keys,
        [
            "serve.cells.executed",
            "serve.cells.streamed",
            "serve.jobs.completed",
            "serve.jobs.submitted",
            "serve.lease.granted",
        ],
        "pinned serve counter vocabulary changed: {line}"
    );
    for key in &serve_keys {
        assert_eq!(
            counters[*key].as_u64(),
            Some(1),
            "one-job one-cell scenario: {key} should be exactly 1"
        );
    }
    let json::Value::Obj(spans) = v.get("spans").unwrap() else {
        panic!("no spans object: {line}")
    };
    assert!(
        spans.contains_key("serve.job.run"),
        "per-job span missing: {line}"
    );
}

/// Pins the exact JSONL encoding of a hand-built frame, the way
/// `snapshot_format_is_pinned` pins the checkpoint format: key order
/// (BTreeMap-sorted), number formatting, and the `null` encoding for
/// non-finite values are all part of the contract.
#[test]
fn jsonl_line_format_is_pinned() {
    let rec = MetricsRecorder::new();
    rec.add("b.counter", 7);
    rec.add("a.counter", 2);
    rec.observe("lat", 1.5);
    rec.observe("lat", 2.5);
    rec.observe("bad", f64::INFINITY);
    rec.register_hist("share", 0.0, 1.0, 2);
    rec.record_hist("share", 0.25);
    let mut report = MetricsReport::new();
    report.push_scope("pin", rec.into_frame());
    assert_eq!(
        report.to_jsonl(),
        concat!(
            "{\"v\":1,\"scope\":\"pin\",",
            "\"counters\":{\"a.counter\":2,\"b.counter\":7},",
            "\"spans\":{},",
            "\"dists\":{\"bad\":{\"n\":1,\"mean\":null,\"std\":0},",
            "\"lat\":{\"n\":2,\"mean\":2,\"std\":0.7071067811865476}},",
            "\"hists\":{\"share\":{\"min\":0,\"max\":1,\"total\":1,\"counts\":[1,0]}}}\n",
        )
    );
}
