//! Campaign-server resilience: SIGKILL-and-resume without recomputation,
//! tenant quota enforcement, and cooperative cancellation.
//!
//! The SIGKILL test runs a real daemon in a separate process by
//! re-executing this test binary with the `daemon_entry` filter and a
//! control env var — the child is a full `pgss-serve` process that can be
//! killed with prejudice while the parent watches its durable store
//! survive. The quota and cancellation tests drive an in-process server.

mod util;

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use pgss_serve::{json, Client, ClientError, JobStatus, Listen, ServeConfig, Server, TenantQuota};

/// Control env var: `store_dir\x1faddr_file\x1fworkers`.
const DAEMON_ENV: &str = "PGSS_SERVE_DAEMON";

/// One workload, one technique: finishes in well under a second.
const TINY_SPEC: &str = r#"{"suite":[{"name":"164.gzip","scale":0.003}],
    "techniques":[{"kind":"smarts","period_ops":50000}],"stride":50000}"#;

/// Eight cells (and four technique kinds through the wire format) so a
/// kill after the first completion always lands mid-campaign.
const WIDE_SPEC: &str = r#"{"suite":[
      {"name":"164.gzip","scale":0.002},{"name":"183.equake","scale":0.002}],
    "techniques":[{"kind":"smarts","period_ops":50000},
                  {"kind":"turbo_smarts","period_ops":50000},
                  {"kind":"online_simpoint","interval_ops":100000},
                  {"kind":"pgss","ff_ops":50000,"spacing_ops":100000}],
    "stride":50000}"#;

/// Not a real test: the daemon half of the SIGKILL scenario. No-ops
/// unless the parent set [`DAEMON_ENV`]; otherwise serves the given
/// store until shut down (or killed).
#[test]
fn daemon_entry() {
    let Ok(ctl) = std::env::var(DAEMON_ENV) else {
        return;
    };
    let mut parts = ctl.split('\x1f');
    let (store, addr_file, workers) = (
        parts.next().unwrap().to_string(),
        parts.next().unwrap().to_string(),
        parts.next().unwrap().parse::<usize>().unwrap(),
    );
    let cfg = ServeConfig {
        workers,
        ..ServeConfig::default()
    };
    let server = Server::start(&store, Listen::Tcp("127.0.0.1:0".into()), cfg).unwrap();
    let pgss_serve::BoundAddr::Tcp(addr) = server.addr().clone() else {
        unreachable!("tcp listen yields a tcp addr")
    };
    // Write-then-rename so the parent never reads a half-written addr.
    let tmp = format!("{addr_file}.tmp");
    let mut f = std::fs::File::create(&tmp).unwrap();
    writeln!(f, "{addr}").unwrap();
    drop(f);
    std::fs::rename(&tmp, &addr_file).unwrap();
    server.wait();
}

fn spawn_daemon(store: &Path, addr_file: &Path, workers: usize) -> Child {
    let exe = std::env::current_exe().unwrap();
    Command::new(exe)
        .args(["daemon_entry", "--exact", "--nocapture"])
        .env(
            DAEMON_ENV,
            format!(
                "{}\x1f{}\x1f{workers}",
                store.display(),
                addr_file.display()
            ),
        )
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap()
}

fn await_daemon_addr(addr_file: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(s) = std::fs::read_to_string(addr_file) {
            let s = s.trim();
            if !s.is_empty() {
                return s.to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never published its address"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn status_of(addr: &str, job: &str) -> JobStatus {
    Client::connect_tcp(addr).unwrap().status(job).unwrap()
}

fn wait_for_phase_tcp(addr: &str, job: &str, want: &str) -> JobStatus {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let status = status_of(addr, job);
        if status.phase == want {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "job never reached {want:?}; stuck at {status:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The server's `serve`-scope counters, by name.
fn serve_counters(addr: &str) -> BTreeMap<String, u64> {
    let line = Client::connect_tcp(addr).unwrap().metrics().unwrap();
    let v = json::parse(&line).unwrap();
    let json::Value::Obj(counters) = v.get("counters").unwrap() else {
        panic!("metrics line without counters: {line}")
    };
    counters
        .iter()
        .map(|(k, v)| (k.clone(), v.as_u64().unwrap()))
        .collect()
}

#[test]
fn sigkilled_server_resumes_without_recomputing_finished_cells() {
    let tmp = util::TempDir::new("pgss-serve-kill");
    std::fs::create_dir_all(tmp.path()).unwrap();
    let store = tmp.path().join("store");
    let addr_file = tmp.path().join("addr");

    let mut child = spawn_daemon(&store, &addr_file, 1);
    let addr = await_daemon_addr(&addr_file);
    let job = Client::connect_tcp(&addr)
        .unwrap()
        .submit("kill-test", WIDE_SPEC)
        .unwrap();
    let total = {
        let deadline = Instant::now() + Duration::from_secs(180);
        loop {
            let status = status_of(&addr, &job);
            if status.done >= 1 {
                break status.total;
            }
            assert!(Instant::now() < deadline, "no cell ever finished");
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    // SIGKILL: no destructors, no flushes, no goodbye.
    child.kill().unwrap();
    child.wait().unwrap();

    std::fs::remove_file(&addr_file).unwrap();
    let mut child = spawn_daemon(&store, &addr_file, 2);
    let addr = await_daemon_addr(&addr_file);
    wait_for_phase_tcp(&addr, &job, "done");

    let counters = serve_counters(&addr);
    let resumed = counters.get("serve.cells.resumed").copied().unwrap_or(0);
    let executed = counters.get("serve.cells.executed").copied().unwrap_or(0);
    assert!(resumed >= 1, "kill landed before any cell was durable");
    assert_eq!(
        executed + resumed,
        total,
        "restarted server recomputed already-finished cells \
         (executed {executed} + resumed {resumed} != total {total})"
    );
    assert_eq!(counters.get("serve.jobs.resumed"), Some(&1));

    // The finished job's report assembles fine from the twice-opened
    // store.
    let lines = Client::connect_tcp(&addr).unwrap().report(&job).unwrap();
    assert!(lines[0].contains("\"kind\":\"campaign\""));
    assert_eq!(lines.len() as u64, 1 + 2 * total);

    Client::connect_tcp(&addr).unwrap().shutdown().unwrap();
    child.wait().unwrap();
}

#[test]
fn quotas_gate_concurrency_and_reject_over_queueing() {
    let tmp = util::TempDir::new("pgss-serve-quota");
    let mut quotas = BTreeMap::new();
    quotas.insert(
        "gated".to_string(),
        TenantQuota {
            max_concurrent_cells: 0,
            max_queued_jobs: 1,
        },
    );
    let cfg = ServeConfig {
        workers: 2,
        quotas,
        ..ServeConfig::default()
    };
    let server = Server::start(tmp.path(), Listen::Tcp("127.0.0.1:0".into()), cfg).unwrap();
    let addr = server.addr().clone();

    // Admitted, but its concurrency quota of zero parks it in `queued`.
    let gated_job = Client::connect(&addr)
        .unwrap()
        .submit("gated", TINY_SPEC)
        .unwrap();
    // A second active job would exceed the tenant's queue quota. The
    // rejection is typed busy (it carries the server's retry hint), not
    // a terminal error.
    let err = Client::connect(&addr).unwrap().submit("gated", TINY_SPEC);
    assert!(
        matches!(
            &err,
            Err(ClientError::Busy { message, retry_after_ms })
                if message.contains("quota") && *retry_after_ms > 0
        ),
        "expected a typed busy rejection, got {err:?}"
    );

    // An unconstrained tenant runs to completion on the same workers —
    // the gated job is parked, not wedging the pool.
    let free_job = Client::connect(&addr)
        .unwrap()
        .submit("free", TINY_SPEC)
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let status = Client::connect(&addr).unwrap().status(&free_job).unwrap();
        if status.phase == "done" {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "free tenant's job never finished"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let gated = Client::connect(&addr).unwrap().status(&gated_job).unwrap();
    assert_eq!(gated.phase, "queued", "over-quota job must stay queued");
    assert_eq!(gated.done, 0, "over-quota job must not run cells");

    let mut c = Client::connect(&addr).unwrap();
    let metrics_line = c.metrics().unwrap();
    let v = json::parse(&metrics_line).unwrap();
    let rejected = v
        .get("counters")
        .and_then(|c| c.get("serve.jobs.rejected"))
        .and_then(json::Value::as_u64)
        .unwrap_or(0);
    assert!(rejected >= 1, "rejection must be counted: {metrics_line}");

    server.stop();
}

#[test]
fn cancellation_leaves_a_clean_durable_record_and_frees_workers() {
    let tmp = util::TempDir::new("pgss-serve-cancel");
    let cfg = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let server = Server::start(tmp.path(), Listen::Tcp("127.0.0.1:0".into()), cfg.clone()).unwrap();
    let addr = server.addr().clone();

    let job = Client::connect(&addr)
        .unwrap()
        .submit("cancel-test", WIDE_SPEC)
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let status = Client::connect(&addr).unwrap().status(&job).unwrap();
        if status.done >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "no cell ever finished");
        std::thread::sleep(Duration::from_millis(10));
    }
    Client::connect(&addr).unwrap().cancel(&job).unwrap();
    let deadline = Instant::now() + Duration::from_secs(300);
    let cancelled = loop {
        let status = Client::connect(&addr).unwrap().status(&job).unwrap();
        if status.phase == "cancelled" {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "cancel never drained; stuck at {status:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        cancelled.done < cancelled.total,
        "cancel landed after the campaign finished; widen the grid"
    );

    // Workers are free again: a fresh job completes normally.
    let after = Client::connect(&addr)
        .unwrap()
        .submit("cancel-test", TINY_SPEC)
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let status = Client::connect(&addr).unwrap().status(&after).unwrap();
        if status.phase == "done" {
            break;
        }
        assert!(Instant::now() < deadline, "post-cancel job never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
    // A cancelled job still serves a report of what it did finish.
    let lines = Client::connect(&addr).unwrap().report(&job).unwrap();
    assert!(lines[0].contains("\"kind\":\"campaign\""));
    server.stop();

    // The cancelled state is durable: a fresh server sees it terminal
    // and resurrects no work for it.
    let server = Server::start(tmp.path(), Listen::Tcp("127.0.0.1:0".into()), cfg).unwrap();
    let addr = server.addr().clone();
    let status = Client::connect(&addr).unwrap().status(&job).unwrap();
    assert_eq!(status.phase, "cancelled");
    let counters = {
        let line = Client::connect(&addr).unwrap().metrics().unwrap();
        json::parse(&line).unwrap()
    };
    assert_eq!(
        counters
            .get("counters")
            .and_then(|c| c.get("serve.jobs.resumed"))
            .and_then(json::Value::as_u64)
            .unwrap_or(0),
        0,
        "terminal jobs must not be re-scheduled on resume"
    );
    server.stop();
}
