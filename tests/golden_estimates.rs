//! Golden-estimate regression tests: each technique's `Estimate` on small
//! workloads, recorded bit-exactly from the pre-`SimDriver` per-technique
//! loops. The policy-based rewrite must reproduce every value — same IPC
//! bits, same per-mode instruction counts, same sample count — proving the
//! shared engine executes the identical segment sequence.

use pgss::{
    AdaptivePgss, FullDetailed, OnlineSimPoint, PgssSim, RankedSet, Signature, SimPointOffline,
    Smarts, Technique, TurboSmarts, TwoPhaseStratified,
};
use pgss_cpu::{MachineConfig, ModeOps};

/// `(workload, technique, ipc_bits, mode_ops, samples)` recorded goldens.
const GOLDENS: [(&str, &str, u64, ModeOps, u64); 20] = [
    (
        "164.gzip",
        "FullDetailed",
        0x3fe0d988086aea6b,
        ModeOps {
            fast_forward: 0,
            functional: 0,
            detailed_warming: 0,
            detailed_measured: 5817470,
        },
        1,
    ),
    (
        "164.gzip",
        "SMARTS(100k/1000)",
        0x3fe0fedb62ed3b7a,
        ModeOps {
            fast_forward: 0,
            functional: 5581470,
            detailed_warming: 177000,
            detailed_measured: 59000,
        },
        59,
    ),
    (
        "164.gzip",
        "TurboSMARTS(100k/3%)",
        0x3fe0fedb62ed3b78,
        ModeOps {
            fast_forward: 0,
            functional: 0,
            detailed_warming: 177000,
            detailed_measured: 59000,
        },
        59,
    ),
    (
        "164.gzip",
        "SimPoint(5x0M)",
        0x3fe0e49a5d6620a0,
        ModeOps {
            fast_forward: 0,
            functional: 9517470,
            detailed_warming: 0,
            detailed_measured: 500000,
        },
        5,
    ),
    (
        "164.gzip",
        "OnlineSimPoint(0M/.10)",
        0x3fdfe9ab2b8e4d41,
        ModeOps {
            fast_forward: 0,
            functional: 5317470,
            detailed_warming: 0,
            detailed_measured: 500000,
        },
        5,
    ),
    (
        "164.gzip",
        "PGSS(100k/.05)",
        0x3fe0aa104b189ae5,
        ModeOps {
            fast_forward: 0,
            functional: 5637470,
            detailed_warming: 135000,
            detailed_measured: 45000,
        },
        45,
    ),
    (
        "164.gzip",
        "AdaptivePGSS(0M)",
        0x3fe1882f279ed00d,
        ModeOps {
            fast_forward: 0,
            functional: 6297470,
            detailed_warming: 90000,
            detailed_measured: 30000,
        },
        30,
    ),
    (
        "164.gzip",
        "TwoPhase(100k/b20)",
        0x3fe0c18f6c1261b1,
        ModeOps {
            fast_forward: 0,
            functional: 13445470,
            detailed_warming: 60000,
            detailed_measured: 20000,
        },
        20,
    ),
    (
        "164.gzip",
        "RankedSet(100k/r2x5)",
        0x3fe14c036097acbb,
        ModeOps {
            fast_forward: 0,
            functional: 11259970,
            detailed_warming: 203500,
            detailed_measured: 58000,
        },
        58,
    ),
    (
        "164.gzip",
        "PGSS-MAV(100k/.05)",
        0x3fe0a6b10b811e24,
        ModeOps {
            fast_forward: 0,
            functional: 5597470,
            detailed_warming: 165000,
            detailed_measured: 55000,
        },
        55,
    ),
    (
        "168.wupwise",
        "FullDetailed",
        0x3fdc89fb4e1f5413,
        ModeOps {
            fast_forward: 0,
            functional: 0,
            detailed_warming: 0,
            detailed_measured: 7888054,
        },
        1,
    ),
    (
        "168.wupwise",
        "SMARTS(100k/1000)",
        0x3fdd03e98bbc730f,
        ModeOps {
            fast_forward: 0,
            functional: 7572054,
            detailed_warming: 237000,
            detailed_measured: 79000,
        },
        79,
    ),
    (
        "168.wupwise",
        "TurboSMARTS(100k/3%)",
        0x3fdd03e98bbc7312,
        ModeOps {
            fast_forward: 0,
            functional: 0,
            detailed_warming: 237000,
            detailed_measured: 79000,
        },
        79,
    ),
    (
        "168.wupwise",
        "SimPoint(5x0M)",
        0x3fdccaed4b8d1010,
        ModeOps {
            fast_forward: 0,
            functional: 12288054,
            detailed_warming: 0,
            detailed_measured: 500000,
        },
        5,
    ),
    (
        "168.wupwise",
        "OnlineSimPoint(0M/.10)",
        0x3fe0067845286cd6,
        ModeOps {
            fast_forward: 0,
            functional: 7688054,
            detailed_warming: 0,
            detailed_measured: 200000,
        },
        2,
    ),
    (
        "168.wupwise",
        "PGSS(100k/.05)",
        0x3fdc141b69a7fe07,
        ModeOps {
            fast_forward: 0,
            functional: 7820054,
            detailed_warming: 51000,
            detailed_measured: 17000,
        },
        17,
    ),
    (
        "168.wupwise",
        "AdaptivePGSS(0M)",
        0x3fdbfc4491a6fc90,
        ModeOps {
            fast_forward: 0,
            functional: 8620054,
            detailed_warming: 51000,
            detailed_measured: 17000,
        },
        17,
    ),
    (
        "168.wupwise",
        "TwoPhase(100k/b20)",
        0x3fdcc17fe5af6527,
        ModeOps {
            fast_forward: 0,
            functional: 22516054,
            detailed_warming: 60000,
            detailed_measured: 20000,
        },
        20,
    ),
    (
        "168.wupwise",
        "RankedSet(100k/r2x5)",
        0x3fdcf6eaae9f0ccc,
        ModeOps {
            fast_forward: 0,
            functional: 15248554,
            detailed_warming: 267500,
            detailed_measured: 76000,
        },
        76,
    ),
    (
        "168.wupwise",
        "PGSS-MAV(100k/.05)",
        0x3fdc1620705a932f,
        ModeOps {
            fast_forward: 0,
            functional: 7696054,
            detailed_warming: 144000,
            detailed_measured: 48000,
        },
        48,
    ),
];

fn techniques() -> Vec<Box<dyn Technique>> {
    let smarts = Smarts {
        unit_ops: 1_000,
        warm_ops: 3_000,
        period_ops: 100_000,
    };
    vec![
        Box::new(FullDetailed::new()),
        Box::new(smarts),
        Box::new(TurboSmarts {
            smarts,
            ..TurboSmarts::default()
        }),
        Box::new(SimPointOffline {
            interval_ops: 100_000,
            k: 5,
            projected_dims: 15,
            seed: 1,
            ..SimPointOffline::default()
        }),
        Box::new(OnlineSimPoint {
            interval_ops: 100_000,
            ..OnlineSimPoint::default()
        }),
        Box::new(PgssSim {
            ff_ops: 100_000,
            spacing_ops: 100_000,
            ..PgssSim::default()
        }),
        Box::new(AdaptivePgss {
            base: PgssSim {
                ff_ops: 100_000,
                spacing_ops: 200_000,
                ..PgssSim::default()
            },
            ..AdaptivePgss::default()
        }),
        Box::new(TwoPhaseStratified {
            ff_ops: 100_000,
            budget: 20,
            ..TwoPhaseStratified::default()
        }),
        Box::new(RankedSet {
            ff_ops: 100_000,
            ..RankedSet::default()
        }),
        Box::new(PgssSim {
            ff_ops: 100_000,
            spacing_ops: 100_000,
            signature: Signature::Mav,
            ..PgssSim::default()
        }),
    ]
}

#[test]
fn estimates_match_recorded_goldens() {
    let workloads = [pgss_workloads::gzip(0.02), pgss_workloads::wupwise(0.02)];
    let techniques = techniques();
    let mut failures = Vec::new();
    for (w, chunk) in workloads.iter().zip(GOLDENS.chunks(techniques.len())) {
        for (t, &(gw, gname, ipc_bits, mode_ops, samples)) in techniques.iter().zip(chunk) {
            assert_eq!(w.name(), gw, "golden table out of order");
            assert_eq!(t.name(), gname, "golden table out of order");
            let e = t.run_with(w, &MachineConfig::default());
            if e.ipc.to_bits() != ipc_bits || e.mode_ops != mode_ops || e.samples != samples {
                failures.push(format!(
                    "{gw} / {gname}: got ipc=0x{:016x} {:?} samples={}, \
                     want ipc=0x{ipc_bits:016x} {mode_ops:?} samples={samples}",
                    e.ipc.to_bits(),
                    e.mode_ops,
                    e.samples,
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "estimates diverged from goldens:\n{}",
        failures.join("\n")
    );
}
