//! Statistical validation sweep: are the techniques' confidence claims
//! *calibrated*?
//!
//! Every replication builds a fresh seeded variant of a polymodal workload
//! (the seed drives pointer-chase ring permutations and branch entropy
//! tables, so per-sample CPIs vary across replications while the program
//! structure stays fixed), computes the exhaustive ground truth, and runs
//! each sampled technique. A technique's 95 % interval ([`Estimate::ci`])
//! should then contain the true IPC in ~95 % of replications — checked
//! against a binomial tolerance band around 0.95.
//!
//! Over-coverage is tolerated by design (the band's upper edge clamps at
//! 100 %): systematic sampling of a finite population and PGSS's
//! stratified composition are both conservative. *Under*-coverage beyond
//! binomial noise is the failure mode the paper cares about — a Gaussian
//! claim that understates polymodal sampling error.
//!
//! The sweep also checks the paper's cost story on the same runs: PGSS
//! buys its estimate with less detailed simulation than SMARTS, which
//! needs less than SimPoint.
//!
//! The full 200-replication sweep runs in release (`scripts/ci.sh` gates
//! it); under `cfg(debug_assertions)` a 12-replication smoke version runs
//! with correspondingly loose assertions so plain `cargo test` stays
//! fast.

use pgss::{Estimate, FullDetailed, PgssSim, SimPointOffline, Smarts, Technique};
use pgss_workloads::{Kernel, Workload, WorkloadBuilder};

/// Replications per workload. Release runs the full sweep; debug builds
/// run a smoke version (the binomial band needs n large enough that
/// ±3σ is a meaningful statement).
const REPS: usize = if cfg!(debug_assertions) { 12 } else { 200 };

/// Phase-block size in retired ops; every workload alternates phases in
/// blocks of this size.
const BLOCK: u64 = 20_000;

/// Two-phase polymodal workload: a high-IPC integer-compute phase (stable
/// within an occurrence) alternating with an unpredictable-branch phase
/// whose entropy table — and therefore per-sample CPI — varies with the
/// seed.
fn poly_branch(seed: u64) -> Workload {
    let mut b = WorkloadBuilder::new("poly-branch", seed);
    let stable = b.add_segment(Kernel::ComputeInt {
        chains: 8,
        ops_per_chain: 4,
    });
    let noisy = b.add_segment(Kernel::Branchy {
        table_words: 4096,
        bias: 128,
        work_per_side: 8,
    });
    b.alternate(&[(stable, BLOCK), (noisy, BLOCK)], 4);
    b.finish()
}

/// Three-phase polymodal workload: a memory-bound pointer-chase phase
/// (seed-permuted ring), a floating-point compute phase, and a short
/// branch-noise phase — CPI is multi-modal across phases.
fn poly_mem(seed: u64) -> Workload {
    let mut b = WorkloadBuilder::new("poly-mem", seed);
    let mem = b.add_segment(Kernel::Chase {
        ring_words: 1 << 14,
        chains: 2,
        compute_per_step: 4,
    });
    let fp = b.add_segment(Kernel::ComputeFp {
        chains: 8,
        ops_per_chain: 4,
    });
    let noise = b.add_segment(Kernel::Branchy {
        table_words: 2048,
        bias: 128,
        work_per_side: 4,
    });
    b.alternate(&[(mem, BLOCK), (fp, BLOCK - 4_000), (noise, 4_000)], 4);
    b.finish()
}

/// SMARTS scaled to the ~160k-op validation workloads: 16 samples of
/// 500 measured + 1,500 warming ops.
fn smarts() -> Smarts {
    Smarts {
        unit_ops: 500,
        warm_ops: 1_500,
        period_ops: 10_000,
    }
}

/// PGSS with the sampling unit matched to SMARTS and the BBV period,
/// spacing rule, and per-phase stopping scaled to the same workloads.
fn pgss() -> PgssSim {
    PgssSim {
        ff_ops: 5_000,
        unit_ops: 500,
        warm_ops: 1_500,
        ci_rel: 0.08,
        min_samples: 3,
        spacing_ops: 12_000,
        ..PgssSim::default()
    }
}

/// SimPoint with one interval per phase block and k matched to the phase
/// count: its detailed budget is k × interval ops by construction.
fn simpoint() -> SimPointOffline {
    SimPointOffline {
        interval_ops: BLOCK,
        k: 3,
        ..SimPointOffline::default()
    }
}

/// `[lo, hi]` band on the number of covering replications out of `n` at
/// true coverage `p`, `sigmas` binomial standard deviations wide (upper
/// edge clamped to `n`: over-coverage is benign, see module docs).
fn binomial_band(n: usize, p: f64, sigmas: f64) -> (usize, usize) {
    let mean = n as f64 * p;
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    let lo = (mean - sigmas * sd).floor().max(0.0) as usize;
    let hi = ((mean + sigmas * sd).ceil() as usize).min(n);
    (lo, hi)
}

/// One technique's tally across the sweep.
#[derive(Default)]
struct Tally {
    covered: usize,
    total_detail: u64,
    total_abs_err: f64,
}

impl Tally {
    fn absorb(&mut self, est: &Estimate, truth_ipc: f64) {
        let ci = est
            .ci
            .expect("validated techniques report a confidence interval");
        assert!(
            ci.half_width.is_finite() && ci.half_width > 0.0,
            "degenerate interval: {ci:?}"
        );
        assert!(
            (ci.mean - est.ipc).abs() < 1e-12,
            "interval must be centred on the estimate"
        );
        if ci.contains(truth_ipc) {
            self.covered += 1;
        }
        self.total_detail += est.detailed_ops();
        self.total_abs_err += pgss::relative_error(est.ipc, truth_ipc);
    }

    fn mean_detail(&self) -> f64 {
        self.total_detail as f64 / REPS as f64
    }
}

fn sweep(name: &str, make: fn(u64) -> Workload) {
    let (smarts_t, pgss_t, simpoint_t) = (smarts(), pgss(), simpoint());
    let mut smarts_tally = Tally::default();
    let mut pgss_tally = Tally::default();
    let mut simpoint_detail = 0u64;
    let mut simpoint_abs_err = 0.0f64;

    for rep in 0..REPS {
        let seed = 0x51A7_0000 + rep as u64;
        let w = make(seed);
        let truth = FullDetailed::new().ground_truth(&w);

        let s = smarts_t.run(&w);
        smarts_tally.absorb(&s, truth.ipc);
        let p = pgss_t.run(&w);
        pgss_tally.absorb(&p, truth.ipc);
        let sp = simpoint_t.run(&w);
        assert!(sp.ci.is_none(), "SimPoint has no sampling-error model");
        simpoint_detail += sp.detailed_ops();
        simpoint_abs_err += pgss::relative_error(sp.ipc, truth.ipc);

        if rep == 0 {
            // Determinism: the whole pipeline — workload synthesis, ground
            // truth, estimates, and intervals — is a pure function of the
            // seed, so a rerun reproduces every bit.
            let w2 = make(seed);
            assert_eq!(FullDetailed::new().ground_truth(&w2), truth);
            assert_eq!(smarts_t.run(&w2), s);
            assert_eq!(pgss_t.run(&w2), p);
            assert_eq!(simpoint_t.run(&w2), sp);
        }
    }

    let (lo, hi) = binomial_band(REPS, 0.95, 3.0);
    eprintln!(
        "{name}: SMARTS coverage {}/{REPS} (band [{lo},{hi}]), \
         PGSS coverage {}/{REPS}; mean detail ops PGSS {:.0} < SMARTS {:.0} < SimPoint {:.0}; \
         mean |err| SMARTS {:.3}% PGSS {:.3}% SimPoint {:.3}%",
        smarts_tally.covered,
        pgss_tally.covered,
        pgss_tally.mean_detail(),
        smarts_tally.mean_detail(),
        simpoint_detail as f64 / REPS as f64,
        100.0 * smarts_tally.total_abs_err / REPS as f64,
        100.0 * pgss_tally.total_abs_err / REPS as f64,
        100.0 * simpoint_abs_err / REPS as f64,
    );

    // Coverage: full binomial band in the release sweep; the debug smoke
    // run only rules out gross miscalibration (n is too small for ±3σ to
    // mean anything).
    if REPS >= 100 {
        for (tech, tally) in [("SMARTS", &smarts_tally), ("PGSS", &pgss_tally)] {
            assert!(
                (lo..=hi).contains(&tally.covered),
                "{name}/{tech}: 95% interval covered truth in {}/{REPS} \
                 replications, outside the binomial band [{lo}, {hi}]",
                tally.covered,
            );
        }
    } else {
        for (tech, tally) in [("SMARTS", &smarts_tally), ("PGSS", &pgss_tally)] {
            assert!(
                tally.covered * 2 > REPS,
                "{name}/{tech}: covered {}/{REPS} — grossly miscalibrated",
                tally.covered,
            );
        }
    }

    // The paper's cost ordering on identical runs: phase-guided sampling
    // needs the least cycle-level simulation, SimPoint the most.
    assert!(
        pgss_tally.mean_detail() < smarts_tally.mean_detail(),
        "{name}: PGSS mean detail {:.0} must undercut SMARTS {:.0}",
        pgss_tally.mean_detail(),
        smarts_tally.mean_detail(),
    );
    assert!(
        smarts_tally.mean_detail() < simpoint_detail as f64 / REPS as f64,
        "{name}: SMARTS mean detail {:.0} must undercut SimPoint {:.0}",
        smarts_tally.mean_detail(),
        simpoint_detail as f64 / REPS as f64,
    );
}

#[test]
fn coverage_and_budget_on_poly_branch() {
    sweep("poly-branch", poly_branch);
}

#[test]
fn coverage_and_budget_on_poly_mem() {
    sweep("poly-mem", poly_mem);
}
