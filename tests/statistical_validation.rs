//! Statistical validation sweep: are the techniques' confidence claims
//! *calibrated*?
//!
//! Every replication builds a fresh seeded variant of a polymodal workload
//! (the seed drives pointer-chase ring permutations and branch entropy
//! tables, so per-sample CPIs vary across replications while the program
//! structure stays fixed), computes the exhaustive ground truth, and runs
//! each sampled technique. A technique's 95 % interval ([`Estimate::ci`])
//! should then contain the true IPC in ~95 % of replications — checked
//! against a binomial tolerance band around 0.95.
//!
//! Over-coverage is tolerated by design (the band's upper edge clamps at
//! 100 %): systematic sampling of a finite population, PGSS's stratified
//! composition, and the two-phase/ranked-set estimators' composed variances
//! are all conservative. *Under*-coverage beyond binomial noise is the
//! failure mode the paper cares about — a Gaussian claim that understates
//! polymodal sampling error.
//!
//! The sweep also checks the cost story on the same runs — the pinned
//! detail-budget ordering across every calibrated estimator — and asserts
//! the PR-8 headline verdicts:
//!
//! * **Neither two-phase stratified sampling nor ranked-set sampling beats
//!   PGSS on detail budget at equal CI coverage.** Both are calibrated and
//!   both undercut SMARTS, but their fixed up-front costs (a pilot pass per
//!   stratum; a probe per interval plus replicated rank selections) exceed
//!   what PGSS's phase-guided stopping rule actually spends.
//! * **MAV reduces estimator error exactly when phases differ by data
//!   working set.** On the memory-bound poly-regions workload (an
//!   in-cache chase ring alternating with a cache-thrashing one) the MAV
//!   signature strictly improves PGSS's error over the hashed BBV; on
//!   poly-mem, whose floating-point and branch-noise phases touch little
//!   data memory, MAV cannot separate them and error regresses. Both
//!   directions are pinned; coverage stays inside the binomial band on
//!   every workload either way.
//!
//! The full 200-replication sweep runs in release (`scripts/ci.sh` gates
//! it); under `cfg(debug_assertions)` a 12-replication smoke version runs
//! with correspondingly loose assertions so plain `cargo test` stays
//! fast.

use pgss::{
    Estimate, FullDetailed, PgssSim, RankedSet, Signature, SimPointOffline, Smarts, Technique,
    TwoPhaseStratified,
};
use pgss_workloads::{Kernel, Workload, WorkloadBuilder};

/// Replications per workload. Release runs the full sweep; debug builds
/// run a smoke version (the binomial band needs n large enough that
/// ±3σ is a meaningful statement).
const REPS: usize = if cfg!(debug_assertions) { 12 } else { 200 };

/// Phase-block size in retired ops; every workload alternates phases in
/// blocks of this size.
const BLOCK: u64 = 20_000;

/// Two-phase polymodal workload: a high-IPC integer-compute phase (stable
/// within an occurrence) alternating with an unpredictable-branch phase
/// whose entropy table — and therefore per-sample CPI — varies with the
/// seed.
fn poly_branch(seed: u64) -> Workload {
    let mut b = WorkloadBuilder::new("poly-branch", seed);
    let stable = b.add_segment(Kernel::ComputeInt {
        chains: 8,
        ops_per_chain: 4,
    });
    let noisy = b.add_segment(Kernel::Branchy {
        table_words: 4096,
        bias: 128,
        work_per_side: 8,
    });
    b.alternate(&[(stable, BLOCK), (noisy, BLOCK)], 4);
    b.finish()
}

/// Three-phase polymodal workload: a memory-bound pointer-chase phase
/// (seed-permuted ring), a floating-point compute phase, and a short
/// branch-noise phase — CPI is multi-modal across phases.
fn poly_mem(seed: u64) -> Workload {
    let mut b = WorkloadBuilder::new("poly-mem", seed);
    let mem = b.add_segment(Kernel::Chase {
        ring_words: 1 << 14,
        chains: 2,
        compute_per_step: 4,
    });
    let fp = b.add_segment(Kernel::ComputeFp {
        chains: 8,
        ops_per_chain: 4,
    });
    let noise = b.add_segment(Kernel::Branchy {
        table_words: 2048,
        bias: 128,
        work_per_side: 4,
    });
    b.alternate(&[(mem, BLOCK), (fp, BLOCK - 4_000), (noise, 4_000)], 4);
    b.finish()
}

/// Memory-bound polymodal workload built for the MAV headline: two
/// pointer-chase phases whose CPIs differ because their *data working
/// sets* differ — a small in-cache ring against a large cache-thrashing
/// ring. A data-region signature separates these phases directly by the
/// regions they touch; the hashed-BBV signature separates them by code.
/// MAV must not regress estimator error here.
fn poly_regions(seed: u64) -> Workload {
    let mut b = WorkloadBuilder::new("poly-regions", seed);
    let hot = b.add_segment(Kernel::Chase {
        ring_words: 1 << 8,
        chains: 2,
        compute_per_step: 4,
    });
    let cold = b.add_segment(Kernel::Chase {
        ring_words: 1 << 15,
        chains: 2,
        compute_per_step: 4,
    });
    b.alternate(&[(hot, BLOCK), (cold, BLOCK)], 4);
    b.finish()
}

/// SMARTS scaled to the ~160k-op validation workloads: 16 samples of
/// 500 measured + 1,500 warming ops.
fn smarts() -> Smarts {
    Smarts {
        unit_ops: 500,
        warm_ops: 1_500,
        period_ops: 10_000,
    }
}

/// PGSS with the sampling unit matched to SMARTS and the BBV period,
/// spacing rule, and per-phase stopping scaled to the same workloads.
fn pgss() -> PgssSim {
    PgssSim {
        ff_ops: 5_000,
        unit_ops: 500,
        warm_ops: 1_500,
        ci_rel: 0.08,
        min_samples: 3,
        spacing_ops: 12_000,
        ..PgssSim::default()
    }
}

/// PGSS classifying on Memory Access Vectors instead of the hashed BBV;
/// every other parameter identical to [`pgss`], so error and coverage
/// differences isolate the signature.
fn pgss_mav() -> PgssSim {
    PgssSim {
        signature: Signature::Mav,
        ..pgss()
    }
}

/// Two-phase stratified sampling scaled to the validation workloads: the
/// classify pass strides the same 5k-op intervals as PGSS, a 3-sample
/// pilot per stratum, and a 14-sample total detail budget for Neyman
/// allocation. The pilot size matters: the memory-bound workloads' chase
/// strata are skewed (cold-cache transient occurrences next to warm
/// ones), and a 2-point pilot can land entirely on warm occurrences —
/// zero observed variance starves the stratum in allocation and the
/// composed estimate is biased with a degenerate interval.
fn two_phase() -> TwoPhaseStratified {
    TwoPhaseStratified {
        ff_ops: 5_000,
        unit_ops: 500,
        warm_ops: 1_500,
        pilot_per_stratum: 3,
        budget: 14,
        ..TwoPhaseStratified::default()
    }
}

/// Ranked-set sampling scaled to the validation workloads: a 200-op
/// warming probe ranks each 5k-op interval, sets of 2 per stratum, 5
/// replicates averaged.
fn ranked_set() -> RankedSet {
    RankedSet {
        ff_ops: 5_000,
        probe_ops: 200,
        unit_ops: 500,
        warm_ops: 1_500,
        set_size: 2,
        replicates: 5,
        ..RankedSet::default()
    }
}

/// SimPoint with one interval per phase block and k matched to the phase
/// count: its detailed budget is k × interval ops by construction.
fn simpoint() -> SimPointOffline {
    SimPointOffline {
        interval_ops: BLOCK,
        k: 3,
        ..SimPointOffline::default()
    }
}

/// `[lo, hi]` band on the number of covering replications out of `n` at
/// true coverage `p`, `sigmas` binomial standard deviations wide (upper
/// edge clamped to `n`: over-coverage is benign, see module docs).
fn binomial_band(n: usize, p: f64, sigmas: f64) -> (usize, usize) {
    let mean = n as f64 * p;
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    let lo = (mean - sigmas * sd).floor().max(0.0) as usize;
    let hi = ((mean + sigmas * sd).ceil() as usize).min(n);
    (lo, hi)
}

/// One technique's tally across the sweep.
#[derive(Default)]
struct Tally {
    covered: usize,
    total_detail: u64,
    total_abs_err: f64,
}

impl Tally {
    fn absorb(&mut self, est: &Estimate, truth_ipc: f64) {
        let ci = est
            .ci
            .expect("validated techniques report a confidence interval");
        assert!(
            ci.half_width.is_finite() && ci.half_width > 0.0,
            "degenerate interval: {ci:?}"
        );
        assert!(
            (ci.mean - est.ipc).abs() < 1e-12,
            "interval must be centred on the estimate"
        );
        if ci.contains(truth_ipc) {
            self.covered += 1;
        }
        self.total_detail += est.detailed_ops();
        self.total_abs_err += pgss::relative_error(est.ipc, truth_ipc);
    }

    fn mean_detail(&self) -> f64 {
        self.total_detail as f64 / REPS as f64
    }

    fn mean_abs_err(&self) -> f64 {
        self.total_abs_err / REPS as f64
    }
}

/// Everything the per-workload assertions need from one sweep: the tally
/// of every calibrated estimator, plus SimPoint's (interval-free) cost
/// and error.
struct SweepOutcome {
    smarts: Tally,
    pgss: Tally,
    pgss_mav: Tally,
    two_phase: Tally,
    ranked: Tally,
    simpoint_detail: f64,
    simpoint_abs_err: f64,
}

impl SweepOutcome {
    /// `(label, tally)` for every estimator that reports a 95 % interval.
    fn calibrated(&self) -> [(&'static str, &Tally); 5] {
        [
            ("SMARTS", &self.smarts),
            ("PGSS", &self.pgss),
            ("PGSS-MAV", &self.pgss_mav),
            ("TwoPhase", &self.two_phase),
            ("RankedSet", &self.ranked),
        ]
    }
}

fn sweep(name: &str, make: fn(u64) -> Workload) -> SweepOutcome {
    let smarts_t = smarts();
    let pgss_t = pgss();
    let mav_t = pgss_mav();
    let two_phase_t = two_phase();
    let ranked_t = ranked_set();
    let simpoint_t = simpoint();

    let mut out = SweepOutcome {
        smarts: Tally::default(),
        pgss: Tally::default(),
        pgss_mav: Tally::default(),
        two_phase: Tally::default(),
        ranked: Tally::default(),
        simpoint_detail: 0.0,
        simpoint_abs_err: 0.0,
    };

    for rep in 0..REPS {
        let seed = 0x51A7_0000 + rep as u64;
        let w = make(seed);
        let truth = FullDetailed::new().ground_truth(&w);

        let s = smarts_t.run(&w);
        out.smarts.absorb(&s, truth.ipc);
        let p = pgss_t.run(&w);
        out.pgss.absorb(&p, truth.ipc);
        let m = mav_t.run(&w);
        out.pgss_mav.absorb(&m, truth.ipc);
        let tp = two_phase_t.run(&w);
        out.two_phase.absorb(&tp, truth.ipc);
        let rs = ranked_t.run(&w);
        out.ranked.absorb(&rs, truth.ipc);
        let sp = simpoint_t.run(&w);
        assert!(sp.ci.is_none(), "SimPoint has no sampling-error model");
        out.simpoint_detail += sp.detailed_ops() as f64 / REPS as f64;
        out.simpoint_abs_err += pgss::relative_error(sp.ipc, truth.ipc) / REPS as f64;

        if rep == 0 {
            // Determinism: the whole pipeline — workload synthesis, ground
            // truth, estimates, and intervals — is a pure function of the
            // seed, so a rerun reproduces every bit.
            let w2 = make(seed);
            assert_eq!(FullDetailed::new().ground_truth(&w2), truth);
            assert_eq!(smarts_t.run(&w2), s);
            assert_eq!(pgss_t.run(&w2), p);
            assert_eq!(mav_t.run(&w2), m);
            assert_eq!(two_phase_t.run(&w2), tp);
            assert_eq!(ranked_t.run(&w2), rs);
            assert_eq!(simpoint_t.run(&w2), sp);
        }
    }

    let (lo, hi) = binomial_band(REPS, 0.95, 3.0);
    for (tech, tally) in out.calibrated() {
        eprintln!(
            "{name}/{tech}: coverage {}/{REPS} (band [{lo},{hi}]), \
             mean detail {:.0}, mean |err| {:.3}%",
            tally.covered,
            tally.mean_detail(),
            100.0 * tally.mean_abs_err(),
        );
    }
    eprintln!(
        "{name}/SimPoint: mean detail {:.0}, mean |err| {:.3}%",
        out.simpoint_detail,
        100.0 * out.simpoint_abs_err,
    );

    // Coverage: full binomial band in the release sweep; the debug smoke
    // run only rules out gross miscalibration (n is too small for ±3σ to
    // mean anything).
    if REPS >= 100 {
        for (tech, tally) in out.calibrated() {
            assert!(
                (lo..=hi).contains(&tally.covered),
                "{name}/{tech}: 95% interval covered truth in {}/{REPS} \
                 replications, outside the binomial band [{lo}, {hi}]",
                tally.covered,
            );
        }
    } else {
        for (tech, tally) in out.calibrated() {
            assert!(
                tally.covered * 2 > REPS,
                "{name}/{tech}: covered {}/{REPS} — grossly miscalibrated",
                tally.covered,
            );
        }
    }

    // The pinned detail-budget ordering on identical runs. Phase-guided
    // stopping needs the least cycle-level simulation; two-phase's fixed
    // pilot + Neyman budget lands between it and blind periodic SMARTS;
    // SimPoint's whole-interval replays cost more still; and ranked-set
    // sampling is the most expensive of all — it prices a warming probe
    // on *every* interval and its five replicates' rank selections union
    // to most of the population.
    let order: [(&str, f64); 5] = [
        ("PGSS", out.pgss.mean_detail()),
        ("TwoPhase", out.two_phase.mean_detail()),
        ("SMARTS", out.smarts.mean_detail()),
        ("SimPoint", out.simpoint_detail),
        ("RankedSet", out.ranked.mean_detail()),
    ];
    for pair in order.windows(2) {
        assert!(
            pair[0].1 < pair[1].1,
            "{name}: detail-budget ordering violated: {} {:.0} !< {} {:.0}",
            pair[0].0,
            pair[0].1,
            pair[1].0,
            pair[1].1,
        );
    }

    out
}

#[test]
fn coverage_and_budget_on_poly_branch() {
    let out = sweep("poly-branch", poly_branch);
    headline_budget_verdict("poly-branch", &out);
}

#[test]
fn coverage_and_budget_on_poly_mem() {
    let out = sweep("poly-mem", poly_mem);
    headline_budget_verdict("poly-mem", &out);
    // The flip side of the MAV verdict: two of poly-mem's three phases
    // (floating-point compute, branch noise) touch little or no data
    // memory, so a data-region signature cannot tell them apart — MAV
    // *regresses* error here, and the regression is pinned so a change
    // in either direction is surfaced.
    assert!(
        out.pgss_mav.mean_abs_err() > out.pgss.mean_abs_err(),
        "poly-mem: PGSS-MAV mean |err| {:.3}% no longer regresses \
         hashed-BBV {:.3}% on the control-flow-differentiated workload — \
         re-derive the headline verdict",
        100.0 * out.pgss_mav.mean_abs_err(),
        100.0 * out.pgss.mean_abs_err(),
    );
}

#[test]
fn coverage_and_budget_on_poly_regions() {
    let out = sweep("poly-regions", poly_regions);
    headline_mav_verdict("poly-regions", &out);
}

/// PR-8 headline, part 1: at equal CI coverage (all estimators sit in the
/// same binomial band, asserted inside [`sweep`]), neither two-phase
/// stratified sampling nor ranked-set sampling beats PGSS on detail
/// budget. Their up-front costs — a pilot per stratum, a probe per
/// interval — are fixed, while PGSS's stopping rule spends only what the
/// per-phase intervals demand.
fn headline_budget_verdict(name: &str, out: &SweepOutcome) {
    for (tech, tally) in [("TwoPhase", &out.two_phase), ("RankedSet", &out.ranked)] {
        assert!(
            tally.mean_detail() > out.pgss.mean_detail(),
            "{name}: {tech} mean detail {:.0} undercuts PGSS {:.0} — the \
             pinned verdict (PGSS cheapest at equal coverage) no longer holds; \
             re-derive the headline",
            tally.mean_detail(),
            out.pgss.mean_detail(),
        );
    }
}

/// PR-8 headline, part 2: on the memory-bound workload whose phases
/// differ by *data working set* (poly-regions), the MAV signature does
/// not regress estimator error — it strictly improves on the hashed
/// code signature, because the region vector separates the in-cache ring
/// from the thrashing ring more sharply than two similar chase-loop code
/// footprints separate each other.
fn headline_mav_verdict(name: &str, out: &SweepOutcome) {
    let (bbv, mav) = (out.pgss.mean_abs_err(), out.pgss_mav.mean_abs_err());
    assert!(
        mav < bbv,
        "{name}: PGSS-MAV mean |err| {:.4}% no longer improves on \
         hashed-BBV {:.4}% — re-derive the headline verdict",
        100.0 * mav,
        100.0 * bbv,
    );
}
