//! Server/library equivalence: a campaign grid run through `pgss-serve`
//! — any worker count, out-of-order completion, and one injected server
//! restart in the middle — must reassemble to the **byte-identical**
//! canonical campaign artifact the library's
//! [`pgss::CampaignReport::canonical_jsonl`] produces for the same grid.
//!
//! This is the subsystem's core promise: the daemon adds durability and
//! streaming without perturbing a single result bit.

mod util;

use pgss::{campaign, CampaignConfig};
use pgss_serve::{json, CampaignSpec, Client, Listen, ServeConfig, Server};

const SPEC_JSON: &str = r#"{
    "suite":[{"name":"164.gzip","scale":0.01},{"name":"183.equake","scale":0.01}],
    "techniques":[{"kind":"smarts","period_ops":100000},
                  {"kind":"pgss","ff_ops":100000,"spacing_ops":200000}],
    "stride":50000}"#;

fn library_artifact() -> String {
    let (_tmp, store) = util::temp_store("pgss-serve-equiv-lib");
    let value = json::parse(SPEC_JSON).unwrap();
    let spec = CampaignSpec::from_json(&value).unwrap();
    let stride = spec.stride;
    let mat = spec.materialize().unwrap();
    let jobs = mat.jobs();
    let config = CampaignConfig::with_workers(2);
    let report = campaign::run_checkpointed_with(&jobs, stride, Some(&store), &config).unwrap();
    report.canonical_jsonl()
}

fn wait_for_phase(addr: &pgss_serve::BoundAddr, job: &str, want: &str) -> pgss_serve::JobStatus {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(300);
    loop {
        let mut c = Client::connect(addr).unwrap();
        let status = c.status(job).unwrap();
        if status.phase == want {
            return status;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job never reached {want:?}; stuck at {status:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

#[test]
fn server_report_is_byte_identical_to_library_artifact() {
    let expected = library_artifact();

    let tmp = util::TempDir::new("pgss-serve-equiv-srv");
    let cfg = ServeConfig {
        workers: 3,
        ..ServeConfig::default()
    };

    // Phase 1: submit, let at least one cell land, then stop the server
    // mid-campaign (the durable store is the only thing that survives).
    let server = Server::start(tmp.path(), Listen::Tcp("127.0.0.1:0".into()), cfg.clone()).unwrap();
    let addr = server.addr().clone();
    let mut client = Client::connect(&addr).unwrap();
    let job = client.submit("equiv", SPEC_JSON).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(300);
    loop {
        let status = Client::connect(&addr).unwrap().status(&job).unwrap();
        if status.done >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no cell ever finished"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    server.stop();

    // Phase 2: a fresh server on the same store resumes the job and
    // finishes the remaining cells.
    let server = Server::start(tmp.path(), Listen::Tcp("127.0.0.1:0".into()), cfg).unwrap();
    let addr = server.addr().clone();
    wait_for_phase(&addr, &job, "done");

    let lines = Client::connect(&addr).unwrap().report(&job).unwrap();
    let mut actual = lines.join("\n");
    actual.push('\n');
    server.stop();

    assert_eq!(
        actual, expected,
        "server-assembled artifact diverged from the library's"
    );
}
