//! Cross-crate integration: every sampling technique drives the same
//! machine over the same workloads and produces sane, comparable results.

use pgss::{
    FullDetailed, OnlineSimPoint, PgssSim, SimPointOffline, Smarts, Technique, TurboSmarts,
};

/// A small but phase-rich workload shared by the tests in this file.
fn workload() -> pgss_workloads::Workload {
    pgss_workloads::wupwise(0.05)
}

fn all_techniques() -> Vec<Box<dyn Technique>> {
    vec![
        Box::new(Smarts {
            period_ops: 100_000,
            ..Smarts::default()
        }),
        Box::new(TurboSmarts {
            smarts: Smarts {
                period_ops: 100_000,
                ..Smarts::default()
            },
            ..TurboSmarts::default()
        }),
        Box::new(SimPointOffline {
            interval_ops: 200_000,
            k: 5,
            ..Default::default()
        }),
        Box::new(OnlineSimPoint {
            interval_ops: 200_000,
            ..OnlineSimPoint::default()
        }),
        Box::new(PgssSim {
            ff_ops: 100_000,
            spacing_ops: 200_000,
            ..PgssSim::default()
        }),
    ]
}

#[test]
fn every_technique_yields_a_finite_plausible_estimate() {
    let w = workload();
    let truth = FullDetailed::new().ground_truth(&w);
    let config = pgss_cpu::MachineConfig::default();
    for t in all_techniques() {
        let est = t.run_with(&w, &config);
        assert!(
            est.ipc.is_finite() && est.ipc > 0.0,
            "{}: ipc {}",
            t.name(),
            est.ipc
        );
        assert!(
            est.ipc <= f64::from(config.issue_width),
            "{}: ipc {} exceeds machine width",
            t.name(),
            est.ipc
        );
        assert!(est.samples > 0, "{}: no samples", t.name());
        // Nobody should be *wildly* wrong on this well-structured workload.
        let err = est.error_vs(&truth);
        assert!(
            err < 0.6,
            "{}: error {err:.3} vs truth {:.3}",
            t.name(),
            truth.ipc
        );
    }
}

#[test]
fn cost_ordering_matches_the_paper() {
    // The paper's Fig. 12 cost ordering: PGSS uses the least detailed
    // simulation, SMARTS roughly an order of magnitude more, SimPoint-style
    // one-large-sample-per-phase techniques the most.
    let w = workload();
    let smarts = Smarts {
        period_ops: 100_000,
        ..Smarts::default()
    }
    .run(&w);
    let pgss = PgssSim {
        ff_ops: 1_000_000,
        ..PgssSim::default()
    }
    .run(&w);
    let simpoint = SimPointOffline {
        interval_ops: 200_000,
        k: 5,
        ..Default::default()
    }
    .run(&w);
    let online = OnlineSimPoint {
        interval_ops: 200_000,
        ..OnlineSimPoint::default()
    }
    .run(&w);

    assert!(
        pgss.detailed_ops() * 4 <= smarts.detailed_ops(),
        "PGSS {} vs SMARTS {}",
        pgss.detailed_ops(),
        smarts.detailed_ops()
    );
    assert!(
        smarts.detailed_ops() < simpoint.detailed_ops(),
        "SMARTS {} vs SimPoint {}",
        smarts.detailed_ops(),
        simpoint.detailed_ops()
    );
    assert!(
        pgss.detailed_ops() * 20 <= simpoint.detailed_ops(),
        "PGSS {} vs SimPoint {}",
        pgss.detailed_ops(),
        simpoint.detailed_ops()
    );
    assert!(
        pgss.detailed_ops() * 10 <= online.detailed_ops(),
        "PGSS {} vs OnlineSimPoint {}",
        pgss.detailed_ops(),
        online.detailed_ops()
    );
}

#[test]
fn techniques_are_deterministic() {
    let w = workload();
    for t in all_techniques() {
        let a = t.run_with(&w, &pgss_cpu::MachineConfig::default());
        let b = t.run_with(&w, &pgss_cpu::MachineConfig::default());
        assert_eq!(a, b, "{} is not deterministic", t.name());
    }
}

#[test]
fn mode_accounting_is_exact_for_smarts() {
    let w = workload();
    let s = Smarts {
        unit_ops: 1_000,
        warm_ops: 3_000,
        period_ops: 100_000,
    };
    let est = s.run(&w);
    // Warming:measured ratio is exactly 3:1 modulo the final truncated
    // sample.
    assert!(est.mode_ops.detailed_measured >= est.samples * s.unit_ops);
    assert!(est.mode_ops.detailed_warming >= est.samples * s.warm_ops);
    assert!(est.mode_ops.detailed_warming <= (est.samples + 1) * s.warm_ops);
    // Everything else was functional fast-forwarding.
    assert!(est.mode_ops.functional > est.mode_ops.detailed());
    assert_eq!(est.mode_ops.fast_forward, 0);
}

#[test]
fn turbosmarts_bound_is_unsound_on_polymodal_workloads() {
    // The paper's critique: the Gaussian CI claims ±3% but the polymodal
    // population makes the claim unreliable. Verify TurboSMARTS consumes
    // fewer samples than the population yet (on this bimodal workload)
    // reports an estimate whose real error exceeds what a matching full
    // SMARTS run achieves.
    let w = workload();
    let truth = FullDetailed::new().ground_truth(&w);
    let smarts = Smarts {
        period_ops: 100_000,
        ..Smarts::default()
    };
    let full = smarts.run(&w);
    let turbo = TurboSmarts {
        smarts,
        ..TurboSmarts::default()
    }
    .run(&w);
    if turbo.samples < full.samples {
        // It stopped early: the claimed ±3% should be checked against
        // reality — on bimodal wupwise the error typically exceeds the
        // full-population error.
        assert!(
            turbo.error_vs(&truth) >= full.error_vs(&truth),
            "turbo err {:.4} vs full err {:.4}",
            turbo.error_vs(&truth),
            full.error_vs(&truth)
        );
    }
}

#[test]
fn pgss_adapts_samples_to_phase_stability() {
    // gzip mixes stable and unstable phases; PGSS must not spread samples
    // uniformly.
    let w = pgss_workloads::gzip(0.05);
    let est = PgssSim {
        ff_ops: 100_000,
        spacing_ops: 200_000,
        ..PgssSim::default()
    }
    .run(&w);
    let p = est.phases.expect("PGSS reports phases");
    let max = p.samples_per_phase.iter().max().copied().unwrap_or(0);
    let min = p.samples_per_phase.iter().min().copied().unwrap_or(0);
    assert!(
        max > min,
        "uniform samples per phase: {:?}",
        p.samples_per_phase
    );
}
