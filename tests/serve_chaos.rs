//! Deterministic chaos suite for the crash-only campaign server
//! (`cargo test --features fault-inject --test serve_chaos`).
//!
//! Every scenario here composes the process-global fault-injection
//! machinery ([`pgss::faults`] / [`pgss_ckpt::faults`]) with the
//! server's crash-only hardening — leases, drain, disk budgets, store
//! GC — and asserts the two invariants the design promises under any
//! failure: **no finished cell is ever recomputed, and no quarantined
//! or live record is ever deleted**. Scenarios are deterministic by
//! construction: stalls pick cells by identity, deadlines tick on an
//! injected [`ManualClock`], disk-full and torn-rename faults fire at
//! named operations, and the SIGKILL scenario asserts invariants that
//! must hold wherever the kill lands.

mod util;

use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pgss::campaign::RetryPolicy;
use pgss::faults::{self, CellStall, FaultPlan, StoreFaultPlan};
use pgss_ckpt::{is_budget_error, RecordError, RecordFault, Store};
use pgss_obs::ManualClock;
use pgss_serve::{json, BoundAddr, Client, ClientError, Listen, ServeConfig, Server};

/// Control env var for the re-exec'd daemon: `store\x1faddr_file\x1fworkers`.
const DAEMON_ENV: &str = "PGSS_SERVE_CHAOS_DAEMON";

/// One cell: finishes in well under a second.
const TINY_SPEC: &str = r#"{"suite":[{"name":"164.gzip","scale":0.003}],
    "techniques":[{"kind":"smarts","period_ops":50000}],"stride":50000}"#;

/// Two cells, so one can stall while the other finishes.
const PAIR_SPEC: &str = r#"{"suite":[
      {"name":"164.gzip","scale":0.003},{"name":"183.equake","scale":0.003}],
    "techniques":[{"kind":"smarts","period_ops":50000}],"stride":50000}"#;

/// Eight cells: enough that a drain always strands pending work.
const WIDE_SPEC: &str = r#"{"suite":[
      {"name":"164.gzip","scale":0.002},{"name":"183.equake","scale":0.002}],
    "techniques":[{"kind":"smarts","period_ops":50000},
                  {"kind":"turbo_smarts","period_ops":50000},
                  {"kind":"online_simpoint","interval_ops":100000},
                  {"kind":"pgss","ff_ops":50000,"spacing_ops":100000}],
    "stride":50000}"#;

/// Not a real test: the daemon half of the SIGKILL scenarios. No-ops
/// unless the parent set [`DAEMON_ENV`].
#[test]
fn daemon_entry() {
    let Ok(ctl) = std::env::var(DAEMON_ENV) else {
        return;
    };
    let mut parts = ctl.split('\x1f');
    let (store, addr_file, workers) = (
        parts.next().unwrap().to_string(),
        parts.next().unwrap().to_string(),
        parts.next().unwrap().parse::<usize>().unwrap(),
    );
    let cfg = ServeConfig {
        workers,
        ..ServeConfig::default()
    };
    let server = Server::start(&store, Listen::Tcp("127.0.0.1:0".into()), cfg).unwrap();
    let BoundAddr::Tcp(addr) = server.addr().clone() else {
        unreachable!("tcp listen yields a tcp addr")
    };
    let tmp = format!("{addr_file}.tmp");
    let mut f = std::fs::File::create(&tmp).unwrap();
    writeln!(f, "{addr}").unwrap();
    drop(f);
    std::fs::rename(&tmp, &addr_file).unwrap();
    server.wait();
}

fn spawn_daemon(store: &Path, addr_file: &Path, workers: usize) -> Child {
    let exe = std::env::current_exe().unwrap();
    Command::new(exe)
        .args(["daemon_entry", "--exact", "--nocapture"])
        .env(
            DAEMON_ENV,
            format!(
                "{}\x1f{}\x1f{workers}",
                store.display(),
                addr_file.display()
            ),
        )
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap()
}

fn await_daemon_addr(addr_file: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(s) = std::fs::read_to_string(addr_file) {
            let s = s.trim();
            if !s.is_empty() {
                return s.to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never published its address"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The server's `serve`-scope counters, by name.
fn serve_counters(addr: &BoundAddr) -> BTreeMap<String, u64> {
    let line = Client::connect(addr).unwrap().metrics().unwrap();
    let v = json::parse(&line).unwrap();
    let json::Value::Obj(counters) = v.get("counters").unwrap() else {
        panic!("metrics line without counters: {line}")
    };
    counters
        .iter()
        .map(|(k, v)| (k.clone(), v.as_u64().unwrap()))
        .collect()
}

fn wait_for<T>(what: &str, mut poll: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        if let Some(v) = poll() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// All record-file names currently in a store directory (quarantine
/// sidecar excluded): the "live set" a GC must never shrink.
fn record_names(store_dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(store_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".rec"))
        .collect();
    names.sort();
    names
}

/// A wedged worker's cell overruns its lease on the injected clock, the
/// watchdog reaps it into the failure ledger as `DeadlineExceeded`, the
/// campaign completes around it, and the zombie worker's late result is
/// discarded — never written, never double-counted.
#[test]
fn stalled_cell_is_reaped_into_the_ledger_as_deadline_exceeded() {
    let tmp = util::TempDir::new("pgss-chaos-lease");
    let clock = Arc::new(ManualClock::new());
    let _guard = faults::install(FaultPlan {
        cell_stalls: vec![CellStall {
            workload: String::new(), // whichever cell is claimed first
            technique: String::new(),
            times: 1,
        }],
        ..FaultPlan::default()
    });
    let cfg = ServeConfig {
        workers: 2,
        retry: RetryPolicy::none(),
        lease_deadline_ns: Some(1_000),
        clock: Arc::clone(&clock) as Arc<dyn pgss_obs::Clock>,
        ..ServeConfig::default()
    };
    let server = Server::start(tmp.path(), Listen::Tcp("127.0.0.1:0".into()), cfg).unwrap();
    let addr = server.addr().clone();

    let job = Client::connect(&addr)
        .unwrap()
        .submit("chaos", PAIR_SPEC)
        .unwrap();
    // The free worker finishes the unstalled cell; the other is wedged.
    wait_for("the unstalled cell to finish", || {
        (Client::connect(&addr).unwrap().status(&job).unwrap().done == 1).then_some(())
    });
    // Nothing is overdue until the injected clock says so.
    clock.advance(2_000);
    let done = wait_for("the watchdog to reap the stalled cell", || {
        let s = Client::connect(&addr).unwrap().status(&job).unwrap();
        (s.phase == "done").then_some(s)
    });
    assert_eq!((done.done, done.failed, done.total), (1, 1, 2));

    // The ledger names the lease, not a panic or an I/O error.
    let report = Client::connect(&addr).unwrap().report(&job).unwrap();
    assert!(
        report.iter().any(|l| l.contains("deadline exceeded")),
        "failure ledger must carry DeadlineExceeded: {report:?}"
    );
    let counters = serve_counters(&addr);
    assert_eq!(counters.get("serve.lease.reaped"), Some(&1));
    assert_eq!(counters.get("serve.lease.granted"), Some(&2));
    assert_eq!(counters.get("serve.cells.failed"), Some(&1));

    // Release the zombie: its late result must be discarded, not become
    // a second completion of an already-settled cell.
    faults::release_stalls();
    wait_for("the zombie worker's late result to be discarded", || {
        (serve_counters(&addr)
            .get("serve.lease.late_result")
            .copied()
            .unwrap_or(0)
            == 1)
            .then_some(())
    });
    let after = Client::connect(&addr).unwrap().status(&job).unwrap();
    assert_eq!((after.done, after.failed), (1, 1), "late result leaked in");
    server.stop();
}

/// `drain` stops admission and claiming, lets in-flight cells finish,
/// then exits 0; the cells it never claimed stay durable and a restarted
/// server completes them without recomputing the finished ones.
#[test]
fn drain_stops_admission_and_preserves_pending_cells_durably() {
    let tmp = util::TempDir::new("pgss-chaos-drain");
    {
        // Wedge both workers so "in flight at drain time" is exactly 2.
        let _guard = faults::install(FaultPlan {
            cell_stalls: vec![CellStall {
                workload: String::new(),
                technique: String::new(),
                times: 2,
            }],
            ..FaultPlan::default()
        });
        let cfg = ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        };
        let server = Server::start(tmp.path(), Listen::Tcp("127.0.0.1:0".into()), cfg).unwrap();
        let addr = server.addr().clone();
        let job = Client::connect(&addr)
            .unwrap()
            .submit("chaos", WIDE_SPEC)
            .unwrap();
        wait_for("both workers to claim a cell", || {
            (serve_counters(&addr)
                .get("serve.lease.granted")
                .copied()
                .unwrap_or(0)
                >= 2)
                .then_some(())
        });

        let inflight = Client::connect(&addr).unwrap().drain().unwrap();
        assert_eq!(inflight, 2, "both wedged cells are in flight");
        // Admission is closed (a plain rejection, not a retryable busy —
        // retrying against a draining server is pointless)...
        let refused = Client::connect(&addr).unwrap().submit("chaos", TINY_SPEC);
        assert!(
            matches!(&refused, Err(ClientError::Server(m)) if m.contains("draining")),
            "expected a draining rejection, got {refused:?}"
        );
        // ...but reads still work while the drain waits on the leases.
        let status = Client::connect(&addr).unwrap().status(&job).unwrap();
        assert_eq!((status.phase.as_str(), status.done), ("running", 0));
        assert_eq!(serve_counters(&addr).get("serve.drain.requested"), Some(&1));

        // Un-wedge the workers: their cells finish, the drain completes,
        // and the server exits on its own — no shutdown verb.
        faults::release_stalls();
        server.wait();
    }

    // The drained store resumes: 2 finished cells come back from disk,
    // the 6 never-claimed ones execute now, nothing is recomputed.
    let cfg = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let server = Server::start(tmp.path(), Listen::Tcp("127.0.0.1:0".into()), cfg).unwrap();
    let addr = server.addr().clone();
    let job = wait_for("the resumed job to finish", || {
        let counters = serve_counters(&addr);
        (counters.get("serve.jobs.completed").copied().unwrap_or(0) >= 1).then_some(counters)
    });
    assert_eq!(job.get("serve.jobs.resumed"), Some(&1));
    assert_eq!(job.get("serve.cells.resumed"), Some(&2));
    assert_eq!(job.get("serve.cells.executed"), Some(&6));
    server.stop();
}

/// Disk-full from a named put onward: the server degrades (counts the
/// failed writes, keeps serving the protocol) instead of crashing, and
/// recovers fully once space returns.
#[test]
fn disk_full_mid_campaign_degrades_without_crashing() {
    let tmp = util::TempDir::new("pgss-chaos-full");
    let server = {
        let _guard = faults::install(FaultPlan {
            store: StoreFaultPlan {
                full_after_puts: Some(0), // every put fails
                ..StoreFaultPlan::default()
            },
            ..FaultPlan::default()
        });
        let cfg = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        let server = Server::start(tmp.path(), Listen::Tcp("127.0.0.1:0".into()), cfg).unwrap();
        let addr = server.addr().clone();
        let job = Client::connect(&addr)
            .unwrap()
            .submit("chaos", TINY_SPEC)
            .unwrap();
        wait_for("the job to finish in memory despite the full disk", || {
            (Client::connect(&addr).unwrap().status(&job).unwrap().phase == "done").then_some(())
        });
        let counters = serve_counters(&addr);
        assert!(
            counters.get("serve.store.put_failed").copied().unwrap_or(0) >= 1,
            "failed durability writes must be counted: {counters:?}"
        );
        // The protocol plane is unaffected by the storage plane.
        Client::connect(&addr).unwrap().ping().unwrap();
        server
        // Guard drops here: the disk has "space" again.
    };
    let addr = server.addr().clone();
    let job = Client::connect(&addr)
        .unwrap()
        .submit("chaos", TINY_SPEC)
        .unwrap();
    wait_for("a post-recovery job to finish durably", || {
        (Client::connect(&addr).unwrap().status(&job).unwrap().phase == "done").then_some(())
    });
    server.stop();
    // This job's records actually landed.
    assert!(!record_names(tmp.path()).is_empty());
}

/// A torn rename (power loss between rename and fsync) reports success
/// but leaves a half-written destination; reads detect the tear, the
/// evidence quarantines, and a re-put heals the key. A dropped fsync is
/// observable in the injection log — the tests can tell the difference.
#[test]
fn torn_rename_surfaces_as_detectable_corruption_and_heals() {
    let (_dir, store) = util::temp_store("pgss-chaos-torn");
    let payload = b"phase signature".as_slice();
    {
        let _guard = faults::install(FaultPlan {
            store: StoreFaultPlan {
                torn_renames: vec![0],
                drop_fsyncs: true,
                ..StoreFaultPlan::default()
            },
            ..FaultPlan::default()
        });
        store.put(7, payload).unwrap(); // "succeeds" — the tear is silent
        assert!(matches!(
            store.get_checked(7),
            Err(RecordError::Invalid(RecordFault::TooShort))
        ));
        let moved = store.quarantine(7).unwrap().unwrap();
        assert!(moved.exists());
        store.put(7, payload).unwrap(); // put #1: not torn, heals the key
        assert_eq!(store.get_checked(7).unwrap(), payload);
        let log = faults::injection_log();
        assert!(log.iter().any(|l| l.contains("torn rename")), "{log:?}");
        assert!(log.iter().any(|l| l.contains("fsync: dropped")), "{log:?}");
    }
    // Quarantined evidence outlives the fault plan and the healing.
    assert!(store.quarantine_dir().join("0000000000000007.rec").exists());
}

/// A store at its byte budget admits new captures only after GC frees
/// reclaimable garbage; truth-cache entries are honoured as liveness
/// roots and quarantined evidence is never swept.
#[test]
fn budget_admits_new_captures_only_after_gc_frees_garbage() {
    let dir = util::TempDir::new("pgss-chaos-budget");
    let payload = vec![0xa5u8; 64]; // 100-byte record (36-byte header)
    let workload = pgss_workloads::gzip(0.003);
    let truth = pgss_bench::truth_key(&workload);

    let store = Store::open(dir.path()).unwrap().with_budget(350);
    // Quarantined evidence must not count against the budget.
    store.put(9, &payload).unwrap();
    store.quarantine(9).unwrap().unwrap();
    assert_eq!(store.usage_bytes().unwrap(), 0);

    store.put(truth, &payload).unwrap(); // a truth-cache entry: live
    store.put(1, &payload).unwrap(); // garbage
    store.put(2, &payload).unwrap(); // garbage
    let err = store.put(3, &payload).unwrap_err();
    assert!(is_budget_error(&err), "want a budget rejection, got {err}");

    let report = store.gc(|key| key == truth).unwrap();
    assert_eq!((report.live, report.swept), (1, 2));
    assert_eq!(report.bytes_freed, 200);

    store.put(3, &payload).unwrap(); // freed space admits the capture
    assert_eq!(store.get_checked(truth).unwrap(), payload);
    assert!(store.quarantine_dir().join("0000000000000009.rec").exists());
}

/// SIGKILL racing `Store::gc` in a real daemon process: wherever the
/// kill lands, no live or quarantined record is lost, the finished job
/// is never recomputed, and a clean sweep afterwards removes exactly
/// the garbage.
#[test]
fn kill_nine_mid_gc_loses_no_live_or_quarantined_record() {
    let tmp = util::TempDir::new("pgss-chaos-killgc");
    std::fs::create_dir_all(tmp.path()).unwrap();
    let store_dir = tmp.path().join("store");
    let addr_file = tmp.path().join("addr");

    // Run one job to completion, then stop the daemon cleanly.
    let mut child = spawn_daemon(&store_dir, &addr_file, 1);
    let addr = await_daemon_addr(&addr_file);
    let job = Client::connect_tcp(&addr)
        .unwrap()
        .submit("chaos", TINY_SPEC)
        .unwrap();
    wait_for("the daemon's job to finish", || {
        (Client::connect_tcp(&addr)
            .unwrap()
            .status(&job)
            .unwrap()
            .phase
            == "done")
            .then_some(())
    });
    Client::connect_tcp(&addr).unwrap().shutdown().unwrap();
    child.wait().unwrap();

    // Seed the dormant store with garbage and quarantined evidence.
    let live_names = record_names(&store_dir);
    assert!(!live_names.is_empty(), "a finished job leaves records");
    let quarantine_file: PathBuf;
    {
        let store = Store::open(&store_dir).unwrap();
        for key in [0xdead_0001u64, 0xdead_0002, 0xdead_0003] {
            store.put(key, b"reclaimable garbage").unwrap();
        }
        store.put(0x0bad, b"suspect evidence").unwrap();
        quarantine_file = store.quarantine(0x0bad).unwrap().unwrap();
    }

    // Restart, fire a raw `gc`, and SIGKILL the daemon into the sweep.
    std::fs::remove_file(&addr_file).unwrap();
    let mut child = spawn_daemon(&store_dir, &addr_file, 1);
    let addr = await_daemon_addr(&addr_file);
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(b"{\"op\":\"gc\"}\n").unwrap();
    raw.flush().unwrap();
    std::thread::sleep(Duration::from_millis(5));
    child.kill().unwrap(); // SIGKILL: mid-mark or mid-sweep, no goodbyes
    child.wait().unwrap();

    // Wherever the kill landed: quarantine intact, live records intact.
    assert!(quarantine_file.exists(), "SIGKILL'd gc deleted quarantine");
    let after_kill = record_names(&store_dir);
    for name in &live_names {
        assert!(after_kill.contains(name), "gc lost live record {name}");
    }

    // A third daemon resumes the (terminal) job without recomputing it,
    // serves its report, and a clean gc removes exactly the garbage.
    std::fs::remove_file(&addr_file).unwrap();
    let mut child = spawn_daemon(&store_dir, &addr_file, 1);
    let addr = await_daemon_addr(&addr_file);
    let status = Client::connect_tcp(&addr).unwrap().status(&job).unwrap();
    assert_eq!(status.phase, "done");
    let report = Client::connect_tcp(&addr).unwrap().report(&job).unwrap();
    assert!(report[0].contains("\"kind\":\"campaign\""));

    let outcome = Client::connect_tcp(&addr).unwrap().gc().unwrap();
    assert!(outcome.swept <= 3, "only garbage is sweepable: {outcome:?}");

    let counters = {
        let line = Client::connect_tcp(&addr).unwrap().metrics().unwrap();
        json::parse(&line).unwrap()
    };
    assert_eq!(
        counters
            .get("counters")
            .and_then(|c| c.get("serve.cells.executed"))
            .and_then(json::Value::as_u64)
            .unwrap_or(0),
        0,
        "a finished cell was recomputed after the gc chaos"
    );
    Client::connect_tcp(&addr).unwrap().shutdown().unwrap();
    child.wait().unwrap();

    let final_names = record_names(&store_dir);
    for name in &live_names {
        assert!(final_names.contains(name), "clean gc lost {name}");
    }
    for garbage in ["00000000dead0001", "00000000dead0002", "00000000dead0003"] {
        assert!(
            !final_names.contains(&format!("{garbage}.rec")),
            "clean gc left garbage {garbage}"
        );
    }
    assert!(quarantine_file.exists(), "clean gc deleted quarantine");
}
