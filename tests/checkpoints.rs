//! Checkpoint subsystem integration: acceleration must be invisible.
//!
//! Every technique consuming a checkpoint ladder must produce the *same
//! bits* — estimate and trace — as its unaccelerated run, while executing
//! strictly fewer instructions; the on-disk store must round-trip a
//! campaign and shrug off injected corruption; and the serialized
//! snapshot format is pinned so accidental layout changes are caught.

mod util;

use std::sync::Arc;

use pgss::ckpt::{encode_machine_snapshot, CheckpointKey};
use pgss::{
    campaign, AdaptivePgss, CheckpointLadder, LadderSpec, OnlineSimPoint, PgssSim, SimContext,
    SimPointOffline, Smarts, Technique, Track, TurboSmarts, SNAPSHOT_FORMAT_VERSION,
};
use pgss_ckpt::{fnv1a64, STORE_FORMAT_VERSION};
use pgss_cpu::MachineConfig;
use pgss_workloads::Workload;

fn workload() -> Workload {
    pgss_workloads::wupwise(0.02)
}

fn techniques() -> Vec<Box<dyn Technique + Sync>> {
    let smarts = Smarts {
        period_ops: 100_000,
        ..Smarts::default()
    };
    vec![
        Box::new(smarts),
        Box::new(TurboSmarts {
            smarts,
            ..TurboSmarts::default()
        }),
        Box::new(SimPointOffline {
            interval_ops: 200_000,
            k: 5,
            ..Default::default()
        }),
        Box::new(OnlineSimPoint {
            interval_ops: 200_000,
            ..OnlineSimPoint::default()
        }),
        Box::new(PgssSim {
            ff_ops: 100_000,
            spacing_ops: 200_000,
            ..PgssSim::default()
        }),
        Box::new(AdaptivePgss {
            base: PgssSim {
                ff_ops: 100_000,
                spacing_ops: 200_000,
                ..PgssSim::default()
            },
            ..AdaptivePgss::default()
        }),
    ]
}

/// A ladder whose spec is the technique's declared track union — exactly
/// what the campaign derives.
fn ladder_for(
    t: &dyn Technique,
    w: &Workload,
    cfg: &MachineConfig,
    stride: u64,
) -> Arc<CheckpointLadder> {
    let mut hashed_seeds: Vec<u64> = Vec::new();
    let mut with_full = false;
    for track in t.tracks() {
        match track {
            Track::Hashed(s) if !hashed_seeds.contains(&s) => hashed_seeds.push(s),
            Track::Full => with_full = true,
            _ => {}
        }
    }
    Arc::new(CheckpointLadder::capture(
        w,
        cfg,
        &LadderSpec {
            stride,
            hashed_seeds,
            with_full,
        },
    ))
}

#[test]
fn every_technique_is_bit_exact_under_checkpoint_acceleration() {
    let w = workload();
    let cfg = MachineConfig::default();
    for t in techniques() {
        let plain = t.run_traced(&w, &cfg);
        let ladder = ladder_for(t.as_ref(), &w, &cfg, 500_000);
        let ctx = SimContext::with_ladder(Arc::clone(&ladder));
        let fast = t.run_traced_ctx(&w, &cfg, &ctx);
        assert_eq!(
            plain,
            fast,
            "{}: checkpoint acceleration changed the result",
            t.name()
        );
        let report = ladder.report();
        assert!(report.jumps > 0, "{}: never jumped", t.name());
        assert!(
            report.skipped_ops > 0,
            "{}: jumped without skipping work",
            t.name()
        );
    }
}

#[test]
fn checkpointed_campaign_round_trips_through_the_store() {
    let (tmp, store) = util::temp_store("pgss-ckpt-campaign");
    let dir = tmp.path();

    let workloads = vec![pgss_workloads::gzip(0.01), pgss_workloads::equake(0.01)];
    let smarts = Smarts {
        period_ops: 100_000,
        ..Smarts::default()
    };
    let pgss = PgssSim {
        ff_ops: 100_000,
        spacing_ops: 200_000,
        ..PgssSim::default()
    };
    let techs: Vec<&(dyn Technique + Sync)> = vec![&smarts, &pgss];
    let jobs = campaign::grid(&workloads, &techs, MachineConfig::default());

    let plain = campaign::run(&jobs);
    assert!(plain.is_complete());
    let first = campaign::run_checkpointed(&jobs, 50_000, Some(&store)).unwrap();
    assert_eq!(plain.cells, first.cells);
    assert!(first.is_complete());
    assert!(
        first.checkpoint_faults.is_empty(),
        "{:?}",
        first.checkpoint_faults
    );
    assert!(first.ladder.capture_ops > 0, "first run must capture");
    assert!(first.ladder.total_executed() < first.ladder.baseline_ops());

    // Second run: ladders come back from disk, so nothing is recaptured
    // and the cells are still identical.
    let second = campaign::run_checkpointed(&jobs, 50_000, Some(&store)).unwrap();
    assert_eq!(plain.cells, second.cells);
    assert_eq!(second.ladder.capture_ops, 0, "second run must load");
    assert!(second.checkpoint_faults.is_empty());

    // Injected corruption: truncate every record, then run again. The
    // store serves nothing, every truncated record is quarantined (and
    // ledgered), capture kicks in, results are unchanged.
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if !path.is_file() {
            continue;
        }
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    }
    let third = campaign::run_checkpointed(&jobs, 50_000, Some(&store)).unwrap();
    assert_eq!(plain.cells, third.cells);
    assert!(third.ladder.capture_ops > 0, "corrupt store must recapture");
    assert!(
        !third.checkpoint_faults.is_empty(),
        "wholesale corruption must be ledgered"
    );
}

#[test]
fn corrupt_rung_is_quarantined_recaptured_and_bit_exact() {
    let (tmp, store) = util::temp_store("pgss-ckpt-quarantine");
    let dir = tmp.path();

    let workloads = vec![pgss_workloads::gzip(0.01)];
    let smarts = Smarts {
        period_ops: 100_000,
        ..Smarts::default()
    };
    let pgss = PgssSim {
        ff_ops: 100_000,
        spacing_ops: 200_000,
        ..PgssSim::default()
    };
    let techs: Vec<&(dyn Technique + Sync)> = vec![&smarts, &pgss];
    let jobs = campaign::grid(&workloads, &techs, MachineConfig::default());

    let plain = campaign::run(&jobs);
    let first = campaign::run_checkpointed(&jobs, 50_000, Some(&store)).unwrap();
    assert_eq!(plain.cells, first.cells);

    // Corrupt exactly one ladder rung: rung records carry a machine
    // snapshot (kilobytes) while the meta record is tens of bytes, so the
    // largest record file is a rung. Flip one payload byte.
    let victim = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_file())
        .max_by_key(|p| std::fs::metadata(p).unwrap().len())
        .unwrap();
    let mut bytes = std::fs::read(&victim).unwrap();
    *bytes.last_mut().unwrap() ^= 0x01;
    std::fs::write(&victim, &bytes).unwrap();
    let victim_name = victim.file_name().unwrap().to_str().unwrap().to_string();
    let victim_key = victim_name.trim_end_matches(".rec").to_string();

    // The healed run is bit-identical to the unaccelerated campaign, and
    // the report names the quarantined record.
    let healed = campaign::run_checkpointed(&jobs, 50_000, Some(&store)).unwrap();
    assert_eq!(
        plain.cells, healed.cells,
        "healing must not change any cell"
    );
    assert!(healed.is_complete());
    assert!(
        healed
            .checkpoint_faults
            .iter()
            .any(|f| f.contains("quarantined") && f.contains(&victim_key)),
        "report must name the quarantined record {victim_key}: {:?}",
        healed.checkpoint_faults
    );
    // The corrupt record is preserved (not deleted) in the sidecar, and
    // a fresh, healthy record took its place in the store.
    assert!(dir.join("quarantine").join(&victim_name).is_file());
    assert!(victim.is_file(), "recapture must write the rung back");

    // Next run loads clean: no recapture, no faults.
    let clean = campaign::run_checkpointed(&jobs, 50_000, Some(&store)).unwrap();
    assert_eq!(plain.cells, clean.cells);
    assert_eq!(clean.ladder.capture_ops, 0, "store must be healed");
    assert!(
        clean.checkpoint_faults.is_empty(),
        "{:?}",
        clean.checkpoint_faults
    );
}

#[test]
fn snapshot_format_is_pinned() {
    // Bump these constants deliberately when the layout changes; stale
    // records then read as absent instead of decoding wrongly.
    assert_eq!(SNAPSHOT_FORMAT_VERSION, 1);
    assert_eq!(STORE_FORMAT_VERSION, 1);

    // The serialized bytes of a deterministic machine state are pinned:
    // any accidental encoder change shows up here before it corrupts a
    // store in the field.
    let w = pgss_workloads::gzip(0.01);
    let mut machine = w.machine();
    let mut sink = pgss_cpu::NoopSink;
    machine.run_with(pgss_cpu::Mode::Functional, 10_000, &mut sink);
    let bytes = encode_machine_snapshot(&machine.snapshot());
    assert_eq!(
        fnv1a64(&bytes),
        0x82b2_8722_751c_56ca,
        "machine snapshot encoding changed; bump SNAPSHOT_FORMAT_VERSION"
    );

    // Key hashing is stable too (same inputs, same record file).
    let key = CheckpointKey::new(&w, &MachineConfig::default(), 40_000);
    assert_eq!(
        key.hash(),
        CheckpointKey::new(&w, &MachineConfig::default(), 40_000).hash()
    );
}
