//! Checkpoint subsystem integration: acceleration must be invisible.
//!
//! Every technique consuming a checkpoint ladder must produce the *same
//! bits* — estimate and trace — as its unaccelerated run, while executing
//! strictly fewer instructions; the on-disk store must round-trip a
//! campaign and shrug off injected corruption; and the serialized
//! snapshot format is pinned so accidental layout changes are caught.

use std::sync::Arc;

use pgss::ckpt::{encode_machine_snapshot, CheckpointKey};
use pgss::{
    campaign, AdaptivePgss, CheckpointLadder, LadderSpec, OnlineSimPoint, PgssSim, SimContext,
    SimPointOffline, Smarts, Technique, Track, TurboSmarts, SNAPSHOT_FORMAT_VERSION,
};
use pgss_ckpt::{fnv1a64, Store, STORE_FORMAT_VERSION};
use pgss_cpu::MachineConfig;
use pgss_workloads::Workload;

fn workload() -> Workload {
    pgss_workloads::wupwise(0.02)
}

fn techniques() -> Vec<Box<dyn Technique + Sync>> {
    let smarts = Smarts {
        period_ops: 100_000,
        ..Smarts::default()
    };
    vec![
        Box::new(smarts),
        Box::new(TurboSmarts {
            smarts,
            ..TurboSmarts::default()
        }),
        Box::new(SimPointOffline {
            interval_ops: 200_000,
            k: 5,
            ..Default::default()
        }),
        Box::new(OnlineSimPoint {
            interval_ops: 200_000,
            ..OnlineSimPoint::default()
        }),
        Box::new(PgssSim {
            ff_ops: 100_000,
            spacing_ops: 200_000,
            ..PgssSim::default()
        }),
        Box::new(AdaptivePgss {
            base: PgssSim {
                ff_ops: 100_000,
                spacing_ops: 200_000,
                ..PgssSim::default()
            },
            ..AdaptivePgss::default()
        }),
    ]
}

/// A ladder whose spec is the technique's declared track union — exactly
/// what the campaign derives.
fn ladder_for(
    t: &dyn Technique,
    w: &Workload,
    cfg: &MachineConfig,
    stride: u64,
) -> Arc<CheckpointLadder> {
    let mut hashed_seeds: Vec<u64> = Vec::new();
    let mut with_full = false;
    for track in t.tracks() {
        match track {
            Track::Hashed(s) if !hashed_seeds.contains(&s) => hashed_seeds.push(s),
            Track::Full => with_full = true,
            _ => {}
        }
    }
    Arc::new(CheckpointLadder::capture(
        w,
        cfg,
        &LadderSpec {
            stride,
            hashed_seeds,
            with_full,
        },
    ))
}

#[test]
fn every_technique_is_bit_exact_under_checkpoint_acceleration() {
    let w = workload();
    let cfg = MachineConfig::default();
    for t in techniques() {
        let plain = t.run_traced(&w, &cfg);
        let ladder = ladder_for(t.as_ref(), &w, &cfg, 500_000);
        let ctx = SimContext::with_ladder(Arc::clone(&ladder));
        let fast = t.run_traced_ctx(&w, &cfg, &ctx);
        assert_eq!(
            plain,
            fast,
            "{}: checkpoint acceleration changed the result",
            t.name()
        );
        let report = ladder.report();
        assert!(report.jumps > 0, "{}: never jumped", t.name());
        assert!(
            report.skipped_ops > 0,
            "{}: jumped without skipping work",
            t.name()
        );
    }
}

#[test]
fn checkpointed_campaign_round_trips_through_the_store() {
    let dir = std::env::temp_dir().join(format!("pgss-ckpt-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();

    let workloads = vec![pgss_workloads::gzip(0.01), pgss_workloads::equake(0.01)];
    let smarts = Smarts {
        period_ops: 100_000,
        ..Smarts::default()
    };
    let pgss = PgssSim {
        ff_ops: 100_000,
        spacing_ops: 200_000,
        ..PgssSim::default()
    };
    let techs: Vec<&(dyn Technique + Sync)> = vec![&smarts, &pgss];
    let jobs = campaign::grid(&workloads, &techs, MachineConfig::default());

    let plain = campaign::run(&jobs);
    let (first, first_report) = campaign::run_checkpointed(&jobs, 50_000, Some(&store));
    assert_eq!(plain, first);
    assert!(first_report.capture_ops > 0, "first run must capture");
    assert!(first_report.total_executed() < first_report.baseline_ops());

    // Second run: ladders come back from disk, so nothing is recaptured
    // and the cells are still identical.
    let (second, second_report) = campaign::run_checkpointed(&jobs, 50_000, Some(&store));
    assert_eq!(plain, second);
    assert_eq!(second_report.capture_ops, 0, "second run must load");

    // Injected corruption: truncate every record, then run again. The
    // store serves nothing, capture kicks in, results are unchanged.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    }
    let (third, third_report) = campaign::run_checkpointed(&jobs, 50_000, Some(&store));
    assert_eq!(plain, third);
    assert!(third_report.capture_ops > 0, "corrupt store must recapture");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_format_is_pinned() {
    // Bump these constants deliberately when the layout changes; stale
    // records then read as absent instead of decoding wrongly.
    assert_eq!(SNAPSHOT_FORMAT_VERSION, 1);
    assert_eq!(STORE_FORMAT_VERSION, 1);

    // The serialized bytes of a deterministic machine state are pinned:
    // any accidental encoder change shows up here before it corrupts a
    // store in the field.
    let w = pgss_workloads::gzip(0.01);
    let mut machine = w.machine();
    let mut sink = pgss_cpu::NoopSink;
    machine.run_with(pgss_cpu::Mode::Functional, 10_000, &mut sink);
    let bytes = encode_machine_snapshot(&machine.snapshot());
    assert_eq!(
        fnv1a64(&bytes),
        0x82b2_8722_751c_56ca,
        "machine snapshot encoding changed; bump SNAPSHOT_FORMAT_VERSION"
    );

    // Key hashing is stable too (same inputs, same record file).
    let key = CheckpointKey::new(&w, &MachineConfig::default(), 40_000);
    assert_eq!(
        key.hash(),
        CheckpointKey::new(&w, &MachineConfig::default(), 40_000).hash()
    );
}
