//! Property/fuzz coverage for the campaign server's wire protocol.
//!
//! Two layers, both driven by the deterministic [`DetRng`] (so a failure
//! reproduces from its seed alone, no corpus files):
//!
//! 1. **Parser-level**: arbitrary byte soup, truncated frames, deeply
//!    nested and duplicate-key JSON pushed through
//!    [`pgss_serve::json::parse`] must return a typed [`ParseError`] or a
//!    [`Value`] — never panic, never hang.
//! 2. **Server-level**: the same hostile inputs over a real socket, plus
//!    oversized lines and a slow-loris half-request, must each get a
//!    typed error line (or a clean close) while the server keeps serving
//!    well-formed clients.

mod util;

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use pgss_serve::{json, Client, Listen, ServeConfig, Server};
use pgss_stats::DetRng;

/// Every input must produce `Ok` or a typed error; a panic (caught here
/// so one bad input doesn't hide the rest) or a hang fails the test.
fn parses_without_panicking(input: &str) {
    let outcome = std::panic::catch_unwind(|| json::parse(input).map(|_| ()));
    match outcome {
        Ok(Ok(())) | Ok(Err(_)) => {}
        Err(_) => panic!("json::parse panicked on {input:?}"),
    }
}

#[test]
fn arbitrary_bytes_never_panic_the_parser() {
    let mut rng = DetRng::seed_from_u64(0x5eed_f00d);
    for _ in 0..2_000 {
        let len = rng.range_usize(64);
        // Raw bytes, lossily decoded the way a socket line would be.
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        parses_without_panicking(&String::from_utf8_lossy(&bytes));
    }
}

#[test]
fn truncated_frames_yield_typed_errors() {
    let whole = r#"{"op":"submit","tenant":"fuzz","spec":{"suite":[{"name":"164.gzip",
        "scale":0.01}],"techniques":[{"kind":"smarts","period_ops":50000}]},
        "n":-1.5e-3,"t":true,"u":null,"s":"A\n\" "}"#;
    // Every prefix of a valid request is either valid or a typed error.
    for cut in 0..whole.len() {
        if whole.is_char_boundary(cut) {
            parses_without_panicking(&whole[..cut]);
        }
    }
    assert!(json::parse(whole).is_ok(), "the uncut frame must parse");
}

#[test]
fn deep_nesting_is_bounded_not_a_stack_overflow() {
    // 1000 levels is far past MAX_DEPTH: must be a typed error.
    for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
        let deep = format!("{}1{}", open.repeat(1_000), close.repeat(1_000));
        assert!(
            json::parse(&deep).is_err(),
            "unbounded nesting must be rejected"
        );
    }
    // ...while reasonable nesting (under the documented cap) still works.
    let shallow = format!("{}1{}", "[".repeat(32), "]".repeat(32));
    assert!(json::parse(&shallow).is_ok());
}

#[test]
fn duplicate_keys_are_deterministic_last_wins() {
    let v = json::parse(r#"{"a":1,"a":2,"b":{"c":3,"c":4},"a":5}"#).unwrap();
    assert_eq!(v.get("a").and_then(json::Value::as_u64), Some(5));
    assert_eq!(
        v.get("b")
            .and_then(|b| b.get("c"))
            .and_then(json::Value::as_u64),
        Some(4)
    );
}

#[test]
fn mutated_real_requests_never_panic_the_parser() {
    let seeds = [
        "{\"op\":\"ping\"}",
        "{\"op\":\"status\",\"job\":\"0123456789abcdef\"}",
        "{\"op\":\"metrics\"}",
        "{\"op\":\"gc\"}",
    ];
    let mut rng = DetRng::seed_from_u64(0xc4a0_5bad);
    for round in 0..2_000 {
        let mut bytes = seeds[round % seeds.len()].as_bytes().to_vec();
        for _ in 0..1 + rng.range_usize(4) {
            let at = rng.range_usize(bytes.len());
            match rng.range_u64(3) {
                0 => bytes[at] = rng.next_u64() as u8,       // flip
                1 => drop(bytes.remove(at)),                 // delete
                _ => bytes.insert(at, rng.next_u64() as u8), // insert
            }
        }
        parses_without_panicking(&String::from_utf8_lossy(&bytes));
    }
}

/// Raw socket helper: send `payload` (no framing added) and collect
/// whatever the server answers until it closes or goes quiet.
fn raw_exchange(addr: &str, payload: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(payload).unwrap();
    s.flush().unwrap();
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(_) => break, // quiet is fine; the assertions text-match
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[test]
fn hostile_connections_get_typed_errors_and_the_server_survives() {
    let tmp = util::TempDir::new("pgss-fuzz-serve");
    let cfg = ServeConfig {
        workers: 1,
        max_line_bytes: 256,
        read_timeout: Some(Duration::from_millis(300)),
        ..ServeConfig::default()
    };
    let server = Server::start(tmp.path(), Listen::Tcp("127.0.0.1:0".into()), cfg).unwrap();
    let pgss_serve::BoundAddr::Tcp(tcp) = server.addr().clone() else {
        unreachable!("tcp listen yields a tcp addr")
    };
    let tcp = tcp.to_string();

    // Garbage bytes: a typed protocol error, not a hang or a crash.
    let answer = raw_exchange(&tcp, b"\x00\xff\x17 not json at all\n");
    assert!(answer.contains("\"ok\":false"), "garbage got: {answer:?}");

    // An oversized line is refused by name and the connection closed.
    let oversized = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}\n", "x".repeat(512));
    let answer = raw_exchange(&tcp, oversized.as_bytes());
    assert!(
        answer.contains("exceeds") && answer.contains("\"ok\":false"),
        "oversized got: {answer:?}"
    );

    // Slow loris: a half request and silence. The read deadline closes
    // the connection with a typed error instead of parking a thread.
    let answer = raw_exchange(&tcp, b"{\"op\":\"pi");
    assert!(
        answer.contains("deadline") && answer.contains("\"ok\":false"),
        "slow loris got: {answer:?}"
    );

    // A truncated frame that *does* end in a newline parses as JSON and
    // fails as a request — still typed, still no panic.
    let answer = raw_exchange(&tcp, b"{\"op\":\"submit\"\n");
    assert!(answer.contains("\"ok\":false"), "truncated got: {answer:?}");

    // Deterministic byte soup against the live server.
    let mut rng = DetRng::seed_from_u64(0x0dd_ba11);
    for _ in 0..32 {
        let len = 1 + rng.range_usize(96);
        let bytes: Vec<u8> = (0..len)
            .map(|_| rng.next_u64() as u8)
            .chain([b'\n'])
            .collect();
        let _ = raw_exchange(&tcp, &bytes); // any answer, as long as...
    }

    // ...a well-formed client still gets served afterwards.
    let mut c = Client::connect(server.addr()).unwrap();
    c.ping().unwrap();
    let counters = {
        let line = c.metrics().unwrap();
        json::parse(&line).unwrap()
    };
    let count = |k: &str| {
        counters
            .get("counters")
            .and_then(|c| c.get(k))
            .and_then(json::Value::as_u64)
            .unwrap_or(0)
    };
    assert!(count("serve.protocol.oversized") >= 1);
    assert!(count("serve.conns.timed_out") >= 1);
    server.stop();
}
