//! Differential validation of the decoded superblock core.
//!
//! `pgss_cpu::Machine` executes a pre-decoded IR through a superblock
//! dispatch loop with inlined retire/BBV fast paths;
//! `pgss_cpu::ReferenceMachine` is the retained per-op interpreter it
//! replaced, kept verbatim as the semantic oracle. These tests drive both
//! cores over seeded *random* `pgss-workloads` programs — not
//! hand-written kernels — and require bit-identical results in every
//! observable dimension: run results (ops, cycles, halted), retired-pc
//! streams, architectural snapshots (registers, float registers by bit
//! pattern, memory, mode counters), microarchitectural snapshots (cache
//! tag arrays, predictor tables), hashed- and full-BBV digests, and
//! structured faults.
//!
//! Any divergence — a reordered retire, a cycle of timing drift, one
//! cache way rotated differently by an MRU fast path — fails these tests.

use pgss_bbv::{BbvHash, FullBbvTracker, HashedBbvTracker};
use pgss_cpu::{MachineConfig, Mode, RetireSink, RunResult};
use pgss_stats::DetRng;
use pgss_workloads::{Kernel, Workload, WorkloadBuilder};

/// A retire sink that fingerprints the full architectural stream: every
/// retired pc (order-sensitive checksum) and every taken branch with its
/// op count.
#[derive(Default, PartialEq, Eq, Debug)]
struct StreamDigest {
    retired: u64,
    pc_checksum: u64,
    taken: u64,
    taken_checksum: u64,
}

impl RetireSink for StreamDigest {
    fn retire(&mut self, pc: u32) {
        self.retired += 1;
        self.pc_checksum = self
            .pc_checksum
            .wrapping_mul(0x100000001b3)
            .wrapping_add(u64::from(pc));
    }
    fn taken_branch(&mut self, pc: u32, ops: u64) {
        self.taken += 1;
        self.taken_checksum = self
            .taken_checksum
            .wrapping_mul(0x100000001b3)
            .wrapping_add(u64::from(pc) ^ ops.rotate_left(32));
    }
}

const ALL_MODES: [Mode; 4] = [
    Mode::FastForward,
    Mode::Functional,
    Mode::DetailedWarming,
    Mode::DetailedMeasured,
];

/// Generates a random workload: 2–4 segments with randomized kernel
/// parameters and a randomized multi-entry schedule. Working sets are
/// kept small enough that the test suite stays fast but large enough to
/// produce real cache misses against the small test config.
fn random_workload(seed: u64) -> Workload {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut b = WorkloadBuilder::new(format!("random-{seed}"), seed ^ 0x9e3779b97f4a7c15);
    let num_segments = 2 + rng.range_usize(3);
    let mut segments = Vec::new();
    for _ in 0..num_segments {
        let kernel = match rng.range_usize(6) {
            0 => Kernel::Stream {
                region_words: 1 << (8 + rng.range_usize(6)),
                stride_words: 1 + rng.range_usize(9),
                compute_per_load: rng.range_u64(6) as u32,
            },
            1 => Kernel::Chase {
                ring_words: 1 << (6 + rng.range_usize(8)),
                chains: 1 + rng.range_u64(4) as u32,
                compute_per_step: rng.range_u64(5) as u32,
            },
            2 => Kernel::ComputeInt {
                chains: 1 + rng.range_u64(6) as u32,
                ops_per_chain: 1 + rng.range_u64(6) as u32,
            },
            3 => Kernel::ComputeFp {
                chains: 1 + rng.range_u64(4) as u32,
                ops_per_chain: 1 + rng.range_u64(4) as u32,
            },
            4 => Kernel::Branchy {
                table_words: 1 << (6 + rng.range_usize(5)),
                bias: rng.range_u64(256) as u8,
                work_per_side: rng.range_u64(6) as u32,
            },
            _ => Kernel::StoreStream {
                region_words: 1 << (8 + rng.range_usize(5)),
                stride_words: 1 + rng.range_usize(5),
            },
        };
        segments.push(b.add_segment(kernel));
    }
    let entries = 2 + rng.range_usize(5);
    for _ in 0..entries {
        let seg = segments[rng.range_usize(segments.len())];
        b.run(seg, 5_000 + rng.range_u64(40_000));
    }
    b.finish()
}

/// A small machine configuration so random working sets actually miss.
fn test_config() -> MachineConfig {
    MachineConfig {
        memory_words: 1 << 14,
        ..MachineConfig::default()
    }
}

/// Runs both cores through the same `(mode, max_ops)` schedule, asserting
/// identical run results, stream digests, and snapshots at every step.
fn assert_lockstep(w: &Workload, schedule: &[(Mode, u64)]) {
    let mut decoded = w.machine_with(test_config());
    let mut reference = w.reference_machine_with(test_config());
    let mut d_sink = StreamDigest::default();
    let mut r_sink = StreamDigest::default();
    for (step, &(mode, max_ops)) in schedule.iter().enumerate() {
        let d: RunResult = decoded.run_with(mode, max_ops, &mut d_sink);
        let r: RunResult = reference.run_with(mode, max_ops, &mut r_sink);
        assert_eq!(
            d,
            r,
            "{}: run results diverged at step {step} ({mode}, {max_ops} ops)",
            w.name()
        );
        assert_eq!(
            d_sink,
            r_sink,
            "{}: retired streams diverged at step {step} ({mode})",
            w.name()
        );
        assert_eq!(
            decoded.snapshot(),
            reference.snapshot(),
            "{}: machine state diverged at step {step} ({mode})",
            w.name()
        );
        if d.halted {
            break;
        }
    }
}

/// Ten seeded random programs, each run to completion in each of the four
/// modes independently: every observable matches the reference.
#[test]
fn random_programs_match_reference_in_every_mode() {
    for seed in 0..10 {
        let w = random_workload(seed);
        for mode in ALL_MODES {
            assert_lockstep(&w, &[(mode, u64::MAX)]);
        }
    }
}

/// Random programs under randomized mixed-mode schedules (the sampling
/// pattern real techniques drive): mode switches at arbitrary, often
/// mid-superblock boundaries must not perturb anything.
#[test]
fn random_programs_match_reference_under_mixed_mode_schedules() {
    for seed in 10..18 {
        let w = random_workload(seed);
        let mut rng = DetRng::seed_from_u64(seed * 7 + 1);
        let mut schedule = Vec::new();
        for _ in 0..400 {
            let mode = ALL_MODES[rng.range_usize(ALL_MODES.len())];
            // Tiny chunks (down to 1 op) force superblock re-entry and
            // exercise the max_ops truncation path inside straight runs.
            schedule.push((mode, 1 + rng.range_u64(3_000)));
        }
        schedule.push((Mode::Functional, u64::MAX));
        assert_lockstep(&w, &schedule);
    }
}

/// Hashed-BBV digests — the phase-detection signal the whole technique
/// stack keys on — are bit-identical between the cores, including the
/// in-flight accumulation carried across run boundaries.
#[test]
fn hashed_bbv_digests_match_reference() {
    for seed in [3, 11, 19] {
        let w = random_workload(seed);
        let mut decoded = w.machine_with(test_config());
        let mut reference = w.reference_machine_with(test_config());
        let mut d_tracker = HashedBbvTracker::new(BbvHash::from_seed(42));
        let mut r_tracker = HashedBbvTracker::new(BbvHash::from_seed(42));
        loop {
            let d = decoded.run_with(Mode::Functional, 20_000, &mut d_tracker);
            let r = reference.run_with(Mode::Functional, 20_000, &mut r_tracker);
            assert_eq!(d, r);
            let dv = d_tracker.take();
            let rv = r_tracker.take();
            assert_eq!(
                dv.counts(),
                rv.counts(),
                "{}: hashed BBV diverged",
                w.name()
            );
            if d.halted {
                break;
            }
        }
    }
}

/// Full (per-block) BBV digests match as well, across detailed mode where
/// the decoded core's inlined retire accounting batches whole runs.
#[test]
fn full_bbv_digests_match_reference() {
    for seed in [5, 23] {
        let w = random_workload(seed);
        let mut decoded = w.machine_with(test_config());
        let mut reference = w.reference_machine_with(test_config());
        let mut d_tracker = FullBbvTracker::new(w.program());
        let mut r_tracker = FullBbvTracker::new(w.program());
        loop {
            let d = decoded.run_with(Mode::DetailedMeasured, 15_000, &mut d_tracker);
            let r = reference.run_with(Mode::DetailedMeasured, 15_000, &mut r_tracker);
            assert_eq!(d, r);
            let dv = d_tracker.take();
            let rv = r_tracker.take();
            assert_eq!(dv.counts(), rv.counts(), "{}: full BBV diverged", w.name());
            if d.halted {
                break;
            }
        }
    }
}

/// The paper-suite workloads (scaled down) agree too — the programs the
/// perf harness and every experiment actually run.
#[test]
fn paper_suite_matches_reference() {
    for name in pgss_workloads::SUITE_NAMES {
        let w = pgss_workloads::by_name(name, 0.005).unwrap();
        assert_lockstep(
            &w,
            &[
                (Mode::Functional, 40_000),
                (Mode::DetailedWarming, 5_000),
                (Mode::DetailedMeasured, 20_000),
                (Mode::FastForward, 40_000),
                (Mode::DetailedMeasured, u64::MAX),
            ],
        );
    }
}

/// Structured faults agree: a poisoned dispatch table makes both cores
/// halt on the same `IndirectJumpOutOfRange` fault, at the same pc, with
/// the same retired count, without the faulting jump retiring.
#[test]
fn faults_agree_with_reference() {
    let w = {
        let mut b = WorkloadBuilder::new("poisoned", 31);
        let seg = b.add_segment(Kernel::ComputeInt {
            chains: 2,
            ops_per_chain: 3,
        });
        b.run(seg, 10_000);
        b.poison_dispatch();
        b.finish()
    };
    for mode in ALL_MODES {
        let mut decoded = w.machine_with(test_config());
        let mut reference = w.reference_machine_with(test_config());
        let mut d_sink = StreamDigest::default();
        let mut r_sink = StreamDigest::default();
        let d = decoded.run_with(mode, u64::MAX, &mut d_sink);
        let r = reference.run_with(mode, u64::MAX, &mut r_sink);
        assert_eq!(d, r);
        assert_eq!(d_sink, r_sink);
        assert!(decoded.fault().is_some(), "decoded core did not fault");
        assert_eq!(decoded.fault(), reference.fault(), "fault values differ");
        assert_eq!(decoded.snapshot(), reference.snapshot());
    }
}

/// Snapshot/restore round-trips interoperate: state captured from one
/// core restores into the other and execution continues identically —
/// decoded state really is derived, never serialized.
#[test]
fn snapshots_interoperate_between_cores() {
    let w = random_workload(29);
    let mut decoded = w.machine_with(test_config());
    let mut reference = w.reference_machine_with(test_config());
    decoded.run(Mode::Functional, 30_000);
    reference.run(Mode::Functional, 30_000);

    // Cross-restore: decoded's snapshot into the reference and vice versa.
    let d_snap = decoded.snapshot();
    let r_snap = reference.snapshot();
    assert_eq!(d_snap, r_snap);
    decoded.restore(&r_snap);
    reference.restore(&d_snap);

    let mut d_sink = StreamDigest::default();
    let mut r_sink = StreamDigest::default();
    let d = decoded.run_with(Mode::DetailedMeasured, u64::MAX, &mut d_sink);
    let r = reference.run_with(Mode::DetailedMeasured, u64::MAX, &mut r_sink);
    assert_eq!(d, r);
    assert_eq!(d_sink, r_sink);
    assert_eq!(decoded.snapshot(), reference.snapshot());
}
