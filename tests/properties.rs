//! Workspace-level property-based tests: invariants that must hold for
//! *arbitrary* workloads and parameters, spanning the whole stack.

use pgss::{PgssSim, Smarts, Technique};
use pgss_cpu::Mode;
use pgss_workloads::{Kernel, WorkloadBuilder};
use proptest::prelude::*;

/// An arbitrary kernel with small-but-meaningful parameters.
fn arb_kernel() -> impl Strategy<Value = Kernel> {
    prop_oneof![
        (1024usize..32768, 1usize..4, 0u32..4).prop_map(|(r, s, c)| Kernel::Stream {
            region_words: r.max(s * 8 + 1) * 2,
            stride_words: s,
            compute_per_load: c,
        }),
        (256usize..16384, 1u32..4, 0u32..6).prop_map(|(r, ch, c)| Kernel::Chase {
            ring_words: r,
            chains: ch,
            compute_per_step: c,
        }),
        (1u32..8, 1u32..6).prop_map(|(ch, o)| Kernel::ComputeInt {
            chains: ch,
            ops_per_chain: o
        }),
        (1u32..8, 1u32..5).prop_map(|(ch, o)| Kernel::ComputeFp {
            chains: ch,
            ops_per_chain: o
        }),
        (64usize..4096, any::<u8>(), 0u32..4).prop_map(|(t, bias, w)| Kernel::Branchy {
            table_words: t,
            bias,
            work_per_side: w,
        }),
        (1024usize..32768, 1usize..4).prop_map(|(r, s)| Kernel::StoreStream {
            region_words: r.max(s * 8 + 1) * 2,
            stride_words: s,
        }),
    ]
}

/// An arbitrary workload: 1–4 segments, 2–8 schedule entries of 20k–200k
/// ops each.
fn arb_workload() -> impl Strategy<Value = pgss_workloads::Workload> {
    (
        proptest::collection::vec(arb_kernel(), 1..4),
        proptest::collection::vec((0usize..4, 20_000u64..200_000), 2..8),
        any::<u64>(),
    )
        .prop_map(|(kernels, schedule, seed)| {
            let mut b = WorkloadBuilder::new("prop", seed);
            let segs: Vec<_> = kernels.into_iter().map(|k| b.add_segment(k)).collect();
            for (pick, ops) in schedule {
                b.run(segs[pick % segs.len()], ops);
            }
            b.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every generated workload halts near its nominal length, in every
    /// mode, with identical retirement counts.
    #[test]
    fn workloads_halt_consistently_across_modes(w in arb_workload()) {
        let budget = w.nominal_ops() * 2 + 10_000;
        let mut func = w.machine();
        let rf = func.run(Mode::Functional, budget);
        prop_assert!(rf.halted, "functional run did not halt within budget");
        let mut det = w.machine();
        let rd = det.run(Mode::DetailedMeasured, budget);
        prop_assert!(rd.halted);
        prop_assert_eq!(rf.ops, rd.ops);
        // Schedule planning is accurate to ~20% on arbitrary kernels.
        let rel = (rf.ops as f64 - w.nominal_ops() as f64).abs() / w.nominal_ops() as f64;
        prop_assert!(rel < 0.2, "ops {} vs nominal {}", rf.ops, w.nominal_ops());
    }

    /// IPC is always within the machine's issue width, and cycles are
    /// monotone in retired work.
    #[test]
    fn detailed_ipc_is_physical(w in arb_workload()) {
        let mut m = w.machine();
        let r = m.run(Mode::DetailedMeasured, u64::MAX);
        prop_assert!(r.halted);
        prop_assert!(r.cycles >= r.ops / 4, "IPC above issue width");
        prop_assert!(r.cycles > 0);
    }

    /// Snapshot/restore is invisible: running `split` ops, snapshotting,
    /// restoring into a fresh machine, and finishing matches an
    /// uninterrupted run bit for bit — architectural state, mode
    /// counters, and final timing results alike. The snapshot also
    /// round-trips the serialized checkpoint encoding unchanged.
    #[test]
    fn snapshot_restore_is_bit_exact(
        w in arb_workload(),
        split_frac in 0.05f64..0.95,
        detailed_tail in proptest::bool::ANY,
    ) {
        use pgss::ckpt::{decode_machine_snapshot, encode_machine_snapshot};

        let tail_mode = if detailed_tail { Mode::DetailedMeasured } else { Mode::Functional };
        let mut straight = w.machine();
        straight.run(Mode::Functional, (w.nominal_ops() as f64 * split_frac) as u64);
        let split_state = straight.snapshot();
        let tail = straight.run(tail_mode, u64::MAX);

        // The encoding is lossless.
        let decoded = decode_machine_snapshot(&encode_machine_snapshot(&split_state))
            .expect("fresh snapshot decodes");
        prop_assert_eq!(&decoded, &split_state);

        // Restore into a *fresh* machine and finish the run.
        let mut resumed = w.machine();
        resumed.restore(&split_state);
        prop_assert_eq!(&resumed.snapshot(), &split_state);
        let resumed_tail = resumed.run(tail_mode, u64::MAX);
        prop_assert_eq!(tail, resumed_tail);
        prop_assert_eq!(straight.snapshot(), resumed.snapshot());
    }

    /// SMARTS and PGSS produce finite, physical estimates on arbitrary
    /// workloads — no panics, no NaNs, no zero-sample collapses — and
    /// PGSS never uses more detailed simulation than SMARTS at matched
    /// periods.
    #[test]
    fn estimators_are_total_and_ordered(w in arb_workload()) {
        let smarts = Smarts { period_ops: 20_000, ..Smarts::default() }.run(&w);
        prop_assert!(smarts.ipc.is_finite() && smarts.ipc > 0.0 && smarts.ipc <= 4.0);
        let pgss = PgssSim {
            ff_ops: 20_000,
            spacing_ops: 60_000,
            ..PgssSim::default()
        }.run(&w);
        prop_assert!(pgss.ipc.is_finite() && pgss.ipc > 0.0 && pgss.ipc <= 4.0);
        prop_assert!(
            pgss.detailed_ops() <= smarts.detailed_ops() + 4000,
            "PGSS {} > SMARTS {}",
            pgss.detailed_ops(),
            smarts.detailed_ops()
        );
        // Phase weights are a distribution.
        let p = pgss.phases.expect("pgss reports phases");
        let total: f64 = p.weights.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "weights sum {total}");
    }
}
