//! Integration: the simulator's modes agree architecturally, and the whole
//! stack is deterministic.

use pgss_bbv::{BbvHash, HashedBbvTracker};
use pgss_cpu::{MachineConfig, Mode, RetireSink};
use pgss_workloads::{Kernel, WorkloadBuilder};

#[derive(Default)]
struct Recorder {
    retired: u64,
    taken: u64,
    taken_ops: u64,
    checksum: u64,
}

impl RetireSink for Recorder {
    fn retire(&mut self, pc: u32) {
        self.retired += 1;
        self.checksum = self.checksum.wrapping_mul(31).wrapping_add(u64::from(pc));
    }
    fn taken_branch(&mut self, pc: u32, ops: u64) {
        self.taken += 1;
        self.taken_ops += ops;
        let _ = pc;
    }
}

/// Functional and detailed execution retire the *identical* instruction
/// stream (same pcs in the same order), so sampled simulation can switch
/// modes freely.
#[test]
fn functional_and_detailed_retire_identical_streams() {
    let w = pgss_workloads::gzip(0.01);
    let mut a = Recorder::default();
    let mut b = Recorder::default();
    let mut ma = w.machine();
    let mut mb = w.machine();
    ma.run_with(Mode::Functional, u64::MAX, &mut a);
    mb.run_with(Mode::DetailedMeasured, u64::MAX, &mut b);
    assert_eq!(a.retired, b.retired);
    assert_eq!(
        a.checksum, b.checksum,
        "retired pc streams differ between modes"
    );
    assert_eq!(a.taken, b.taken);
    assert_eq!(a.taken_ops, b.taken_ops);
}

/// Interleaving modes at arbitrary boundaries never changes the
/// architectural stream.
#[test]
fn mode_interleaving_preserves_stream() {
    let w = pgss_workloads::parser(0.01);
    let mut reference = Recorder::default();
    let mut m = w.machine();
    m.run_with(Mode::Functional, u64::MAX, &mut reference);

    let mut interleaved = Recorder::default();
    let mut m = w.machine();
    let mut chunk = 997u64;
    let modes = [
        Mode::Functional,
        Mode::DetailedWarming,
        Mode::FastForward,
        Mode::DetailedMeasured,
    ];
    let mut i = 0;
    while !m.halted() {
        m.run_with(modes[i % modes.len()], chunk, &mut interleaved);
        chunk = chunk.wrapping_mul(7).wrapping_add(13) % 50_000 + 1;
        i += 1;
    }
    assert_eq!(reference.retired, interleaved.retired);
    assert_eq!(reference.checksum, interleaved.checksum);
    assert_eq!(reference.taken_ops, interleaved.taken_ops);
}

/// Taken-branch op counts partition the retired stream: the sum of
/// `ops_since_last` over all taken branches plus the trailing straight-line
/// tail equals the total retired count.
#[test]
fn taken_branch_ops_partition_the_stream() {
    let w = pgss_workloads::mesa(0.01);
    let mut r = Recorder::default();
    let mut m = w.machine();
    m.run_with(Mode::Functional, u64::MAX, &mut r);
    assert!(r.taken_ops <= r.retired);
    // The tail after the last taken branch is at most the longest
    // straight-line stretch, which is tiny compared to the program.
    assert!(
        r.retired - r.taken_ops < 1000,
        "tail {} too large",
        r.retired - r.taken_ops
    );
}

/// The hashed-BBV tracker accounts every retired op to some bucket.
#[test]
fn bbv_totals_match_taken_branch_ops() {
    let w = pgss_workloads::twolf(0.01);
    let mut m = w.machine();
    let mut tracker = HashedBbvTracker::new(BbvHash::from_seed(1));
    let mut total = 0u64;
    loop {
        let r = m.run_with(Mode::Functional, 100_000, &mut tracker);
        total += tracker.take().total_ops();
        if r.halted || r.ops == 0 {
            break;
        }
    }
    let mut check = Recorder::default();
    let mut m = w.machine();
    m.run_with(Mode::Functional, u64::MAX, &mut check);
    assert_eq!(total, check.taken_ops);
}

/// The full stack is bit-deterministic: same workload, same machine, same
/// cycles.
#[test]
fn cycle_level_determinism_across_runs() {
    let w = pgss_workloads::equake(0.01);
    let run = || {
        let mut m = w.machine();
        let mut cycles = 0u64;
        let mut ops = 0u64;
        loop {
            let r = m.run(Mode::DetailedMeasured, 123_456);
            cycles += r.cycles;
            ops += r.ops;
            if r.halted || r.ops == 0 {
                break;
            }
        }
        (
            ops,
            cycles,
            m.memsys().l1d().misses(),
            m.bpred().mispredictions(),
        )
    };
    assert_eq!(run(), run());
}

/// Workload generation itself is deterministic across processes (seeded).
#[test]
fn workload_generation_is_reproducible() {
    for name in pgss_workloads::SUITE_NAMES {
        let a = pgss_workloads::by_name(name, 0.01).unwrap();
        let b = pgss_workloads::by_name(name, 0.01).unwrap();
        assert_eq!(
            a.program().instrs(),
            b.program().instrs(),
            "{name} programs differ"
        );
        assert_eq!(a.memory(), b.memory(), "{name} memory images differ");
        assert_eq!(a.nominal_ops(), b.nominal_ops());
    }
}

/// Different machine configurations change timing but never architecture.
#[test]
fn configuration_changes_timing_not_architecture() {
    // A chase ring that fits the default 1 MiB L2 but thrashes a 64 KiB
    // one, so the configuration change must show up in cycles.
    let w = {
        let mut b = WorkloadBuilder::new("l2-sensitive", 5);
        let seg = b.add_segment(Kernel::Chase {
            ring_words: 48 * 1024, // 384 KiB
            chains: 1,
            compute_per_step: 2,
        });
        b.run(seg, 2_000_000);
        b.finish()
    };
    let small_cache = MachineConfig {
        l2: pgss_cpu::CacheConfig {
            size_bytes: 64 * 1024,
            ..pgss_cpu::CacheConfig::l2_default()
        },
        ..MachineConfig::default()
    };
    let mut r1 = Recorder::default();
    let mut r2 = Recorder::default();
    let mut m1 = w.machine();
    let mut m2 = w.machine_with(small_cache);
    let a = m1.run_with(Mode::DetailedMeasured, u64::MAX, &mut r1);
    let b = m2.run_with(Mode::DetailedMeasured, u64::MAX, &mut r2);
    assert_eq!(r1.checksum, r2.checksum);
    assert!(
        b.cycles > a.cycles,
        "shrinking the L2 16x should cost cycles ({} vs {})",
        b.cycles,
        a.cycles
    );
}
