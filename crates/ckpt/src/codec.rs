//! A minimal self-describing binary codec.
//!
//! Everything is little-endian and length-prefixed; floating-point
//! values round-trip through their IEEE-754 bit patterns so encoding is
//! bit-exact. Word slices (`i64`/`u64`) can be written with a zero-run
//! encoding that collapses the untouched regions of a machine's memory
//! image — a 32 MiB image whose workload touches a few hundred KiB
//! encodes in roughly the touched size.

/// Errors produced while decoding a byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the value was complete.
    Truncated,
    /// The stream decoded but violated an invariant (bad tag, absurd
    /// length, non-UTF-8 string, ...). The payload names the violation.
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "byte stream truncated"),
            CodecError::Malformed(what) => write!(f, "malformed byte stream: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// 64-bit FNV-1a over a byte slice; the store's record checksum and the
/// content-address hash both use it.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only binary writer. Obtain the encoded bytes with
/// [`Encoder::into_bytes`].
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (bit-exact, NaN-safe).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Writes a length-prefixed `u64` slice, verbatim.
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x);
        }
    }

    /// Writes a length-prefixed `i64` slice with zero-run compression:
    /// the element count, then alternating (zero-run length, literal
    /// count, literal values) groups until the count is consumed.
    pub fn put_i64_slice_rle(&mut self, v: &[i64]) {
        self.put_u64(v.len() as u64);
        let mut i = 0;
        while i < v.len() {
            let zeros = v[i..].iter().take_while(|&&x| x == 0).count();
            i += zeros;
            let lits = v[i..].iter().take_while(|&&x| x != 0).count();
            self.put_u64(zeros as u64);
            self.put_u64(lits as u64);
            for &x in &v[i..i + lits] {
                self.put_i64(x);
            }
            i += lits;
        }
    }
}

/// Sequential reader over an encoded byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless every byte has been consumed — catches payloads
    /// with trailing garbage.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Malformed("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than 0/1 is malformed.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Malformed("bool out of range")),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    fn get_len(&mut self, elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.get_u64()?;
        let n = usize::try_from(n).map_err(|_| CodecError::Malformed("length overflow"))?;
        // A length that cannot possibly fit in the remaining bytes is
        // corruption; refusing it here prevents huge bogus allocations.
        if elem_bytes > 0 && n > self.remaining() / elem_bytes {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }

    /// Reads a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let n = self.get_len(1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        String::from_utf8(self.get_bytes()?).map_err(|_| CodecError::Malformed("invalid UTF-8"))
    }

    /// Reads a length-prefixed `u64` slice written by
    /// [`Encoder::put_u64_slice`].
    pub fn get_u64_slice(&mut self) -> Result<Vec<u64>, CodecError> {
        let n = self.get_len(8)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.get_u64()?);
        }
        Ok(v)
    }

    /// Reads a zero-run-compressed `i64` slice written by
    /// [`Encoder::put_i64_slice_rle`].
    pub fn get_i64_slice_rle(&mut self) -> Result<Vec<i64>, CodecError> {
        let n = self.get_u64()?;
        let n = usize::try_from(n).map_err(|_| CodecError::Malformed("length overflow"))?;
        let mut v: Vec<i64> = Vec::new();
        while v.len() < n {
            let zeros = usize::try_from(self.get_u64()?)
                .map_err(|_| CodecError::Malformed("run overflow"))?;
            let lits = usize::try_from(self.get_u64()?)
                .map_err(|_| CodecError::Malformed("run overflow"))?;
            let total = zeros
                .checked_add(lits)
                .and_then(|t| v.len().checked_add(t))
                .ok_or(CodecError::Malformed("run overflow"))?;
            if total > n || lits > self.remaining() / 8 {
                return Err(CodecError::Malformed("run exceeds declared length"));
            }
            v.resize(v.len() + zeros, 0);
            for _ in 0..lits {
                v.push(self.get_i64()?);
            }
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(0xab);
        e.put_bool(true);
        e.put_bool(false);
        e.put_u32(0xdead_beef);
        e.put_u64(u64::MAX - 1);
        e.put_i64(-42);
        e.put_f64(f64::NAN);
        e.put_f64(-0.0);
        e.put_str("gzip");
        e.put_bytes(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 0xab);
        assert!(d.get_bool().unwrap());
        assert!(!d.get_bool().unwrap());
        assert_eq!(d.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(d.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.get_i64().unwrap(), -42);
        assert_eq!(d.get_f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(d.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.get_str().unwrap(), "gzip");
        assert_eq!(d.get_bytes().unwrap(), vec![1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn rle_roundtrips_and_compresses_sparse_slices() {
        let cases: Vec<Vec<i64>> = vec![
            vec![],
            vec![0; 1000],
            vec![7; 9],
            vec![0, 0, 5, 0, -3, 0, 0, 0, 9],
            vec![1, 2, 3, 0, 0, 0, 0, 0, 0, 0, 0, 4],
        ];
        for v in &cases {
            let mut e = Encoder::new();
            e.put_i64_slice_rle(v);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            assert_eq!(&d.get_i64_slice_rle().unwrap(), v);
            d.finish().unwrap();
        }
        // A mostly-zero image encodes far below its raw size.
        let mut sparse = vec![0i64; 1 << 16];
        sparse[17] = 99;
        sparse[40_000] = -1;
        let mut e = Encoder::new();
        e.put_i64_slice_rle(&sparse);
        assert!(e.len() < 200, "sparse encoding is {} bytes", e.len());
    }

    #[test]
    fn u64_slice_roundtrip() {
        let v: Vec<u64> = vec![u64::MAX, 0, 1, 42];
        let mut e = Encoder::new();
        e.put_u64_slice(&v);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u64_slice().unwrap(), v);
    }

    #[test]
    fn truncated_streams_error_without_panicking() {
        let mut e = Encoder::new();
        e.put_str("hello");
        e.put_u64_slice(&[1, 2, 3]);
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Decoder::new(&bytes[..cut]);
            let r = d.get_str().and_then(|_| d.get_u64_slice());
            assert!(r.is_err(), "cut at {cut} still decoded");
        }
    }

    #[test]
    fn absurd_lengths_are_rejected_not_allocated() {
        let mut e = Encoder::new();
        e.put_u64(u64::MAX); // claims ~2^64 elements
        let bytes = e.into_bytes();
        assert_eq!(
            Decoder::new(&bytes).get_u64_slice(),
            Err(CodecError::Truncated)
        );
        assert!(Decoder::new(&bytes).get_bytes().is_err());
    }

    #[test]
    fn rle_run_past_declared_length_is_malformed() {
        let mut e = Encoder::new();
        e.put_u64(4); // 4 elements claimed
        e.put_u64(10); // ...but a 10-zero run
        e.put_u64(0);
        let bytes = e.into_bytes();
        assert_eq!(
            Decoder::new(&bytes).get_i64_slice_rle(),
            Err(CodecError::Malformed("run exceeds declared length"))
        );
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
