//! Key namespace for durable campaign-job records.
//!
//! The campaign server (`pgss-serve`) persists job state — spec, status,
//! per-cell results, the job index — in the same content-addressed
//! [`crate::Store`] that holds checkpoint rungs. This module carves out a
//! distinct key namespace for those records so a job record can never
//! alias a snapshot: every job key is the FNV of a magic prefix, a record
//! kind, the job id, and a per-kind index, none of which feed the
//! checkpoint-key derivation in `pgss::ckpt`.
//!
//! The store stays payload-agnostic: what goes *inside* a job record
//! (versioned, checksummed encodings of specs, statuses, and cell
//! results) is defined by the server layer, exactly as the snapshot
//! encoding is defined by `pgss::ckpt`.

use crate::codec::{fnv1a64, Encoder};

/// Magic mixed into every job-record key, keeping the namespace disjoint
/// from checkpoint content addresses.
const JOB_KEY_MAGIC: &[u8] = b"PGSSJOB1";

/// The kinds of durable record a campaign job is made of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobRecordKind {
    /// The singleton index of every job the store knows (job id list plus
    /// the submit-sequence counter). Keyed with `job_id = 0, index = 0`.
    Index,
    /// A job's immutable submission: tenant, canonical spec, sequence.
    Spec,
    /// A job's mutable status: phase, retry count, failure ledger.
    /// Rewritten (atomically, via the store's write-then-rename) on every
    /// phase transition.
    Status,
    /// One completed cell's result and metric frame; `index` is the cell's
    /// job-order index. Written exactly once, when the cell finishes.
    Cell,
}

impl JobRecordKind {
    fn tag(self) -> u8 {
        match self {
            JobRecordKind::Index => 0,
            JobRecordKind::Spec => 1,
            JobRecordKind::Status => 2,
            JobRecordKind::Cell => 3,
        }
    }
}

/// The content address of a job record: `kind` × `job_id` × `index`
/// (cell index for [`JobRecordKind::Cell`], 0 otherwise).
pub fn job_key(kind: JobRecordKind, job_id: u64, index: u64) -> u64 {
    let mut e = Encoder::new();
    e.put_bytes(JOB_KEY_MAGIC);
    e.put_u8(kind.tag());
    e.put_u64(job_id);
    e.put_u64(index);
    fnv1a64(&e.into_bytes())
}

/// The key of the singleton job index record.
pub fn index_key() -> u64 {
    job_key(JobRecordKind::Index, 0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_separate_kind_job_and_index() {
        let base = job_key(JobRecordKind::Cell, 7, 3);
        assert_eq!(job_key(JobRecordKind::Cell, 7, 3), base);
        assert_ne!(job_key(JobRecordKind::Cell, 7, 4), base);
        assert_ne!(job_key(JobRecordKind::Cell, 8, 3), base);
        assert_ne!(job_key(JobRecordKind::Status, 7, 3), base);
        assert_ne!(job_key(JobRecordKind::Spec, 7, 3), base);
        assert_eq!(index_key(), job_key(JobRecordKind::Index, 0, 0));
    }
}
