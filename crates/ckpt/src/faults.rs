//! Deterministic store-level fault injection (feature `fault-inject`).
//!
//! Tests install a [`StoreFaultPlan`] naming which [`crate::Store`]
//! operations — counted from plan installation, per operation kind — must
//! misbehave. Injection is *deterministic*: faults are keyed by operation
//! index, not by time or randomness, so the same plan against the same
//! call sequence always injects at the same points and test runs are
//! reproducible bit-for-bit.
//!
//! Installation returns a [`StoreFaultGuard`] that clears the plan when
//! dropped. Guards hold a process-wide lock (see [`serialize`]), so tests
//! exercising faults are serialized against each other even under the
//! default parallel test runner; everything here is test infrastructure
//! and compiles away entirely without the `fault-inject` feature.

use std::io;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Which store operations to sabotage, each keyed by a 0-based operation
/// index counted (per kind) from plan installation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreFaultPlan {
    /// [`crate::Store::put`] calls that fail with an I/O error after a
    /// torn (half-written) temp file — the "disk filled mid-write" case.
    pub fail_puts: Vec<u64>,
    /// Record reads that fail with an I/O error despite the file existing.
    pub fail_gets: Vec<u64>,
    /// Record reads served with one payload bit flipped (the on-disk file
    /// is untouched; only the bytes handed to validation are corrupted).
    pub corrupt_gets: Vec<u64>,
    /// Record reads served truncated to half their length.
    pub truncate_gets: Vec<u64>,
    /// The disk stays full from this put index onward: every
    /// [`crate::Store::put`] at or past it fails like [`fail_puts`]
    /// (torn temp file, I/O error) until the plan clears.
    ///
    /// [`fail_puts`]: StoreFaultPlan::fail_puts
    pub full_after_puts: Option<u64>,
    /// Puts whose commit rename is *torn*: the caller sees success, but
    /// the destination file holds only the first half of the record —
    /// the non-atomic-rename filesystem a crash-consistent store must
    /// survive by detecting the tear on read.
    pub torn_renames: Vec<u64>,
    /// Drop every fsync (temp file and directory) while the plan is
    /// installed — models a power loss the write-then-rename path alone
    /// cannot survive. Tests observe the difference through the
    /// `ckpt.store.fsync` counter and the injection log.
    pub drop_fsyncs: bool,
}

impl StoreFaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.fail_puts.is_empty()
            && self.fail_gets.is_empty()
            && self.corrupt_gets.is_empty()
            && self.truncate_gets.is_empty()
            && self.full_after_puts.is_none()
            && self.torn_renames.is_empty()
            && !self.drop_fsyncs
    }
}

#[derive(Debug, Default)]
struct Active {
    plan: StoreFaultPlan,
    puts: u64,
    gets: u64,
    log: Vec<String>,
}

/// Serializes every fault-injecting test in the process (shared with
/// `pgss::faults`, which layers cell-level faults on the same lock).
static SERIAL: Mutex<()> = Mutex::new(());
static ACTIVE: Mutex<Option<Active>> = Mutex::new(None);

fn active() -> MutexGuard<'static, Option<Active>> {
    ACTIVE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Acquires the process-wide fault-test lock without installing a plan.
/// Higher layers (e.g. `pgss::faults`) hold this while managing their own
/// plans so store-level and cell-level fault tests can never deadlock or
/// interleave.
pub fn serialize() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Installs `plan`, returning a guard that clears it (and releases the
/// test-serialization lock) on drop.
pub fn install(plan: StoreFaultPlan) -> StoreFaultGuard {
    let serial = serialize();
    set_plan(plan);
    StoreFaultGuard { _serial: serial }
}

/// Replaces the active plan, resetting operation counters. Callers other
/// than [`install`] (e.g. `pgss::faults`, which composes store faults
/// with cell faults under one guard) must hold [`serialize`] for as long
/// as the plan is set.
pub fn set_plan(plan: StoreFaultPlan) {
    *active() = Some(Active {
        plan,
        ..Active::default()
    });
}

/// Clears any installed plan (idempotent). Called by guard drops.
pub fn clear() {
    *active() = None;
}

/// What has been injected since the current plan was installed, as
/// human-readable lines — lets tests assert a fault actually fired.
pub fn injection_log() -> Vec<String> {
    active().as_ref().map(|a| a.log.clone()).unwrap_or_default()
}

/// Clears the plan on drop. See [`install`].
#[derive(Debug)]
pub struct StoreFaultGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for StoreFaultGuard {
    fn drop(&mut self) {
        clear();
    }
}

/// How an injected fault wants a [`crate::Store::put`] to misbehave.
#[derive(Debug)]
pub(crate) enum PutFault {
    /// Fail with this I/O error after leaving a torn temp file behind.
    Fail(io::Error),
    /// Report success but leave only half the record at the destination.
    TornRename,
}

/// Hook for [`crate::Store::put`]: `Some(fault)` when this put must
/// misbehave. Outright failure (indexed or disk-full) outranks a torn
/// rename when both name the same operation.
pub(crate) fn on_put() -> Option<PutFault> {
    let mut slot = active();
    let a = slot.as_mut()?;
    let n = a.puts;
    a.puts += 1;
    let full = a.plan.full_after_puts.is_some_and(|from| n >= from);
    if a.plan.fail_puts.contains(&n) || full {
        let cause = if full { "disk full" } else { "I/O error" };
        a.log.push(format!("put #{n}: injected {cause}"));
        Some(PutFault::Fail(io::Error::other(format!(
            "injected store fault: put #{n} ({cause})"
        ))))
    } else if a.plan.torn_renames.contains(&n) {
        a.log.push(format!("put #{n}: injected torn rename"));
        Some(PutFault::TornRename)
    } else {
        None
    }
}

/// Hook for the store's durability barriers: true when this fsync must be
/// silently dropped (the power-loss model).
pub(crate) fn on_fsync() -> bool {
    let mut slot = active();
    let Some(a) = slot.as_mut() else {
        return false;
    };
    if a.plan.drop_fsyncs {
        a.log.push("fsync: dropped".to_string());
        true
    } else {
        false
    }
}

/// Hook for record reads: may fail the read outright or mutate the bytes
/// handed to validation. `bytes` holds the file contents just read.
pub(crate) fn on_get(bytes: &mut Vec<u8>) -> Result<(), io::Error> {
    let mut slot = active();
    let Some(a) = slot.as_mut() else {
        return Ok(());
    };
    let n = a.gets;
    a.gets += 1;
    if a.plan.fail_gets.contains(&n) {
        a.log.push(format!("get #{n}: injected I/O error"));
        return Err(io::Error::other(format!("injected store fault: get #{n}")));
    }
    if a.plan.corrupt_gets.contains(&n) {
        if let Some(last) = bytes.last_mut() {
            *last ^= 0x01;
        }
        a.log.push(format!("get #{n}: injected payload corruption"));
    }
    if a.plan.truncate_gets.contains(&n) {
        bytes.truncate(bytes.len() / 2);
        a.log.push(format!("get #{n}: injected truncation"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_counts_operations_per_kind() {
        let _guard = install(StoreFaultPlan {
            fail_puts: vec![1],
            fail_gets: vec![0],
            corrupt_gets: vec![1],
            truncate_gets: vec![2],
            ..StoreFaultPlan::default()
        });
        assert!(on_put().is_none(), "put #0 passes");
        assert!(matches!(on_put(), Some(PutFault::Fail(_))), "put #1 fails");
        assert!(on_put().is_none(), "put #2 passes");

        let mut bytes = vec![0u8; 8];
        assert!(on_get(&mut bytes).is_err(), "get #0 fails");
        let mut bytes = vec![0u8; 8];
        assert!(on_get(&mut bytes).is_ok());
        assert_eq!(bytes[7], 1, "get #1 corrupted");
        let mut bytes = vec![0u8; 8];
        assert!(on_get(&mut bytes).is_ok());
        assert_eq!(bytes.len(), 4, "get #2 truncated");
        assert_eq!(injection_log().len(), 4);
    }

    #[test]
    fn cleared_plan_injects_nothing() {
        {
            let _guard = install(StoreFaultPlan {
                fail_puts: vec![0],
                ..StoreFaultPlan::default()
            });
        }
        assert!(on_put().is_none(), "dropped guard must clear the plan");
        assert!(!on_fsync(), "dropped guard must restore fsyncs");
        assert!(injection_log().is_empty());
        assert!(StoreFaultPlan::default().is_empty());
    }

    #[test]
    fn disk_stays_full_from_the_named_put_onward() {
        let _guard = install(StoreFaultPlan {
            full_after_puts: Some(2),
            ..StoreFaultPlan::default()
        });
        assert!(on_put().is_none(), "put #0 passes");
        assert!(on_put().is_none(), "put #1 passes");
        for n in 2..5 {
            assert!(
                matches!(on_put(), Some(PutFault::Fail(_))),
                "put #{n} hits the full disk"
            );
        }
        assert!(!StoreFaultPlan {
            full_after_puts: Some(0),
            ..StoreFaultPlan::default()
        }
        .is_empty());
    }

    #[test]
    fn torn_rename_and_dropped_fsync_are_logged() {
        let _guard = install(StoreFaultPlan {
            torn_renames: vec![0],
            drop_fsyncs: true,
            ..StoreFaultPlan::default()
        });
        assert!(matches!(on_put(), Some(PutFault::TornRename)));
        assert!(on_put().is_none(), "only put #0 is torn");
        assert!(on_fsync() && on_fsync(), "every fsync drops");
        let log = injection_log();
        assert_eq!(log[0], "put #0: injected torn rename");
        assert!(log[1..].iter().all(|l| l == "fsync: dropped"));
    }
}
