//! Checkpoint codec and content-addressed store.
//!
//! This crate is the bottom layer of the checkpoint subsystem: a
//! hand-rolled, dependency-free binary codec ([`codec::Encoder`] /
//! [`codec::Decoder`] with zero-run compression for sparse word arrays)
//! and a crash-safe content-addressed on-disk [`store::Store`] of
//! versioned, checksummed records (atomic write-then-rename, tolerant
//! reads that skip torn / corrupt / version-mismatched records).
//!
//! The crate is deliberately payload-agnostic — it moves bytes, not
//! machine state. The typed snapshot encoding (what goes *inside* a
//! record) lives in `pgss::ckpt`, which layers machine/driver snapshots
//! and checkpoint ladders on top of this store. Keeping this layer free
//! of `pgss-cpu` types lets `pgss-bench` reuse the exact same record
//! format for its ground-truth cache.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
#[cfg(feature = "fault-inject")]
pub mod faults;
pub mod job;
pub mod store;

pub use codec::{fnv1a64, CodecError, Decoder, Encoder};
pub use job::{index_key, job_key, JobRecordKind};
pub use store::{
    is_budget_error, GcReport, Quarantined, RecordError, RecordFault, Store, VerifyReport,
    STORE_FORMAT_VERSION,
};
