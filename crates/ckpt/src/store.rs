//! Content-addressed on-disk record store.
//!
//! Each record is one file named by its 64-bit key. Writes build the
//! full record in memory, write it to a unique temp file in the same
//! directory, and `rename` it into place — readers therefore only ever
//! observe complete rename targets, and a crash mid-write leaves at
//! worst a stale `.tmp` file that is ignored. Reads are *tolerant*: a
//! missing, torn, corrupt, or version-mismatched record simply reads as
//! absent (`None`), never as bad state and never as a panic — callers
//! fall back to recomputing and overwriting.
//!
//! Record layout (all integers little-endian):
//!
//! ```text
//! magic  [8]  b"PGSSCKPT"
//! version u32 STORE_FORMAT_VERSION
//! key     u64 must equal the key the file is named by
//! len     u64 payload length in bytes
//! check   u64 FNV-1a of the payload
//! payload [len]
//! ```

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::codec::{fnv1a64, Decoder, Encoder};

/// Version stamped into every record; bumped whenever the record layout
/// (not the payload semantics) changes. Records with any other version
/// read as absent.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Leading magic of every record file.
pub const MAGIC: &[u8; 8] = b"PGSSCKPT";

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory of content-addressed records. Cheap to clone paths from;
/// safe for concurrent writers (last complete write wins atomically).
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a record with `key` lives at (whether or not it exists).
    pub fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.rec"))
    }

    /// Atomically writes `payload` under `key`, replacing any previous
    /// record.
    pub fn put(&self, key: u64, payload: &[u8]) -> io::Result<()> {
        let mut e = Encoder::new();
        // Header fields are written manually (not length-prefixed) so the
        // record layout is exactly the documented fixed header + payload.
        let mut record = Vec::with_capacity(36 + payload.len());
        record.extend_from_slice(MAGIC);
        e.put_u32(STORE_FORMAT_VERSION);
        e.put_u64(key);
        e.put_u64(payload.len() as u64);
        e.put_u64(fnv1a64(payload));
        record.extend_from_slice(&e.into_bytes());
        record.extend_from_slice(payload);

        let tmp = self.dir.join(format!(
            ".{key:016x}.{}.{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, &record)?;
        let renamed = fs::rename(&tmp, self.path_for(key));
        if renamed.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        renamed
    }

    /// Reads the payload stored under `key`. Returns `None` when the
    /// record is missing or fails any validation (magic, version, key,
    /// length, checksum) — corrupt records are never served.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        let bytes = fs::read(self.path_for(key)).ok()?;
        parse_record(&bytes, key)
    }

    /// Removes the record under `key` if present.
    pub fn remove(&self, key: u64) -> io::Result<()> {
        match fs::remove_file(self.path_for(key)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }
}

fn parse_record(bytes: &[u8], key: u64) -> Option<Vec<u8>> {
    if bytes.len() < 36 || &bytes[..8] != MAGIC {
        return None;
    }
    let mut d = Decoder::new(&bytes[8..]);
    let version = d.get_u32().ok()?;
    let rec_key = d.get_u64().ok()?;
    let len = d.get_u64().ok()?;
    let check = d.get_u64().ok()?;
    if version != STORE_FORMAT_VERSION || rec_key != key {
        return None;
    }
    let payload = &bytes[36..];
    if payload.len() as u64 != len || fnv1a64(payload) != check {
        return None;
    }
    Some(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pgss-ckpt-{name}-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip_and_overwrite() {
        let dir = scratch("roundtrip");
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get(7), None);
        s.put(7, b"hello").unwrap();
        assert_eq!(s.get(7).as_deref(), Some(&b"hello"[..]));
        s.put(7, b"world").unwrap();
        assert_eq!(s.get(7).as_deref(), Some(&b"world"[..]));
        s.remove(7).unwrap();
        assert_eq!(s.get(7), None);
        s.remove(7).unwrap(); // idempotent
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_payload_is_a_valid_record() {
        let dir = scratch("empty");
        let s = Store::open(&dir).unwrap();
        s.put(1, b"").unwrap();
        assert_eq!(s.get(1).as_deref(), Some(&b""[..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_records_read_as_absent() {
        let dir = scratch("torn");
        let s = Store::open(&dir).unwrap();
        s.put(9, b"some payload that matters").unwrap();
        let path = s.path_for(9);
        let full = fs::read(&path).unwrap();
        for cut in [0, 3, 8, 20, 35, full.len() - 1] {
            fs::write(&path, &full[..cut]).unwrap();
            assert_eq!(s.get(9), None, "torn at {cut} bytes served data");
        }
        // Restoring the full record serves again.
        fs::write(&path, &full).unwrap();
        assert!(s.get(9).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_payload_and_garbage_read_as_absent() {
        let dir = scratch("corrupt");
        let s = Store::open(&dir).unwrap();
        s.put(3, b"checksummed payload").unwrap();
        let path = s.path_for(3);
        let mut bytes = fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() ^= 0x40; // flip one payload bit
        fs::write(&path, &bytes).unwrap();
        assert_eq!(s.get(3), None);
        // Outright garbage in place of a record.
        fs::write(&path, b"not a checkpoint record at all").unwrap();
        assert_eq!(s.get(3), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_and_key_mismatches_read_as_absent() {
        let dir = scratch("version");
        let s = Store::open(&dir).unwrap();
        s.put(5, b"payload").unwrap();
        let path = s.path_for(5);
        let good = fs::read(&path).unwrap();

        let mut stale = good.clone();
        stale[8] = stale[8].wrapping_add(1); // bump the version field
        fs::write(&path, &stale).unwrap();
        assert_eq!(s.get(5), None, "stale-version record served");

        let mut wrong_key = good.clone();
        wrong_key[12] ^= 0xff; // record claims a different key
        fs::write(&path, &wrong_key).unwrap();
        assert_eq!(s.get(5), None, "key-mismatched record served");

        fs::write(&path, &good).unwrap();
        assert!(s.get(5).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_agree() {
        let dir = scratch("concurrent");
        let s = Store::open(&dir).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        s.put(11, b"identical payload").unwrap();
                        // Reads racing the writers must see either absence
                        // or the complete payload, never a torn one.
                        if let Some(p) = s.get(11) {
                            assert_eq!(p, b"identical payload");
                        }
                    }
                });
            }
        });
        assert_eq!(s.get(11).as_deref(), Some(&b"identical payload"[..]));
        let _ = fs::remove_dir_all(&dir);
    }
}
