//! Content-addressed on-disk record store.
//!
//! Each record is one file named by its 64-bit key. Writes build the
//! full record in memory, write it to a unique temp file in the same
//! directory, and `rename` it into place — readers therefore only ever
//! observe complete rename targets, a failed write removes its temp file,
//! and a crash mid-write leaves at worst a stale `.tmp` file that is
//! ignored. Reads are *tolerant*: a missing, torn, corrupt, or
//! version-mismatched record simply reads as absent (`None`), never as
//! bad state and never as a panic — callers fall back to recomputing and
//! overwriting. [`Store::get_checked`] additionally reports *why* a read
//! failed, so self-healing layers can distinguish a record that never
//! existed from one that rotted on disk and [`Store::quarantine`] it for
//! post-mortem inspection instead of silently leaving (or deleting) it.
//! [`Store::verify_all`] sweeps a whole store the same way.
//!
//! Record layout (all integers little-endian):
//!
//! ```text
//! magic  [8]  b"PGSSCKPT"
//! version u32 STORE_FORMAT_VERSION
//! key     u64 must equal the key the file is named by
//! len     u64 payload length in bytes
//! check   u64 FNV-1a of the payload
//! payload [len]
//! ```

use std::fs;
use std::io;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pgss_obs::{NoopRecorder, Recorder};

use crate::codec::{fnv1a64, Decoder, Encoder};

/// Version stamped into every record; bumped whenever the record layout
/// (not the payload semantics) changes. Records with any other version
/// read as absent.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Leading magic of every record file.
pub const MAGIC: &[u8; 8] = b"PGSSCKPT";

/// Name of the sidecar directory (inside the store) that quarantined
/// files are moved into.
pub const QUARANTINE_DIR: &str = "quarantine";

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Why a record file failed validation (or, for [`Store::verify_all`],
/// why a file in the store directory is not a servable record at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordFault {
    /// Shorter than the fixed header — a torn write or empty file.
    TooShort,
    /// Leading magic is not [`MAGIC`].
    BadMagic,
    /// Header version differs from [`STORE_FORMAT_VERSION`].
    BadVersion,
    /// Header key differs from the key the file is named by.
    KeyMismatch,
    /// Header payload length disagrees with the file size.
    LengthMismatch,
    /// Payload checksum does not match the header.
    ChecksumMismatch,
    /// `verify_all` only: file name is not `{key:016x}.rec`.
    ForeignFile,
    /// `verify_all` only: leftover `.tmp` file from an interrupted write.
    StaleTemp,
}

impl std::fmt::Display for RecordFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RecordFault::TooShort => "record shorter than its header (torn write)",
            RecordFault::BadMagic => "bad record magic",
            RecordFault::BadVersion => "stale record-format version",
            RecordFault::KeyMismatch => "record key does not match its file name",
            RecordFault::LengthMismatch => "payload length disagrees with file size",
            RecordFault::ChecksumMismatch => "payload checksum mismatch",
            RecordFault::ForeignFile => "file is not named like a record",
            RecordFault::StaleTemp => "stale temporary file from an interrupted write",
        })
    }
}

/// Why a strict read ([`Store::get_checked`]) returned no payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// No file exists for the key.
    Missing,
    /// A file exists but is not a valid record — a candidate for
    /// [`Store::quarantine`].
    Invalid(RecordFault),
    /// The file could not be read at all.
    Io(io::ErrorKind, String),
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Missing => f.write_str("record missing"),
            RecordError::Invalid(fault) => write!(f, "invalid record: {fault}"),
            RecordError::Io(kind, msg) => write!(f, "record read failed ({kind}): {msg}"),
        }
    }
}

impl std::error::Error for RecordError {}

/// One file moved aside by [`Store::verify_all`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// The key parsed from the file name, when it was a record file.
    pub key: Option<u64>,
    /// Where the file now lives (inside the quarantine directory).
    pub path: PathBuf,
    /// What was wrong with it.
    pub fault: RecordFault,
}

/// What a [`Store::verify_all`] sweep found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Files examined (quarantine sidecar excluded).
    pub checked: usize,
    /// Valid records left in place.
    pub healthy: usize,
    /// Files moved into the quarantine sidecar, in file-name order.
    pub quarantined: Vec<Quarantined>,
}

impl VerifyReport {
    /// True when nothing had to be quarantined.
    pub fn is_healthy(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// What a [`Store::gc`] mark-and-sweep pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Record files examined (quarantine sidecar and foreign files excluded).
    pub checked: usize,
    /// Records the liveness predicate kept.
    pub live: usize,
    /// Garbage records deleted.
    pub swept: usize,
    /// Bytes those deletions freed.
    pub bytes_freed: u64,
}

/// Message prefix of the error a budgeted [`Store::put`] returns when the
/// write would exceed the store's byte budget. Test with
/// [`is_budget_error`].
pub const BUDGET_EXCEEDED: &str = "store byte budget exceeded";

/// True when `err` is a [`Store`] byte-budget rejection (as opposed to a
/// real I/O failure) — the caller's cue to GC and retry rather than
/// degrade.
pub fn is_budget_error(err: &io::Error) -> bool {
    err.to_string().starts_with(BUDGET_EXCEEDED)
}

/// A directory of content-addressed records. Cheap to clone paths from;
/// safe for concurrent writers (last complete write wins atomically).
///
/// A store opens with the no-op [`Recorder`]; attach a real one with
/// [`Store::with_recorder`] to count hits / misses / invalid records /
/// quarantines and bytes moved (`ckpt.store.*` counters).
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
    recorder: Arc<dyn Recorder>,
    budget: Option<u64>,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            recorder: Arc::new(NoopRecorder),
            budget: None,
        })
    }

    /// The same store, reporting `ckpt.store.*` metrics to `recorder`.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Store {
        self.recorder = recorder;
        self
    }

    /// The same store, refusing any [`Store::put`] that would push total
    /// record bytes past `bytes` (see [`is_budget_error`]). The budget
    /// covers record files only — quarantined evidence is never counted
    /// against it, so a sick store cannot starve a healthy one.
    pub fn with_budget(mut self, bytes: u64) -> Store {
        self.budget = Some(bytes);
        self
    }

    /// The byte budget, if one is set.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Total bytes currently held in record files (quarantine sidecar and
    /// foreign files excluded).
    pub fn usage_bytes(&self) -> io::Result<u64> {
        let mut total = 0u64;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if record_key_of(&entry.file_name()).is_some() {
                total += entry.metadata()?.len();
            }
        }
        Ok(total)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a record with `key` lives at (whether or not it exists).
    pub fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.rec"))
    }

    /// Atomically writes `payload` under `key`, replacing any previous
    /// record. The temp file is fsynced before the rename and the parent
    /// directory after it, so a committed record survives power loss, not
    /// just process death. On failure — whether the temp-file write or the
    /// rename — the temp file is removed, so a failed `put` leaves neither
    /// a torn record nor a stray temp file behind. With a budget set (see
    /// [`Store::with_budget`]), a put that would exceed it is rejected
    /// up front with a [`is_budget_error`] error and touches nothing.
    pub fn put(&self, key: u64, payload: &[u8]) -> io::Result<()> {
        let mut e = Encoder::new();
        // Header fields are written manually (not length-prefixed) so the
        // record layout is exactly the documented fixed header + payload.
        let mut record = Vec::with_capacity(36 + payload.len());
        record.extend_from_slice(MAGIC);
        e.put_u32(STORE_FORMAT_VERSION);
        e.put_u64(key);
        e.put_u64(payload.len() as u64);
        e.put_u64(fnv1a64(payload));
        record.extend_from_slice(&e.into_bytes());
        record.extend_from_slice(payload);

        if let Some(budget) = self.budget {
            let used = self.usage_bytes()?;
            if used.saturating_add(record.len() as u64) > budget {
                self.recorder.add("ckpt.store.budget_rejected", 1);
                return Err(io::Error::other(format!(
                    "{BUDGET_EXCEEDED}: {used} bytes held + {} incoming > {budget} budget",
                    record.len()
                )));
            }
        }

        let tmp = self.dir.join(format!(
            ".{key:016x}.{}.{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        match self.commit(&tmp, key, &record) {
            Ok(()) => {
                self.recorder.add("ckpt.store.put", 1);
                self.recorder
                    .add("ckpt.store.bytes_written", record.len() as u64);
                Ok(())
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                self.recorder.add("ckpt.store.put_error", 1);
                Err(e)
            }
        }
    }

    /// The write-then-rename commit path, with its `fault-inject` points:
    /// an injected put failure simulates a disk filling mid-write by
    /// leaving a torn temp file and returning an error (the caller's
    /// cleanup removes it); an injected torn rename reports success but
    /// leaves half a record at the destination, which the read path must
    /// detect and heal.
    fn commit(&self, tmp: &Path, key: u64, record: &[u8]) -> io::Result<()> {
        #[cfg(feature = "fault-inject")]
        match crate::faults::on_put() {
            Some(crate::faults::PutFault::Fail(err)) => {
                let _ = fs::write(tmp, &record[..record.len() / 2]);
                return Err(err);
            }
            Some(crate::faults::PutFault::TornRename) => {
                fs::write(tmp, record)?;
                fs::write(self.path_for(key), &record[..record.len() / 2])?;
                fs::remove_file(tmp)?;
                return Ok(());
            }
            None => {}
        }
        {
            let mut f = fs::File::create(tmp)?;
            f.write_all(record)?;
            self.fsync_file(&f)?;
        }
        fs::rename(tmp, self.path_for(key))?;
        self.fsync_dir()
    }

    /// Flushes a written temp file to stable storage (durability barrier
    /// one of two; see [`Store::fsync_dir`]).
    fn fsync_file(&self, f: &fs::File) -> io::Result<()> {
        #[cfg(feature = "fault-inject")]
        if crate::faults::on_fsync() {
            return Ok(());
        }
        f.sync_all()?;
        self.recorder.add("ckpt.store.fsync", 1);
        Ok(())
    }

    /// Flushes the store directory so the rename itself — not just the
    /// file contents — survives power loss (barrier two of two).
    fn fsync_dir(&self) -> io::Result<()> {
        #[cfg(feature = "fault-inject")]
        if crate::faults::on_fsync() {
            return Ok(());
        }
        fs::File::open(&self.dir)?.sync_all()?;
        self.recorder.add("ckpt.store.fsync", 1);
        Ok(())
    }

    /// Reads the payload stored under `key`. Returns `None` when the
    /// record is missing or fails any validation (magic, version, key,
    /// length, checksum) — corrupt records are never served.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        self.get_checked(key).ok()
    }

    /// Like [`Store::get`], but reporting *why* nothing was served:
    /// [`RecordError::Missing`] for a key that was never written,
    /// [`RecordError::Invalid`] for a file that exists but fails
    /// validation (self-healing callers quarantine and recompute those),
    /// [`RecordError::Io`] for an unreadable file.
    pub fn get_checked(&self, key: u64) -> Result<Vec<u8>, RecordError> {
        let result = self.get_checked_inner(key);
        self.recorder.add(
            match &result {
                Ok(_) => "ckpt.store.hit",
                Err(RecordError::Missing) => "ckpt.store.miss",
                Err(RecordError::Invalid(_)) => "ckpt.store.invalid",
                Err(RecordError::Io(..)) => "ckpt.store.io_error",
            },
            1,
        );
        if let Ok(payload) = &result {
            self.recorder
                .add("ckpt.store.bytes_read", payload.len() as u64);
        }
        result
    }

    fn get_checked_inner(&self, key: u64) -> Result<Vec<u8>, RecordError> {
        let path = self.path_for(key);
        #[allow(unused_mut)] // mutated only under `fault-inject`
        let mut bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(RecordError::Missing),
            Err(e) => return Err(RecordError::Io(e.kind(), e.to_string())),
        };
        #[cfg(feature = "fault-inject")]
        crate::faults::on_get(&mut bytes).map_err(|e| RecordError::Io(e.kind(), e.to_string()))?;
        parse_record(&bytes, key)
            .map(<[u8]>::to_vec)
            .map_err(RecordError::Invalid)
    }

    /// Removes the record under `key` if present.
    pub fn remove(&self, key: u64) -> io::Result<()> {
        match fs::remove_file(self.path_for(key)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    /// The sidecar directory quarantined files are moved into (not
    /// created until something is quarantined).
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join(QUARANTINE_DIR)
    }

    /// Moves the file holding `key`'s record — however invalid — into the
    /// quarantine sidecar, preserving its name for post-mortem inspection.
    /// Returns the destination, or `Ok(None)` when no file exists. A
    /// later [`Store::put`] under the same key then re-creates a healthy
    /// record in the main directory.
    pub fn quarantine(&self, key: u64) -> io::Result<Option<PathBuf>> {
        let src = self.path_for(key);
        if !src.exists() {
            return Ok(None);
        }
        let dst = self.quarantine_dir().join(format!("{key:016x}.rec"));
        fs::create_dir_all(self.quarantine_dir())?;
        fs::rename(&src, &dst)?;
        self.recorder.add("ckpt.store.quarantined", 1);
        Ok(Some(dst))
    }

    /// Scans every file in the store directory (quarantine sidecar
    /// excluded), validating each record against the key its name claims,
    /// and moves everything unservable — corrupt, torn, stale-version,
    /// key-mismatched, or foreign files, plus leftover `.tmp` files —
    /// into the quarantine sidecar. Valid records are untouched. Files
    /// are visited in name order, so the report is deterministic.
    ///
    /// Intended as a maintenance sweep while no writers are active: a
    /// concurrent `put`'s in-flight temp file would be indistinguishable
    /// from a stale one.
    pub fn verify_all(&self) -> io::Result<VerifyReport> {
        let mut names: Vec<std::ffi::OsString> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                continue; // the quarantine sidecar (or anything foreign)
            }
            names.push(entry.file_name());
        }
        names.sort();
        let mut report = VerifyReport::default();
        for name in names {
            report.checked += 1;
            let path = self.dir.join(&name);
            let (key, fault) = match record_key_of(&name) {
                Some(key) => match fs::read(&path) {
                    Ok(bytes) => match parse_record(&bytes, key) {
                        Ok(_) => {
                            report.healthy += 1;
                            continue;
                        }
                        Err(fault) => (Some(key), fault),
                    },
                    // Unreadable on a healthy filesystem means torn badly
                    // enough that metadata survives but data does not.
                    Err(_) => (Some(key), RecordFault::TooShort),
                },
                None if name.to_string_lossy().ends_with(".tmp") => (None, RecordFault::StaleTemp),
                None => (None, RecordFault::ForeignFile),
            };
            fs::create_dir_all(self.quarantine_dir())?;
            let dst = self.quarantine_dir().join(&name);
            fs::rename(&path, &dst)?;
            report.quarantined.push(Quarantined {
                key,
                path: dst,
                fault,
            });
        }
        Ok(report)
    }

    /// Mark-and-sweep: deletes every record file whose key `is_live`
    /// rejects, in file-name order. The quarantine sidecar, stale temp
    /// files, and foreign files are never touched — GC reclaims only
    /// well-formed record names, and evidence is [`Store::verify_all`]'s
    /// business, not GC's. Each deletion is individually atomic, so a
    /// crash mid-sweep leaves a store that is merely less collected,
    /// never less correct.
    ///
    /// Callers own consistency: the liveness predicate must cover every
    /// record any concurrent writer could still need (over-approximating
    /// liveness is always safe; `pgss-serve` holds its scheduler lock
    /// across mark and sweep for exactly this reason).
    pub fn gc(&self, is_live: impl Fn(u64) -> bool) -> io::Result<GcReport> {
        let mut names: Vec<std::ffi::OsString> = fs::read_dir(&self.dir)?
            .filter_map(|entry| {
                let name = entry.ok()?.file_name();
                record_key_of(&name).map(|_| name)
            })
            .collect();
        names.sort();
        let mut report = GcReport::default();
        for name in names {
            let Some(key) = record_key_of(&name) else {
                continue;
            };
            report.checked += 1;
            if is_live(key) {
                report.live += 1;
                continue;
            }
            let path = self.dir.join(&name);
            let len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            match fs::remove_file(&path) {
                Ok(()) => {
                    report.swept += 1;
                    report.bytes_freed += len;
                }
                // A concurrent quarantine or remove got there first.
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        self.recorder.add("ckpt.gc.runs", 1);
        self.recorder.add("ckpt.gc.live", report.live as u64);
        self.recorder.add("ckpt.gc.swept", report.swept as u64);
        self.recorder.add("ckpt.gc.bytes_freed", report.bytes_freed);
        Ok(report)
    }
}

/// Parses `{key:016x}.rec` file names back to their key.
fn record_key_of(name: &std::ffi::OsStr) -> Option<u64> {
    let name = name.to_str()?;
    let hex = name.strip_suffix(".rec")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn parse_record(bytes: &[u8], key: u64) -> Result<&[u8], RecordFault> {
    if bytes.len() < 36 {
        return Err(RecordFault::TooShort);
    }
    if &bytes[..8] != MAGIC {
        return Err(RecordFault::BadMagic);
    }
    let mut d = Decoder::new(&bytes[8..]);
    let header = (|| {
        Ok::<_, crate::codec::CodecError>((d.get_u32()?, d.get_u64()?, d.get_u64()?, d.get_u64()?))
    })();
    let Ok((version, rec_key, len, check)) = header else {
        return Err(RecordFault::TooShort);
    };
    if version != STORE_FORMAT_VERSION {
        return Err(RecordFault::BadVersion);
    }
    if rec_key != key {
        return Err(RecordFault::KeyMismatch);
    }
    let payload = &bytes[36..];
    if payload.len() as u64 != len {
        return Err(RecordFault::LengthMismatch);
    }
    if fnv1a64(payload) != check {
        return Err(RecordFault::ChecksumMismatch);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pgss-ckpt-{name}-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip_and_overwrite() {
        let dir = scratch("roundtrip");
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get(7), None);
        s.put(7, b"hello").unwrap();
        assert_eq!(s.get(7).as_deref(), Some(&b"hello"[..]));
        s.put(7, b"world").unwrap();
        assert_eq!(s.get(7).as_deref(), Some(&b"world"[..]));
        s.remove(7).unwrap();
        assert_eq!(s.get(7), None);
        s.remove(7).unwrap(); // idempotent
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_payload_is_a_valid_record() {
        let dir = scratch("empty");
        let s = Store::open(&dir).unwrap();
        s.put(1, b"").unwrap();
        assert_eq!(s.get(1).as_deref(), Some(&b""[..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_records_read_as_absent() {
        let dir = scratch("torn");
        let s = Store::open(&dir).unwrap();
        s.put(9, b"some payload that matters").unwrap();
        let path = s.path_for(9);
        let full = fs::read(&path).unwrap();
        for cut in [0, 3, 8, 20, 35, full.len() - 1] {
            fs::write(&path, &full[..cut]).unwrap();
            assert_eq!(s.get(9), None, "torn at {cut} bytes served data");
        }
        // Restoring the full record serves again.
        fs::write(&path, &full).unwrap();
        assert!(s.get(9).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_payload_and_garbage_read_as_absent() {
        let dir = scratch("corrupt");
        let s = Store::open(&dir).unwrap();
        s.put(3, b"checksummed payload").unwrap();
        let path = s.path_for(3);
        let mut bytes = fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() ^= 0x40; // flip one payload bit
        fs::write(&path, &bytes).unwrap();
        assert_eq!(s.get(3), None);
        // Outright garbage in place of a record.
        fs::write(&path, b"not a checkpoint record at all").unwrap();
        assert_eq!(s.get(3), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_and_key_mismatches_read_as_absent() {
        let dir = scratch("version");
        let s = Store::open(&dir).unwrap();
        s.put(5, b"payload").unwrap();
        let path = s.path_for(5);
        let good = fs::read(&path).unwrap();

        let mut stale = good.clone();
        stale[8] = stale[8].wrapping_add(1); // bump the version field
        fs::write(&path, &stale).unwrap();
        assert_eq!(s.get(5), None, "stale-version record served");

        let mut wrong_key = good.clone();
        wrong_key[12] ^= 0xff; // record claims a different key
        fs::write(&path, &wrong_key).unwrap();
        assert_eq!(s.get(5), None, "key-mismatched record served");

        fs::write(&path, &good).unwrap();
        assert!(s.get(5).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_checked_distinguishes_missing_invalid_and_healthy() {
        let dir = scratch("checked");
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get_checked(4), Err(RecordError::Missing));
        s.put(4, b"payload").unwrap();
        assert_eq!(s.get_checked(4).as_deref(), Ok(&b"payload"[..]));
        let path = s.path_for(4);
        let mut bytes = fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(
            s.get_checked(4),
            Err(RecordError::Invalid(RecordFault::ChecksumMismatch))
        );
        fs::write(&path, &bytes[..10]).unwrap();
        assert_eq!(
            s.get_checked(4),
            Err(RecordError::Invalid(RecordFault::TooShort))
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_moves_the_bad_file_aside_and_heals_on_next_put() {
        let dir = scratch("quarantine");
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.quarantine(8).unwrap(), None, "nothing to quarantine");
        s.put(8, b"rotting payload").unwrap();
        fs::write(s.path_for(8), b"garbage").unwrap();
        let dst = s.quarantine(8).unwrap().expect("file moved");
        assert!(dst.starts_with(s.quarantine_dir()));
        assert_eq!(fs::read(&dst).unwrap(), b"garbage", "evidence preserved");
        assert_eq!(s.get_checked(8), Err(RecordError::Missing));
        // The key is usable again: a fresh put re-creates a healthy record.
        s.put(8, b"healed").unwrap();
        assert_eq!(s.get(8).as_deref(), Some(&b"healed"[..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_all_quarantines_every_fault_class_and_keeps_healthy_records() {
        let dir = scratch("verify");
        let s = Store::open(&dir).unwrap();
        s.put(1, b"healthy one").unwrap();
        s.put(2, b"healthy two").unwrap();
        // Corrupt payload.
        s.put(3, b"will rot").unwrap();
        let mut bytes = fs::read(s.path_for(3)).unwrap();
        *bytes.last_mut().unwrap() ^= 0x01;
        fs::write(s.path_for(3), &bytes).unwrap();
        // Stale version.
        s.put(4, b"stale").unwrap();
        let mut bytes = fs::read(s.path_for(4)).unwrap();
        bytes[8] = bytes[8].wrapping_add(1);
        fs::write(s.path_for(4), &bytes).unwrap();
        // Torn write, foreign file, stale temp.
        s.put(5, b"torn").unwrap();
        let bytes = fs::read(s.path_for(5)).unwrap();
        fs::write(s.path_for(5), &bytes[..20]).unwrap();
        fs::write(dir.join("notes.txt"), b"not a record").unwrap();
        fs::write(dir.join(".0000000000000007.99.0.tmp"), b"interrupted").unwrap();

        let report = s.verify_all().unwrap();
        assert_eq!(report.checked, 7);
        assert_eq!(report.healthy, 2);
        assert!(!report.is_healthy());
        let faults: Vec<(Option<u64>, RecordFault)> = report
            .quarantined
            .iter()
            .map(|q| (q.key, q.fault))
            .collect();
        assert!(faults.contains(&(Some(3), RecordFault::ChecksumMismatch)));
        assert!(faults.contains(&(Some(4), RecordFault::BadVersion)));
        assert!(faults.contains(&(Some(5), RecordFault::TooShort)));
        assert!(faults.contains(&(None, RecordFault::ForeignFile)));
        assert!(faults.contains(&(None, RecordFault::StaleTemp)));
        for q in &report.quarantined {
            assert!(q.path.exists(), "{:?} not preserved", q.path);
        }
        // Healthy records still served; quarantined keys read as missing.
        assert!(s.get(1).is_some() && s.get(2).is_some());
        assert_eq!(s.get_checked(3), Err(RecordError::Missing));
        // A second sweep (over the now-clean directory) finds no faults.
        let again = s.verify_all().unwrap();
        assert!(again.is_healthy());
        assert_eq!(again.healthy, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_put_leaves_no_torn_record_and_no_temp_file() {
        let dir = scratch("failed-put");
        let s = Store::open(&dir).unwrap();
        s.put(6, b"survivor").unwrap();
        // Force the rename to fail: make the destination path a directory.
        fs::create_dir_all(s.path_for(7)).unwrap();
        assert!(s.put(7, b"doomed").is_err());
        fs::remove_dir(s.path_for(7)).unwrap();
        let leftovers: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| *n != format!("{:016x}.rec", 6))
            .collect();
        assert!(
            leftovers.is_empty(),
            "failed put left files behind: {leftovers:?}"
        );
        assert_eq!(s.get(6).as_deref(), Some(&b"survivor"[..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_put_failure_cleans_up_its_torn_temp_file() {
        let dir = scratch("inject-put");
        let s = Store::open(&dir).unwrap();
        let _guard = crate::faults::install(crate::faults::StoreFaultPlan {
            fail_puts: vec![0],
            ..crate::faults::StoreFaultPlan::default()
        });
        assert!(s.put(9, b"never lands").is_err());
        assert_eq!(
            fs::read_dir(&dir).unwrap().count(),
            0,
            "injected put failure left a file behind"
        );
        // The next put (no longer sabotaged) succeeds normally.
        s.put(9, b"lands").unwrap();
        assert_eq!(s.get(9).as_deref(), Some(&b"lands"[..]));
        assert_eq!(crate::faults::injection_log().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_get_faults_surface_as_io_corrupt_and_torn() {
        let dir = scratch("inject-get");
        let s = Store::open(&dir).unwrap();
        s.put(10, b"pristine on disk").unwrap();
        let _guard = crate::faults::install(crate::faults::StoreFaultPlan {
            fail_gets: vec![0],
            corrupt_gets: vec![1],
            truncate_gets: vec![2],
            ..crate::faults::StoreFaultPlan::default()
        });
        assert!(matches!(s.get_checked(10), Err(RecordError::Io(..))));
        assert_eq!(
            s.get_checked(10),
            Err(RecordError::Invalid(RecordFault::ChecksumMismatch))
        );
        assert!(matches!(
            s.get_checked(10),
            Err(RecordError::Invalid(RecordFault::TooShort))
        ));
        // Past the plan, the untouched on-disk record serves again.
        assert_eq!(s.get(10).as_deref(), Some(&b"pristine on disk"[..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recorder_counts_hits_misses_invalid_and_quarantines() {
        let dir = scratch("recorder");
        let rec = Arc::new(pgss_obs::MetricsRecorder::new());
        let s = Store::open(&dir)
            .unwrap()
            .with_recorder(Arc::clone(&rec) as Arc<dyn Recorder>);
        assert_eq!(s.get(1), None); // miss
        s.put(1, b"payload").unwrap();
        assert!(s.get(1).is_some()); // hit
        let mut bytes = fs::read(s.path_for(1)).unwrap();
        *bytes.last_mut().unwrap() ^= 0x01;
        fs::write(s.path_for(1), &bytes).unwrap();
        assert_eq!(s.get(1), None); // invalid
        s.quarantine(1).unwrap().expect("moved aside");

        let frame = rec.frame();
        assert_eq!(frame.counter("ckpt.store.miss"), 1);
        assert_eq!(frame.counter("ckpt.store.hit"), 1);
        assert_eq!(frame.counter("ckpt.store.invalid"), 1);
        assert_eq!(frame.counter("ckpt.store.quarantined"), 1);
        assert_eq!(frame.counter("ckpt.store.put"), 1);
        assert_eq!(frame.counter("ckpt.store.bytes_read"), 7);
        assert!(frame.counter("ckpt.store.bytes_written") > 7);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_sweeps_garbage_but_spares_live_records_and_quarantine() {
        let dir = scratch("gc");
        let s = Store::open(&dir).unwrap();
        s.put(1, b"live one").unwrap();
        s.put(2, b"garbage").unwrap();
        s.put(3, b"live two").unwrap();
        s.put(4, b"rotting").unwrap();
        fs::write(s.path_for(4), b"junk").unwrap();
        s.quarantine(4).unwrap().expect("moved aside");
        // A stale temp and a foreign file must survive a sweep untouched.
        fs::write(dir.join(".0000000000000009.1.0.tmp"), b"interrupted").unwrap();
        fs::write(dir.join("notes.txt"), b"not a record").unwrap();

        let garbage_len = fs::metadata(s.path_for(2)).unwrap().len();
        let report = s.gc(|k| k == 1 || k == 3).unwrap();
        assert_eq!(
            report,
            GcReport {
                checked: 3,
                live: 2,
                swept: 1,
                bytes_freed: garbage_len,
            }
        );
        assert!(s.get(1).is_some() && s.get(3).is_some());
        assert_eq!(s.get_checked(2), Err(RecordError::Missing));
        assert!(
            s.quarantine_dir().join(format!("{:016x}.rec", 4)).exists(),
            "gc touched the quarantine sidecar"
        );
        assert!(dir.join(".0000000000000009.1.0.tmp").exists());
        assert!(dir.join("notes.txt").exists());
        // A second sweep over the same live set is a no-op.
        let again = s.gc(|k| k == 1 || k == 3).unwrap();
        assert_eq!(again.swept, 0);
        assert_eq!(again.live, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_rejects_puts_until_gc_frees_garbage() {
        let dir = scratch("budget");
        // Records are 36 header bytes + payload; budget fits two of these
        // 44-byte records but not three.
        let s = Store::open(&dir).unwrap().with_budget(100);
        assert_eq!(s.budget(), Some(100));
        s.put(1, b"payload1").unwrap();
        s.put(2, b"payload2").unwrap();
        let used = s.usage_bytes().unwrap();
        assert_eq!(used, 88);
        let err = s.put(3, b"payload3").unwrap_err();
        assert!(is_budget_error(&err), "unexpected error: {err}");
        assert_eq!(s.get(3), None, "rejected put must touch nothing");
        // Freeing garbage re-admits the write.
        s.gc(|k| k == 1).unwrap();
        s.put(3, b"payload3").unwrap();
        assert_eq!(s.get(3).as_deref(), Some(&b"payload3"[..]));
        // Real I/O failures are not budget errors.
        assert!(!is_budget_error(&io::Error::other("disk on fire")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn put_fsyncs_file_and_directory() {
        let dir = scratch("fsync");
        let rec = Arc::new(pgss_obs::MetricsRecorder::new());
        let s = Store::open(&dir)
            .unwrap()
            .with_recorder(Arc::clone(&rec) as Arc<dyn Recorder>);
        s.put(1, b"durable").unwrap();
        assert_eq!(
            rec.frame().counter("ckpt.store.fsync"),
            2,
            "one barrier for the temp file, one for the rename"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn dropped_fsyncs_are_observable_through_the_counter() {
        let dir = scratch("drop-fsync");
        let rec = Arc::new(pgss_obs::MetricsRecorder::new());
        let s = Store::open(&dir)
            .unwrap()
            .with_recorder(Arc::clone(&rec) as Arc<dyn Recorder>);
        let _guard = crate::faults::install(crate::faults::StoreFaultPlan {
            drop_fsyncs: true,
            ..crate::faults::StoreFaultPlan::default()
        });
        s.put(1, b"undurable").unwrap();
        assert_eq!(
            rec.frame().counter("ckpt.store.fsync"),
            0,
            "the knob must drop both barriers"
        );
        assert_eq!(
            crate::faults::injection_log(),
            vec!["fsync: dropped".to_string(); 2]
        );
        // The record still reads back — only durability was sacrificed.
        assert_eq!(s.get(1).as_deref(), Some(&b"undurable"[..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn torn_rename_reports_success_but_reads_detect_the_tear() {
        let dir = scratch("torn-rename");
        let s = Store::open(&dir).unwrap();
        let _guard = crate::faults::install(crate::faults::StoreFaultPlan {
            torn_renames: vec![0],
            ..crate::faults::StoreFaultPlan::default()
        });
        s.put(5, b"a payload long enough to tear")
            .expect("torn rename lies about success");
        assert!(matches!(
            s.get_checked(5),
            Err(RecordError::Invalid(RecordFault::TooShort))
        ));
        // The standard healing path: quarantine the tear, rewrite.
        s.quarantine(5)
            .unwrap()
            .expect("tear preserved as evidence");
        s.put(5, b"a payload long enough to tear").unwrap();
        assert!(s.get(5).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn disk_full_rejects_every_put_from_the_named_op() {
        let dir = scratch("disk-full");
        let s = Store::open(&dir).unwrap();
        let _guard = crate::faults::install(crate::faults::StoreFaultPlan {
            full_after_puts: Some(1),
            ..crate::faults::StoreFaultPlan::default()
        });
        s.put(1, b"fits").unwrap();
        assert!(s.put(2, b"disk full").is_err());
        assert!(s.put(3, b"still full").is_err());
        assert_eq!(s.get(1).as_deref(), Some(&b"fits"[..]));
        assert_eq!(s.get(2), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_agree() {
        let dir = scratch("concurrent");
        let s = Store::open(&dir).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        s.put(11, b"identical payload").unwrap();
                        // Reads racing the writers must see either absence
                        // or the complete payload, never a torn one.
                        if let Some(p) = s.get(11) {
                            assert_eq!(p, b"identical payload");
                        }
                    }
                });
            }
        });
        assert_eq!(s.get(11).as_deref(), Some(&b"identical payload"[..]));
        let _ = fs::remove_dir_all(&dir);
    }
}
