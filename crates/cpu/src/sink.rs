//! Retirement event hooks used by basic-block-vector trackers.

/// Observes instruction retirement events from a running [`crate::Machine`].
///
/// Both the paper's hashed BBV (which records taken branches and the number
/// of retired operations since the last taken branch) and SimPoint-style full
/// BBVs (which count retired instructions per static basic block) are driven
/// from this trait. Methods have empty default bodies, and
/// [`crate::Machine::run_with`] is generic over the sink, so an unused hook
/// costs nothing after monomorphization.
pub trait RetireSink {
    /// Called after every retired instruction with its address.
    #[inline]
    fn retire(&mut self, pc: u32) {
        let _ = pc;
    }

    /// Called when a taken control transfer retires (conditional branch that
    /// was taken, or any jump), with the transfer's address and the number of
    /// retired instructions since the previous taken transfer — the quantity
    /// the paper's hashed-BBV hardware accumulates. The count includes the
    /// transfer instruction itself.
    #[inline]
    fn taken_branch(&mut self, pc: u32, ops_since_last: u64) {
        let _ = (pc, ops_since_last);
    }

    /// Called when a straight-line run of `len` instructions starting at
    /// `start_pc` retires as one superblock, equivalent to `len`
    /// consecutive [`RetireSink::retire`] calls (the default body *is*
    /// that loop). Sinks that can absorb a whole run at once — or ignore
    /// per-op retirement entirely, like the hashed-BBV tracker — override
    /// this so the decoded core pays one call per run instead of one per
    /// op.
    #[inline]
    fn retire_run(&mut self, start_pc: u32, len: u32) {
        for k in 0..len {
            self.retire(start_pc + k);
        }
    }

    /// Called when a data-memory access (load or store, integer or FP)
    /// retires, with its *word* address — post effective-address wrap, so
    /// always within the machine's memory. Memory-Access-Vector trackers
    /// bin these addresses into coarse regions to form an alternative
    /// phase signature; every other sink leaves the default no-op body.
    #[inline]
    fn data_access(&mut self, addr: u64) {
        let _ = addr;
    }
}

/// A sink that ignores every event; the default for [`crate::Machine::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl RetireSink for NoopSink {
    #[inline]
    fn retire_run(&mut self, _start_pc: u32, _len: u32) {}
}

impl<S: RetireSink + ?Sized> RetireSink for &mut S {
    #[inline]
    fn retire(&mut self, pc: u32) {
        (**self).retire(pc);
    }

    #[inline]
    fn taken_branch(&mut self, pc: u32, ops_since_last: u64) {
        (**self).taken_branch(pc, ops_since_last);
    }

    #[inline]
    fn retire_run(&mut self, start_pc: u32, len: u32) {
        (**self).retire_run(start_pc, len);
    }

    #[inline]
    fn data_access(&mut self, addr: u64) {
        (**self).data_access(addr);
    }
}

/// Sinks compose: a pair delivers every event to both members, so BBV
/// tracking and run-trace counters can stack on a single
/// [`crate::Machine::run_with`] call instead of needing separate paths.
/// Pairs nest — `(a, (b, c))` fans out to three sinks.
impl<A: RetireSink, B: RetireSink> RetireSink for (A, B) {
    #[inline]
    fn retire(&mut self, pc: u32) {
        self.0.retire(pc);
        self.1.retire(pc);
    }

    #[inline]
    fn taken_branch(&mut self, pc: u32, ops_since_last: u64) {
        self.0.taken_branch(pc, ops_since_last);
        self.1.taken_branch(pc, ops_since_last);
    }

    #[inline]
    fn retire_run(&mut self, start_pc: u32, len: u32) {
        self.0.retire_run(start_pc, len);
        self.1.retire_run(start_pc, len);
    }

    #[inline]
    fn data_access(&mut self, addr: u64) {
        self.0.data_access(addr);
        self.1.data_access(addr);
    }
}

/// Triples compose the same way pairs do; the driver's track sink is one
/// (hashed-BBV, full-BBV, MAV trackers, each optional).
impl<A: RetireSink, B: RetireSink, C: RetireSink> RetireSink for (A, B, C) {
    #[inline]
    fn retire(&mut self, pc: u32) {
        self.0.retire(pc);
        self.1.retire(pc);
        self.2.retire(pc);
    }

    #[inline]
    fn taken_branch(&mut self, pc: u32, ops_since_last: u64) {
        self.0.taken_branch(pc, ops_since_last);
        self.1.taken_branch(pc, ops_since_last);
        self.2.taken_branch(pc, ops_since_last);
    }

    #[inline]
    fn retire_run(&mut self, start_pc: u32, len: u32) {
        self.0.retire_run(start_pc, len);
        self.1.retire_run(start_pc, len);
        self.2.retire_run(start_pc, len);
    }

    #[inline]
    fn data_access(&mut self, addr: u64) {
        self.0.data_access(addr);
        self.1.data_access(addr);
        self.2.data_access(addr);
    }
}

/// A vector of sinks fans every event out to each element, for callers
/// that need a *dynamic* number of trackers on one run — e.g. a
/// checkpoint capture pass accumulating hashed BBVs for several seeds
/// at once.
impl<S: RetireSink> RetireSink for Vec<S> {
    #[inline]
    fn retire(&mut self, pc: u32) {
        for s in self.iter_mut() {
            s.retire(pc);
        }
    }

    #[inline]
    fn taken_branch(&mut self, pc: u32, ops_since_last: u64) {
        for s in self.iter_mut() {
            s.taken_branch(pc, ops_since_last);
        }
    }

    #[inline]
    fn retire_run(&mut self, start_pc: u32, len: u32) {
        for s in self.iter_mut() {
            s.retire_run(start_pc, len);
        }
    }

    #[inline]
    fn data_access(&mut self, addr: u64) {
        for s in self.iter_mut() {
            s.data_access(addr);
        }
    }
}

/// An absent sink is a no-op, so "maybe track BBVs" is `Option<Tracker>`
/// rather than a second run path; after monomorphization the `None` branch
/// is a predictable no-op.
impl<S: RetireSink> RetireSink for Option<S> {
    #[inline]
    fn retire(&mut self, pc: u32) {
        if let Some(s) = self {
            s.retire(pc);
        }
    }

    #[inline]
    fn taken_branch(&mut self, pc: u32, ops_since_last: u64) {
        if let Some(s) = self {
            s.taken_branch(pc, ops_since_last);
        }
    }

    #[inline]
    fn retire_run(&mut self, start_pc: u32, len: u32) {
        if let Some(s) = self {
            s.retire_run(start_pc, len);
        }
    }

    #[inline]
    fn data_access(&mut self, addr: u64) {
        if let Some(s) = self {
            s.data_access(addr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counting {
        retired: u64,
        takens: Vec<(u32, u64)>,
        accesses: Vec<u64>,
    }

    impl RetireSink for Counting {
        fn retire(&mut self, _pc: u32) {
            self.retired += 1;
        }
        fn taken_branch(&mut self, pc: u32, ops: u64) {
            self.takens.push((pc, ops));
        }
        fn data_access(&mut self, addr: u64) {
            self.accesses.push(addr);
        }
    }

    #[test]
    fn defaults_are_noops() {
        let mut s = NoopSink;
        s.retire(1);
        s.taken_branch(2, 3);
    }

    #[test]
    fn reference_forwarding_works() {
        let mut c = Counting::default();
        {
            let r: &mut Counting = &mut c;
            r.retire(0);
            r.taken_branch(5, 10);
        }
        assert_eq!(c.retired, 1);
        assert_eq!(c.takens, vec![(5, 10)]);
    }

    #[test]
    fn pairs_deliver_to_both_members() {
        let mut pair = (Counting::default(), Counting::default());
        pair.retire(1);
        pair.retire(2);
        pair.taken_branch(7, 3);
        assert_eq!(pair.0.retired, 2);
        assert_eq!(pair.1.retired, 2);
        assert_eq!(pair.0.takens, vec![(7, 3)]);
        assert_eq!(pair.1.takens, vec![(7, 3)]);
    }

    #[test]
    fn pairs_nest() {
        let mut nested = (Counting::default(), (Counting::default(), NoopSink));
        nested.taken_branch(9, 4);
        assert_eq!(nested.0.takens, vec![(9, 4)]);
        assert_eq!(nested.1 .0.takens, vec![(9, 4)]);
    }

    #[test]
    fn vec_sinks_deliver_to_every_element() {
        let mut v = vec![Counting::default(), Counting::default()];
        v.retire(3);
        v.taken_branch(4, 2);
        for c in &v {
            assert_eq!(c.retired, 1);
            assert_eq!(c.takens, vec![(4, 2)]);
        }
        let mut empty: Vec<Counting> = Vec::new();
        empty.retire(1); // harmless
    }

    #[test]
    fn retire_run_default_equals_per_op_retires() {
        let mut a = Counting::default();
        a.retire_run(10, 4);
        let mut b = Counting::default();
        for pc in 10..14 {
            b.retire(pc);
        }
        assert_eq!(a.retired, b.retired);

        // Forwarding impls deliver runs too.
        let mut pair = (Counting::default(), Some(Counting::default()));
        pair.retire_run(0, 3);
        assert_eq!(pair.0.retired, 3);
        assert_eq!(pair.1.as_ref().unwrap().retired, 3);
        let mut v = vec![Counting::default()];
        v.retire_run(5, 2);
        assert_eq!(v[0].retired, 2);
        NoopSink.retire_run(0, 100);
    }

    #[test]
    fn data_access_fans_out_like_other_events() {
        NoopSink.data_access(7); // default body: no-op

        let mut r = Counting::default();
        (&mut r).data_access(1);
        assert_eq!(r.accesses, vec![1]);

        let mut pair = (Counting::default(), Counting::default());
        pair.data_access(9);
        assert_eq!(pair.0.accesses, vec![9]);
        assert_eq!(pair.1.accesses, vec![9]);

        let mut triple = (Counting::default(), NoopSink, Some(Counting::default()));
        triple.data_access(4);
        triple.data_access(5);
        assert_eq!(triple.0.accesses, vec![4, 5]);
        assert_eq!(triple.2.as_ref().unwrap().accesses, vec![4, 5]);

        let mut v = vec![Counting::default(), Counting::default()];
        v.data_access(2);
        assert_eq!(v[0].accesses, vec![2]);
        assert_eq!(v[1].accesses, vec![2]);

        let mut none: Option<Counting> = None;
        none.data_access(3); // harmless
    }

    #[test]
    fn optional_sinks_noop_when_absent() {
        let mut none: Option<Counting> = None;
        none.retire(1);
        none.taken_branch(2, 3);
        let mut some = Some(Counting::default());
        some.retire(1);
        some.taken_branch(2, 3);
        let c = some.unwrap();
        assert_eq!(c.retired, 1);
        assert_eq!(c.takens, vec![(2, 3)]);
    }
}
