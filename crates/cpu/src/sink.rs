//! Retirement event hooks used by basic-block-vector trackers.

/// Observes instruction retirement events from a running [`crate::Machine`].
///
/// Both the paper's hashed BBV (which records taken branches and the number
/// of retired operations since the last taken branch) and SimPoint-style full
/// BBVs (which count retired instructions per static basic block) are driven
/// from this trait. Methods have empty default bodies, and
/// [`crate::Machine::run_with`] is generic over the sink, so an unused hook
/// costs nothing after monomorphization.
pub trait RetireSink {
    /// Called after every retired instruction with its address.
    #[inline]
    fn retire(&mut self, pc: u32) {
        let _ = pc;
    }

    /// Called when a taken control transfer retires (conditional branch that
    /// was taken, or any jump), with the transfer's address and the number of
    /// retired instructions since the previous taken transfer — the quantity
    /// the paper's hashed-BBV hardware accumulates. The count includes the
    /// transfer instruction itself.
    #[inline]
    fn taken_branch(&mut self, pc: u32, ops_since_last: u64) {
        let _ = (pc, ops_since_last);
    }
}

/// A sink that ignores every event; the default for [`crate::Machine::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl RetireSink for NoopSink {}

impl<S: RetireSink + ?Sized> RetireSink for &mut S {
    #[inline]
    fn retire(&mut self, pc: u32) {
        (**self).retire(pc);
    }

    #[inline]
    fn taken_branch(&mut self, pc: u32, ops_since_last: u64) {
        (**self).taken_branch(pc, ops_since_last);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counting {
        retired: u64,
        takens: Vec<(u32, u64)>,
    }

    impl RetireSink for Counting {
        fn retire(&mut self, _pc: u32) {
            self.retired += 1;
        }
        fn taken_branch(&mut self, pc: u32, ops: u64) {
            self.takens.push((pc, ops));
        }
    }

    #[test]
    fn defaults_are_noops() {
        let mut s = NoopSink;
        s.retire(1);
        s.taken_branch(2, 3);
    }

    #[test]
    fn reference_forwarding_works() {
        let mut c = Counting::default();
        {
            let r: &mut Counting = &mut c;
            r.retire(0);
            r.taken_branch(5, 10);
        }
        assert_eq!(c.retired, 1);
        assert_eq!(c.takens, vec![(5, 10)]);
    }
}
