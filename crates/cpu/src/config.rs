//! Machine configuration types.

/// Geometry of one set-associative cache.
///
/// All three fields must be powers of two; [`crate::Cache::new`] validates
/// this. `size_bytes / (line_bytes × associativity)` gives the set count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line (block) size in bytes.
    pub line_bytes: u64,
    /// Number of ways per set.
    pub associativity: u32,
}

impl CacheConfig {
    /// The paper's split L1 configuration: 64 KB, 4-way, 64-byte lines.
    pub fn l1_default() -> CacheConfig {
        CacheConfig {
            size_bytes: 64 * 1024,
            line_bytes: 64,
            associativity: 4,
        }
    }

    /// The paper's unified L2 configuration: 1 MB, 8-way, 64-byte lines.
    pub fn l2_default() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024 * 1024,
            line_bytes: 64,
            associativity: 8,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * u64::from(self.associativity))
    }
}

/// Branch predictor geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchPredictorConfig {
    /// Global history length in bits; the pattern history table has
    /// `2^history_bits` two-bit counters.
    pub history_bits: u32,
    /// Number of branch-target-buffer entries for indirect jumps (power of
    /// two).
    pub btb_entries: u32,
}

impl Default for BranchPredictorConfig {
    fn default() -> BranchPredictorConfig {
        BranchPredictorConfig {
            history_bits: 12,
            btb_entries: 512,
        }
    }
}

/// Operation and memory latencies, in cycles.
///
/// Values are load-to-use / issue-to-ready latencies for the in-order
/// scoreboard model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyConfig {
    /// Simple integer ALU operations.
    pub alu: u32,
    /// Integer multiply.
    pub mul: u32,
    /// Integer divide / remainder.
    pub div: u32,
    /// Floating-point add/subtract.
    pub fp_add: u32,
    /// Floating-point multiply.
    pub fp_mul: u32,
    /// Floating-point divide.
    pub fp_div: u32,
    /// Load hitting in the L1 data cache.
    pub l1_hit: u32,
    /// Load missing L1 but hitting the L2.
    pub l2_hit: u32,
    /// Load missing the whole hierarchy (main memory).
    pub memory: u32,
    /// Pipeline refill penalty on a branch misprediction.
    pub mispredict: u32,
}

impl Default for LatencyConfig {
    fn default() -> LatencyConfig {
        LatencyConfig {
            alu: 1,
            mul: 4,
            div: 12,
            fp_add: 3,
            fp_mul: 4,
            fp_div: 16,
            l1_hit: 3,
            l2_hit: 14,
            memory: 120,
            mispredict: 8,
        }
    }
}

/// Complete machine configuration.
///
/// [`MachineConfig::default`] reproduces the paper's evaluated machine:
/// 4-wide in-order issue, split 64 KB 4-way L1s, 1 MB unified L2.
///
/// # Example
///
/// ```
/// use pgss_cpu::MachineConfig;
///
/// let config = MachineConfig::default();
/// assert_eq!(config.issue_width, 4);
/// assert_eq!(config.l1d.size_bytes, 64 * 1024);
/// assert_eq!(config.l2.size_bytes, 1024 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Maximum instructions issued per cycle (the paper: 4).
    pub issue_width: u32,
    /// Instruction L1 cache geometry.
    pub l1i: CacheConfig,
    /// Data L1 cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 cache geometry.
    pub l2: CacheConfig,
    /// Branch predictor geometry.
    pub bpred: BranchPredictorConfig,
    /// Operation latencies.
    pub lat: LatencyConfig,
    /// Data memory size in 64-bit words; must be a power of two. Effective
    /// addresses wrap modulo this size (the machine has no MMU or fault
    /// model).
    pub memory_words: usize,
    /// Number of miss-status-holding registers: the maximum number of
    /// in-flight L1 data misses. A load or store that misses L1 while all
    /// MSHRs are busy stalls until one frees, bounding miss bandwidth as on
    /// a real in-order core.
    pub mshrs: u32,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            issue_width: 4,
            l1i: CacheConfig::l1_default(),
            l1d: CacheConfig::l1_default(),
            l2: CacheConfig::l2_default(),
            bpred: BranchPredictorConfig::default(),
            lat: LatencyConfig::default(),
            // 32 MiB of data memory: large enough that the memory-bound
            // workloads (art, mcf) overflow the 1 MB L2 by a wide margin.
            memory_words: 1 << 22,
            mshrs: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_machine() {
        let c = MachineConfig::default();
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.l1i, CacheConfig::l1_default());
        assert_eq!(c.l1d.associativity, 4);
        assert_eq!(c.l2.size_bytes, 1 << 20);
        assert!(c.memory_words.is_power_of_two());
    }

    #[test]
    fn set_counts() {
        assert_eq!(CacheConfig::l1_default().num_sets(), 256);
        assert_eq!(CacheConfig::l2_default().num_sets(), 2048);
    }
}
