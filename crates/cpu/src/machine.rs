//! The simulated machine: architectural state, the functional interpreter,
//! and the in-order superscalar timing model.

use std::fmt;

use pgss_isa::{Instr, Program};

use crate::bpred::{BranchPredictor, BranchPredictorState, Btb, BtbState};
use crate::cache::{MemSystem, MemSystemState};
use crate::config::MachineConfig;
use crate::sink::{NoopSink, RetireSink};

/// Bytes per encoded instruction, used to map instruction addresses onto
/// I-cache lines (a 64-byte line holds 16 instructions).
const INSTR_BYTES: u64 = 4;

/// Simulation fidelity level for a [`Machine::run`] call.
///
/// See the [crate-level documentation](crate) for how the modes map onto the
/// paper's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Pure functional execution; caches and predictors are *not* touched.
    FastForward,
    /// Functional execution that keeps caches and branch predictors warm
    /// (the paper's "functional fast-forwarding").
    Functional,
    /// Cycle-level simulation whose statistics are discarded (pre-sample
    /// warm-up of short-lifetime pipeline state).
    DetailedWarming,
    /// Cycle-level simulation whose cycles are reported.
    DetailedMeasured,
}

impl Mode {
    /// Returns `true` for the two cycle-level modes.
    #[inline]
    pub fn is_detailed(self) -> bool {
        matches!(self, Mode::DetailedWarming | Mode::DetailedMeasured)
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mode::FastForward => "fast-forward",
            Mode::Functional => "functional",
            Mode::DetailedWarming => "detailed-warming",
            Mode::DetailedMeasured => "detailed-measured",
        };
        f.write_str(s)
    }
}

/// Retired-instruction counters per [`Mode`], accumulated over a machine's
/// lifetime.
///
/// The paper counts "the number of instructions executed in detailed warming
/// and detailed simulation" as the cost of a technique;
/// [`ModeOps::detailed`] is exactly that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeOps {
    /// Instructions retired in [`Mode::FastForward`].
    pub fast_forward: u64,
    /// Instructions retired in [`Mode::Functional`].
    pub functional: u64,
    /// Instructions retired in [`Mode::DetailedWarming`].
    pub detailed_warming: u64,
    /// Instructions retired in [`Mode::DetailedMeasured`].
    pub detailed_measured: u64,
}

impl ModeOps {
    /// Total retired instructions across all modes.
    pub fn total(&self) -> u64 {
        self.fast_forward + self.functional + self.detailed_warming + self.detailed_measured
    }

    /// Instructions that required cycle-level simulation (warming +
    /// measured) — the paper's cost metric.
    pub fn detailed(&self) -> u64 {
        self.detailed_warming + self.detailed_measured
    }
}

/// The outcome of one [`Machine::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Instructions retired during this call.
    pub ops: u64,
    /// Cycles elapsed during this call. Zero for functional modes, which
    /// have no timing model.
    pub cycles: u64,
    /// `true` if the program executed [`pgss_isa::Instr::Halt`] during this
    /// call (or had already halted).
    pub halted: bool,
}

impl RunResult {
    /// Instructions per cycle for this run; `0.0` when no cycles elapsed.
    ///
    /// Only meaningful for [`Mode::DetailedMeasured`] runs.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ops as f64 / self.cycles as f64
        }
    }
}

/// Everything needed to resume a machine exactly where it left off:
/// full architectural state (PC, register files, memory image, retired
/// counters) plus the warm long-lifetime microarchitectural state
/// (cache tag arrays, branch-predictor tables).
///
/// Short-lifetime pipeline state (scoreboard, fetch stalls, MSHRs) is
/// deliberately *not* captured: it is only defined mid-detailed-run,
/// and [`Machine::restore`] leaves the machine in the same
/// "timing-stale" condition a functional run does, so the next detailed
/// run re-establishes it via detailed warming — exactly the paper's
/// checkpoint model. Restore-then-run is therefore bit-exact with an
/// uninterrupted run for any schedule whose checkpoints fall between
/// detailed regions.
///
/// Snapshots only make sense for the same program and
/// [`MachineConfig`] they were captured from; [`Machine::restore`]
/// asserts the shapes match, and the checkpoint store keys records by
/// workload identity and config so mismatches are never looked up.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    /// Program counter.
    pub pc: u32,
    /// Integer register file.
    pub regs: [i64; 32],
    /// Floating-point register file.
    pub fregs: [f64; 32],
    /// Data memory image.
    pub mem: Vec<i64>,
    /// Whether the program has halted.
    pub halted: bool,
    /// Per-mode retired-instruction counters.
    pub mode_ops: ModeOps,
    /// Retired ops since the last taken control transfer (in-flight
    /// BBV accumulation carry).
    pub ops_since_taken: u64,
    /// Cache hierarchy state.
    pub memsys: MemSystemState,
    /// Direction-predictor state.
    pub bpred: BranchPredictorState,
    /// Branch-target-buffer state.
    pub btb: BtbState,
}

impl PartialEq for MachineSnapshot {
    fn eq(&self, other: &Self) -> bool {
        // Float registers compare by bit pattern so a snapshot holding a
        // NaN still equals itself (IEEE `==` would make it unequal).
        let fregs_eq = self
            .fregs
            .iter()
            .zip(other.fregs.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        self.pc == other.pc
            && self.regs == other.regs
            && fregs_eq
            && self.mem == other.mem
            && self.halted == other.halted
            && self.mode_ops == other.mode_ops
            && self.ops_since_taken == other.ops_since_taken
            && self.memsys == other.memsys
            && self.bpred == other.bpred
            && self.btb == other.btb
    }
}

/// A simulated processor executing one [`Program`].
///
/// The machine owns all architectural state (registers, data memory, program
/// counter), the memory hierarchy, the branch predictors, and the timing
/// model. Sampling controllers drive it by alternating [`Machine::run`]
/// calls in different [`Mode`]s; architectural execution is bit-identical
/// across modes, so interleaving modes never changes program behaviour —
/// only what is modeled alongside it.
///
/// See the [crate-level example](crate) for typical use.
pub struct Machine {
    config: MachineConfig,
    instrs: Box<[Instr]>,
    pc: u32,
    regs: [i64; 32],
    fregs: [f64; 32],
    mem: Vec<i64>,
    addr_mask: u64,
    memsys: MemSystem,
    bpred: BranchPredictor,
    btb: Btb,
    halted: bool,
    mode_ops: ModeOps,
    /// Retired ops since the last taken control transfer (for
    /// [`RetireSink::taken_branch`]).
    ops_since_taken: u64,

    // ---- timing model state ----
    /// Current issue cycle.
    now: u64,
    /// Instructions already issued in cycle `now`.
    slots: u32,
    /// Cycle at which each register's value is available; integer file in
    /// `[0, 32)`, floating-point file in `[32, 64)`.
    reg_ready: [u64; 64],
    /// Earliest cycle the next instruction may issue due to fetch stalls and
    /// mispredict redirects.
    fetch_ready: u64,
    /// I-cache line of the most recent fetch (deduplicates same-line
    /// accesses; exact for LRU state).
    last_fetch_line: u64,
    /// Cleared by functional runs; a detailed run starting with stale timing
    /// state resets the pipeline scoreboard to the current cycle.
    timing_valid: bool,
    line_shift: u32,
    /// Completion cycle of each in-flight L1 data miss
    /// ([`MachineConfig::mshrs`] slots).
    mshr: Vec<u64>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &self.pc)
            .field("halted", &self.halted)
            .field("retired", &self.mode_ops.total())
            .field("cycle", &self.now)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Creates a machine executing `program` from address 0, with zeroed
    /// registers and memory and cold caches/predictors.
    ///
    /// # Panics
    ///
    /// Panics if `config.memory_words` is zero or not a power of two (see
    /// [`MachineConfig::memory_words`]).
    pub fn new(config: MachineConfig, program: &Program) -> Machine {
        assert!(
            config.memory_words.is_power_of_two(),
            "memory_words must be a power of two, got {}",
            config.memory_words
        );
        Machine {
            instrs: program.instrs().to_vec().into_boxed_slice(),
            pc: 0,
            regs: [0; 32],
            fregs: [0.0; 32],
            mem: vec![0; config.memory_words],
            addr_mask: config.memory_words as u64 - 1,
            memsys: MemSystem::new(&config),
            bpred: BranchPredictor::new(config.bpred),
            btb: Btb::new(config.bpred.btb_entries),
            halted: false,
            mode_ops: ModeOps::default(),
            ops_since_taken: 0,
            now: 0,
            slots: 0,
            reg_ready: [0; 64],
            fetch_ready: 0,
            last_fetch_line: u64::MAX,
            timing_valid: false,
            line_shift: config.l1i.line_bytes.trailing_zeros(),
            mshr: vec![0; config.mshrs.max(1) as usize],
            config,
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// `true` once the program has executed [`pgss_isa::Instr::Halt`].
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Total retired instructions across all modes.
    pub fn retired(&self) -> u64 {
        self.mode_ops.total()
    }

    /// Per-mode retired-instruction counters.
    pub fn mode_ops(&self) -> ModeOps {
        self.mode_ops
    }

    /// Current cycle of the timing model (advances only in detailed modes).
    pub fn cycle(&self) -> u64 {
        self.now
    }

    /// Read access to an integer register.
    pub fn reg(&self, index: usize) -> i64 {
        self.regs[index]
    }

    /// Read access to data memory.
    pub fn memory(&self) -> &[i64] {
        &self.mem
    }

    /// Mutable access to data memory, for pre-run initialization of workload
    /// data structures (arrays, pointer-chase rings, entropy tables).
    pub fn memory_mut(&mut self) -> &mut [i64] {
        &mut self.mem
    }

    /// The memory hierarchy (for hit-rate inspection).
    pub fn memsys(&self) -> &MemSystem {
        &self.memsys
    }

    /// The direction predictor (for misprediction-rate inspection).
    pub fn bpred(&self) -> &BranchPredictor {
        &self.bpred
    }

    /// Captures a [`MachineSnapshot`] of the current architectural and
    /// warm microarchitectural state.
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            pc: self.pc,
            regs: self.regs,
            fregs: self.fregs,
            mem: self.mem.clone(),
            halted: self.halted,
            mode_ops: self.mode_ops,
            ops_since_taken: self.ops_since_taken,
            memsys: self.memsys.save_state(),
            bpred: self.bpred.save_state(),
            btb: self.btb.save_state(),
        }
    }

    /// Restores state captured by [`Machine::snapshot`], leaving the
    /// timing model stale (as after a functional run) so the next
    /// detailed run re-warms pipeline state; subsequent execution is
    /// bit-exact with the machine the snapshot was taken from.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's memory image or any
    /// cache/predictor-table shape does not match this machine's
    /// configuration.
    pub fn restore(&mut self, snapshot: &MachineSnapshot) {
        assert_eq!(
            snapshot.mem.len(),
            self.mem.len(),
            "snapshot memory image does not match this machine's configuration"
        );
        self.pc = snapshot.pc;
        self.regs = snapshot.regs;
        self.fregs = snapshot.fregs;
        self.mem.clone_from(&snapshot.mem);
        self.halted = snapshot.halted;
        self.mode_ops = snapshot.mode_ops;
        self.ops_since_taken = snapshot.ops_since_taken;
        self.memsys.load_state(&snapshot.memsys);
        self.bpred.load_state(&snapshot.bpred);
        self.btb.load_state(&snapshot.btb);
        self.timing_valid = false;
    }

    /// Overrides the per-mode retired counters.
    ///
    /// Restoring a snapshot adopts the *capture pass's* counters; a
    /// driver that jumps over a stretch of execution via checkpoint
    /// restore uses this to re-charge the skipped instructions to the
    /// mode its own schedule would have executed them in, keeping cost
    /// accounting identical to an unaccelerated run.
    pub fn set_mode_ops(&mut self, mode_ops: ModeOps) {
        self.mode_ops = mode_ops;
    }

    /// Runs up to `max_ops` instructions in `mode` with no event sink.
    ///
    /// Returns early if the program halts. See [`Machine::run_with`].
    pub fn run(&mut self, mode: Mode, max_ops: u64) -> RunResult {
        self.run_with(mode, max_ops, &mut NoopSink)
    }

    /// Runs up to `max_ops` instructions in `mode`, delivering retirement
    /// events to `sink`.
    ///
    /// Architectural execution is identical in every mode; `mode` only
    /// selects what is modeled alongside it (cache/predictor warming,
    /// cycle-level timing) and which [`ModeOps`] bucket the retired
    /// instructions are charged to.
    pub fn run_with<S: RetireSink>(&mut self, mode: Mode, max_ops: u64, sink: &mut S) -> RunResult {
        if self.halted || max_ops == 0 {
            return RunResult {
                ops: 0,
                cycles: 0,
                halted: self.halted,
            };
        }
        let (ops, cycles) = match mode {
            Mode::FastForward => {
                self.timing_valid = false;
                (self.run_loop::<false, false, S>(max_ops, sink), 0)
            }
            Mode::Functional => {
                self.timing_valid = false;
                (self.run_loop::<false, true, S>(max_ops, sink), 0)
            }
            Mode::DetailedWarming | Mode::DetailedMeasured => {
                if !self.timing_valid {
                    // Pipeline state is stale after functional execution:
                    // every register is "ready now" and fetch restarts
                    // cleanly. Detailed warming exists to re-establish
                    // realistic occupancy before measurement.
                    self.reg_ready = [self.now; 64];
                    self.fetch_ready = self.now;
                    self.slots = 0;
                    self.last_fetch_line = u64::MAX;
                    self.mshr.fill(self.now);
                    self.timing_valid = true;
                }
                let start = self.now;
                let ops = self.run_loop::<true, true, S>(max_ops, sink);
                let cycles = if ops == 0 { 0 } else { self.now - start + 1 };
                (ops, cycles)
            }
        };
        match mode {
            Mode::FastForward => self.mode_ops.fast_forward += ops,
            Mode::Functional => self.mode_ops.functional += ops,
            Mode::DetailedWarming => self.mode_ops.detailed_warming += ops,
            Mode::DetailedMeasured => self.mode_ops.detailed_measured += ops,
        }
        RunResult {
            ops,
            cycles,
            halted: self.halted,
        }
    }

    /// Picks the issue cycle for an instruction whose operands are ready at
    /// `ready`, honouring program order, fetch stalls, and the issue width.
    #[inline(always)]
    fn issue_at(&mut self, ready: u64) -> u64 {
        let t = self.now.max(self.fetch_ready).max(ready);
        if t > self.now {
            self.now = t;
            self.slots = 0;
        }
        if self.slots >= self.config.issue_width {
            self.now += 1;
            self.slots = 0;
        }
        self.slots += 1;
        self.now
    }

    /// Issues a data-memory instruction whose operands are ready at `ready`
    /// with a cache access latency of `lat_cycles`. L1 misses
    /// (`is_miss`) must acquire a miss-status-holding register, stalling
    /// issue until one frees. Returns the completion cycle.
    #[inline(always)]
    fn issue_mem(&mut self, ready: u64, lat_cycles: u32, is_miss: bool) -> u64 {
        let mut ready = ready;
        let mut slot = usize::MAX;
        if is_miss {
            slot = 0;
            for k in 1..self.mshr.len() {
                if self.mshr[k] < self.mshr[slot] {
                    slot = k;
                }
            }
            ready = ready.max(self.mshr[slot]);
        }
        let t = self.issue_at(ready);
        let done = t + u64::from(lat_cycles);
        if is_miss {
            self.mshr[slot] = done;
        }
        done
    }

    /// The interpreter/timing loop, monomorphized per mode class.
    ///
    /// `DETAILED` enables the cycle-level model; `WARM` enables cache and
    /// predictor updates (always true when `DETAILED` is).
    fn run_loop<const DETAILED: bool, const WARM: bool, S: RetireSink>(
        &mut self,
        max_ops: u64,
        sink: &mut S,
    ) -> u64 {
        let lat = self.config.lat;
        let mut ops = 0u64;
        while ops < max_ops {
            let pc = self.pc;
            let instr = self.instrs[pc as usize];

            // Instruction fetch: touch the I-cache hierarchy once per line
            // transition (exact for LRU state, cheap for straight-line code).
            if WARM {
                let line = (u64::from(pc) * INSTR_BYTES) >> self.line_shift;
                if line != self.last_fetch_line {
                    self.last_fetch_line = line;
                    if DETAILED {
                        let fl = self.memsys.fetch_latency(u64::from(pc) * INSTR_BYTES);
                        if fl > 0 {
                            self.fetch_ready = self.fetch_ready.max(self.now) + u64::from(fl);
                        }
                    } else {
                        self.memsys.warm_fetch(u64::from(pc) * INSTR_BYTES);
                    }
                }
            }

            let mut next_pc = pc + 1;
            let mut taken = false;
            match instr {
                Instr::Alu { op, rd, rs, rt } => {
                    let a = self.regs[rs.index()];
                    let b = self.regs[rt.index()];
                    self.write_reg(rd.index(), op.apply(a, b));
                    if DETAILED {
                        let ready = self.reg_ready[rs.index()].max(self.reg_ready[rt.index()]);
                        let t = self.issue_at(ready);
                        self.reg_ready[rd.index()] = t + u64::from(alu_latency(op, lat));
                    }
                }
                Instr::AluImm { op, rd, rs, imm } => {
                    let a = self.regs[rs.index()];
                    self.write_reg(rd.index(), op.apply(a, imm));
                    if DETAILED {
                        let t = self.issue_at(self.reg_ready[rs.index()]);
                        self.reg_ready[rd.index()] = t + u64::from(alu_latency(op, lat));
                    }
                }
                Instr::Li { rd, imm } => {
                    self.write_reg(rd.index(), imm);
                    if DETAILED {
                        let t = self.issue_at(0);
                        self.reg_ready[rd.index()] = t + u64::from(lat.alu);
                    }
                }
                Instr::Fpu { op, fd, fs, ft } => {
                    let a = self.fregs[fs.index()];
                    let b = self.fregs[ft.index()];
                    self.fregs[fd.index()] = op.apply(a, b);
                    if DETAILED {
                        let ready =
                            self.reg_ready[32 + fs.index()].max(self.reg_ready[32 + ft.index()]);
                        let t = self.issue_at(ready);
                        self.reg_ready[32 + fd.index()] = t + u64::from(fpu_latency(op, lat));
                    }
                }
                Instr::Load { rd, base, offset } => {
                    let addr = self.effective(base.index(), offset);
                    let value = self.mem[addr as usize];
                    self.write_reg(rd.index(), value);
                    if DETAILED {
                        let l = self.memsys.load_latency(addr * 8);
                        let done = self.issue_mem(self.reg_ready[base.index()], l, l > lat.l1_hit);
                        self.reg_ready[rd.index()] = done;
                    } else if WARM {
                        self.memsys.warm_data(addr * 8);
                    }
                }
                Instr::Store { rs, base, offset } => {
                    let addr = self.effective(base.index(), offset);
                    self.mem[addr as usize] = self.regs[rs.index()];
                    if DETAILED {
                        let ready = self.reg_ready[rs.index()].max(self.reg_ready[base.index()]);
                        let l = self.memsys.store_latency(addr * 8);
                        let _ = self.issue_mem(ready, 0, l > 0);
                    } else if WARM {
                        self.memsys.warm_data(addr * 8);
                    }
                }
                Instr::FLoad { fd, base, offset } => {
                    let addr = self.effective(base.index(), offset);
                    self.fregs[fd.index()] = f64::from_bits(self.mem[addr as usize] as u64);
                    if DETAILED {
                        let l = self.memsys.load_latency(addr * 8);
                        let done = self.issue_mem(self.reg_ready[base.index()], l, l > lat.l1_hit);
                        self.reg_ready[32 + fd.index()] = done;
                    } else if WARM {
                        self.memsys.warm_data(addr * 8);
                    }
                }
                Instr::FStore { fs, base, offset } => {
                    let addr = self.effective(base.index(), offset);
                    self.mem[addr as usize] = self.fregs[fs.index()].to_bits() as i64;
                    if DETAILED {
                        let ready =
                            self.reg_ready[32 + fs.index()].max(self.reg_ready[base.index()]);
                        let l = self.memsys.store_latency(addr * 8);
                        let _ = self.issue_mem(ready, 0, l > 0);
                    } else if WARM {
                        self.memsys.warm_data(addr * 8);
                    }
                }
                Instr::Branch {
                    cond,
                    rs,
                    rt,
                    target,
                } => {
                    let a = self.regs[rs.index()];
                    let b = self.regs[rt.index()];
                    taken = cond.eval(a, b);
                    if taken {
                        next_pc = target;
                    }
                    if DETAILED {
                        let ready = self.reg_ready[rs.index()].max(self.reg_ready[rt.index()]);
                        let t = self.issue_at(ready);
                        let correct = self.bpred.predict_and_update(pc, taken);
                        if !correct {
                            self.fetch_ready = t + u64::from(lat.mispredict);
                        }
                    } else if WARM {
                        self.bpred.predict_and_update(pc, taken);
                    }
                }
                Instr::Jump { target } => {
                    next_pc = target;
                    taken = true;
                    if DETAILED {
                        let _ = self.issue_at(0);
                    }
                }
                Instr::Jal { target, link } => {
                    self.write_reg(link.index(), i64::from(pc) + 1);
                    next_pc = target;
                    taken = true;
                    if DETAILED {
                        let t = self.issue_at(0);
                        self.reg_ready[link.index()] = t + u64::from(lat.alu);
                    }
                }
                Instr::Jr { rs } => {
                    let target = self.regs[rs.index()] as u32;
                    assert!(
                        (target as usize) < self.instrs.len(),
                        "indirect jump at {pc} to out-of-range address {target}"
                    );
                    next_pc = target;
                    taken = true;
                    if DETAILED {
                        let t = self.issue_at(self.reg_ready[rs.index()]);
                        let correct = self.btb.predict_and_update(pc, target);
                        if !correct {
                            self.fetch_ready = t + u64::from(lat.mispredict);
                        }
                    } else if WARM {
                        self.btb.predict_and_update(pc, target);
                    }
                }
                Instr::Halt => {
                    self.halted = true;
                    if DETAILED {
                        let _ = self.issue_at(0);
                    }
                    ops += 1;
                    self.ops_since_taken += 1;
                    sink.retire(pc);
                    break;
                }
            }

            ops += 1;
            self.ops_since_taken += 1;
            sink.retire(pc);
            if taken {
                sink.taken_branch(pc, self.ops_since_taken);
                self.ops_since_taken = 0;
            }
            self.pc = next_pc;
        }
        ops
    }

    #[inline(always)]
    fn effective(&self, base: usize, offset: i64) -> u64 {
        (self.regs[base].wrapping_add(offset)) as u64 & self.addr_mask
    }

    #[inline(always)]
    fn write_reg(&mut self, index: usize, value: i64) {
        // r0 is hardwired to zero.
        if index != 0 {
            self.regs[index] = value;
        }
    }
}

#[inline(always)]
fn alu_latency(op: pgss_isa::AluOp, lat: crate::config::LatencyConfig) -> u32 {
    use pgss_isa::AluOp;
    match op {
        AluOp::Mul => lat.mul,
        AluOp::Div | AluOp::Rem => lat.div,
        _ => lat.alu,
    }
}

#[inline(always)]
fn fpu_latency(op: pgss_isa::FpuOp, lat: crate::config::LatencyConfig) -> u32 {
    use pgss_isa::FpuOp;
    match op {
        FpuOp::Add | FpuOp::Sub => lat.fp_add,
        FpuOp::Mul => lat.fp_mul,
        FpuOp::Div => lat.fp_div,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgss_isa::{Assembler, Cond, Reg};

    fn small_config() -> MachineConfig {
        MachineConfig {
            memory_words: 1 << 16,
            ..MachineConfig::default()
        }
    }

    /// A loop of `body` independent single-cycle ALU ops per iteration,
    /// iterated `iters` times (I-cache-resident so steady state dominates).
    fn independent_alu_program(body: usize, iters: i64) -> Program {
        let mut asm = Assembler::new();
        let (i, n) = (Reg::R20, Reg::R21);
        asm.li(i, 0);
        asm.li(n, iters);
        let top = asm.bind_new_label();
        for k in 0..body {
            // Rotate destinations over r1..r8 with sources r9..r10 (never
            // written) so there are no dependences.
            let rd = Reg::from_index(1 + (k % 8)).unwrap();
            asm.add(rd, Reg::R9, Reg::R10);
        }
        asm.addi(i, i, 1);
        asm.branch(Cond::Lt, i, n, top);
        asm.halt();
        asm.finish().unwrap()
    }

    /// A loop of `body` back-to-back dependent ALU ops per iteration.
    fn dependent_alu_program(body: usize, iters: i64) -> Program {
        let mut asm = Assembler::new();
        let (i, n) = (Reg::R20, Reg::R21);
        asm.li(i, 0);
        asm.li(n, iters);
        let top = asm.bind_new_label();
        for _ in 0..body {
            asm.addi(Reg::R1, Reg::R1, 1);
        }
        asm.addi(i, i, 1);
        asm.branch(Cond::Lt, i, n, top);
        asm.halt();
        asm.finish().unwrap()
    }

    #[test]
    fn independent_ops_reach_full_width() {
        let p = independent_alu_program(64, 1000);
        let mut m = Machine::new(small_config(), &p);
        let r = m.run(Mode::DetailedMeasured, u64::MAX);
        assert!(r.halted);
        let ipc = r.ipc();
        assert!(
            ipc > 3.5,
            "expected near-4 IPC for independent ALU ops, got {ipc}"
        );
    }

    #[test]
    fn dependent_chain_is_serialized() {
        let p = dependent_alu_program(64, 1000);
        let mut m = Machine::new(small_config(), &p);
        let r = m.run(Mode::DetailedMeasured, u64::MAX);
        let ipc = r.ipc();
        assert!(
            ipc < 1.2,
            "dependent chain should run near 1 IPC, got {ipc}"
        );
        assert!(
            ipc > 0.8,
            "dependent ALU chain should not be slower than 1/cycle, got {ipc}"
        );
    }

    #[test]
    fn architectural_result_is_mode_independent() {
        // Sum of 0..N computed by loop, run fully in each mode.
        let build = || {
            let mut asm = Assembler::new();
            let (sum, i, n) = (Reg::R1, Reg::R2, Reg::R3);
            asm.li(sum, 0);
            asm.li(i, 0);
            asm.li(n, 1000);
            let top = asm.bind_new_label();
            asm.add(sum, sum, i);
            asm.addi(i, i, 1);
            asm.branch(Cond::Lt, i, n, top);
            asm.halt();
            asm.finish().unwrap()
        };
        let expect = (0..1000i64).sum::<i64>();
        for mode in [Mode::FastForward, Mode::Functional, Mode::DetailedMeasured] {
            let p = build();
            let mut m = Machine::new(small_config(), &p);
            let r = m.run(mode, u64::MAX);
            assert!(r.halted);
            assert_eq!(m.reg(1), expect, "wrong sum in mode {mode}");
        }
    }

    #[test]
    fn interleaving_modes_preserves_architectural_state() {
        let p = dependent_alu_program(64, 200);
        let mut a = Machine::new(small_config(), &p);
        let mut b = Machine::new(small_config(), &p);
        a.run(Mode::Functional, u64::MAX);
        // b alternates modes every 777 ops.
        let mut flip = false;
        while !b.halted() {
            let mode = if flip {
                Mode::DetailedMeasured
            } else {
                Mode::Functional
            };
            b.run(mode, 777);
            flip = !flip;
        }
        assert_eq!(a.reg(1), b.reg(1));
        assert_eq!(a.retired(), b.retired());
    }

    #[test]
    fn cache_misses_slow_execution() {
        // Loads striding by exactly one line over a >L2-sized region miss
        // everywhere; the same loop over a tiny region hits in L1. Both
        // walks repeat so steady-state behaviour dominates.
        let build = |span_words: i64, reps: i64| {
            let mut asm = Assembler::new();
            let (i, n, v, step) = (Reg::R2, Reg::R3, Reg::R4, Reg::R5);
            let (r, nr) = (Reg::R6, Reg::R7);
            asm.li(r, 0);
            asm.li(nr, reps);
            asm.li(n, span_words);
            asm.li(step, 8); // 8 words = 64 bytes = one line
            let outer = asm.bind_new_label();
            asm.li(i, 0);
            let top = asm.bind_new_label();
            asm.load(v, i, 0);
            asm.add(i, i, step);
            asm.branch(Cond::Lt, i, n, top);
            asm.addi(r, r, 1);
            asm.branch(Cond::Lt, r, nr, outer);
            asm.halt();
            asm.finish().unwrap()
        };
        let cfg = MachineConfig {
            memory_words: 1 << 20,
            ..MachineConfig::default()
        };
        // Hot: loops inside 512 words (fits L1), repeated many times.
        let hot = build(512, 1000);
        let mut m_hot = Machine::new(cfg, &hot);
        // Cold: walk 1 << 19 words (4 MiB > 1 MiB L2) twice.
        let cold = build(1 << 19, 2);
        let mut m_cold = Machine::new(cfg, &cold);
        let rh = m_hot.run(Mode::DetailedMeasured, u64::MAX);
        let rc = m_cold.run(Mode::DetailedMeasured, u64::MAX);
        assert!(
            rc.ipc() < rh.ipc() / 2.0,
            "line-strided walk (ipc {}) should be much slower than L1-resident loop (ipc {})",
            rc.ipc(),
            rh.ipc()
        );
    }

    #[test]
    fn mispredicts_slow_execution() {
        // A data-dependent unpredictable branch vs an always-taken one.
        let build = |xorshift: bool| {
            let mut asm = Assembler::new();
            let (i, n, x, bit) = (Reg::R2, Reg::R3, Reg::R4, Reg::R5);
            asm.li(i, 0);
            asm.li(n, 20_000);
            asm.li(x, 0x1234_5678_9ABC_DEF0u64 as i64);
            let top = asm.bind_new_label();
            let skip = asm.new_label();
            if xorshift {
                // x ^= x << 13; x ^= x >> 7; x ^= x << 17 — pseudo-random bit.
                asm.slli(bit, x, 13);
                asm.xor(x, x, bit);
                asm.srli(bit, x, 7);
                asm.xor(x, x, bit);
                asm.slli(bit, x, 17);
                asm.xor(x, x, bit);
                asm.andi(bit, x, 1);
            } else {
                asm.nop();
                asm.nop();
                asm.nop();
                asm.nop();
                asm.nop();
                asm.nop();
                asm.li(bit, 0);
            }
            asm.branch(Cond::Ne, bit, Reg::R0, skip);
            asm.addi(i, i, 0);
            asm.bind(skip);
            asm.addi(i, i, 1);
            asm.branch(Cond::Lt, i, n, top);
            asm.halt();
            asm.finish().unwrap()
        };
        let predictable = build(false);
        let random = build(true);
        let mut mp = Machine::new(small_config(), &predictable);
        let mut mr = Machine::new(small_config(), &random);
        let rp = mp.run(Mode::DetailedMeasured, u64::MAX);
        let rr = mr.run(Mode::DetailedMeasured, u64::MAX);
        assert!(
            rr.ipc() < rp.ipc() * 0.8,
            "random branches (ipc {}) should be slower than predictable (ipc {})",
            rr.ipc(),
            rp.ipc()
        );
    }

    #[test]
    fn mode_ops_accounting() {
        let p = dependent_alu_program(64, 200);
        let mut m = Machine::new(small_config(), &p);
        m.run(Mode::FastForward, 1000);
        m.run(Mode::Functional, 2000);
        m.run(Mode::DetailedWarming, 3000);
        m.run(Mode::DetailedMeasured, 500);
        let ops = m.mode_ops();
        assert_eq!(ops.fast_forward, 1000);
        assert_eq!(ops.functional, 2000);
        assert_eq!(ops.detailed_warming, 3000);
        assert_eq!(ops.detailed_measured, 500);
        assert_eq!(ops.detailed(), 3500);
        assert_eq!(ops.total(), 6500);
        assert_eq!(m.retired(), 6500);
    }

    #[test]
    fn functional_runs_report_zero_cycles() {
        let p = dependent_alu_program(10, 10);
        let mut m = Machine::new(small_config(), &p);
        let r = m.run(Mode::Functional, 50);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.ops, 50);
        assert_eq!(r.ipc(), 0.0);
    }

    #[test]
    fn run_after_halt_is_empty() {
        let p = dependent_alu_program(1, 1);
        let mut m = Machine::new(small_config(), &p);
        let r1 = m.run(Mode::Functional, u64::MAX);
        assert!(r1.halted);
        let r2 = m.run(Mode::DetailedMeasured, 100);
        assert_eq!(r2.ops, 0);
        assert!(r2.halted);
    }

    #[test]
    fn max_ops_is_respected_exactly() {
        let p = dependent_alu_program(64, 200);
        let mut m = Machine::new(small_config(), &p);
        for chunk in [1u64, 7, 100, 4096] {
            let r = m.run(Mode::DetailedMeasured, chunk);
            assert_eq!(r.ops, chunk);
        }
    }

    #[test]
    fn taken_branch_events_carry_op_counts() {
        #[derive(Default)]
        struct Collect(Vec<(u32, u64)>);
        impl RetireSink for Collect {
            fn taken_branch(&mut self, pc: u32, ops: u64) {
                self.0.push((pc, ops));
            }
        }
        // Loop body of 3 instructions (add, addi, branch): each taken branch
        // should report 3 ops; the first reports more (includes preamble).
        let mut asm = Assembler::new();
        let (i, n) = (Reg::R2, Reg::R3);
        asm.li(i, 0);
        asm.li(n, 5);
        let top = asm.bind_new_label();
        asm.add(Reg::R1, Reg::R1, i);
        asm.addi(i, i, 1);
        asm.branch(Cond::Lt, i, n, top);
        asm.halt();
        let p = asm.finish().unwrap();
        let mut m = Machine::new(small_config(), &p);
        let mut sink = Collect::default();
        m.run_with(Mode::Functional, u64::MAX, &mut sink);
        // 5 iterations; the final branch is not taken (i == n).
        assert_eq!(sink.0.len(), 4);
        assert_eq!(sink.0[0], (4, 5)); // li,li,add,addi,branch
        for &(pc, ops) in &sink.0[1..] {
            assert_eq!(pc, 4);
            assert_eq!(ops, 3);
        }
    }

    #[test]
    fn determinism() {
        let p = independent_alu_program(64, 100);
        let run = || {
            let mut m = Machine::new(small_config(), &p);
            m.run(Mode::DetailedWarming, 1000);
            let r = m.run(Mode::DetailedMeasured, 3000);
            (r.ops, r.cycles)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn snapshot_restore_resumes_bit_exactly() {
        // Run A straight through; run B to a mid-point, snapshot, restore
        // onto a *fresh* machine, and finish. Every observable — final
        // snapshot included — must match, across mode schedules.
        let p = dependent_alu_program(64, 300);
        let schedules: [&[(Mode, u64)]; 3] = [
            &[(Mode::Functional, u64::MAX)],
            &[
                (Mode::Functional, 5_000),
                (Mode::DetailedWarming, 1_000),
                (Mode::DetailedMeasured, 1_000),
                (Mode::Functional, u64::MAX),
            ],
            &[
                (Mode::FastForward, 2_345),
                (Mode::Functional, 4_321),
                (Mode::DetailedMeasured, 2_000),
                (Mode::Functional, u64::MAX),
            ],
        ];
        for schedule in schedules {
            let mut uninterrupted = Machine::new(small_config(), &p);
            let mut results_a = Vec::new();
            for &(mode, ops) in schedule {
                results_a.push(uninterrupted.run(mode, ops));
            }

            // Interrupted twin: snapshot after the first segment, restore
            // onto a fresh machine, run the rest there.
            let mut first = Machine::new(small_config(), &p);
            let mut results_b = vec![first.run(schedule[0].0, schedule[0].1)];
            let snap = first.snapshot();
            drop(first);
            let mut resumed = Machine::new(small_config(), &p);
            resumed.restore(&snap);
            for &(mode, ops) in &schedule[1..] {
                results_b.push(resumed.run(mode, ops));
            }
            assert_eq!(results_a, results_b, "RunResults diverged");
            assert_eq!(
                uninterrupted.snapshot(),
                resumed.snapshot(),
                "final state diverged"
            );
        }
    }

    #[test]
    fn snapshot_preserves_warm_state_and_counters() {
        let p = independent_alu_program(32, 500);
        let mut m = Machine::new(small_config(), &p);
        m.run(Mode::Functional, 4_000);
        let snap = m.snapshot();
        assert_eq!(snap.mode_ops.functional, 4_000);
        assert_eq!(snap.memsys.l1i.misses, m.memsys().l1i().misses());
        assert_eq!(snap.bpred.predictions, m.bpred().predictions());
        // Clobber and restore.
        m.run(Mode::DetailedMeasured, 2_000);
        m.restore(&snap);
        assert_eq!(m.retired(), 4_000);
        assert_eq!(m.memsys().l1i().misses(), snap.memsys.l1i.misses);
        assert_eq!(m.bpred().predictions(), snap.bpred.predictions);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn restoring_mismatched_snapshot_panics() {
        let p = dependent_alu_program(4, 4);
        let m = Machine::new(small_config(), &p);
        let snap = m.snapshot();
        let mut other = Machine::new(
            MachineConfig {
                memory_words: 1 << 10,
                ..MachineConfig::default()
            },
            &p,
        );
        other.restore(&snap);
    }

    #[test]
    fn set_mode_ops_recharges_counters() {
        let p = dependent_alu_program(4, 40);
        let mut m = Machine::new(small_config(), &p);
        m.run(Mode::Functional, 100);
        let mut ops = m.mode_ops();
        ops.functional += 900;
        m.set_mode_ops(ops);
        assert_eq!(m.mode_ops().functional, 1_000);
        assert_eq!(m.retired(), 1_000);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut asm = Assembler::new();
        asm.li(Reg::R0, 42);
        asm.addi(Reg::R0, Reg::R0, 7);
        asm.halt();
        let p = asm.finish().unwrap();
        let mut m = Machine::new(small_config(), &p);
        m.run(Mode::Functional, u64::MAX);
        assert_eq!(m.reg(0), 0);
    }

    #[test]
    fn memory_addresses_wrap() {
        let mut asm = Assembler::new();
        asm.li(Reg::R1, -1); // wraps to memory_words - 1
        asm.store(Reg::R1, Reg::R1, 0);
        asm.load(Reg::R2, Reg::R1, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        let cfg = small_config();
        let mut m = Machine::new(cfg, &p);
        m.run(Mode::Functional, u64::MAX);
        assert_eq!(m.reg(2), -1);
        assert_eq!(m.memory()[cfg.memory_words - 1], -1);
    }
}
