//! The simulated machine: architectural state, the functional interpreter,
//! and the in-order superscalar timing model.
//!
//! # Decoded execution core
//!
//! [`Machine`] executes a [`DecodedProgram`] — a one-shot lowering of the
//! [`Program`] into a flat micro-op array with pre-resolved operands and
//! superblock run lengths (see [`pgss_isa::DecodedProgram`]). The hot
//! loop dispatches whole straight-line runs at a time: within a run there
//! are no per-op mode re-checks, no per-op taken-branch bookkeeping, and
//! retirement is accounted branchlessly in one batch
//! ([`RetireSink::retire_run`]); only the control-flow op that terminates
//! the run is handled individually. Observable behaviour — architectural
//! state, retired counters, cycle counts, retirement/taken-branch event
//! streams, snapshots — is bit-exact with the retained per-op
//! [`crate::ReferenceMachine`].
//!
//! Decoded state is *derived*: it is rebuilt from the `Program` whenever
//! a machine is constructed and is never serialized — snapshots and the
//! checkpoint codec carry only architectural and warm
//! microarchitectural state, so checkpoint formats are unaffected by the
//! decoded representation.

use std::fmt;
use std::sync::Arc;

use pgss_isa::{DecodedOp, DecodedProgram, LatClass, OpKind, Program};

use crate::bpred::{BranchPredictor, BranchPredictorState, Btb, BtbState};
use crate::cache::{MemSystem, MemSystemState};
use crate::config::MachineConfig;
use crate::sink::{NoopSink, RetireSink};

/// Bytes per encoded instruction, used to map instruction addresses onto
/// I-cache lines (a 64-byte line holds 16 instructions).
pub(crate) const INSTR_BYTES: u64 = 4;

/// A structured reason the machine stopped executing, other than
/// [`pgss_isa::Instr::Halt`].
///
/// Faults halt the machine ([`Machine::halted`] becomes true) without
/// panicking, so campaign workers surface them as typed cell errors
/// instead of recovering them from `catch_unwind`. The faulting
/// instruction does **not** retire, and makes no cache, predictor, or
/// timing updates. Faults are not part of [`MachineSnapshot`] —
/// [`Machine::restore`] clears them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineFault {
    /// An indirect jump ([`pgss_isa::Instr::Jr`]) targeted an address
    /// outside the program. Static targets are validated at assembly
    /// time ([`pgss_isa::Program::new`]); only register-borne targets
    /// can fail at runtime.
    IndirectJumpOutOfRange {
        /// Address of the faulting `Jr`.
        pc: u32,
        /// The out-of-range target it computed.
        target: u32,
    },
}

impl fmt::Display for MachineFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineFault::IndirectJumpOutOfRange { pc, target } => {
                write!(f, "indirect jump at {pc} to out-of-range address {target}")
            }
        }
    }
}

impl std::error::Error for MachineFault {}

/// Simulation fidelity level for a [`Machine::run`] call.
///
/// See the [crate-level documentation](crate) for how the modes map onto the
/// paper's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Pure functional execution; caches and predictors are *not* touched.
    FastForward,
    /// Functional execution that keeps caches and branch predictors warm
    /// (the paper's "functional fast-forwarding").
    Functional,
    /// Cycle-level simulation whose statistics are discarded (pre-sample
    /// warm-up of short-lifetime pipeline state).
    DetailedWarming,
    /// Cycle-level simulation whose cycles are reported.
    DetailedMeasured,
}

impl Mode {
    /// Returns `true` for the two cycle-level modes.
    #[inline]
    pub fn is_detailed(self) -> bool {
        matches!(self, Mode::DetailedWarming | Mode::DetailedMeasured)
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mode::FastForward => "fast-forward",
            Mode::Functional => "functional",
            Mode::DetailedWarming => "detailed-warming",
            Mode::DetailedMeasured => "detailed-measured",
        };
        f.write_str(s)
    }
}

/// Retired-instruction counters per [`Mode`], accumulated over a machine's
/// lifetime.
///
/// The paper counts "the number of instructions executed in detailed warming
/// and detailed simulation" as the cost of a technique;
/// [`ModeOps::detailed`] is exactly that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeOps {
    /// Instructions retired in [`Mode::FastForward`].
    pub fast_forward: u64,
    /// Instructions retired in [`Mode::Functional`].
    pub functional: u64,
    /// Instructions retired in [`Mode::DetailedWarming`].
    pub detailed_warming: u64,
    /// Instructions retired in [`Mode::DetailedMeasured`].
    pub detailed_measured: u64,
}

impl ModeOps {
    /// Total retired instructions across all modes.
    pub fn total(&self) -> u64 {
        self.fast_forward + self.functional + self.detailed_warming + self.detailed_measured
    }

    /// Instructions that required cycle-level simulation (warming +
    /// measured) — the paper's cost metric.
    pub fn detailed(&self) -> u64 {
        self.detailed_warming + self.detailed_measured
    }
}

/// The outcome of one [`Machine::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Instructions retired during this call.
    pub ops: u64,
    /// Cycles elapsed during this call. Zero for functional modes, which
    /// have no timing model.
    pub cycles: u64,
    /// `true` if the program executed [`pgss_isa::Instr::Halt`] during this
    /// call (or had already halted).
    pub halted: bool,
}

impl RunResult {
    /// Instructions per cycle for this run; `0.0` when no cycles elapsed.
    ///
    /// Only meaningful for [`Mode::DetailedMeasured`] runs.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ops as f64 / self.cycles as f64
        }
    }
}

/// Everything needed to resume a machine exactly where it left off:
/// full architectural state (PC, register files, memory image, retired
/// counters) plus the warm long-lifetime microarchitectural state
/// (cache tag arrays, branch-predictor tables).
///
/// Short-lifetime pipeline state (scoreboard, fetch stalls, MSHRs) is
/// deliberately *not* captured: it is only defined mid-detailed-run,
/// and [`Machine::restore`] leaves the machine in the same
/// "timing-stale" condition a functional run does, so the next detailed
/// run re-establishes it via detailed warming — exactly the paper's
/// checkpoint model. Restore-then-run is therefore bit-exact with an
/// uninterrupted run for any schedule whose checkpoints fall between
/// detailed regions.
///
/// Snapshots only make sense for the same program and
/// [`MachineConfig`] they were captured from; [`Machine::restore`]
/// asserts the shapes match, and the checkpoint store keys records by
/// workload identity and config so mismatches are never looked up.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    /// Program counter.
    pub pc: u32,
    /// Integer register file.
    pub regs: [i64; 32],
    /// Floating-point register file.
    pub fregs: [f64; 32],
    /// Data memory image.
    pub mem: Vec<i64>,
    /// Whether the program has halted.
    pub halted: bool,
    /// Per-mode retired-instruction counters.
    pub mode_ops: ModeOps,
    /// Retired ops since the last taken control transfer (in-flight
    /// BBV accumulation carry).
    pub ops_since_taken: u64,
    /// Cache hierarchy state.
    pub memsys: MemSystemState,
    /// Direction-predictor state.
    pub bpred: BranchPredictorState,
    /// Branch-target-buffer state.
    pub btb: BtbState,
}

impl PartialEq for MachineSnapshot {
    fn eq(&self, other: &Self) -> bool {
        // Float registers compare by bit pattern so a snapshot holding a
        // NaN still equals itself (IEEE `==` would make it unequal).
        let fregs_eq = self
            .fregs
            .iter()
            .zip(other.fregs.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        self.pc == other.pc
            && self.regs == other.regs
            && fregs_eq
            && self.mem == other.mem
            && self.halted == other.halted
            && self.mode_ops == other.mode_ops
            && self.ops_since_taken == other.ops_since_taken
            && self.memsys == other.memsys
            && self.bpred == other.bpred
            && self.btb == other.btb
    }
}

/// A simulated processor executing one [`Program`].
///
/// The machine owns all architectural state (registers, data memory, program
/// counter), the memory hierarchy, the branch predictors, and the timing
/// model. Sampling controllers drive it by alternating [`Machine::run`]
/// calls in different [`Mode`]s; architectural execution is bit-identical
/// across modes, so interleaving modes never changes program behaviour —
/// only what is modeled alongside it.
///
/// See the [crate-level example](crate) for typical use.
pub struct Machine {
    config: MachineConfig,
    /// The pre-decoded program (derived state; see the module docs).
    /// Shared so fleets of machines over one workload decode once.
    code: Arc<DecodedProgram>,
    /// Program length, cached for the indirect-jump range check.
    num_instrs: u32,
    /// Cycles per [`LatClass`], resolved from the latency configuration.
    class_cycles: [u64; LatClass::COUNT],
    /// Instructions per I-cache line (for superblock fetch chunking).
    ops_per_line: u32,
    pc: u32,
    /// Integer register file, padded to 64 slots: `[0, 32)` are the
    /// architectural registers, slot [`pgss_isa::R0_SINK`] is the scratch
    /// destination the decoder redirects `r0` writes to (making integer
    /// writes unconditional), and the remainder is padding so a 6-bit
    /// mask indexes without bounds checks. Only `[0, 32)` is ever read
    /// or snapshotted.
    regs: [i64; 64],
    fregs: [f64; 32],
    mem: Vec<i64>,
    memsys: MemSystem,
    bpred: BranchPredictor,
    btb: Btb,
    halted: bool,
    mode_ops: ModeOps,
    /// Retired ops since the last taken control transfer (for
    /// [`RetireSink::taken_branch`]).
    ops_since_taken: u64,
    /// Structured halt reason, when execution stopped on a fault.
    fault: Option<MachineFault>,

    // ---- timing model state ----
    /// Current issue cycle.
    now: u64,
    /// Instructions already issued in cycle `now`.
    slots: u32,
    /// Cycle at which each register's value is available; integer file in
    /// `[0, 32)`, floating-point file in `[32, 64)`.
    reg_ready: [u64; 64],
    /// Earliest cycle the next instruction may issue due to fetch stalls and
    /// mispredict redirects.
    fetch_ready: u64,
    /// I-cache line of the most recent fetch (deduplicates same-line
    /// accesses; exact for LRU state).
    last_fetch_line: u64,
    /// Cleared by functional runs; a detailed run starting with stale timing
    /// state resets the pipeline scoreboard to the current cycle.
    timing_valid: bool,
    line_shift: u32,
    /// Completion cycle of each in-flight L1 data miss
    /// ([`MachineConfig::mshrs`] slots).
    mshr: Vec<u64>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &self.pc)
            .field("halted", &self.halted)
            .field("retired", &self.mode_ops.total())
            .field("cycle", &self.now)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Creates a machine executing `program` from address 0, with zeroed
    /// registers and memory and cold caches/predictors.
    ///
    /// The program is decoded once (see [`pgss_isa::DecodedProgram`]);
    /// callers constructing many machines over the same program can
    /// decode once themselves and use [`Machine::with_decoded`].
    ///
    /// # Panics
    ///
    /// Panics if `config.memory_words` is zero or not a power of two (see
    /// [`MachineConfig::memory_words`]).
    pub fn new(config: MachineConfig, program: &Program) -> Machine {
        Machine::with_decoded(config, Arc::new(DecodedProgram::decode(program)))
    }

    /// Creates a machine over an already-decoded program, sharing the
    /// decode work across machines.
    ///
    /// # Panics
    ///
    /// Panics if `config.memory_words` is zero or not a power of two, or
    /// if `code` is empty.
    pub fn with_decoded(config: MachineConfig, code: Arc<DecodedProgram>) -> Machine {
        assert!(
            config.memory_words.is_power_of_two(),
            "memory_words must be a power of two, got {}",
            config.memory_words
        );
        assert!(!code.is_empty(), "a program must contain an instruction");
        let lat = config.lat;
        let class_cycles = [
            u64::from(lat.alu),
            u64::from(lat.mul),
            u64::from(lat.div),
            u64::from(lat.fp_add),
            u64::from(lat.fp_mul),
            u64::from(lat.fp_div),
        ];
        let line_shift = config.l1i.line_bytes.trailing_zeros();
        Machine {
            num_instrs: code.len() as u32,
            code,
            class_cycles,
            ops_per_line: ((config.l1i.line_bytes / INSTR_BYTES).max(1)) as u32,
            pc: 0,
            regs: [0; 64],
            fregs: [0.0; 32],
            mem: vec![0; config.memory_words],
            memsys: MemSystem::new(&config),
            bpred: BranchPredictor::new(config.bpred),
            btb: Btb::new(config.bpred.btb_entries),
            halted: false,
            mode_ops: ModeOps::default(),
            ops_since_taken: 0,
            fault: None,
            now: 0,
            slots: 0,
            reg_ready: [0; 64],
            fetch_ready: 0,
            last_fetch_line: u64::MAX,
            timing_valid: false,
            line_shift,
            mshr: vec![0; config.mshrs.max(1) as usize],
            config,
        }
    }

    /// The machine's decoded program, for sharing with
    /// [`Machine::with_decoded`].
    pub fn decoded(&self) -> &Arc<DecodedProgram> {
        &self.code
    }

    /// The structured halt reason, if execution stopped on a fault
    /// rather than a [`pgss_isa::Instr::Halt`]. Cleared by
    /// [`Machine::restore`].
    pub fn fault(&self) -> Option<MachineFault> {
        self.fault
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// `true` once the program has executed [`pgss_isa::Instr::Halt`].
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Total retired instructions across all modes.
    pub fn retired(&self) -> u64 {
        self.mode_ops.total()
    }

    /// Per-mode retired-instruction counters.
    pub fn mode_ops(&self) -> ModeOps {
        self.mode_ops
    }

    /// Current cycle of the timing model (advances only in detailed modes).
    pub fn cycle(&self) -> u64 {
        self.now
    }

    /// Read access to an integer register.
    pub fn reg(&self, index: usize) -> i64 {
        self.regs[index]
    }

    /// Read access to data memory.
    pub fn memory(&self) -> &[i64] {
        &self.mem
    }

    /// Mutable access to data memory, for pre-run initialization of workload
    /// data structures (arrays, pointer-chase rings, entropy tables).
    pub fn memory_mut(&mut self) -> &mut [i64] {
        &mut self.mem
    }

    /// The memory hierarchy (for hit-rate inspection).
    pub fn memsys(&self) -> &MemSystem {
        &self.memsys
    }

    /// The direction predictor (for misprediction-rate inspection).
    pub fn bpred(&self) -> &BranchPredictor {
        &self.bpred
    }

    /// Captures a [`MachineSnapshot`] of the current architectural and
    /// warm microarchitectural state.
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            pc: self.pc,
            regs: self.regs[..32].try_into().expect("32 architectural regs"),
            fregs: self.fregs,
            mem: self.mem.clone(),
            halted: self.halted,
            mode_ops: self.mode_ops,
            ops_since_taken: self.ops_since_taken,
            memsys: self.memsys.save_state(),
            bpred: self.bpred.save_state(),
            btb: self.btb.save_state(),
        }
    }

    /// Restores state captured by [`Machine::snapshot`], leaving the
    /// timing model stale (as after a functional run) so the next
    /// detailed run re-warms pipeline state; subsequent execution is
    /// bit-exact with the machine the snapshot was taken from.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's memory image or any
    /// cache/predictor-table shape does not match this machine's
    /// configuration.
    pub fn restore(&mut self, snapshot: &MachineSnapshot) {
        assert_eq!(
            snapshot.mem.len(),
            self.mem.len(),
            "snapshot memory image does not match this machine's configuration"
        );
        self.pc = snapshot.pc;
        self.regs[..32].copy_from_slice(&snapshot.regs);
        self.regs[32..].fill(0);
        self.fregs = snapshot.fregs;
        self.mem.clone_from(&snapshot.mem);
        self.halted = snapshot.halted;
        self.mode_ops = snapshot.mode_ops;
        self.ops_since_taken = snapshot.ops_since_taken;
        self.memsys.load_state(&snapshot.memsys);
        self.bpred.load_state(&snapshot.bpred);
        self.btb.load_state(&snapshot.btb);
        self.timing_valid = false;
        self.fault = None;
    }

    /// Overrides the per-mode retired counters.
    ///
    /// Restoring a snapshot adopts the *capture pass's* counters; a
    /// driver that jumps over a stretch of execution via checkpoint
    /// restore uses this to re-charge the skipped instructions to the
    /// mode its own schedule would have executed them in, keeping cost
    /// accounting identical to an unaccelerated run.
    pub fn set_mode_ops(&mut self, mode_ops: ModeOps) {
        self.mode_ops = mode_ops;
    }

    /// Runs up to `max_ops` instructions in `mode` with no event sink.
    ///
    /// Returns early if the program halts. See [`Machine::run_with`].
    pub fn run(&mut self, mode: Mode, max_ops: u64) -> RunResult {
        self.run_with(mode, max_ops, &mut NoopSink)
    }

    /// Runs up to `max_ops` instructions in `mode`, delivering retirement
    /// events to `sink`.
    ///
    /// Architectural execution is identical in every mode; `mode` only
    /// selects what is modeled alongside it (cache/predictor warming,
    /// cycle-level timing) and which [`ModeOps`] bucket the retired
    /// instructions are charged to.
    pub fn run_with<S: RetireSink>(&mut self, mode: Mode, max_ops: u64, sink: &mut S) -> RunResult {
        if self.halted || max_ops == 0 {
            return RunResult {
                ops: 0,
                cycles: 0,
                halted: self.halted,
            };
        }
        // Clone out the decoded-program handle so the hot loop can hold a
        // direct slice borrow while mutating machine state.
        let code = Arc::clone(&self.code);
        let (ops, cycles) = match mode {
            Mode::FastForward => {
                self.timing_valid = false;
                (self.run_loop::<false, false, S>(&code, max_ops, sink), 0)
            }
            Mode::Functional => {
                self.timing_valid = false;
                (self.run_loop::<false, true, S>(&code, max_ops, sink), 0)
            }
            Mode::DetailedWarming | Mode::DetailedMeasured => {
                if !self.timing_valid {
                    // Pipeline state is stale after functional execution:
                    // every register is "ready now" and fetch restarts
                    // cleanly. Detailed warming exists to re-establish
                    // realistic occupancy before measurement.
                    self.reg_ready = [self.now; 64];
                    self.fetch_ready = self.now;
                    self.slots = 0;
                    self.last_fetch_line = u64::MAX;
                    self.mshr.fill(self.now);
                    self.timing_valid = true;
                }
                let start = self.now;
                let ops = self.run_loop::<true, true, S>(&code, max_ops, sink);
                let cycles = if ops == 0 { 0 } else { self.now - start + 1 };
                (ops, cycles)
            }
        };
        match mode {
            Mode::FastForward => self.mode_ops.fast_forward += ops,
            Mode::Functional => self.mode_ops.functional += ops,
            Mode::DetailedWarming => self.mode_ops.detailed_warming += ops,
            Mode::DetailedMeasured => self.mode_ops.detailed_measured += ops,
        }
        RunResult {
            ops,
            cycles,
            halted: self.halted,
        }
    }

    /// Picks the issue cycle for an instruction whose operands are ready at
    /// `ready`, honouring program order, fetch stalls, and the issue width.
    #[inline(always)]
    fn issue_at(&mut self, ready: u64) -> u64 {
        let t = self.now.max(self.fetch_ready).max(ready);
        if t > self.now {
            self.now = t;
            self.slots = 0;
        }
        if self.slots >= self.config.issue_width {
            self.now += 1;
            self.slots = 0;
        }
        self.slots += 1;
        self.now
    }

    /// Issues a data-memory instruction whose operands are ready at `ready`
    /// with a cache access latency of `lat_cycles`. L1 misses
    /// (`is_miss`) must acquire a miss-status-holding register, stalling
    /// issue until one frees. Returns the completion cycle.
    #[inline(always)]
    fn issue_mem(&mut self, ready: u64, lat_cycles: u32, is_miss: bool) -> u64 {
        let mut ready = ready;
        let mut slot = usize::MAX;
        if is_miss {
            slot = 0;
            for k in 1..self.mshr.len() {
                if self.mshr[k] < self.mshr[slot] {
                    slot = k;
                }
            }
            ready = ready.max(self.mshr[slot]);
        }
        let t = self.issue_at(ready);
        let done = t + u64::from(lat_cycles);
        if is_miss {
            self.mshr[slot] = done;
        }
        done
    }

    /// Touches the I-cache hierarchy for a fetch of address `pc` if it
    /// crosses onto a new line. Exact for LRU state: the touched-line
    /// sequence is identical to checking before every op, because
    /// sequential fetch changes line only at `ops_per_line` boundaries.
    #[inline(always)]
    fn fetch_line<const DETAILED: bool>(&mut self, pc: u32) {
        let line = (u64::from(pc) * INSTR_BYTES) >> self.line_shift;
        if line != self.last_fetch_line {
            self.last_fetch_line = line;
            if DETAILED {
                let fl = self.memsys.fetch_latency_fast(u64::from(pc) * INSTR_BYTES);
                if fl > 0 {
                    self.fetch_ready = self.fetch_ready.max(self.now) + u64::from(fl);
                }
            } else {
                self.memsys.warm_fetch_fast(u64::from(pc) * INSTR_BYTES);
            }
        }
    }

    /// Executes one straight-line (non-control-flow) decoded op.
    ///
    /// One dispatch per op: [`OpKind`] is fully resolved (operator and
    /// imm-vs-register form folded into the opcode), so this match *is*
    /// the interpreter — there is no second operator-selector match
    /// behind any arm. Register indices come pre-resolved from the
    /// decoder and are masked to the file size, so register-file and
    /// scoreboard accesses compile without bounds checks. Integer
    /// destinations write unconditionally: the decoder redirected `r0`
    /// writes to the [`pgss_isa::R0_SINK`] scratch slot, whose
    /// scoreboard alias (`R0_SINK & 31 == 0`) is exactly the
    /// `reg_ready[0]` slot the per-op reference updates on `r0` writes —
    /// timing stays bit-exact.
    // Operators are passed into the arm-shape macros as closures and
    // invoked immediately — that's the point (one shared expansion per
    // shape, operator folded in), not a redundant call.
    #[allow(clippy::redundant_closure_call)]
    #[inline(always)]
    fn exec_straight<const DETAILED: bool, const WARM: bool, S: RetireSink>(
        &mut self,
        op: DecodedOp,
        sink: &mut S,
    ) {
        // `a` indexes the padded 64-slot file (dests may be R0_SINK);
        // `ra` is its 32-slot scoreboard alias; sources are always < 32.
        let a = (op.a & 63) as usize;
        let ra = (op.a & 31) as usize;
        let b = (op.b & 31) as usize;
        let c = (op.c & 31) as usize;
        // Arm bodies for the three ALU/FPU shapes. Operator semantics are
        // exactly `AluOp::apply` / `FpuOp::apply` (wrapping integer
        // arithmetic, div/rem by zero yield 0, shift amounts modulo 64).
        macro_rules! rr {
            // reg-reg integer: a <- f(regs[b], regs[c])
            ($f:expr) => {{
                let f = $f;
                self.regs[a] = f(self.regs[b], self.regs[c]);
                if DETAILED {
                    let ready = self.reg_ready[b].max(self.reg_ready[c]);
                    let t = self.issue_at(ready);
                    self.reg_ready[ra] = t + self.class_cycles[op.lat.index()];
                }
            }};
        }
        macro_rules! ri {
            // reg-imm integer: a <- f(regs[b], imm)
            ($f:expr) => {{
                let f = $f;
                self.regs[a] = f(self.regs[b], op.imm);
                if DETAILED {
                    let t = self.issue_at(self.reg_ready[b]);
                    self.reg_ready[ra] = t + self.class_cycles[op.lat.index()];
                }
            }};
        }
        macro_rules! frr {
            // reg-reg floating-point: f[ra] <- f(fregs[b], fregs[c])
            ($f:expr) => {{
                let f = $f;
                self.fregs[ra] = f(self.fregs[b], self.fregs[c]);
                if DETAILED {
                    let ready = self.reg_ready[32 + b].max(self.reg_ready[32 + c]);
                    let t = self.issue_at(ready);
                    self.reg_ready[32 + ra] = t + self.class_cycles[op.lat.index()];
                }
            }};
        }
        match op.kind {
            OpKind::Add => rr!(|x: i64, y: i64| x.wrapping_add(y)),
            OpKind::Sub => rr!(|x: i64, y: i64| x.wrapping_sub(y)),
            OpKind::Mul => rr!(|x: i64, y: i64| x.wrapping_mul(y)),
            OpKind::Div => rr!(|x: i64, y: i64| if y == 0 { 0 } else { x.wrapping_div(y) }),
            OpKind::Rem => rr!(|x: i64, y: i64| if y == 0 { 0 } else { x.wrapping_rem(y) }),
            OpKind::And => rr!(|x: i64, y: i64| x & y),
            OpKind::Or => rr!(|x: i64, y: i64| x | y),
            OpKind::Xor => rr!(|x: i64, y: i64| x ^ y),
            OpKind::Sll => rr!(|x: i64, y: i64| ((x as u64) << (y as u64 & 63)) as i64),
            OpKind::Srl => rr!(|x: i64, y: i64| ((x as u64) >> (y as u64 & 63)) as i64),
            OpKind::Sra => rr!(|x: i64, y: i64| x >> (y as u64 & 63)),
            OpKind::Slt => rr!(|x: i64, y: i64| i64::from(x < y)),
            OpKind::AddI => ri!(|x: i64, y: i64| x.wrapping_add(y)),
            OpKind::SubI => ri!(|x: i64, y: i64| x.wrapping_sub(y)),
            OpKind::MulI => ri!(|x: i64, y: i64| x.wrapping_mul(y)),
            OpKind::DivI => ri!(|x: i64, y: i64| if y == 0 { 0 } else { x.wrapping_div(y) }),
            OpKind::RemI => ri!(|x: i64, y: i64| if y == 0 { 0 } else { x.wrapping_rem(y) }),
            OpKind::AndI => ri!(|x: i64, y: i64| x & y),
            OpKind::OrI => ri!(|x: i64, y: i64| x | y),
            OpKind::XorI => ri!(|x: i64, y: i64| x ^ y),
            OpKind::SllI => ri!(|x: i64, y: i64| ((x as u64) << (y as u64 & 63)) as i64),
            OpKind::SrlI => ri!(|x: i64, y: i64| ((x as u64) >> (y as u64 & 63)) as i64),
            OpKind::SraI => ri!(|x: i64, y: i64| x >> (y as u64 & 63)),
            OpKind::SltI => ri!(|x: i64, y: i64| i64::from(x < y)),
            OpKind::Li => {
                self.regs[a] = op.imm;
                if DETAILED {
                    let t = self.issue_at(0);
                    self.reg_ready[ra] = t + self.class_cycles[LatClass::Alu.index()];
                }
            }
            OpKind::FAdd => frr!(|x: f64, y: f64| x + y),
            OpKind::FSub => frr!(|x: f64, y: f64| x - y),
            OpKind::FMul => frr!(|x: f64, y: f64| x * y),
            OpKind::FDiv => frr!(|x: f64, y: f64| x / y),
            OpKind::Load => {
                let addr = self.effective(b, op.imm);
                sink.data_access(addr);
                self.regs[a] = self.mem[addr as usize];
                if DETAILED {
                    let l = self.memsys.load_latency_fast(addr * 8);
                    let done = self.issue_mem(self.reg_ready[b], l, l > self.config.lat.l1_hit);
                    self.reg_ready[ra] = done;
                } else if WARM {
                    self.memsys.warm_data_fast(addr * 8);
                }
            }
            OpKind::Store => {
                let addr = self.effective(b, op.imm);
                sink.data_access(addr);
                self.mem[addr as usize] = self.regs[c];
                if DETAILED {
                    let ready = self.reg_ready[c].max(self.reg_ready[b]);
                    let l = self.memsys.store_latency_fast(addr * 8);
                    let _ = self.issue_mem(ready, 0, l > 0);
                } else if WARM {
                    self.memsys.warm_data_fast(addr * 8);
                }
            }
            OpKind::FLoad => {
                let addr = self.effective(b, op.imm);
                sink.data_access(addr);
                self.fregs[ra] = f64::from_bits(self.mem[addr as usize] as u64);
                if DETAILED {
                    let l = self.memsys.load_latency_fast(addr * 8);
                    let done = self.issue_mem(self.reg_ready[b], l, l > self.config.lat.l1_hit);
                    self.reg_ready[32 + ra] = done;
                } else if WARM {
                    self.memsys.warm_data_fast(addr * 8);
                }
            }
            OpKind::FStore => {
                let addr = self.effective(b, op.imm);
                sink.data_access(addr);
                self.mem[addr as usize] = self.fregs[c].to_bits() as i64;
                if DETAILED {
                    let ready = self.reg_ready[32 + c].max(self.reg_ready[b]);
                    let l = self.memsys.store_latency_fast(addr * 8);
                    let _ = self.issue_mem(ready, 0, l > 0);
                } else if WARM {
                    self.memsys.warm_data_fast(addr * 8);
                }
            }
            _ => unreachable!("control-flow op inside a straight-line run"),
        }
    }

    /// Timing/warming tail shared by the four conditional-branch opcodes:
    /// issue, predict, and charge the mispredict redirect penalty.
    #[inline(always)]
    fn branch_timing<const DETAILED: bool, const WARM: bool>(
        &mut self,
        pc: u32,
        b: usize,
        c: usize,
        taken: bool,
    ) {
        if DETAILED {
            let ready = self.reg_ready[b].max(self.reg_ready[c]);
            let t = self.issue_at(ready);
            let correct = self.bpred.predict_and_update(pc, taken);
            if !correct {
                self.fetch_ready = t + u64::from(self.config.lat.mispredict);
            }
        } else if WARM {
            self.bpred.predict_and_update(pc, taken);
        }
    }

    /// The superblock interpreter/timing loop, monomorphized per mode
    /// class.
    ///
    /// `DETAILED` enables the cycle-level model; `WARM` enables cache and
    /// predictor updates (always true when `DETAILED` is).
    ///
    /// Each outer iteration executes one superblock: the straight-line
    /// run starting at the current pc (`run_len`), clipped to the op
    /// budget, then the single control-flow op that terminates it.
    /// Straight-line ops run without per-op mode or taken-branch
    /// re-checks; their retirement is accounted branchlessly in one
    /// batch ([`RetireSink::retire_run`]), and I-cache warming happens
    /// once per line chunk instead of once per op — both bit-exact with
    /// the per-op reference loop.
    // The `branch!` macro takes its comparator as an immediately-invoked
    // closure, same pattern as `exec_straight`'s arm-shape macros.
    #[allow(clippy::redundant_closure_call)]
    fn run_loop<const DETAILED: bool, const WARM: bool, S: RetireSink>(
        &mut self,
        code: &DecodedProgram,
        max_ops: u64,
        sink: &mut S,
    ) -> u64 {
        let all_ops = code.ops();
        let per_line = self.ops_per_line;
        let line_mask = per_line - 1;
        let mut ops = 0u64;
        while ops < max_ops {
            let pc0 = self.pc;
            let full = code.run_len(pc0);
            let run = u64::from(full).min(max_ops - ops) as u32;
            if run > 0 {
                let mut i = 0u32;
                while i < run {
                    let cur = pc0 + i;
                    let chunk = if WARM {
                        self.fetch_line::<DETAILED>(cur);
                        // Ops remaining on this I-cache line: within the
                        // chunk, no further line transition is possible.
                        (per_line - (cur & line_mask)).min(run - i)
                    } else {
                        run - i
                    };
                    for &op in &all_ops[cur as usize..(cur + chunk) as usize] {
                        self.exec_straight::<DETAILED, WARM, S>(op, sink);
                    }
                    i += chunk;
                }
                sink.retire_run(pc0, run);
                ops += u64::from(run);
                self.ops_since_taken += u64::from(run);
                self.pc = pc0 + run;
                if ops == max_ops {
                    break;
                }
            }

            // The control-flow op terminating the superblock.
            let pc = pc0 + run;
            let op = all_ops[pc as usize];
            if WARM {
                self.fetch_line::<DETAILED>(pc);
            }
            let mut next_pc = pc + 1;
            let taken: bool;
            // Branch conditions are resolved in the opcode (one dispatch);
            // the shared issue/predict tail is `branch_timing`.
            macro_rules! branch {
                ($cmp:expr) => {{
                    let b = (op.b & 31) as usize;
                    let c = (op.c & 31) as usize;
                    let cmp = $cmp;
                    taken = cmp(self.regs[b], self.regs[c]);
                    if taken {
                        next_pc = op.target();
                    }
                    self.branch_timing::<DETAILED, WARM>(pc, b, c, taken);
                }};
            }
            match op.kind {
                OpKind::BranchEq => branch!(|x: i64, y: i64| x == y),
                OpKind::BranchNe => branch!(|x: i64, y: i64| x != y),
                OpKind::BranchLt => branch!(|x: i64, y: i64| x < y),
                OpKind::BranchGe => branch!(|x: i64, y: i64| x >= y),
                OpKind::Jump => {
                    next_pc = op.target();
                    taken = true;
                    if DETAILED {
                        let _ = self.issue_at(0);
                    }
                }
                OpKind::Jal => {
                    let a = (op.a & 63) as usize;
                    self.regs[a] = i64::from(pc) + 1;
                    next_pc = op.target();
                    taken = true;
                    if DETAILED {
                        let t = self.issue_at(0);
                        self.reg_ready[(op.a & 31) as usize] =
                            t + self.class_cycles[LatClass::Alu.index()];
                    }
                }
                OpKind::Jr => {
                    let b = (op.b & 31) as usize;
                    let target = self.regs[b] as u32;
                    if target >= self.num_instrs {
                        // Structured halt instead of a panic: the faulting
                        // op does not retire, and the campaign path
                        // surfaces the reason as a typed cell error.
                        self.fault = Some(MachineFault::IndirectJumpOutOfRange { pc, target });
                        self.halted = true;
                        break;
                    }
                    next_pc = target;
                    taken = true;
                    if DETAILED {
                        let t = self.issue_at(self.reg_ready[b]);
                        let correct = self.btb.predict_and_update(pc, target);
                        if !correct {
                            self.fetch_ready = t + u64::from(self.config.lat.mispredict);
                        }
                    } else if WARM {
                        self.btb.predict_and_update(pc, target);
                    }
                }
                OpKind::Halt => {
                    self.halted = true;
                    if DETAILED {
                        let _ = self.issue_at(0);
                    }
                    ops += 1;
                    self.ops_since_taken += 1;
                    sink.retire(pc);
                    break;
                }
                _ => unreachable!("straight-line op terminates a superblock"),
            }

            ops += 1;
            self.ops_since_taken += 1;
            sink.retire(pc);
            if taken {
                sink.taken_branch(pc, self.ops_since_taken);
                self.ops_since_taken = 0;
            }
            self.pc = next_pc;
        }
        ops
    }

    /// Effective word address: base register plus offset, wrapped to the
    /// memory size. The mask is derived from `mem.len()` inline (rather
    /// than the cached `addr_mask`) so the optimizer can prove
    /// `addr < mem.len()` and drop the bounds check on every
    /// architectural memory access.
    #[inline(always)]
    fn effective(&self, base: usize, offset: i64) -> u64 {
        (self.regs[base].wrapping_add(offset)) as u64 & (self.mem.len() as u64 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgss_isa::{Assembler, Cond, Reg};

    fn small_config() -> MachineConfig {
        MachineConfig {
            memory_words: 1 << 16,
            ..MachineConfig::default()
        }
    }

    /// A loop of `body` independent single-cycle ALU ops per iteration,
    /// iterated `iters` times (I-cache-resident so steady state dominates).
    fn independent_alu_program(body: usize, iters: i64) -> Program {
        let mut asm = Assembler::new();
        let (i, n) = (Reg::R20, Reg::R21);
        asm.li(i, 0);
        asm.li(n, iters);
        let top = asm.bind_new_label();
        for k in 0..body {
            // Rotate destinations over r1..r8 with sources r9..r10 (never
            // written) so there are no dependences.
            let rd = Reg::from_index(1 + (k % 8)).unwrap();
            asm.add(rd, Reg::R9, Reg::R10);
        }
        asm.addi(i, i, 1);
        asm.branch(Cond::Lt, i, n, top);
        asm.halt();
        asm.finish().unwrap()
    }

    /// A loop of `body` back-to-back dependent ALU ops per iteration.
    fn dependent_alu_program(body: usize, iters: i64) -> Program {
        let mut asm = Assembler::new();
        let (i, n) = (Reg::R20, Reg::R21);
        asm.li(i, 0);
        asm.li(n, iters);
        let top = asm.bind_new_label();
        for _ in 0..body {
            asm.addi(Reg::R1, Reg::R1, 1);
        }
        asm.addi(i, i, 1);
        asm.branch(Cond::Lt, i, n, top);
        asm.halt();
        asm.finish().unwrap()
    }

    #[test]
    fn independent_ops_reach_full_width() {
        let p = independent_alu_program(64, 1000);
        let mut m = Machine::new(small_config(), &p);
        let r = m.run(Mode::DetailedMeasured, u64::MAX);
        assert!(r.halted);
        let ipc = r.ipc();
        assert!(
            ipc > 3.5,
            "expected near-4 IPC for independent ALU ops, got {ipc}"
        );
    }

    #[test]
    fn dependent_chain_is_serialized() {
        let p = dependent_alu_program(64, 1000);
        let mut m = Machine::new(small_config(), &p);
        let r = m.run(Mode::DetailedMeasured, u64::MAX);
        let ipc = r.ipc();
        assert!(
            ipc < 1.2,
            "dependent chain should run near 1 IPC, got {ipc}"
        );
        assert!(
            ipc > 0.8,
            "dependent ALU chain should not be slower than 1/cycle, got {ipc}"
        );
    }

    #[test]
    fn architectural_result_is_mode_independent() {
        // Sum of 0..N computed by loop, run fully in each mode.
        let build = || {
            let mut asm = Assembler::new();
            let (sum, i, n) = (Reg::R1, Reg::R2, Reg::R3);
            asm.li(sum, 0);
            asm.li(i, 0);
            asm.li(n, 1000);
            let top = asm.bind_new_label();
            asm.add(sum, sum, i);
            asm.addi(i, i, 1);
            asm.branch(Cond::Lt, i, n, top);
            asm.halt();
            asm.finish().unwrap()
        };
        let expect = (0..1000i64).sum::<i64>();
        for mode in [Mode::FastForward, Mode::Functional, Mode::DetailedMeasured] {
            let p = build();
            let mut m = Machine::new(small_config(), &p);
            let r = m.run(mode, u64::MAX);
            assert!(r.halted);
            assert_eq!(m.reg(1), expect, "wrong sum in mode {mode}");
        }
    }

    #[test]
    fn interleaving_modes_preserves_architectural_state() {
        let p = dependent_alu_program(64, 200);
        let mut a = Machine::new(small_config(), &p);
        let mut b = Machine::new(small_config(), &p);
        a.run(Mode::Functional, u64::MAX);
        // b alternates modes every 777 ops.
        let mut flip = false;
        while !b.halted() {
            let mode = if flip {
                Mode::DetailedMeasured
            } else {
                Mode::Functional
            };
            b.run(mode, 777);
            flip = !flip;
        }
        assert_eq!(a.reg(1), b.reg(1));
        assert_eq!(a.retired(), b.retired());
    }

    #[test]
    fn cache_misses_slow_execution() {
        // Loads striding by exactly one line over a >L2-sized region miss
        // everywhere; the same loop over a tiny region hits in L1. Both
        // walks repeat so steady-state behaviour dominates.
        let build = |span_words: i64, reps: i64| {
            let mut asm = Assembler::new();
            let (i, n, v, step) = (Reg::R2, Reg::R3, Reg::R4, Reg::R5);
            let (r, nr) = (Reg::R6, Reg::R7);
            asm.li(r, 0);
            asm.li(nr, reps);
            asm.li(n, span_words);
            asm.li(step, 8); // 8 words = 64 bytes = one line
            let outer = asm.bind_new_label();
            asm.li(i, 0);
            let top = asm.bind_new_label();
            asm.load(v, i, 0);
            asm.add(i, i, step);
            asm.branch(Cond::Lt, i, n, top);
            asm.addi(r, r, 1);
            asm.branch(Cond::Lt, r, nr, outer);
            asm.halt();
            asm.finish().unwrap()
        };
        let cfg = MachineConfig {
            memory_words: 1 << 20,
            ..MachineConfig::default()
        };
        // Hot: loops inside 512 words (fits L1), repeated many times.
        let hot = build(512, 1000);
        let mut m_hot = Machine::new(cfg, &hot);
        // Cold: walk 1 << 19 words (4 MiB > 1 MiB L2) twice.
        let cold = build(1 << 19, 2);
        let mut m_cold = Machine::new(cfg, &cold);
        let rh = m_hot.run(Mode::DetailedMeasured, u64::MAX);
        let rc = m_cold.run(Mode::DetailedMeasured, u64::MAX);
        assert!(
            rc.ipc() < rh.ipc() / 2.0,
            "line-strided walk (ipc {}) should be much slower than L1-resident loop (ipc {})",
            rc.ipc(),
            rh.ipc()
        );
    }

    #[test]
    fn mispredicts_slow_execution() {
        // A data-dependent unpredictable branch vs an always-taken one.
        let build = |xorshift: bool| {
            let mut asm = Assembler::new();
            let (i, n, x, bit) = (Reg::R2, Reg::R3, Reg::R4, Reg::R5);
            asm.li(i, 0);
            asm.li(n, 20_000);
            asm.li(x, 0x1234_5678_9ABC_DEF0u64 as i64);
            let top = asm.bind_new_label();
            let skip = asm.new_label();
            if xorshift {
                // x ^= x << 13; x ^= x >> 7; x ^= x << 17 — pseudo-random bit.
                asm.slli(bit, x, 13);
                asm.xor(x, x, bit);
                asm.srli(bit, x, 7);
                asm.xor(x, x, bit);
                asm.slli(bit, x, 17);
                asm.xor(x, x, bit);
                asm.andi(bit, x, 1);
            } else {
                asm.nop();
                asm.nop();
                asm.nop();
                asm.nop();
                asm.nop();
                asm.nop();
                asm.li(bit, 0);
            }
            asm.branch(Cond::Ne, bit, Reg::R0, skip);
            asm.addi(i, i, 0);
            asm.bind(skip);
            asm.addi(i, i, 1);
            asm.branch(Cond::Lt, i, n, top);
            asm.halt();
            asm.finish().unwrap()
        };
        let predictable = build(false);
        let random = build(true);
        let mut mp = Machine::new(small_config(), &predictable);
        let mut mr = Machine::new(small_config(), &random);
        let rp = mp.run(Mode::DetailedMeasured, u64::MAX);
        let rr = mr.run(Mode::DetailedMeasured, u64::MAX);
        assert!(
            rr.ipc() < rp.ipc() * 0.8,
            "random branches (ipc {}) should be slower than predictable (ipc {})",
            rr.ipc(),
            rp.ipc()
        );
    }

    #[test]
    fn mode_ops_accounting() {
        let p = dependent_alu_program(64, 200);
        let mut m = Machine::new(small_config(), &p);
        m.run(Mode::FastForward, 1000);
        m.run(Mode::Functional, 2000);
        m.run(Mode::DetailedWarming, 3000);
        m.run(Mode::DetailedMeasured, 500);
        let ops = m.mode_ops();
        assert_eq!(ops.fast_forward, 1000);
        assert_eq!(ops.functional, 2000);
        assert_eq!(ops.detailed_warming, 3000);
        assert_eq!(ops.detailed_measured, 500);
        assert_eq!(ops.detailed(), 3500);
        assert_eq!(ops.total(), 6500);
        assert_eq!(m.retired(), 6500);
    }

    #[test]
    fn functional_runs_report_zero_cycles() {
        let p = dependent_alu_program(10, 10);
        let mut m = Machine::new(small_config(), &p);
        let r = m.run(Mode::Functional, 50);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.ops, 50);
        assert_eq!(r.ipc(), 0.0);
    }

    #[test]
    fn run_after_halt_is_empty() {
        let p = dependent_alu_program(1, 1);
        let mut m = Machine::new(small_config(), &p);
        let r1 = m.run(Mode::Functional, u64::MAX);
        assert!(r1.halted);
        let r2 = m.run(Mode::DetailedMeasured, 100);
        assert_eq!(r2.ops, 0);
        assert!(r2.halted);
    }

    #[test]
    fn max_ops_is_respected_exactly() {
        let p = dependent_alu_program(64, 200);
        let mut m = Machine::new(small_config(), &p);
        for chunk in [1u64, 7, 100, 4096] {
            let r = m.run(Mode::DetailedMeasured, chunk);
            assert_eq!(r.ops, chunk);
        }
    }

    #[test]
    fn taken_branch_events_carry_op_counts() {
        #[derive(Default)]
        struct Collect(Vec<(u32, u64)>);
        impl RetireSink for Collect {
            fn taken_branch(&mut self, pc: u32, ops: u64) {
                self.0.push((pc, ops));
            }
        }
        // Loop body of 3 instructions (add, addi, branch): each taken branch
        // should report 3 ops; the first reports more (includes preamble).
        let mut asm = Assembler::new();
        let (i, n) = (Reg::R2, Reg::R3);
        asm.li(i, 0);
        asm.li(n, 5);
        let top = asm.bind_new_label();
        asm.add(Reg::R1, Reg::R1, i);
        asm.addi(i, i, 1);
        asm.branch(Cond::Lt, i, n, top);
        asm.halt();
        let p = asm.finish().unwrap();
        let mut m = Machine::new(small_config(), &p);
        let mut sink = Collect::default();
        m.run_with(Mode::Functional, u64::MAX, &mut sink);
        // 5 iterations; the final branch is not taken (i == n).
        assert_eq!(sink.0.len(), 4);
        assert_eq!(sink.0[0], (4, 5)); // li,li,add,addi,branch
        for &(pc, ops) in &sink.0[1..] {
            assert_eq!(pc, 4);
            assert_eq!(ops, 3);
        }
    }

    #[test]
    fn determinism() {
        let p = independent_alu_program(64, 100);
        let run = || {
            let mut m = Machine::new(small_config(), &p);
            m.run(Mode::DetailedWarming, 1000);
            let r = m.run(Mode::DetailedMeasured, 3000);
            (r.ops, r.cycles)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn snapshot_restore_resumes_bit_exactly() {
        // Run A straight through; run B to a mid-point, snapshot, restore
        // onto a *fresh* machine, and finish. Every observable — final
        // snapshot included — must match, across mode schedules.
        let p = dependent_alu_program(64, 300);
        let schedules: [&[(Mode, u64)]; 3] = [
            &[(Mode::Functional, u64::MAX)],
            &[
                (Mode::Functional, 5_000),
                (Mode::DetailedWarming, 1_000),
                (Mode::DetailedMeasured, 1_000),
                (Mode::Functional, u64::MAX),
            ],
            &[
                (Mode::FastForward, 2_345),
                (Mode::Functional, 4_321),
                (Mode::DetailedMeasured, 2_000),
                (Mode::Functional, u64::MAX),
            ],
        ];
        for schedule in schedules {
            let mut uninterrupted = Machine::new(small_config(), &p);
            let mut results_a = Vec::new();
            for &(mode, ops) in schedule {
                results_a.push(uninterrupted.run(mode, ops));
            }

            // Interrupted twin: snapshot after the first segment, restore
            // onto a fresh machine, run the rest there.
            let mut first = Machine::new(small_config(), &p);
            let mut results_b = vec![first.run(schedule[0].0, schedule[0].1)];
            let snap = first.snapshot();
            drop(first);
            let mut resumed = Machine::new(small_config(), &p);
            resumed.restore(&snap);
            for &(mode, ops) in &schedule[1..] {
                results_b.push(resumed.run(mode, ops));
            }
            assert_eq!(results_a, results_b, "RunResults diverged");
            assert_eq!(
                uninterrupted.snapshot(),
                resumed.snapshot(),
                "final state diverged"
            );
        }
    }

    #[test]
    fn snapshot_preserves_warm_state_and_counters() {
        let p = independent_alu_program(32, 500);
        let mut m = Machine::new(small_config(), &p);
        m.run(Mode::Functional, 4_000);
        let snap = m.snapshot();
        assert_eq!(snap.mode_ops.functional, 4_000);
        assert_eq!(snap.memsys.l1i.misses, m.memsys().l1i().misses());
        assert_eq!(snap.bpred.predictions, m.bpred().predictions());
        // Clobber and restore.
        m.run(Mode::DetailedMeasured, 2_000);
        m.restore(&snap);
        assert_eq!(m.retired(), 4_000);
        assert_eq!(m.memsys().l1i().misses(), snap.memsys.l1i.misses);
        assert_eq!(m.bpred().predictions(), snap.bpred.predictions);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn restoring_mismatched_snapshot_panics() {
        let p = dependent_alu_program(4, 4);
        let m = Machine::new(small_config(), &p);
        let snap = m.snapshot();
        let mut other = Machine::new(
            MachineConfig {
                memory_words: 1 << 10,
                ..MachineConfig::default()
            },
            &p,
        );
        other.restore(&snap);
    }

    #[test]
    fn set_mode_ops_recharges_counters() {
        let p = dependent_alu_program(4, 40);
        let mut m = Machine::new(small_config(), &p);
        m.run(Mode::Functional, 100);
        let mut ops = m.mode_ops();
        ops.functional += 900;
        m.set_mode_ops(ops);
        assert_eq!(m.mode_ops().functional, 1_000);
        assert_eq!(m.retired(), 1_000);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut asm = Assembler::new();
        asm.li(Reg::R0, 42);
        asm.addi(Reg::R0, Reg::R0, 7);
        asm.halt();
        let p = asm.finish().unwrap();
        let mut m = Machine::new(small_config(), &p);
        m.run(Mode::Functional, u64::MAX);
        assert_eq!(m.reg(0), 0);
    }

    #[test]
    fn jr_out_of_range_faults_instead_of_panicking() {
        let mut asm = Assembler::new();
        asm.li(Reg::R1, 9_999);
        asm.jr(Reg::R1);
        asm.halt();
        let p = asm.finish().unwrap();
        for mode in [Mode::FastForward, Mode::Functional, Mode::DetailedMeasured] {
            let mut m = Machine::new(small_config(), &p);
            let r = m.run(mode, u64::MAX);
            assert!(m.halted());
            assert_eq!(
                m.fault(),
                Some(MachineFault::IndirectJumpOutOfRange {
                    pc: 1,
                    target: 9_999
                })
            );
            // The faulting jump does not retire: only the li counts.
            assert_eq!(r.ops, 1);
            assert_eq!(m.retired(), 1);
            // The machine stops (halted is how callers observe that), and
            // `fault()` distinguishes the structured abort from a clean Halt.
            assert!(r.halted);
            let msg = m.fault().unwrap().to_string();
            assert!(
                msg.contains("9999"),
                "fault display names the target: {msg}"
            );
        }
    }

    #[test]
    fn restore_clears_fault() {
        let mut asm = Assembler::new();
        asm.li(Reg::R1, 1 << 20);
        asm.jr(Reg::R1);
        asm.halt();
        let p = asm.finish().unwrap();
        let mut m = Machine::new(small_config(), &p);
        let clean = m.snapshot();
        m.run(Mode::Functional, u64::MAX);
        assert!(m.fault().is_some());
        // Faults are derived runtime state, never serialized: the snapshot
        // taken before the fault restores a machine with no fault, and the
        // rerun reproduces it deterministically.
        m.restore(&clean);
        assert_eq!(m.fault(), None);
        assert!(!m.halted());
        m.run(Mode::Functional, u64::MAX);
        assert!(m.fault().is_some());
    }

    #[test]
    fn decoded_program_is_shared_across_machines() {
        let p = dependent_alu_program(16, 50);
        let code = std::sync::Arc::new(pgss_isa::DecodedProgram::decode(&p));
        let mut a = Machine::with_decoded(small_config(), Arc::clone(&code));
        let mut b = Machine::with_decoded(small_config(), Arc::clone(&code));
        assert!(Arc::ptr_eq(a.decoded(), b.decoded()));
        a.run(Mode::Functional, u64::MAX);
        b.run(Mode::Functional, u64::MAX);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn memory_addresses_wrap() {
        let mut asm = Assembler::new();
        asm.li(Reg::R1, -1); // wraps to memory_words - 1
        asm.store(Reg::R1, Reg::R1, 0);
        asm.load(Reg::R2, Reg::R1, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        let cfg = small_config();
        let mut m = Machine::new(cfg, &p);
        m.run(Mode::Functional, u64::MAX);
        assert_eq!(m.reg(2), -1);
        assert_eq!(m.memory()[cfg.memory_words - 1], -1);
    }
}
