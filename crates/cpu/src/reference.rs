//! The retained reference interpreter: the original per-op execution
//! loop, kept verbatim as the bit-exactness oracle for the decoded core.
//!
//! [`crate::Machine`] executes a pre-decoded micro-op array with
//! superblock dispatch; [`ReferenceMachine`] executes the same programs
//! by pattern-matching [`pgss_isa::Instr`] on every retired op, exactly
//! as the pre-refactor core did. The two must agree bit-for-bit on every
//! observable — architectural state, retired counters, cycles, retire
//! and taken-branch event streams, snapshots — which the workspace's
//! differential test asserts on randomized programs, and which the
//! `perf` benchmark bin exploits to measure the decoded core's speedup
//! against the genuine baseline *in the same run*.
//!
//! The reference core shares every model type with the fast core
//! ([`Mode`], [`ModeOps`], [`RunResult`], [`MachineSnapshot`],
//! [`MachineFault`], caches, predictors), so snapshots interchange
//! freely between the two.

use pgss_isa::{Instr, Program};

use crate::bpred::{BranchPredictor, Btb};
use crate::cache::MemSystem;
use crate::config::MachineConfig;
use crate::machine::{MachineFault, MachineSnapshot, Mode, ModeOps, RunResult, INSTR_BYTES};
use crate::sink::{NoopSink, RetireSink};

/// The original per-op interpreter and timing model, retained as an
/// oracle for the decoded superblock core in [`crate::Machine`].
pub struct ReferenceMachine {
    config: MachineConfig,
    instrs: Box<[Instr]>,
    pc: u32,
    regs: [i64; 32],
    fregs: [f64; 32],
    mem: Vec<i64>,
    addr_mask: u64,
    memsys: MemSystem,
    bpred: BranchPredictor,
    btb: Btb,
    halted: bool,
    mode_ops: ModeOps,
    ops_since_taken: u64,
    fault: Option<MachineFault>,

    // ---- timing model state (identical to the decoded core's) ----
    now: u64,
    slots: u32,
    reg_ready: [u64; 64],
    fetch_ready: u64,
    last_fetch_line: u64,
    timing_valid: bool,
    line_shift: u32,
    mshr: Vec<u64>,
}

impl ReferenceMachine {
    /// Creates a reference machine executing `program` from address 0,
    /// with zeroed registers and memory and cold caches/predictors.
    ///
    /// # Panics
    ///
    /// Panics if `config.memory_words` is zero or not a power of two.
    pub fn new(config: MachineConfig, program: &Program) -> ReferenceMachine {
        assert!(
            config.memory_words.is_power_of_two(),
            "memory_words must be a power of two, got {}",
            config.memory_words
        );
        ReferenceMachine {
            instrs: program.instrs().to_vec().into_boxed_slice(),
            pc: 0,
            regs: [0; 32],
            fregs: [0.0; 32],
            mem: vec![0; config.memory_words],
            addr_mask: config.memory_words as u64 - 1,
            memsys: MemSystem::new(&config),
            bpred: BranchPredictor::new(config.bpred),
            btb: Btb::new(config.bpred.btb_entries),
            halted: false,
            mode_ops: ModeOps::default(),
            ops_since_taken: 0,
            fault: None,
            now: 0,
            slots: 0,
            reg_ready: [0; 64],
            fetch_ready: 0,
            last_fetch_line: u64::MAX,
            timing_valid: false,
            line_shift: config.l1i.line_bytes.trailing_zeros(),
            mshr: vec![0; config.mshrs.max(1) as usize],
            config,
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// `true` once the program has executed [`pgss_isa::Instr::Halt`] or
    /// the machine has faulted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The structured halt reason, if execution stopped on a fault.
    pub fn fault(&self) -> Option<MachineFault> {
        self.fault
    }

    /// Total retired instructions across all modes.
    pub fn retired(&self) -> u64 {
        self.mode_ops.total()
    }

    /// Per-mode retired-instruction counters.
    pub fn mode_ops(&self) -> ModeOps {
        self.mode_ops
    }

    /// Current cycle of the timing model.
    pub fn cycle(&self) -> u64 {
        self.now
    }

    /// Read access to an integer register.
    pub fn reg(&self, index: usize) -> i64 {
        self.regs[index]
    }

    /// Read access to data memory.
    pub fn memory(&self) -> &[i64] {
        &self.mem
    }

    /// Mutable access to data memory, for pre-run workload initialization.
    pub fn memory_mut(&mut self) -> &mut [i64] {
        &mut self.mem
    }

    /// Captures a [`MachineSnapshot`], interchangeable with the decoded
    /// core's.
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            pc: self.pc,
            regs: self.regs,
            fregs: self.fregs,
            mem: self.mem.clone(),
            halted: self.halted,
            mode_ops: self.mode_ops,
            ops_since_taken: self.ops_since_taken,
            memsys: self.memsys.save_state(),
            bpred: self.bpred.save_state(),
            btb: self.btb.save_state(),
        }
    }

    /// Restores state captured by [`ReferenceMachine::snapshot`] or
    /// [`crate::Machine::snapshot`], leaving the timing model stale and
    /// clearing any fault.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's shapes do not match this configuration.
    pub fn restore(&mut self, snapshot: &MachineSnapshot) {
        assert_eq!(
            snapshot.mem.len(),
            self.mem.len(),
            "snapshot memory image does not match this machine's configuration"
        );
        self.pc = snapshot.pc;
        self.regs = snapshot.regs;
        self.fregs = snapshot.fregs;
        self.mem.clone_from(&snapshot.mem);
        self.halted = snapshot.halted;
        self.mode_ops = snapshot.mode_ops;
        self.ops_since_taken = snapshot.ops_since_taken;
        self.memsys.load_state(&snapshot.memsys);
        self.bpred.load_state(&snapshot.bpred);
        self.btb.load_state(&snapshot.btb);
        self.timing_valid = false;
        self.fault = None;
    }

    /// Overrides the per-mode retired counters (see
    /// [`crate::Machine::set_mode_ops`]).
    pub fn set_mode_ops(&mut self, mode_ops: ModeOps) {
        self.mode_ops = mode_ops;
    }

    /// Runs up to `max_ops` instructions in `mode` with no event sink.
    pub fn run(&mut self, mode: Mode, max_ops: u64) -> RunResult {
        self.run_with(mode, max_ops, &mut NoopSink)
    }

    /// Runs up to `max_ops` instructions in `mode`, delivering retirement
    /// events to `sink`. Identical contract to
    /// [`crate::Machine::run_with`].
    pub fn run_with<S: RetireSink>(&mut self, mode: Mode, max_ops: u64, sink: &mut S) -> RunResult {
        if self.halted || max_ops == 0 {
            return RunResult {
                ops: 0,
                cycles: 0,
                halted: self.halted,
            };
        }
        let (ops, cycles) = match mode {
            Mode::FastForward => {
                self.timing_valid = false;
                (self.run_loop::<false, false, S>(max_ops, sink), 0)
            }
            Mode::Functional => {
                self.timing_valid = false;
                (self.run_loop::<false, true, S>(max_ops, sink), 0)
            }
            Mode::DetailedWarming | Mode::DetailedMeasured => {
                if !self.timing_valid {
                    self.reg_ready = [self.now; 64];
                    self.fetch_ready = self.now;
                    self.slots = 0;
                    self.last_fetch_line = u64::MAX;
                    self.mshr.fill(self.now);
                    self.timing_valid = true;
                }
                let start = self.now;
                let ops = self.run_loop::<true, true, S>(max_ops, sink);
                let cycles = if ops == 0 { 0 } else { self.now - start + 1 };
                (ops, cycles)
            }
        };
        match mode {
            Mode::FastForward => self.mode_ops.fast_forward += ops,
            Mode::Functional => self.mode_ops.functional += ops,
            Mode::DetailedWarming => self.mode_ops.detailed_warming += ops,
            Mode::DetailedMeasured => self.mode_ops.detailed_measured += ops,
        }
        RunResult {
            ops,
            cycles,
            halted: self.halted,
        }
    }

    #[inline(always)]
    fn issue_at(&mut self, ready: u64) -> u64 {
        let t = self.now.max(self.fetch_ready).max(ready);
        if t > self.now {
            self.now = t;
            self.slots = 0;
        }
        if self.slots >= self.config.issue_width {
            self.now += 1;
            self.slots = 0;
        }
        self.slots += 1;
        self.now
    }

    #[inline(always)]
    fn issue_mem(&mut self, ready: u64, lat_cycles: u32, is_miss: bool) -> u64 {
        let mut ready = ready;
        let mut slot = usize::MAX;
        if is_miss {
            slot = 0;
            for k in 1..self.mshr.len() {
                if self.mshr[k] < self.mshr[slot] {
                    slot = k;
                }
            }
            ready = ready.max(self.mshr[slot]);
        }
        let t = self.issue_at(ready);
        let done = t + u64::from(lat_cycles);
        if is_miss {
            self.mshr[slot] = done;
        }
        done
    }

    /// The original per-op interpreter/timing loop, monomorphized per
    /// mode class — byte-for-byte the pre-refactor hot loop, except that
    /// an out-of-range indirect jump now faults (see [`MachineFault`])
    /// instead of panicking, matching the decoded core.
    fn run_loop<const DETAILED: bool, const WARM: bool, S: RetireSink>(
        &mut self,
        max_ops: u64,
        sink: &mut S,
    ) -> u64 {
        let lat = self.config.lat;
        let mut ops = 0u64;
        while ops < max_ops {
            let pc = self.pc;
            let instr = self.instrs[pc as usize];

            // Instruction fetch: touch the I-cache hierarchy once per line
            // transition (exact for LRU state, cheap for straight-line code).
            if WARM {
                let line = (u64::from(pc) * INSTR_BYTES) >> self.line_shift;
                if line != self.last_fetch_line {
                    self.last_fetch_line = line;
                    if DETAILED {
                        let fl = self.memsys.fetch_latency(u64::from(pc) * INSTR_BYTES);
                        if fl > 0 {
                            self.fetch_ready = self.fetch_ready.max(self.now) + u64::from(fl);
                        }
                    } else {
                        self.memsys.warm_fetch(u64::from(pc) * INSTR_BYTES);
                    }
                }
            }

            let mut next_pc = pc + 1;
            let mut taken = false;
            match instr {
                Instr::Alu { op, rd, rs, rt } => {
                    let a = self.regs[rs.index()];
                    let b = self.regs[rt.index()];
                    self.write_reg(rd.index(), op.apply(a, b));
                    if DETAILED {
                        let ready = self.reg_ready[rs.index()].max(self.reg_ready[rt.index()]);
                        let t = self.issue_at(ready);
                        self.reg_ready[rd.index()] = t + u64::from(alu_latency(op, lat));
                    }
                }
                Instr::AluImm { op, rd, rs, imm } => {
                    let a = self.regs[rs.index()];
                    self.write_reg(rd.index(), op.apply(a, imm));
                    if DETAILED {
                        let t = self.issue_at(self.reg_ready[rs.index()]);
                        self.reg_ready[rd.index()] = t + u64::from(alu_latency(op, lat));
                    }
                }
                Instr::Li { rd, imm } => {
                    self.write_reg(rd.index(), imm);
                    if DETAILED {
                        let t = self.issue_at(0);
                        self.reg_ready[rd.index()] = t + u64::from(lat.alu);
                    }
                }
                Instr::Fpu { op, fd, fs, ft } => {
                    let a = self.fregs[fs.index()];
                    let b = self.fregs[ft.index()];
                    self.fregs[fd.index()] = op.apply(a, b);
                    if DETAILED {
                        let ready =
                            self.reg_ready[32 + fs.index()].max(self.reg_ready[32 + ft.index()]);
                        let t = self.issue_at(ready);
                        self.reg_ready[32 + fd.index()] = t + u64::from(fpu_latency(op, lat));
                    }
                }
                Instr::Load { rd, base, offset } => {
                    let addr = self.effective(base.index(), offset);
                    sink.data_access(addr);
                    let value = self.mem[addr as usize];
                    self.write_reg(rd.index(), value);
                    if DETAILED {
                        let l = self.memsys.load_latency(addr * 8);
                        let done = self.issue_mem(self.reg_ready[base.index()], l, l > lat.l1_hit);
                        self.reg_ready[rd.index()] = done;
                    } else if WARM {
                        self.memsys.warm_data(addr * 8);
                    }
                }
                Instr::Store { rs, base, offset } => {
                    let addr = self.effective(base.index(), offset);
                    sink.data_access(addr);
                    self.mem[addr as usize] = self.regs[rs.index()];
                    if DETAILED {
                        let ready = self.reg_ready[rs.index()].max(self.reg_ready[base.index()]);
                        let l = self.memsys.store_latency(addr * 8);
                        let _ = self.issue_mem(ready, 0, l > 0);
                    } else if WARM {
                        self.memsys.warm_data(addr * 8);
                    }
                }
                Instr::FLoad { fd, base, offset } => {
                    let addr = self.effective(base.index(), offset);
                    sink.data_access(addr);
                    self.fregs[fd.index()] = f64::from_bits(self.mem[addr as usize] as u64);
                    if DETAILED {
                        let l = self.memsys.load_latency(addr * 8);
                        let done = self.issue_mem(self.reg_ready[base.index()], l, l > lat.l1_hit);
                        self.reg_ready[32 + fd.index()] = done;
                    } else if WARM {
                        self.memsys.warm_data(addr * 8);
                    }
                }
                Instr::FStore { fs, base, offset } => {
                    let addr = self.effective(base.index(), offset);
                    sink.data_access(addr);
                    self.mem[addr as usize] = self.fregs[fs.index()].to_bits() as i64;
                    if DETAILED {
                        let ready =
                            self.reg_ready[32 + fs.index()].max(self.reg_ready[base.index()]);
                        let l = self.memsys.store_latency(addr * 8);
                        let _ = self.issue_mem(ready, 0, l > 0);
                    } else if WARM {
                        self.memsys.warm_data(addr * 8);
                    }
                }
                Instr::Branch {
                    cond,
                    rs,
                    rt,
                    target,
                } => {
                    let a = self.regs[rs.index()];
                    let b = self.regs[rt.index()];
                    taken = cond.eval(a, b);
                    if taken {
                        next_pc = target;
                    }
                    if DETAILED {
                        let ready = self.reg_ready[rs.index()].max(self.reg_ready[rt.index()]);
                        let t = self.issue_at(ready);
                        let correct = self.bpred.predict_and_update(pc, taken);
                        if !correct {
                            self.fetch_ready = t + u64::from(lat.mispredict);
                        }
                    } else if WARM {
                        self.bpred.predict_and_update(pc, taken);
                    }
                }
                Instr::Jump { target } => {
                    next_pc = target;
                    taken = true;
                    if DETAILED {
                        let _ = self.issue_at(0);
                    }
                }
                Instr::Jal { target, link } => {
                    self.write_reg(link.index(), i64::from(pc) + 1);
                    next_pc = target;
                    taken = true;
                    if DETAILED {
                        let t = self.issue_at(0);
                        self.reg_ready[link.index()] = t + u64::from(lat.alu);
                    }
                }
                Instr::Jr { rs } => {
                    let target = self.regs[rs.index()] as u32;
                    if target as usize >= self.instrs.len() {
                        self.fault = Some(MachineFault::IndirectJumpOutOfRange { pc, target });
                        self.halted = true;
                        break;
                    }
                    next_pc = target;
                    taken = true;
                    if DETAILED {
                        let t = self.issue_at(self.reg_ready[rs.index()]);
                        let correct = self.btb.predict_and_update(pc, target);
                        if !correct {
                            self.fetch_ready = t + u64::from(lat.mispredict);
                        }
                    } else if WARM {
                        self.btb.predict_and_update(pc, target);
                    }
                }
                Instr::Halt => {
                    self.halted = true;
                    if DETAILED {
                        let _ = self.issue_at(0);
                    }
                    ops += 1;
                    self.ops_since_taken += 1;
                    sink.retire(pc);
                    break;
                }
            }

            ops += 1;
            self.ops_since_taken += 1;
            sink.retire(pc);
            if taken {
                sink.taken_branch(pc, self.ops_since_taken);
                self.ops_since_taken = 0;
            }
            self.pc = next_pc;
        }
        ops
    }

    #[inline(always)]
    fn effective(&self, base: usize, offset: i64) -> u64 {
        (self.regs[base].wrapping_add(offset)) as u64 & self.addr_mask
    }

    #[inline(always)]
    fn write_reg(&mut self, index: usize, value: i64) {
        // r0 is hardwired to zero.
        if index != 0 {
            self.regs[index] = value;
        }
    }
}

impl std::fmt::Debug for ReferenceMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReferenceMachine")
            .field("pc", &self.pc)
            .field("halted", &self.halted)
            .field("retired", &self.mode_ops.total())
            .field("cycle", &self.now)
            .finish_non_exhaustive()
    }
}

#[inline(always)]
fn alu_latency(op: pgss_isa::AluOp, lat: crate::config::LatencyConfig) -> u32 {
    use pgss_isa::AluOp;
    match op {
        AluOp::Mul => lat.mul,
        AluOp::Div | AluOp::Rem => lat.div,
        _ => lat.alu,
    }
}

#[inline(always)]
fn fpu_latency(op: pgss_isa::FpuOp, lat: crate::config::LatencyConfig) -> u32 {
    use pgss_isa::FpuOp;
    match op {
        FpuOp::Add | FpuOp::Sub => lat.fp_add,
        FpuOp::Mul => lat.fp_mul,
        FpuOp::Div => lat.fp_div,
    }
}
