//! Branch direction prediction (gshare) and indirect-target prediction (BTB).

use crate::config::BranchPredictorConfig;

/// A gshare direction predictor: global history XOR branch address indexing a
/// table of two-bit saturating counters.
///
/// # Example
///
/// ```
/// use pgss_cpu::{BranchPredictor, BranchPredictorConfig};
///
/// let mut bp = BranchPredictor::new(BranchPredictorConfig::default());
/// // A branch that is always taken is learned once the all-taken global
/// // history pattern saturates.
/// for _ in 0..32 {
///     let _ = bp.predict_and_update(100, true);
/// }
/// assert!(bp.predict_and_update(100, true));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    /// Two-bit saturating counters; `>= 2` predicts taken.
    counters: Vec<u8>,
    history: u64,
    index_mask: u64,
    history_mask: u64,
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Creates a predictor with all counters weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is 0 or greater than 24.
    pub fn new(config: BranchPredictorConfig) -> BranchPredictor {
        assert!(
            (1..=24).contains(&config.history_bits),
            "history_bits must be in 1..=24, got {}",
            config.history_bits
        );
        let entries = 1usize << config.history_bits;
        BranchPredictor {
            counters: vec![1; entries],
            history: 0,
            index_mask: entries as u64 - 1,
            history_mask: entries as u64 - 1,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Predicts the direction of the branch at `pc`, then updates the
    /// counters and global history with the actual `taken` outcome. Returns
    /// `true` if the prediction was correct.
    #[inline]
    pub fn predict_and_update(&mut self, pc: u32, taken: bool) -> bool {
        let index = ((u64::from(pc)) ^ self.history) & self.index_mask;
        let counter = &mut self.counters[index as usize];
        let predicted_taken = *counter >= 2;
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
        self.predictions += 1;
        let correct = predicted_taken == taken;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Lifetime prediction count.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Lifetime misprediction count.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Lifetime misprediction rate in `[0, 1]`; `0.0` when never used.
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Clears tables, history, and statistics.
    pub fn reset(&mut self) {
        self.counters.fill(1);
        self.history = 0;
        self.predictions = 0;
        self.mispredictions = 0;
    }

    /// Captures the mutable state (counter table, global history,
    /// statistics) for a checkpoint.
    pub fn save_state(&self) -> BranchPredictorState {
        BranchPredictorState {
            counters: self.counters.clone(),
            history: self.history,
            predictions: self.predictions,
            mispredictions: self.mispredictions,
        }
    }

    /// Restores state captured by [`BranchPredictor::save_state`].
    ///
    /// # Panics
    ///
    /// Panics if `state` was captured from a predictor with a different
    /// table size.
    pub fn load_state(&mut self, state: &BranchPredictorState) {
        assert_eq!(
            state.counters.len(),
            self.counters.len(),
            "branch-predictor state shape mismatch"
        );
        self.counters.clone_from(&state.counters);
        self.history = state.history;
        self.predictions = state.predictions;
        self.mispredictions = state.mispredictions;
    }
}

/// The mutable state of a [`BranchPredictor`], as captured by
/// [`BranchPredictor::save_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchPredictorState {
    /// Two-bit saturating counter table.
    pub counters: Vec<u8>,
    /// Global branch history register.
    pub history: u64,
    /// Lifetime prediction count.
    pub predictions: u64,
    /// Lifetime misprediction count.
    pub mispredictions: u64,
}

/// A branch target buffer predicting the targets of indirect jumps
/// ([`pgss_isa::Instr::Jr`]) as "same target as last time".
#[derive(Debug, Clone)]
pub struct Btb {
    /// Last observed target per entry; `u32::MAX` = invalid.
    targets: Vec<u32>,
    mask: u32,
}

impl Btb {
    /// Creates an empty BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    pub fn new(entries: u32) -> Btb {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "BTB entries must be a power of two"
        );
        Btb {
            targets: vec![u32::MAX; entries as usize],
            mask: entries - 1,
        }
    }

    /// Predicts the target of the indirect jump at `pc`, then records the
    /// actual `target`. Returns `true` if the prediction was correct.
    #[inline]
    pub fn predict_and_update(&mut self, pc: u32, target: u32) -> bool {
        let slot = &mut self.targets[(pc & self.mask) as usize];
        let correct = *slot == target;
        *slot = target;
        correct
    }

    /// Clears all entries.
    pub fn reset(&mut self) {
        self.targets.fill(u32::MAX);
    }

    /// Captures the target table for a checkpoint.
    pub fn save_state(&self) -> BtbState {
        BtbState {
            targets: self.targets.clone(),
        }
    }

    /// Restores state captured by [`Btb::save_state`].
    ///
    /// # Panics
    ///
    /// Panics if `state` was captured from a BTB with a different entry
    /// count.
    pub fn load_state(&mut self, state: &BtbState) {
        assert_eq!(
            state.targets.len(),
            self.targets.len(),
            "BTB state shape mismatch"
        );
        self.targets.clone_from(&state.targets);
    }
}

/// The mutable state of a [`Btb`], as captured by [`Btb::save_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BtbState {
    /// Last observed target per entry; `u32::MAX` = invalid.
    pub targets: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp() -> BranchPredictor {
        BranchPredictor::new(BranchPredictorConfig {
            history_bits: 10,
            btb_entries: 16,
        })
    }

    #[test]
    fn learns_monotone_branch() {
        let mut p = bp();
        // Initial counters are weakly not-taken, so the first taken outcomes
        // mispredict, and each new global-history pattern hits a fresh
        // counter. Train until the all-taken history saturates.
        for _ in 0..32 {
            p.predict_and_update(64, true);
        }
        let before = p.mispredictions();
        for _ in 0..100 {
            assert!(p.predict_and_update(64, true));
        }
        assert_eq!(p.mispredictions(), before);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = bp();
        let mut outcome = false;
        for _ in 0..200 {
            p.predict_and_update(32, outcome);
            outcome = !outcome;
        }
        // After warm-up, the history-indexed counters disambiguate the
        // alternation perfectly.
        let before = p.mispredictions();
        for _ in 0..100 {
            p.predict_and_update(32, outcome);
            outcome = !outcome;
        }
        assert_eq!(
            p.mispredictions(),
            before,
            "alternating pattern should be learned"
        );
    }

    #[test]
    fn random_branches_mispredict_often() {
        let mut p = bp();
        // A pseudo-random but deterministic bit sequence.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut wrong = 0;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if !p.predict_and_update(8, x & 1 == 1) {
                wrong += 1;
            }
        }
        // Should be near 50%; certainly above 35%.
        assert!(
            wrong > 3_500,
            "only {wrong} mispredictions on random outcomes"
        );
    }

    #[test]
    fn rate_accounting() {
        let mut p = bp();
        p.predict_and_update(0, true); // counter=1 predicts NT, outcome T: wrong
        assert_eq!(p.predictions(), 1);
        assert_eq!(p.mispredictions(), 1);
        assert_eq!(p.misprediction_rate(), 1.0);
        p.reset();
        assert_eq!(p.predictions(), 0);
        assert_eq!(p.misprediction_rate(), 0.0);
    }

    #[test]
    fn btb_remembers_last_target() {
        let mut b = Btb::new(16);
        assert!(!b.predict_and_update(5, 100)); // cold
        assert!(b.predict_and_update(5, 100));
        assert!(!b.predict_and_update(5, 200)); // target changed
        assert!(b.predict_and_update(5, 200));
    }

    #[test]
    fn btb_aliasing_is_possible_but_reset_clears() {
        let mut b = Btb::new(2);
        b.predict_and_update(0, 7);
        assert!(b.predict_and_update(2, 7)); // aliases slot 0
        b.reset();
        assert!(!b.predict_and_update(0, 7));
    }

    #[test]
    #[should_panic(expected = "history_bits")]
    fn zero_history_panics() {
        let _ = BranchPredictor::new(BranchPredictorConfig {
            history_bits: 0,
            btb_entries: 2,
        });
    }
}
