//! Set-associative caches and the two-level memory system.

use crate::config::{CacheConfig, LatencyConfig, MachineConfig};

/// A set-associative cache with true-LRU replacement.
///
/// Only tags are modeled (the simulator's architectural memory holds the
/// data), which is all that timing and warm-up need.
///
/// # Example
///
/// ```
/// use pgss_cpu::{Cache, CacheConfig};
///
/// let mut cache = Cache::new(CacheConfig { size_bytes: 256, line_bytes: 64, associativity: 2 });
/// assert!(!cache.access(0));   // cold miss
/// assert!(cache.access(0));    // now a hit
/// assert!(!cache.access(4096)); // different line, miss
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `ways[set * assoc .. (set+1) * assoc]`, most-recently-used first.
    /// `u64::MAX` marks an invalid way.
    ways: Vec<u64>,
    assoc: usize,
    set_mask: u64,
    line_shift: u32,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if any geometry field is zero or not a power of two, or if the
    /// geometry implies zero sets.
    pub fn new(config: CacheConfig) -> Cache {
        assert!(
            config.size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            config.associativity.is_power_of_two(),
            "associativity must be a power of two"
        );
        let sets = config.num_sets();
        assert!(sets >= 1, "cache geometry implies zero sets");
        let assoc = config.associativity as usize;
        Cache {
            config,
            ways: vec![u64::MAX; sets as usize * assoc],
            assoc,
            set_mask: sets - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            hits: 0,
            misses: 0,
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses the line containing `byte_addr`, updating LRU state and
    /// allocating on miss. Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, byte_addr: u64) -> bool {
        self.access_line(byte_addr >> self.line_shift)
    }

    /// [`Cache::access`] with the line index already computed (callers
    /// that memoize the last line avoid recomputing it).
    #[inline]
    fn access_line(&mut self, line: u64) -> bool {
        let set = (line & self.set_mask) as usize;
        let base = set * self.assoc;
        let ways = &mut self.ways[base..base + self.assoc];
        // MRU-first search; move the hit way to the front.
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            ways[..=pos].rotate_right(1);
            self.hits += 1;
            true
        } else {
            // Evict the LRU way (last slot) by shifting everything down.
            ways.rotate_right(1);
            ways[0] = line;
            self.misses += 1;
            false
        }
    }

    /// A hit on the way that is already MRU in its set: bump the hit
    /// counter without the scan/rotate (the rotation over `[..=0]` is a
    /// no-op). Exactness argument for callers: checking `ways[base]`
    /// first observes the same LRU state [`Cache::access_line`] would,
    /// and a front hit leaves that state untouched.
    #[inline(always)]
    fn access_mru_hit(&mut self, line: u64) -> bool {
        let set = (line & self.set_mask) as usize;
        if self.ways[set * self.assoc] == line {
            self.hits += 1;
            true
        } else {
            false
        }
    }

    /// Probes without updating state. Returns `true` if the line is present.
    pub fn probe(&self, byte_addr: u64) -> bool {
        let line = byte_addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let base = set * self.assoc;
        self.ways[base..base + self.assoc].contains(&line)
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime hit rate in `[0, 1]`; `1.0` when never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Invalidates all lines and clears statistics.
    pub fn reset(&mut self) {
        self.ways.fill(u64::MAX);
        self.hits = 0;
        self.misses = 0;
    }

    /// Captures the mutable state (tag arrays in LRU order plus
    /// statistics) for a checkpoint.
    pub fn save_state(&self) -> CacheState {
        CacheState {
            ways: self.ways.clone(),
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Restores state captured by [`Cache::save_state`].
    ///
    /// # Panics
    ///
    /// Panics if `state` was captured from a cache with different
    /// geometry.
    pub fn load_state(&mut self, state: &CacheState) {
        assert_eq!(
            state.ways.len(),
            self.ways.len(),
            "cache state shape mismatch"
        );
        self.ways.clone_from(&state.ways);
        self.hits = state.hits;
        self.misses = state.misses;
    }
}

/// The mutable state of a [`Cache`], as captured by [`Cache::save_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheState {
    /// Tag arrays, MRU-first per set; `u64::MAX` marks an invalid way.
    pub ways: Vec<u64>,
    /// Lifetime hit count.
    pub hits: u64,
    /// Lifetime miss count.
    pub misses: u64,
}

/// The mutable state of a [`MemSystem`]: one [`CacheState`] per level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemSystemState {
    /// Instruction L1 state.
    pub l1i: CacheState,
    /// Data L1 state.
    pub l1d: CacheState,
    /// Unified L2 state.
    pub l2: CacheState,
}

/// The paper's two-level memory system: split L1 (instruction + data) over a
/// unified L2.
///
/// [`MemSystem::load_latency`] and friends return the access latency in
/// cycles and update the hierarchy (allocate-on-miss in both levels).
#[derive(Debug, Clone)]
pub struct MemSystem {
    /// Instruction L1.
    l1i: Cache,
    /// Data L1.
    l1d: Cache,
    /// Unified L2.
    l2: Cache,
    lat: LatencyConfig,
    /// L1D line of the most recent data access through the `*_fast`
    /// entry points (`u64::MAX` when unknown). Derived fast-path state,
    /// never serialized: by construction this line is the MRU way of its
    /// set, so a repeat access is a hit whose LRU rotation is a no-op and
    /// can be short-circuited to a counter bump. Cleared by
    /// [`MemSystem::load_state`].
    last_data_line: u64,
}

impl MemSystem {
    /// Builds the hierarchy described by `config`.
    pub fn new(config: &MachineConfig) -> MemSystem {
        MemSystem {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            lat: config.lat,
            last_data_line: u64::MAX,
        }
    }

    /// Fetches the instruction line at `byte_addr`; returns the added fetch
    /// latency in cycles (0 for an L1I hit).
    #[inline]
    pub fn fetch_latency(&mut self, byte_addr: u64) -> u32 {
        if self.l1i.access(byte_addr) {
            0
        } else if self.l2.access(byte_addr) {
            self.lat.l2_hit
        } else {
            self.lat.memory
        }
    }

    /// [`MemSystem::fetch_latency`] with an MRU-first fast path: a fetch
    /// that hits the MRU way of its L1I set (the common case for hot
    /// loops bouncing between a few lines) skips the scan/rotate.
    /// Identical state, counters, and latency.
    #[inline]
    pub fn fetch_latency_fast(&mut self, byte_addr: u64) -> u32 {
        let line = byte_addr >> self.l1i.line_shift;
        if self.l1i.access_mru_hit(line) {
            return 0;
        }
        if self.l1i.access_line(line) {
            0
        } else if self.l2.access(byte_addr) {
            self.lat.l2_hit
        } else {
            self.lat.memory
        }
    }

    /// Loads the data word at `byte_addr`; returns the load-to-use latency.
    #[inline]
    pub fn load_latency(&mut self, byte_addr: u64) -> u32 {
        self.last_data_line = u64::MAX;
        if self.l1d.access(byte_addr) {
            self.lat.l1_hit
        } else if self.l2.access(byte_addr) {
            self.lat.l2_hit
        } else {
            self.lat.memory
        }
    }

    /// [`MemSystem::load_latency`] with the same-line memo fast path:
    /// identical cache state, counters, and latency, one compare when the
    /// access stays on the most recently touched data line.
    #[inline]
    pub fn load_latency_fast(&mut self, byte_addr: u64) -> u32 {
        let line = byte_addr >> self.l1d.line_shift;
        if line == self.last_data_line {
            self.l1d.hits += 1;
            return self.lat.l1_hit;
        }
        self.last_data_line = line;
        if self.l1d.access_mru_hit(line) {
            return self.lat.l1_hit;
        }
        if self.l1d.access_line(line) {
            self.lat.l1_hit
        } else if self.l2.access(byte_addr) {
            self.lat.l2_hit
        } else {
            self.lat.memory
        }
    }

    /// Stores to the data word at `byte_addr` (write-allocate). Returns the
    /// fill latency: `0` for an L1 hit (the store buffer hides it), otherwise
    /// the L2 or memory latency, which the core charges against a
    /// miss-status-holding register.
    #[inline]
    pub fn store_latency(&mut self, byte_addr: u64) -> u32 {
        self.last_data_line = u64::MAX;
        if self.l1d.access(byte_addr) {
            0
        } else if self.l2.access(byte_addr) {
            self.lat.l2_hit
        } else {
            self.lat.memory
        }
    }

    /// [`MemSystem::store_latency`] with the same-line memo fast path
    /// (see [`MemSystem::load_latency_fast`]).
    #[inline]
    pub fn store_latency_fast(&mut self, byte_addr: u64) -> u32 {
        let line = byte_addr >> self.l1d.line_shift;
        if line == self.last_data_line {
            self.l1d.hits += 1;
            return 0;
        }
        self.last_data_line = line;
        if self.l1d.access_mru_hit(line) {
            return 0;
        }
        if self.l1d.access_line(line) {
            0
        } else if self.l2.access(byte_addr) {
            self.lat.l2_hit
        } else {
            self.lat.memory
        }
    }

    /// Touches the hierarchy exactly as a load would, without reporting
    /// latency — used by the functional warming mode.
    #[inline]
    pub fn warm_data(&mut self, byte_addr: u64) {
        self.last_data_line = u64::MAX;
        if !self.l1d.access(byte_addr) {
            self.l2.access(byte_addr);
        }
    }

    /// [`MemSystem::warm_data`] with the same-line memo fast path (see
    /// [`MemSystem::load_latency_fast`]).
    #[inline]
    pub fn warm_data_fast(&mut self, byte_addr: u64) {
        let line = byte_addr >> self.l1d.line_shift;
        if line == self.last_data_line {
            self.l1d.hits += 1;
            return;
        }
        self.last_data_line = line;
        if self.l1d.access_mru_hit(line) {
            return;
        }
        if !self.l1d.access_line(line) {
            self.l2.access(byte_addr);
        }
    }

    /// Touches the instruction hierarchy without reporting latency.
    #[inline]
    pub fn warm_fetch(&mut self, byte_addr: u64) {
        if !self.l1i.access(byte_addr) {
            self.l2.access(byte_addr);
        }
    }

    /// [`MemSystem::warm_fetch`] with the MRU-first fast path (see
    /// [`MemSystem::fetch_latency_fast`]).
    #[inline]
    pub fn warm_fetch_fast(&mut self, byte_addr: u64) {
        let line = byte_addr >> self.l1i.line_shift;
        if self.l1i.access_mru_hit(line) {
            return;
        }
        if !self.l1i.access_line(line) {
            self.l2.access(byte_addr);
        }
    }

    /// The instruction L1.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The data L1.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The unified L2.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Captures the warm state of all three caches.
    pub fn save_state(&self) -> MemSystemState {
        MemSystemState {
            l1i: self.l1i.save_state(),
            l1d: self.l1d.save_state(),
            l2: self.l2.save_state(),
        }
    }

    /// Restores state captured by [`MemSystem::save_state`].
    ///
    /// # Panics
    ///
    /// Panics if any level's geometry differs from when the state was
    /// captured.
    pub fn load_state(&mut self, state: &MemSystemState) {
        self.l1i.load_state(&state.l1i);
        self.l1d.load_state(&state.l1d);
        self.l2.load_state(&state.l2);
        // The memo is derived from the access stream, not part of the
        // state; a restored hierarchy starts with it unknown.
        self.last_data_line = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 64 B lines.
        Cache::new(CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            associativity: 2,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line, different set
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 lines: addresses with line index even (2 sets, 64B lines).
        let a = 0u64; // line 0, set 0
        let b = 128; // line 2, set 0
        let d = 256; // line 4, set 0
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a)); // a is now MRU, b is LRU
        assert!(!c.access(d)); // evicts b
        assert!(c.access(a));
        assert!(!c.access(b)); // b was evicted
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny();
        c.access(0);
        c.access(128); // LRU order: 128, 0
        assert!(c.probe(0));
        c.access(256); // should evict 0 (LRU), not 128
        assert!(c.probe(128));
        assert!(!c.probe(0));
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        c.reset();
        assert!(!c.probe(0));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.hit_rate(), 1.0);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0); // set 0
        c.access(64); // set 1
        assert!(c.probe(0));
        assert!(c.probe(64));
    }

    #[test]
    fn mem_system_latencies_escalate() {
        let cfg = MachineConfig::default();
        let mut m = MemSystem::new(&cfg);
        let lat = cfg.lat;
        assert_eq!(m.load_latency(0), lat.memory); // cold: full miss
        assert_eq!(m.load_latency(0), lat.l1_hit); // L1 hit
                                                   // Evict from L1 only: walk 5 lines mapping to L1 set 0 but distinct
                                                   // L2 sets is fiddly; instead verify L2 hit via a fresh line that was
                                                   // loaded into L2 by an instruction fetch.
        assert_eq!(m.fetch_latency(1 << 20), lat.memory);
        assert_eq!(m.load_latency(1 << 20), lat.l2_hit); // in L2 via fetch path
    }

    #[test]
    fn stores_allocate() {
        let cfg = MachineConfig::default();
        let mut m = MemSystem::new(&cfg);
        assert_eq!(m.store_latency(4096), cfg.lat.memory); // cold miss
        assert_eq!(m.load_latency(4096), cfg.lat.l1_hit);
        assert_eq!(m.store_latency(4096), 0); // hit
    }

    #[test]
    fn fast_paths_match_plain_paths_exactly() {
        // Drive two hierarchies with the same access stream — one through
        // the plain entry points, one through the memoized `*_fast` ones
        // (including interleaved plain calls, which must invalidate the
        // memo) — and require identical latencies and identical state.
        let cfg = MachineConfig::default();
        let mut plain = MemSystem::new(&cfg);
        let mut fast = MemSystem::new(&cfg);
        // A mix of repeats (memo hits), strides, and set conflicts.
        let mut addr = 0u64;
        let mut addrs = Vec::new();
        for i in 0..5_000u64 {
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(i);
            addrs.push(addr % (1 << 22));
            addrs.push((i / 3) * 8); // hot, same-line repeats
        }
        for (k, &a) in addrs.iter().enumerate() {
            match k % 6 {
                0 => assert_eq!(plain.load_latency(a), fast.load_latency_fast(a)),
                1 => assert_eq!(plain.store_latency(a), fast.store_latency_fast(a)),
                2 => {
                    plain.warm_data(a);
                    fast.warm_data_fast(a);
                }
                3 => assert_eq!(plain.fetch_latency(a), fast.fetch_latency_fast(a)),
                4 => {
                    plain.warm_fetch(a);
                    fast.warm_fetch_fast(a);
                }
                // Interleave a plain call on the `fast` instance: the memo
                // must be invalidated, not left stale.
                _ => assert_eq!(plain.load_latency(a), fast.load_latency(a)),
            }
        }
        assert_eq!(plain.save_state(), fast.save_state());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 300,
            line_bytes: 64,
            associativity: 2,
        });
    }
}
