//! An execution-driven processor simulator with functional and detailed
//! (cycle-level) modes — the substrate under every sampling technique in the
//! PGSS-Sim reproduction.
//!
//! The machine models the configuration evaluated in the paper: a 4-wide
//! issue, in-order superscalar core attached to a two-level cache hierarchy
//! with a split first level (4-way associative, 64 KB each for data and
//! instructions) and a 1 MB unified level-2 cache, plus a gshare branch
//! predictor with a branch target buffer for indirect jumps.
//!
//! # Simulation modes
//!
//! Sampled simulation interleaves cheap and expensive simulation. The
//! [`Mode`] enum mirrors the paper's taxonomy:
//!
//! * [`Mode::FastForward`] — pure functional execution; *nothing* is warmed.
//! * [`Mode::Functional`] — functional execution that keeps the long-lifetime
//!   structures (caches and branch predictors) warm, as SMARTS and PGSS-Sim
//!   require during fast-forwarding.
//! * [`Mode::DetailedWarming`] — full cycle-level simulation whose statistics
//!   are *discarded*; used for the ~3,000-op pre-sample warm-up of
//!   short-lifetime pipeline state.
//! * [`Mode::DetailedMeasured`] — full cycle-level simulation whose cycles
//!   are reported in the returned [`RunResult`].
//!
//! Retired-instruction counts are tracked per mode in [`ModeOps`], which is
//! how the experiments account for "amount of detailed simulation".
//!
//! # Example
//!
//! ```
//! use pgss_cpu::{Machine, MachineConfig, Mode};
//! use pgss_isa::{Assembler, Cond, Reg};
//!
//! # fn main() -> Result<(), pgss_isa::AsmError> {
//! // A loop that sums memory words 0..1024.
//! let mut asm = Assembler::new();
//! let (sum, i, n, v) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
//! asm.li(sum, 0);
//! asm.li(i, 0);
//! asm.li(n, 1024);
//! let top = asm.bind_new_label();
//! asm.load(v, i, 0);
//! asm.add(sum, sum, v);
//! asm.addi(i, i, 1);
//! asm.branch(Cond::Lt, i, n, top);
//! asm.halt();
//! let program = asm.finish()?;
//!
//! let mut machine = Machine::new(MachineConfig::default(), &program);
//! let result = machine.run(Mode::DetailedMeasured, u64::MAX);
//! assert!(result.halted);
//! // The walk is dominated by cold cache misses, so IPC is low but nonzero.
//! assert!(result.ipc() > 0.05);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bpred;
mod cache;
mod config;
mod machine;
mod reference;
mod sink;

pub use bpred::{BranchPredictor, BranchPredictorState, Btb, BtbState};
pub use cache::{Cache, CacheState, MemSystem, MemSystemState};
pub use config::{BranchPredictorConfig, CacheConfig, LatencyConfig, MachineConfig};
pub use machine::{Machine, MachineFault, MachineSnapshot, Mode, ModeOps, RunResult};
pub use reference::ReferenceMachine;
pub use sink::{NoopSink, RetireSink};
