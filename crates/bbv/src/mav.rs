//! Memory Access Vectors: a phase signature built from *where* a program
//! touches data memory rather than *which branches* it takes.
//!
//! Each signature is a [`HashedBbv`]-shaped vector of [`MAV_REGIONS`]
//! counters; data memory is tiled into that many equal power-of-two
//! regions, and every retired load or store increments its region's
//! counter. Programs whose phases differ by working set (streaming a
//! different buffer, chasing a different ring) separate in this space even
//! when their control flow — and therefore their hashed BBV — looks alike.
//! Reusing the `HashedBbv` container means the angle metric, the phase
//! table, and the clustering pipeline all work on either signature
//! unchanged.

use crate::hashed::{HashedBbv, HASHED_BBV_DIM};
use pgss_cpu::RetireSink;

/// Number of memory regions a MAV distinguishes — the same dimensionality
/// as the hashed BBV so the two signatures are drop-in interchangeable.
pub const MAV_REGIONS: usize = HASHED_BBV_DIM;

/// Collects a [`HashedBbv`]-shaped Memory Access Vector from the machine's
/// [`RetireSink::data_access`] events.
///
/// The tracker accumulates into `current` until [`MavTracker::take`]
/// resets it, mirroring [`crate::HashedBbvTracker`]'s contract so the
/// simulation driver can treat the two identically.
///
/// # Example
///
/// ```
/// use pgss_bbv::MavTracker;
/// use pgss_cpu::RetireSink;
///
/// let mut t = MavTracker::new(1 << 16); // 64 Ki-word memory, 2 Ki-word regions
/// t.data_access(0); // region 0
/// t.data_access((1 << 16) - 1); // region 31
/// let v = t.take();
/// assert_eq!(v.counts()[0], 1);
/// assert_eq!(v.counts()[31], 1);
/// assert_eq!(t.current().total_ops(), 0); // take() resets
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MavTracker {
    /// Word-address right-shift mapping an address to its region index.
    region_shift: u32,
    current: HashedBbv,
}

impl MavTracker {
    /// Creates a tracker for a machine with `memory_words` words of data
    /// memory (a power of two, per the machine's own contract), tiled
    /// into [`MAV_REGIONS`] equal regions. Memories smaller than
    /// [`MAV_REGIONS`] words degenerate to one word per region with the
    /// top regions unused.
    ///
    /// # Panics
    ///
    /// Panics if `memory_words` is zero or not a power of two.
    pub fn new(memory_words: usize) -> MavTracker {
        assert!(
            memory_words > 0 && memory_words.is_power_of_two(),
            "memory_words must be a non-zero power of two, got {memory_words}"
        );
        let region_shift = memory_words
            .trailing_zeros()
            .saturating_sub(MAV_REGIONS.trailing_zeros());
        MavTracker {
            region_shift,
            current: HashedBbv::new(),
        }
    }

    /// The word-address shift that maps an address to its region.
    pub fn region_shift(&self) -> u32 {
        self.region_shift
    }

    /// The vector accumulated since the last [`MavTracker::take`].
    pub fn current(&self) -> &HashedBbv {
        &self.current
    }

    /// Returns the accumulated vector and resets the accumulator.
    pub fn take(&mut self) -> HashedBbv {
        std::mem::take(&mut self.current)
    }

    /// Replaces the accumulated vector (snapshot-restore support).
    pub fn set_current(&mut self, bbv: HashedBbv) {
        self.current = bbv;
    }
}

impl RetireSink for MavTracker {
    #[inline]
    fn data_access(&mut self, addr: u64) {
        // Addresses arrive post-wrap (always inside memory), so the shift
        // alone lands in range; `min` only guards the degenerate
        // tiny-memory case where one word per region cannot tile.
        let region = ((addr >> self.region_shift) as usize).min(MAV_REGIONS - 1);
        self.current.record(region, 1);
    }

    /// Retirement counts are irrelevant to this signature; skip the
    /// default per-op loop.
    #[inline]
    fn retire_run(&mut self, _start_pc: u32, _len: u32) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_tile_memory_evenly() {
        let mut t = MavTracker::new(1 << 10); // 32 words per region
        assert_eq!(t.region_shift(), 5);
        for addr in 0..(1u64 << 10) {
            t.data_access(addr);
        }
        let v = t.take();
        assert_eq!(v.total_ops(), 1 << 10);
        assert!(v.counts().iter().all(|&c| c == 32), "{:?}", v.counts());
    }

    #[test]
    fn tiny_memory_clamps_into_range() {
        let mut t = MavTracker::new(16); // fewer words than regions
        assert_eq!(t.region_shift(), 0);
        for addr in 0..16 {
            t.data_access(addr);
        }
        let v = t.take();
        assert_eq!(v.total_ops(), 16);
        assert_eq!(v.counts()[15], 1);
        assert_eq!(v.counts()[31], 0);
    }

    #[test]
    fn take_resets_and_set_current_restores() {
        let mut t = MavTracker::new(1 << 8);
        t.data_access(7);
        let v = t.take();
        assert_eq!(t.current().total_ops(), 0);
        t.set_current(v.clone());
        assert_eq!(*t.current(), v);
    }

    #[test]
    fn distinct_working_sets_are_far_apart() {
        let mut low = MavTracker::new(1 << 12);
        let mut high = MavTracker::new(1 << 12);
        for i in 0..100 {
            low.data_access(i % (1 << 7)); // bottom region
            high.data_access((1 << 12) - 1 - (i % (1 << 7))); // top region
        }
        let (a, b) = (low.take(), high.take());
        assert!(a.angle(&b) > 1.5, "angle {}", a.angle(&b));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_memory() {
        MavTracker::new(100);
    }
}
