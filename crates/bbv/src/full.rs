//! SimPoint-style full basic-block vectors.

use pgss_cpu::RetireSink;
use pgss_isa::Program;

/// One interval's full BBV: retired-instruction counts per static basic
/// block (instruction-weighted, as in SimPoint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FullBbv {
    counts: Vec<u64>,
    total: u64,
}

impl FullBbv {
    /// Creates a zero vector with one slot per basic block.
    pub fn zeroed(num_blocks: usize) -> FullBbv {
        FullBbv {
            counts: vec![0; num_blocks],
            total: 0,
        }
    }

    /// Number of dimensions (static basic blocks).
    pub fn dim(&self) -> usize {
        self.counts.len()
    }

    /// Total retired instructions in the interval.
    pub fn total_ops(&self) -> u64 {
        self.total
    }

    /// Raw per-block counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The vector normalised to unit *sum* (SimPoint's convention), as
    /// `f64`s; an all-zero vector stays zero.
    pub fn normalized(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let t = self.total as f64;
        self.counts.iter().map(|&c| c as f64 / t).collect()
    }

    /// SimPoint's Manhattan distance between unit-sum normalisations (see
    /// [`crate::manhattan`]).
    pub fn manhattan(&self, other: &FullBbv) -> f64 {
        let a: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        let b: Vec<f64> = other.counts.iter().map(|&c| c as f64).collect();
        crate::manhattan(&a, &b)
    }

    /// Rebuilds a vector from raw per-block counts (e.g. decoded from a
    /// checkpoint); the total is recomputed from the counts.
    pub fn from_counts(counts: Vec<u64>) -> FullBbv {
        let total = counts.iter().sum();
        FullBbv { counts, total }
    }

    /// Accumulates `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn merge(&mut self, other: &FullBbv) {
        assert_eq!(self.dim(), other.dim(), "BBV dimension mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Component-wise difference of two *cumulative* vectors — see
    /// [`crate::HashedBbv::diff`] for the checkpoint-restore use.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ or `earlier` is not
    /// component-wise `<= self`.
    pub fn diff(&self, earlier: &FullBbv) -> FullBbv {
        assert_eq!(self.dim(), earlier.dim(), "BBV dimension mismatch");
        let counts: Vec<u64> = self
            .counts
            .iter()
            .zip(&earlier.counts)
            .map(|(&a, &b)| {
                a.checked_sub(b)
                    .expect("diff of non-monotone cumulative BBVs")
            })
            .collect();
        let total = self
            .total
            .checked_sub(earlier.total)
            .expect("diff of non-monotone cumulative BBVs");
        FullBbv { counts, total }
    }
}

/// A [`RetireSink`] that counts retired instructions per static basic block,
/// producing one [`FullBbv`] per interval.
///
/// SimPoint requires these vectors "for the entire execution of a program" —
/// the offline-analysis cost the paper criticises. The tracker is attached
/// during a dedicated functional profiling pass.
#[derive(Debug, Clone)]
pub struct FullBbvTracker {
    /// Basic-block id per instruction address, copied from the program.
    block_of: Vec<u32>,
    current: FullBbv,
}

impl FullBbvTracker {
    /// Creates a tracker for `program`.
    pub fn new(program: &Program) -> FullBbvTracker {
        let block_of = (0..program.len() as u32)
            .map(|pc| program.block_of(pc))
            .collect();
        FullBbvTracker {
            block_of,
            current: FullBbv::zeroed(program.num_blocks()),
        }
    }

    /// The vector accumulated so far in the current interval.
    pub fn current(&self) -> &FullBbv {
        &self.current
    }

    /// Returns the accumulated vector and starts a fresh interval.
    pub fn take(&mut self) -> FullBbv {
        let dim = self.current.dim();
        std::mem::replace(&mut self.current, FullBbv::zeroed(dim))
    }

    /// Overwrites the in-flight vector — used when a checkpoint restore
    /// repositions the run mid-interval.
    ///
    /// # Panics
    ///
    /// Panics if `bbv`'s dimension does not match the tracked program.
    pub fn set_current(&mut self, bbv: FullBbv) {
        assert_eq!(bbv.dim(), self.current.dim(), "BBV dimension mismatch");
        self.current = bbv;
    }
}

impl RetireSink for FullBbvTracker {
    #[inline]
    fn retire(&mut self, pc: u32) {
        self.current.counts[self.block_of[pc as usize] as usize] += 1;
        self.current.total += 1;
    }

    /// Walks the block-index map for the whole straight-line run at
    /// once: one slice traversal and a single total update, instead of a
    /// virtual-feeling per-op call from the superblock core.
    #[inline]
    fn retire_run(&mut self, start_pc: u32, len: u32) {
        let s = start_pc as usize;
        for &block in &self.block_of[s..s + len as usize] {
            self.current.counts[block as usize] += 1;
        }
        self.current.total += u64::from(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgss_isa::{Assembler, Cond, Reg};

    fn looped_program() -> Program {
        let mut asm = Assembler::new();
        let (i, n) = (Reg::R1, Reg::R2);
        asm.li(i, 0);
        asm.li(n, 10);
        let top = asm.bind_new_label();
        asm.addi(i, i, 1);
        asm.branch(Cond::Lt, i, n, top);
        asm.halt();
        asm.finish().unwrap()
    }

    #[test]
    fn counts_follow_execution() {
        let p = looped_program();
        let mut t = FullBbvTracker::new(&p);
        // Simulate retirement by hand: preamble once, loop body 10 times,
        // halt once.
        t.retire(0);
        t.retire(1);
        for _ in 0..10 {
            t.retire(2);
            t.retire(3);
        }
        t.retire(4);
        let v = t.take();
        assert_eq!(v.total_ops(), 23);
        // Blocks: [0..2) preamble, [2..4) loop, [4..5) halt.
        assert_eq!(v.counts(), &[2, 20, 1]);
    }

    #[test]
    fn normalized_sums_to_one() {
        let p = looped_program();
        let mut t = FullBbvTracker::new(&p);
        for pc in [0u32, 1, 2, 3, 2, 3] {
            t.retire(pc);
        }
        let n = t.take().normalized();
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn take_resets() {
        let p = looped_program();
        let mut t = FullBbvTracker::new(&p);
        t.retire(0);
        let first = t.take();
        assert_eq!(first.total_ops(), 1);
        assert_eq!(t.current().total_ops(), 0);
        t.retire(2);
        let second = t.take();
        assert_eq!(second.counts()[1], 1);
        assert_eq!(second.counts()[0], 0);
    }

    #[test]
    fn merge_diff_and_from_counts_are_consistent() {
        let mut early = FullBbv::from_counts(vec![3, 0, 7]);
        let interval = FullBbv::from_counts(vec![1, 4, 0]);
        let mut late = early.clone();
        late.merge(&interval);
        assert_eq!(late.total_ops(), 15);
        assert_eq!(late.diff(&early), interval);
        early.merge(&FullBbv::zeroed(3));
        assert_eq!(early.total_ops(), 10);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let a = FullBbv::zeroed(2);
        let b = FullBbv::zeroed(3);
        let _ = a.diff(&b);
    }

    #[test]
    fn tracker_set_current_overwrites() {
        let p = looped_program();
        let mut t = FullBbvTracker::new(&p);
        t.retire(0);
        t.set_current(FullBbv::from_counts(vec![0, 9, 0]));
        assert_eq!(t.current().total_ops(), 9);
    }

    #[test]
    fn manhattan_distances() {
        let a = FullBbv {
            counts: vec![10, 0],
            total: 10,
        };
        let b = FullBbv {
            counts: vec![5, 0],
            total: 5,
        };
        let c = FullBbv {
            counts: vec![0, 7],
            total: 7,
        };
        assert_eq!(a.manhattan(&b), 0.0); // same distribution
        assert_eq!(a.manhattan(&c), 2.0); // disjoint support
        let zero = FullBbv::zeroed(2);
        assert_eq!(zero.manhattan(&FullBbv::zeroed(2)), 0.0);
        assert_eq!(zero.manhattan(&a), 2.0);
    }
}
