//! The paper's online hashed basic-block vector.

use pgss_cpu::RetireSink;
use pgss_stats::DetRng;

/// Dimensionality of the hashed BBV: the hash yields a 5-bit index into 32
/// registers.
pub const HASHED_BBV_DIM: usize = 32;

/// The hash reducing a taken branch's address to a 5-bit register index.
///
/// The paper's hardware "simply selects five bits from the address",
/// chosen at random but constant throughout the simulation
/// ([`BbvHash::select_bits_from_seed`], [`BbvHash::from_bits`]). That works
/// for SPEC binaries, whose branch sites spread across a 32-bit address
/// space; the *generated* programs of this reproduction concentrate all
/// branch sites in a few hundred consecutive addresses, where raw bit
/// selection wastes most of its entropy and distinct hot branches collide
/// routinely. [`BbvHash::from_seed`] therefore defaults to an
/// equal-cost multiplicative mix of the address (one multiply, top five
/// bits) — the same 32-register vector, with the entropy a sparse address
/// space would have provided. The substitution is recorded in the
/// repository's DESIGN.md.
///
/// # Example
///
/// ```
/// use pgss_bbv::BbvHash;
///
/// let h = BbvHash::from_seed(42);
/// let i = h.index(0x1234);
/// assert!(i < 32);
/// assert_eq!(i, h.index(0x1234)); // deterministic
/// assert_ne!(BbvHash::from_seed(42), BbvHash::from_seed(43));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BbvHash {
    kind: HashKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HashKind {
    /// Concatenate five fixed bit positions (the paper's literal hardware).
    Bits([u32; 5]),
    /// Multiply by a seeded odd constant and take the top five bits.
    Mix(u64),
}

impl BbvHash {
    /// The default hash: a seeded multiplicative mix (see the type-level
    /// discussion for why this replaces raw bit selection here).
    pub fn from_seed(seed: u64) -> BbvHash {
        // SplitMix64 finalizer scramble of the seed; forced odd.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        BbvHash {
            kind: HashKind::Mix((z ^ (z >> 31)) | 1),
        }
    }

    /// The paper's literal mechanism with pseudo-random positions: five
    /// distinct bit positions drawn from the low 16 bits of the address.
    pub fn select_bits_from_seed(seed: u64) -> BbvHash {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut positions: Vec<u32> = (0..16).collect();
        rng.shuffle(&mut positions);
        let mut bits = [0u32; 5];
        bits.copy_from_slice(&positions[..5]);
        BbvHash {
            kind: HashKind::Bits(bits),
        }
    }

    /// The paper's literal mechanism with explicit bit positions (each must
    /// be `< 32`).
    ///
    /// # Panics
    ///
    /// Panics if any position is 32 or greater.
    pub fn from_bits(bits: [u32; 5]) -> BbvHash {
        assert!(bits.iter().all(|&b| b < 32), "bit positions must be < 32");
        BbvHash {
            kind: HashKind::Bits(bits),
        }
    }

    /// The selected bit positions, when the hash is a bit selection.
    pub fn bits(&self) -> Option<[u32; 5]> {
        match self.kind {
            HashKind::Bits(b) => Some(b),
            HashKind::Mix(_) => None,
        }
    }

    /// Hashes a branch address to a register index in `0..32`.
    #[inline]
    pub fn index(&self, addr: u32) -> usize {
        match self.kind {
            HashKind::Bits(bits) => {
                let mut out = 0usize;
                for (k, &b) in bits.iter().enumerate() {
                    out |= (((addr >> b) & 1) as usize) << k;
                }
                out
            }
            HashKind::Mix(m) => (u64::from(addr).wrapping_mul(m) >> 59) as usize,
        }
    }
}

/// One interval's hashed BBV: 32 accumulators of "retired ops attributed to
/// branches hashing here".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HashedBbv {
    counts: [u64; HASHED_BBV_DIM],
    total: u64,
}

impl HashedBbv {
    /// Creates an all-zero vector.
    pub fn new() -> HashedBbv {
        HashedBbv::default()
    }

    /// Adds `ops` retired operations to register `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub fn record(&mut self, index: usize, ops: u64) {
        self.counts[index] += ops;
        self.total += ops;
    }

    /// Total operations recorded.
    pub fn total_ops(&self) -> u64 {
        self.total
    }

    /// The raw accumulator values.
    pub fn counts(&self) -> &[u64; HASHED_BBV_DIM] {
        &self.counts
    }

    /// The vector L2-normalised to unit length; all-zero input yields the
    /// zero vector.
    pub fn normalized(&self) -> [f64; HASHED_BBV_DIM] {
        let mut v = [0.0; HASHED_BBV_DIM];
        let norm = self
            .counts
            .iter()
            .map(|&c| (c as f64) * (c as f64))
            .sum::<f64>()
            .sqrt();
        if norm > 0.0 {
            for (o, &c) in v.iter_mut().zip(&self.counts) {
                *o = c as f64 / norm;
            }
        }
        v
    }

    /// Angle in radians between this vector and `other` (see
    /// [`crate::angle`]); the paper's phase-similarity metric.
    pub fn angle(&self, other: &HashedBbv) -> f64 {
        let a: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        let b: Vec<f64> = other.counts.iter().map(|&c| c as f64).collect();
        crate::angle(&a, &b)
    }

    /// Rebuilds a vector from raw accumulator values (e.g. decoded from a
    /// checkpoint); the total is recomputed from the counts.
    pub fn from_counts(counts: [u64; HASHED_BBV_DIM]) -> HashedBbv {
        HashedBbv {
            counts,
            total: counts.iter().sum(),
        }
    }

    /// Accumulates `other` into `self` (used to maintain per-phase centroid
    /// signatures).
    pub fn merge(&mut self, other: &HashedBbv) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Component-wise difference of two *cumulative* vectors: the activity
    /// between the two points `earlier` and `self` were captured at. This
    /// is how a checkpoint restore reconstructs an in-flight interval
    /// vector from cumulative-since-op-0 checkpoint state.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not component-wise `<= self` (i.e. the
    /// vectors are not two cumulative observations of the same run).
    pub fn diff(&self, earlier: &HashedBbv) -> HashedBbv {
        let mut counts = [0u64; HASHED_BBV_DIM];
        for (o, (&a, &b)) in counts
            .iter_mut()
            .zip(self.counts.iter().zip(&earlier.counts))
        {
            *o = a
                .checked_sub(b)
                .expect("diff of non-monotone cumulative BBVs");
        }
        HashedBbv {
            counts,
            total: self
                .total
                .checked_sub(earlier.total)
                .expect("diff of non-monotone cumulative BBVs"),
        }
    }

    /// Resets all accumulators to zero.
    pub fn clear(&mut self) {
        *self = HashedBbv::default();
    }
}

/// A [`RetireSink`] that builds a [`HashedBbv`] from taken-branch events, as
/// the paper's proposed tracking hardware does (implemented in software
/// here, exactly as the paper itself did).
///
/// Attach the tracker to [`pgss_cpu::Machine::run_with`] for one
/// fast-forward interval, then [`HashedBbvTracker::take`] the finished
/// vector.
#[derive(Debug, Clone)]
pub struct HashedBbvTracker {
    hash: BbvHash,
    current: HashedBbv,
}

impl HashedBbvTracker {
    /// Creates a tracker using `hash`.
    pub fn new(hash: BbvHash) -> HashedBbvTracker {
        HashedBbvTracker {
            hash,
            current: HashedBbv::new(),
        }
    }

    /// The tracker's hash function.
    pub fn hash(&self) -> BbvHash {
        self.hash
    }

    /// The vector accumulated so far in the current interval.
    pub fn current(&self) -> &HashedBbv {
        &self.current
    }

    /// Returns the accumulated vector and starts a fresh interval.
    pub fn take(&mut self) -> HashedBbv {
        std::mem::take(&mut self.current)
    }

    /// Overwrites the in-flight vector — used when a checkpoint restore
    /// repositions the run mid-interval and the tracker state must match
    /// what an uninterrupted run would hold.
    pub fn set_current(&mut self, bbv: HashedBbv) {
        self.current = bbv;
    }
}

impl RetireSink for HashedBbvTracker {
    #[inline]
    fn taken_branch(&mut self, pc: u32, ops_since_last: u64) {
        self.current.record(self.hash.index(pc), ops_since_last);
    }

    /// The hashed BBV is driven purely by taken-branch events (the
    /// machine carries the ops-since-last-taken count), so a whole
    /// straight-line superblock costs one no-op call instead of a call
    /// per retired instruction.
    #[inline]
    fn retire_run(&mut self, _start_pc: u32, _len: u32) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_selection_uses_only_selected_bits() {
        let h = BbvHash::from_bits([0, 1, 2, 3, 4]);
        assert_eq!(h.index(0b10101), 0b10101);
        assert_eq!(h.index(0b100000), 0); // bit 5 not selected
        let h2 = BbvHash::from_bits([4, 3, 2, 1, 0]);
        assert_eq!(h2.index(0b00001), 0b10000); // reversed concatenation
    }

    #[test]
    fn seeded_bit_selection_is_deterministic_with_distinct_bits() {
        let a = BbvHash::select_bits_from_seed(1);
        let b = BbvHash::select_bits_from_seed(1);
        assert_eq!(a, b);
        let bits = a.bits().expect("bit-selection hash exposes its bits");
        for i in 0..5 {
            for j in i + 1..5 {
                assert_ne!(bits[i], bits[j], "bit positions must be distinct");
            }
        }
    }

    #[test]
    fn mix_hash_separates_dense_addresses() {
        // The failure mode that motivated the mix: a handful of nearby
        // branch addresses must spread over the 32 buckets.
        let h = BbvHash::from_seed(7);
        assert!(h.bits().is_none());
        let mut buckets: Vec<usize> = (0..24u32).map(|pc| h.index(pc * 7 + 3)).collect();
        buckets.sort_unstable();
        buckets.dedup();
        assert!(
            buckets.len() >= 12,
            "24 dense addresses landed in only {} buckets",
            buckets.len()
        );
    }

    #[test]
    fn mix_hash_in_range_and_deterministic() {
        let h = BbvHash::from_seed(99);
        for pc in 0..10_000u32 {
            let i = h.index(pc);
            assert!(i < 32);
            assert_eq!(i, h.index(pc));
        }
    }

    #[test]
    #[should_panic(expected = "must be < 32")]
    fn out_of_range_bit_panics() {
        let _ = BbvHash::from_bits([0, 1, 2, 3, 32]);
    }

    #[test]
    fn record_and_normalize() {
        let mut v = HashedBbv::new();
        v.record(0, 30);
        v.record(1, 40);
        assert_eq!(v.total_ops(), 70);
        let n = v.normalized();
        assert!((n[0] - 0.6).abs() < 1e-12);
        assert!((n[1] - 0.8).abs() < 1e-12);
        let norm: f64 = n.iter().map(|x| x * x).sum();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_normalizes_to_zero() {
        let v = HashedBbv::new();
        assert!(v.normalized().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = HashedBbv::new();
        a.record(3, 10);
        let mut b = HashedBbv::new();
        b.record(3, 5);
        b.record(7, 5);
        a.merge(&b);
        assert_eq!(a.counts()[3], 15);
        assert_eq!(a.counts()[7], 5);
        assert_eq!(a.total_ops(), 20);
    }

    #[test]
    fn from_counts_and_diff_reconstruct_intervals() {
        let mut cum_early = HashedBbv::new();
        cum_early.record(2, 100);
        cum_early.record(9, 50);
        let mut cum_late = cum_early;
        cum_late.record(2, 25);
        cum_late.record(31, 5);
        let interval = cum_late.diff(&cum_early);
        assert_eq!(interval.counts()[2], 25);
        assert_eq!(interval.counts()[31], 5);
        assert_eq!(interval.total_ops(), 30);
        let rebuilt = HashedBbv::from_counts(*interval.counts());
        assert_eq!(rebuilt, interval);
    }

    #[test]
    #[should_panic(expected = "non-monotone")]
    fn diff_of_unrelated_vectors_panics() {
        let mut a = HashedBbv::new();
        a.record(0, 1);
        let mut b = HashedBbv::new();
        b.record(1, 1);
        let _ = a.diff(&b);
    }

    #[test]
    fn tracker_set_current_overwrites() {
        let mut t = HashedBbvTracker::new(BbvHash::from_seed(1));
        t.taken_branch(4, 12);
        let mut replacement = HashedBbv::new();
        replacement.record(7, 99);
        t.set_current(replacement);
        assert_eq!(t.current().total_ops(), 99);
        assert_eq!(t.current().counts()[7], 99);
    }

    #[test]
    fn tracker_take_resets() {
        let mut t = HashedBbvTracker::new(BbvHash::from_bits([0, 1, 2, 3, 4]));
        t.taken_branch(5, 100);
        assert_eq!(t.current().total_ops(), 100);
        let v = t.take();
        assert_eq!(v.total_ops(), 100);
        assert_eq!(t.current().total_ops(), 0);
    }

    #[test]
    fn same_behaviour_same_vector() {
        let h = BbvHash::from_seed(3);
        let mut t1 = HashedBbvTracker::new(h);
        let mut t2 = HashedBbvTracker::new(h);
        for pc in [16u32, 48, 16, 80, 16] {
            t1.taken_branch(pc, 10);
            t2.taken_branch(pc, 10);
        }
        assert_eq!(t1.take(), t2.take());
    }
}
