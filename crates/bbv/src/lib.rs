//! Basic-block vectors: the program-behaviour signatures under both
//! SimPoint-style offline phase analysis and the paper's online hashed BBV.
//!
//! Two vector flavours are provided:
//!
//! * [`FullBbv`] — one counter per *static basic block*, incremented per
//!   retired instruction (SimPoint's instruction-weighted BBV). Collected by
//!   a [`FullBbvTracker`] and compared with the Manhattan distance after
//!   normalising to unit sum, exactly as the SimPoint tool chain does.
//! * [`HashedBbv`] — the paper's hardware-friendly 32-register vector: five
//!   random-but-fixed bits of each taken branch's address index a register,
//!   which is incremented by the number of retired operations since the
//!   previous taken branch. Collected by a [`HashedBbvTracker`] and compared
//!   by the *angle* between L2-normalised vectors (the dot product gives the
//!   cosine; the paper expresses thresholds as fractions of π radians).
//!
//! # Example
//!
//! ```
//! use pgss_bbv::{BbvHash, HashedBbv};
//!
//! let hash = BbvHash::from_bits([2, 3, 4, 5, 6]);
//! let mut a = HashedBbv::new();
//! let mut b = HashedBbv::new();
//! // Two intervals executing the same branch at the same rate...
//! a.record(hash.index(0x400), 100);
//! b.record(hash.index(0x400), 100);
//! // ...are zero radians apart.
//! assert!(a.angle(&b) < 1e-9);
//! // An interval executing a different branch is orthogonal (π/2).
//! let mut c = HashedBbv::new();
//! c.record(hash.index(0x404), 100);
//! assert!(a.angle(&c) > 1.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod full;
mod hashed;
mod mav;

pub use full::{FullBbv, FullBbvTracker};
pub use hashed::{BbvHash, HashedBbv, HashedBbvTracker, HASHED_BBV_DIM};
pub use mav::{MavTracker, MAV_REGIONS};

/// Angle in radians between two non-negative vectors after L2
/// normalisation: `acos(a·b / (‖a‖‖b‖))`, clamped into `[0, π/2]`.
///
/// Conventions for degenerate inputs: two zero vectors are identical (angle
/// 0); a zero vector against a non-zero one is maximally different (π/2).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn angle(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "angle requires equal-length vectors");
    let na = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    match (na == 0.0, nb == 0.0) {
        (true, true) => 0.0,
        (true, false) | (false, true) => std::f64::consts::FRAC_PI_2,
        (false, false) => {
            let dot = a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>() / (na * nb);
            dot.clamp(-1.0, 1.0).acos()
        }
    }
}

/// Manhattan (L1) distance between two vectors after normalising each to
/// unit *sum* — SimPoint's BBV distance. The result lies in `[0, 2]`.
///
/// Two zero vectors are at distance 0; a zero vector against a non-zero one
/// is at the maximum distance 2.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "manhattan requires equal-length vectors");
    let sa: f64 = a.iter().sum();
    let sb: f64 = b.iter().sum();
    match (sa == 0.0, sb == 0.0) {
        (true, true) => 0.0,
        (true, false) | (false, true) => 2.0,
        (false, false) => a.iter().zip(b).map(|(x, y)| (x / sa - y / sb).abs()).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn angle_identical_is_zero() {
        assert!(angle(&[1.0, 2.0], &[2.0, 4.0]) < 1e-7); // scale-invariant
    }

    #[test]
    fn angle_orthogonal_is_half_pi() {
        let a = [1.0, 0.0];
        let b = [0.0, 3.0];
        assert!((angle(&a, &b) - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn angle_zero_vector_conventions() {
        assert_eq!(angle(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        assert_eq!(angle(&[0.0, 0.0], &[1.0, 0.0]), FRAC_PI_2);
    }

    #[test]
    fn angle_45_degrees() {
        let a = [1.0, 0.0];
        let b = [1.0, 1.0];
        assert!((angle(&a, &b) - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn manhattan_basics() {
        assert_eq!(manhattan(&[1.0, 1.0], &[2.0, 2.0]), 0.0);
        assert_eq!(manhattan(&[1.0, 0.0], &[0.0, 1.0]), 2.0);
        assert_eq!(manhattan(&[0.0], &[0.0]), 0.0);
        assert_eq!(manhattan(&[0.0], &[5.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        let _ = angle(&[1.0], &[1.0, 2.0]);
    }
}
