//! A small blocking client for the campaign server's line-delimited JSON
//! protocol. Used by the tests and examples; also a precise description
//! of the protocol itself.
//!
//! # Protocol
//!
//! One request per line, one (or, for streaming ops, several) response
//! lines back. Every response object carries `"ok"`; failures carry an
//! `"error"` string. Streaming responses (`report`, `metrics`) announce
//! `"lines":N` and are followed by exactly N raw payload lines. `watch`
//! streams `"event":"cell"` lines until an `"event":"end"` line.
//!
//! ```text
//! → {"op":"submit","tenant":"ci","spec":{"suite":[{"name":"164.gzip","scale":0.01}],
//!    "techniques":[{"kind":"smarts"}]}}
//! ← {"ok":true,"job":"91b2f00c1d9aa3e7","cells":1}
//! → {"op":"status","job":"91b2f00c1d9aa3e7"}
//! ← {"ok":true,"phase":"running","done":0,"total":1,"failed":0,"retries":0}
//! ```

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;

use pgss_obs::json_string;

use crate::json::{self, Value};
use crate::server::{dial, BoundAddr, Stream};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's bytes didn't parse as the protocol.
    Protocol(String),
    /// The server answered `"ok":false` with this error.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A `status` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// `"queued"`, `"running"`, `"done"`, or `"cancelled"`.
    pub phase: String,
    /// Cells completed successfully.
    pub done: u64,
    /// Total cells in the grid.
    pub total: u64,
    /// Cells that exhausted their retries.
    pub failed: u64,
    /// Retry attempts so far.
    pub retries: u64,
}

/// One `watch` stream event (a completed cell).
#[derive(Debug, Clone, PartialEq)]
pub struct CellEvent {
    /// Cell index in canonical grid order.
    pub index: u64,
    /// Cells done so far (out-of-order completion means this is the
    /// count at send time, not `index + 1`).
    pub done: u64,
    /// Total cells.
    pub total: u64,
    /// Workload name.
    pub workload: String,
    /// Technique name.
    pub technique: String,
    /// The cell's IPC estimate.
    pub ipc: f64,
}

/// Blocking protocol client over one connection.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Client {
    fn from_stream(stream: Stream) -> Result<Client, ClientError> {
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    /// Connects to a started [`crate::server::Server`]'s address.
    pub fn connect(addr: &BoundAddr) -> Result<Client, ClientError> {
        Client::from_stream(dial(addr)?)
    }

    /// Connects to a TCP address such as `127.0.0.1:7071`.
    pub fn connect_tcp(addr: &str) -> Result<Client, ClientError> {
        Client::from_stream(Stream::Tcp(TcpStream::connect(addr)?))
    }

    /// Connects to a Unix-domain socket path.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<Client, ClientError> {
        Client::from_stream(Stream::Unix(UnixStream::connect(path)?))
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_raw_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol("connection closed".to_string()));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_response(&mut self) -> Result<Value, ClientError> {
        let line = self.read_raw_line()?;
        let v = json::parse(&line)
            .map_err(|e| ClientError::Protocol(format!("bad response line: {e}")))?;
        match v.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(v),
            Some(false) => Err(ClientError::Server(
                v.get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("unspecified")
                    .to_string(),
            )),
            None => Err(ClientError::Protocol("response without \"ok\"".to_string())),
        }
    }

    fn round_trip(&mut self, request: &str) -> Result<Value, ClientError> {
        self.send(request)?;
        self.read_response()
    }

    fn field_u64(v: &Value, name: &str) -> Result<u64, ClientError> {
        v.get(name)
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Protocol(format!("response missing {name:?}")))
    }

    fn field_str(v: &Value, name: &str) -> Result<String, ClientError> {
        Ok(v.get(name)
            .and_then(Value::as_str)
            .ok_or_else(|| ClientError::Protocol(format!("response missing {name:?}")))?
            .to_string())
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.round_trip("{\"op\":\"ping\"}").map(|_| ())
    }

    /// Submits a campaign spec (a JSON object; see
    /// [`crate::spec::CampaignSpec::from_json`] for the schema) and
    /// returns the 16-hex-digit job id.
    ///
    /// The spec may be pretty-printed: the protocol is line-delimited,
    /// and raw newlines are illegal inside JSON strings, so flattening
    /// them away cannot change the spec's meaning.
    pub fn submit(&mut self, tenant: &str, spec_json: &str) -> Result<String, ClientError> {
        let mut req = String::from("{\"op\":\"submit\",\"tenant\":");
        json_string(&mut req, tenant);
        req.push_str(",\"spec\":");
        req.extend(spec_json.chars().filter(|c| *c != '\n' && *c != '\r'));
        req.push('}');
        let v = self.round_trip(&req)?;
        Self::field_str(&v, "job")
    }

    fn job_request(op: &str, job: &str) -> String {
        let mut req = format!("{{\"op\":\"{op}\",\"job\":");
        json_string(&mut req, job);
        req.push('}');
        req
    }

    /// Fetches a job's progress.
    pub fn status(&mut self, job: &str) -> Result<JobStatus, ClientError> {
        let v = self.round_trip(&Self::job_request("status", job))?;
        Ok(JobStatus {
            phase: Self::field_str(&v, "phase")?,
            done: Self::field_u64(&v, "done")?,
            total: Self::field_u64(&v, "total")?,
            failed: Self::field_u64(&v, "failed")?,
            retries: Self::field_u64(&v, "retries")?,
        })
    }

    /// Requests cooperative cancellation.
    pub fn cancel(&mut self, job: &str) -> Result<(), ClientError> {
        self.round_trip(&Self::job_request("cancel", job))
            .map(|_| ())
    }

    /// Fetches a finished job's canonical campaign artifact — the exact
    /// lines [`pgss::CampaignReport::canonical_jsonl`] would produce.
    pub fn report(&mut self, job: &str) -> Result<Vec<String>, ClientError> {
        let v = self.round_trip(&Self::job_request("report", job))?;
        let n = Self::field_u64(&v, "lines")?;
        let mut lines = Vec::with_capacity(n as usize);
        for _ in 0..n {
            lines.push(self.read_raw_line()?);
        }
        Ok(lines)
    }

    /// Fetches the server's own metric frame as one pinned-schema scope
    /// line (scope `serve`).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let v = self.round_trip("{\"op\":\"metrics\"}")?;
        let n = Self::field_u64(&v, "lines")?;
        let mut line = String::new();
        for _ in 0..n {
            line = self.read_raw_line()?;
        }
        Ok(line)
    }

    /// Watches a job: replays already-completed cells, then streams live
    /// completions until the job ends. `on_event` returning `false`
    /// stops watching early (the connection is consumed either way).
    /// Returns the job's final phase (or `"detached"` on server
    /// shutdown, `"stopped"` on early stop).
    pub fn watch(
        mut self,
        job: &str,
        mut on_event: impl FnMut(&CellEvent) -> bool,
    ) -> Result<String, ClientError> {
        self.send(&Self::job_request("watch", job))?;
        loop {
            let v = self.read_response()?;
            match v.get("event").and_then(Value::as_str) {
                Some("cell") => {
                    let ev = CellEvent {
                        index: Self::field_u64(&v, "index")?,
                        done: Self::field_u64(&v, "done")?,
                        total: Self::field_u64(&v, "total")?,
                        workload: Self::field_str(&v, "workload")?,
                        technique: Self::field_str(&v, "technique")?,
                        ipc: v.get("ipc").and_then(Value::as_f64).unwrap_or(f64::NAN),
                    };
                    if !on_event(&ev) {
                        return Ok("stopped".to_string());
                    }
                }
                Some("end") => return Self::field_str(&v, "phase"),
                _ => return Err(ClientError::Protocol("unexpected watch line".to_string())),
            }
        }
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.round_trip("{\"op\":\"shutdown\"}").map(|_| ())
    }
}
