//! A small blocking client for the campaign server's line-delimited JSON
//! protocol. Used by the tests and examples; also a precise description
//! of the protocol itself.
//!
//! # Protocol
//!
//! One request per line, one (or, for streaming ops, several) response
//! lines back. Every response object carries `"ok"`; failures carry an
//! `"error"` string. Streaming responses (`report`, `metrics`) announce
//! `"lines":N` and are followed by exactly N raw payload lines. `watch`
//! streams `"event":"cell"` lines until an `"event":"end"` line.
//!
//! ```text
//! → {"op":"submit","tenant":"ci","spec":{"suite":[{"name":"164.gzip","scale":0.01}],
//!    "techniques":[{"kind":"smarts"}]}}
//! ← {"ok":true,"job":"91b2f00c1d9aa3e7","cells":1}
//! → {"op":"status","job":"91b2f00c1d9aa3e7"}
//! ← {"ok":true,"phase":"running","done":0,"total":1,"failed":0,"retries":0}
//! ```

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;

use pgss_obs::json_string;

use crate::json::{self, Value};
use crate::server::{dial, BoundAddr, Stream};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's bytes didn't parse as the protocol.
    Protocol(String),
    /// The server answered `"ok":false` with this error.
    Server(String),
    /// The server is saturated (connection cap, tenant quota, or a
    /// deferred `gc`) and attached a retry hint. Transient by
    /// construction: retrying after `retry_after_ms` is expected to
    /// succeed once load drains.
    Busy {
        /// The server's human-readable rejection reason.
        message: String,
        /// The server's suggested wait before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Busy {
                message,
                retry_after_ms,
            } => write!(f, "server busy (retry after {retry_after_ms}ms): {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Deterministic capped exponential backoff for client-side retries.
///
/// The schedule is pure arithmetic — `delay_ms(n)` for retry `n` is
/// `min(cap_ms, base_ms << n)` — so tests inject a recording sleeper and
/// assert the exact delays instead of watching a wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Total attempts (the initial try plus retries). `1` disables
    /// retry entirely; `0` is treated as `1`.
    pub max_attempts: u32,
    /// Delay before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub cap_ms: u64,
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff {
            max_attempts: 5,
            base_ms: 50,
            cap_ms: 2000,
        }
    }
}

impl Backoff {
    /// The delay before retry number `retry` (0-based), in milliseconds:
    /// `base_ms` doubled per retry, saturating, capped at `cap_ms`.
    pub fn delay_ms(&self, retry: u32) -> u64 {
        let doubled = if retry >= 63 {
            u64::MAX
        } else {
            self.base_ms.saturating_mul(1u64 << retry)
        };
        doubled.min(self.cap_ms)
    }
}

/// A `gc` response: what the server's mark-and-sweep saw and freed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Records examined.
    pub checked: u64,
    /// Records kept because a liveness root claimed them.
    pub live: u64,
    /// Garbage records deleted.
    pub swept: u64,
    /// Bytes reclaimed by the sweep.
    pub bytes_freed: u64,
}

/// A `status` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// `"queued"`, `"running"`, `"done"`, or `"cancelled"`.
    pub phase: String,
    /// Cells completed successfully.
    pub done: u64,
    /// Total cells in the grid.
    pub total: u64,
    /// Cells that exhausted their retries.
    pub failed: u64,
    /// Retry attempts so far.
    pub retries: u64,
}

/// One `watch` stream event (a completed cell).
#[derive(Debug, Clone, PartialEq)]
pub struct CellEvent {
    /// Cell index in canonical grid order.
    pub index: u64,
    /// Cells done so far (out-of-order completion means this is the
    /// count at send time, not `index + 1`).
    pub done: u64,
    /// Total cells.
    pub total: u64,
    /// Workload name.
    pub workload: String,
    /// Technique name.
    pub technique: String,
    /// The cell's IPC estimate.
    pub ipc: f64,
}

/// Blocking protocol client over one connection.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Client {
    fn from_stream(stream: Stream) -> Result<Client, ClientError> {
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    /// Connects to a started [`crate::server::Server`]'s address.
    pub fn connect(addr: &BoundAddr) -> Result<Client, ClientError> {
        Client::from_stream(dial(addr)?)
    }

    /// Connects to a TCP address such as `127.0.0.1:7071`.
    pub fn connect_tcp(addr: &str) -> Result<Client, ClientError> {
        Client::from_stream(Stream::Tcp(TcpStream::connect(addr)?))
    }

    /// Connects to a Unix-domain socket path.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<Client, ClientError> {
        Client::from_stream(Stream::Unix(UnixStream::connect(path)?))
    }

    /// [`Client::connect`] with bounded retry on transport errors,
    /// sleeping `backoff.delay_ms(n)` milliseconds between attempts via
    /// the injected `sleep` (tests pass a recorder; production code can
    /// use [`Client::connect_with_retry`]). Protocol and server errors
    /// are never retried — only [`ClientError::Io`].
    pub fn connect_with_retry_using(
        addr: &BoundAddr,
        backoff: &Backoff,
        sleep: &mut dyn FnMut(u64),
    ) -> Result<Client, ClientError> {
        let attempts = backoff.max_attempts.max(1);
        let mut retry = 0u32;
        loop {
            match Client::connect(addr) {
                Err(ClientError::Io(e)) if retry + 1 < attempts => {
                    sleep(backoff.delay_ms(retry));
                    retry += 1;
                    let _ = e;
                }
                other => return other,
            }
        }
    }

    /// [`Client::connect_with_retry_using`] with a real wall-clock sleep.
    pub fn connect_with_retry(addr: &BoundAddr, backoff: &Backoff) -> Result<Client, ClientError> {
        Client::connect_with_retry_using(addr, backoff, &mut |ms| {
            std::thread::sleep(std::time::Duration::from_millis(ms))
        })
    }

    /// Submits a spec with bounded retry, opening a fresh connection per
    /// attempt. Transport errors wait the backoff delay; a server
    /// [`ClientError::Busy`] rejection waits the *larger* of the backoff
    /// delay and the server's `retry_after_ms` hint. Anything else (a
    /// malformed spec, an unknown tenant) fails immediately — retrying a
    /// deterministic rejection only repeats it.
    pub fn submit_with_retry_using(
        addr: &BoundAddr,
        tenant: &str,
        spec_json: &str,
        backoff: &Backoff,
        sleep: &mut dyn FnMut(u64),
    ) -> Result<String, ClientError> {
        let attempts = backoff.max_attempts.max(1);
        let mut retry = 0u32;
        loop {
            let result = Client::connect(addr).and_then(|mut c| c.submit(tenant, spec_json));
            let delay = match &result {
                Err(ClientError::Io(_)) => backoff.delay_ms(retry),
                Err(ClientError::Busy { retry_after_ms, .. }) => {
                    backoff.delay_ms(retry).max(*retry_after_ms)
                }
                _ => return result,
            };
            if retry + 1 >= attempts {
                return result;
            }
            sleep(delay);
            retry += 1;
        }
    }

    /// [`Client::submit_with_retry_using`] with a real wall-clock sleep.
    pub fn submit_with_retry(
        addr: &BoundAddr,
        tenant: &str,
        spec_json: &str,
        backoff: &Backoff,
    ) -> Result<String, ClientError> {
        Client::submit_with_retry_using(addr, tenant, spec_json, backoff, &mut |ms| {
            std::thread::sleep(std::time::Duration::from_millis(ms))
        })
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_raw_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol("connection closed".to_string()));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Classifies one response line. A failure carrying `retry_after_ms`
    /// is the server's backpressure shape ([`ClientError::Busy`]); any
    /// other `"ok":false` is a terminal [`ClientError::Server`].
    fn interpret(line: &str) -> Result<Value, ClientError> {
        let v = json::parse(line)
            .map_err(|e| ClientError::Protocol(format!("bad response line: {e}")))?;
        match v.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(v),
            Some(false) => {
                let message = v
                    .get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("unspecified")
                    .to_string();
                match v.get("retry_after_ms").and_then(Value::as_u64) {
                    Some(retry_after_ms) => Err(ClientError::Busy {
                        message,
                        retry_after_ms,
                    }),
                    None => Err(ClientError::Server(message)),
                }
            }
            None => Err(ClientError::Protocol("response without \"ok\"".to_string())),
        }
    }

    fn read_response(&mut self) -> Result<Value, ClientError> {
        let line = self.read_raw_line()?;
        Self::interpret(&line)
    }

    fn round_trip(&mut self, request: &str) -> Result<Value, ClientError> {
        self.send(request)?;
        self.read_response()
    }

    fn field_u64(v: &Value, name: &str) -> Result<u64, ClientError> {
        v.get(name)
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Protocol(format!("response missing {name:?}")))
    }

    fn field_str(v: &Value, name: &str) -> Result<String, ClientError> {
        Ok(v.get(name)
            .and_then(Value::as_str)
            .ok_or_else(|| ClientError::Protocol(format!("response missing {name:?}")))?
            .to_string())
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.round_trip("{\"op\":\"ping\"}").map(|_| ())
    }

    /// Submits a campaign spec (a JSON object; see
    /// [`crate::spec::CampaignSpec::from_json`] for the schema) and
    /// returns the 16-hex-digit job id.
    ///
    /// The spec may be pretty-printed: the protocol is line-delimited,
    /// and raw newlines are illegal inside JSON strings, so flattening
    /// them away cannot change the spec's meaning.
    pub fn submit(&mut self, tenant: &str, spec_json: &str) -> Result<String, ClientError> {
        let mut req = String::from("{\"op\":\"submit\",\"tenant\":");
        json_string(&mut req, tenant);
        req.push_str(",\"spec\":");
        req.extend(spec_json.chars().filter(|c| *c != '\n' && *c != '\r'));
        req.push('}');
        let v = self.round_trip(&req)?;
        Self::field_str(&v, "job")
    }

    fn job_request(op: &str, job: &str) -> String {
        let mut req = format!("{{\"op\":\"{op}\",\"job\":");
        json_string(&mut req, job);
        req.push('}');
        req
    }

    /// Fetches a job's progress.
    pub fn status(&mut self, job: &str) -> Result<JobStatus, ClientError> {
        let v = self.round_trip(&Self::job_request("status", job))?;
        Ok(JobStatus {
            phase: Self::field_str(&v, "phase")?,
            done: Self::field_u64(&v, "done")?,
            total: Self::field_u64(&v, "total")?,
            failed: Self::field_u64(&v, "failed")?,
            retries: Self::field_u64(&v, "retries")?,
        })
    }

    /// Requests cooperative cancellation.
    pub fn cancel(&mut self, job: &str) -> Result<(), ClientError> {
        self.round_trip(&Self::job_request("cancel", job))
            .map(|_| ())
    }

    /// Fetches a finished job's canonical campaign artifact — the exact
    /// lines [`pgss::CampaignReport::canonical_jsonl`] would produce.
    pub fn report(&mut self, job: &str) -> Result<Vec<String>, ClientError> {
        let v = self.round_trip(&Self::job_request("report", job))?;
        let n = Self::field_u64(&v, "lines")?;
        let mut lines = Vec::with_capacity(n as usize);
        for _ in 0..n {
            lines.push(self.read_raw_line()?);
        }
        Ok(lines)
    }

    /// Fetches the server's own metric frame as one pinned-schema scope
    /// line (scope `serve`).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let v = self.round_trip("{\"op\":\"metrics\"}")?;
        let n = Self::field_u64(&v, "lines")?;
        let mut line = String::new();
        for _ in 0..n {
            line = self.read_raw_line()?;
        }
        Ok(line)
    }

    /// Watches a job: replays already-completed cells, then streams live
    /// completions until the job ends. `on_event` returning `false`
    /// stops watching early (the connection is consumed either way).
    /// Returns the job's final phase (or `"detached"` on server
    /// shutdown, `"stopped"` on early stop).
    pub fn watch(
        mut self,
        job: &str,
        mut on_event: impl FnMut(&CellEvent) -> bool,
    ) -> Result<String, ClientError> {
        self.send(&Self::job_request("watch", job))?;
        loop {
            let v = self.read_response()?;
            match v.get("event").and_then(Value::as_str) {
                Some("cell") => {
                    let ev = CellEvent {
                        index: Self::field_u64(&v, "index")?,
                        done: Self::field_u64(&v, "done")?,
                        total: Self::field_u64(&v, "total")?,
                        workload: Self::field_str(&v, "workload")?,
                        technique: Self::field_str(&v, "technique")?,
                        ipc: v.get("ipc").and_then(Value::as_f64).unwrap_or(f64::NAN),
                    };
                    if !on_event(&ev) {
                        return Ok("stopped".to_string());
                    }
                }
                Some("end") => return Self::field_str(&v, "phase"),
                _ => return Err(ClientError::Protocol("unexpected watch line".to_string())),
            }
        }
    }

    /// Asks the server to drain: stop admitting and claiming work, let
    /// in-flight cells finish (or be lease-reaped), then exit 0. Returns
    /// the number of cells still in flight at the moment of the request.
    pub fn drain(&mut self) -> Result<u64, ClientError> {
        let v = self.round_trip("{\"op\":\"drain\"}")?;
        Self::field_u64(&v, "inflight")
    }

    /// Asks the server to garbage-collect its store: mark every record a
    /// live root can reach, sweep the rest. Answers
    /// [`ClientError::Busy`] (retryable) while a checkpoint-ladder build
    /// is in flight.
    pub fn gc(&mut self) -> Result<GcOutcome, ClientError> {
        let v = self.round_trip("{\"op\":\"gc\"}")?;
        Ok(GcOutcome {
            checked: Self::field_u64(&v, "checked")?,
            live: Self::field_u64(&v, "live")?,
            swept: Self::field_u64(&v, "swept")?,
            bytes_freed: Self::field_u64(&v, "bytes_freed")?,
        })
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.round_trip("{\"op\":\"shutdown\"}").map(|_| ())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_saturates_and_caps() {
        let b = Backoff::default();
        assert_eq!(b.delay_ms(0), 50);
        assert_eq!(b.delay_ms(1), 100);
        assert_eq!(b.delay_ms(2), 200);
        assert_eq!(b.delay_ms(5), 1600);
        assert_eq!(b.delay_ms(6), 2000); // capped
        assert_eq!(b.delay_ms(200), 2000); // no shift overflow
        let uncapped = Backoff {
            max_attempts: 2,
            base_ms: u64::MAX / 2,
            cap_ms: u64::MAX,
        };
        assert_eq!(uncapped.delay_ms(63), u64::MAX); // saturates, no panic
    }

    #[test]
    fn busy_responses_surface_the_retry_hint() {
        let busy = Client::interpret(
            "{\"ok\":false,\"error\":\"tenant \\\"ci\\\" is at its queued-job quota (1)\",\
             \"retry_after_ms\":250}",
        );
        match busy {
            Err(ClientError::Busy {
                message,
                retry_after_ms,
            }) => {
                assert!(message.contains("quota"));
                assert_eq!(retry_after_ms, 250);
            }
            other => panic!("expected Busy, got {other:?}"),
        }
        // A plain failure (no hint) stays a terminal server error.
        match Client::interpret("{\"ok\":false,\"error\":\"no such job\"}") {
            Err(ClientError::Server(m)) => assert_eq!(m, "no such job"),
            other => panic!("expected Server, got {other:?}"),
        }
        assert!(Client::interpret("{\"ok\":true,\"job\":\"ab\"}").is_ok());
    }

    #[cfg(unix)]
    #[test]
    fn connect_retry_sleeps_the_deterministic_schedule() {
        // A Unix socket path that does not exist refuses every connect,
        // so the retry loop runs its full schedule with no wall sleeps.
        let addr = BoundAddr::Unix(std::path::PathBuf::from(
            "/nonexistent/pgss-serve-client-test.sock",
        ));
        let mut slept = Vec::new();
        let got =
            Client::connect_with_retry_using(&addr, &Backoff::default(), &mut |ms| slept.push(ms));
        assert!(matches!(got, Err(ClientError::Io(_))));
        assert_eq!(slept, vec![50, 100, 200, 400]); // 5 attempts, 4 waits
    }

    #[cfg(unix)]
    #[test]
    fn submit_retry_gives_up_after_max_attempts() {
        let addr = BoundAddr::Unix(std::path::PathBuf::from(
            "/nonexistent/pgss-serve-client-test.sock",
        ));
        let mut slept = Vec::new();
        let backoff = Backoff {
            max_attempts: 3,
            base_ms: 10,
            cap_ms: 1000,
        };
        let got =
            Client::submit_with_retry_using(&addr, "ci", "{\"suite\":[]}", &backoff, &mut |ms| {
                slept.push(ms)
            });
        assert!(matches!(got, Err(ClientError::Io(_))));
        assert_eq!(slept, vec![10, 20]);
    }
}
