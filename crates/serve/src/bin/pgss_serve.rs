//! Command-line entry point for the campaign server.
//!
//! ```text
//! pgss_serve --store ckpt-store --listen tcp:127.0.0.1:7071 --workers 4
//! ```
//!
//! Prints the bound address on stdout (useful with `tcp:127.0.0.1:0`),
//! then serves until a client sends `{"op":"shutdown"}`. `PGSS_WORKERS`
//! is honoured here — at the CLI boundary, like the bench binaries — as
//! the default for `--workers`.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::process::ExitCode;

use pgss::campaign;
use pgss_serve::{Listen, ServeConfig, Server, TenantQuota};

struct Args {
    store: String,
    listen: Listen,
    workers: usize,
    quota: TenantQuota,
    lease_deadline_ns: Option<u64>,
}

fn usage() -> String {
    "usage: pgss_serve --store DIR [--listen tcp:ADDR|unix:PATH] [--workers N]\n\
     \x20                 [--max-concurrent-cells N] [--max-queued-jobs N]\n\
     \x20                 [--lease-deadline-ms N   (0 disables lease reaping)]"
        .to_string()
}

fn parse_listen(s: &str) -> Result<Listen, String> {
    if let Some(addr) = s.strip_prefix("tcp:") {
        return Ok(Listen::Tcp(addr.to_string()));
    }
    #[cfg(unix)]
    if let Some(path) = s.strip_prefix("unix:") {
        return Ok(Listen::Unix(path.into()));
    }
    Err(format!("unsupported --listen value {s:?}"))
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut store: Option<String> = None;
    let mut listen = Listen::Tcp("127.0.0.1:7071".to_string());
    // PGSS_WORKERS is a CLI-boundary convenience; the server config
    // itself is explicit (see `pgss::CampaignConfig`).
    let mut workers = campaign::worker_threads();
    let mut quota = TenantQuota::default();
    let mut lease_deadline_ns = ServeConfig::default().lease_deadline_ns;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--store" => store = Some(value("--store")?),
            "--listen" => listen = parse_listen(&value("--listen")?)?,
            "--workers" => {
                workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--max-concurrent-cells" => {
                quota.max_concurrent_cells = value("--max-concurrent-cells")?
                    .parse()
                    .map_err(|e| format!("--max-concurrent-cells: {e}"))?;
            }
            "--max-queued-jobs" => {
                quota.max_queued_jobs = value("--max-queued-jobs")?
                    .parse()
                    .map_err(|e| format!("--max-queued-jobs: {e}"))?;
            }
            "--lease-deadline-ms" => {
                let ms: u64 = value("--lease-deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--lease-deadline-ms: {e}"))?;
                lease_deadline_ns = (ms > 0).then(|| ms.saturating_mul(1_000_000));
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    let store = store.ok_or_else(|| format!("--store is required\n{}", usage()))?;
    if workers == 0 {
        return Err("--workers must be at least 1".to_string());
    }
    Ok(Args {
        store,
        listen,
        workers,
        quota,
        lease_deadline_ns,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = ServeConfig {
        workers: args.workers,
        default_quota: args.quota,
        quotas: BTreeMap::new(),
        lease_deadline_ns: args.lease_deadline_ns,
        ..ServeConfig::default()
    };
    let server = match Server::start(&args.store, args.listen, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pgss_serve: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("pgss_serve listening on {}", server.addr());
    // Blocks until a client issues `{"op":"shutdown"}` (or the process
    // is killed — which is fine: all state is already durable).
    server.wait();
    ExitCode::SUCCESS
}
