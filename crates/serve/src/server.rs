//! The campaign server: listener, scheduler, worker pool, durable job
//! state, and the resume protocol.
//!
//! # Architecture
//!
//! One accept thread hands connections to per-connection handler threads
//! speaking the line-delimited JSON protocol (see [`crate::client`]). A
//! fixed pool of worker threads shares a single scheduler state under one
//! mutex: workers claim *cells* (or checkpoint-ladder builds) from the
//! job that the round-robin cursor reaches first, so a long campaign
//! never starves a short one — idle workers steal whatever runnable cell
//! any job has, subject to per-tenant concurrency quotas.
//!
//! Every cell executes through [`pgss::campaign::run_cell`] — the same
//! isolation + typed-fault path the library's own campaign runner uses —
//! with the cell's group ladder attached, so a server-side cell is
//! bit-identical to a library-side one. Completed cells are persisted
//! immediately ([`pgss::wire::encode_cell_record`] under the job-record
//! key namespace) and streamed to any watchers out of order.
//!
//! # Durability and resume
//!
//! All job state lives in the same content-addressed store as the
//! checkpoint ladders (see [`crate::record`] for the record kinds). On
//! startup the server reads the index, re-materialises every non-terminal
//! job from its spec record, probes the job's cell records — present and
//! decodable means **done**, corrupt means quarantine-and-re-run — and
//! enqueues only the remainder. A SIGKILL therefore costs at most the
//! cells that were in flight; finished cells are never recomputed, which
//! the resilience tests assert via the `serve.cells.executed` /
//! `serve.cells.resumed` counters.
//!
//! # Cancellation
//!
//! Cancellation is cooperative: pending cells are dropped immediately,
//! in-flight cells finish (their results are discarded, freeing the
//! worker), and once the job drains a durable `Cancelled` status is
//! written. A cancelled job still answers `status` and `report` from
//! whatever it completed before the cancel.
//!
//! # Leases, backpressure, drain, GC
//!
//! The server is *crash-only*: it assumes it can die at any instant, so
//! the extra machinery here only bounds resources, never adds state that
//! must survive. Every claimed cell holds a lease (a deadline on the
//! injected [`pgss_obs::Clock`]); a watchdog thread reaps overdue cells
//! into the failure ledger as [`pgss::campaign::CellError::DeadlineExceeded`]
//! (retrying first, like any other cell error) and remembers the reap so
//! a zombie worker's late result is discarded — a wedged worker costs one
//! pool slot until release, never correctness. Connections get read
//! deadlines, a line-length cap, and a connection cap; saturation answers
//! are typed `busy` rejections carrying `retry_after_ms`, never parked
//! threads. The `drain` verb stops admission and claiming, lets in-flight
//! work finish or get reaped, then exits 0 — pending cells stay durable
//! for the next run. The `gc` verb mark-and-sweeps the store under the
//! scheduler lock (the `handle_gc` docs spell out the liveness roots).

// A server embeds the fault-isolating campaign path; an unwrap here
// would turn one bad record or request into a dead daemon.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use pgss::campaign::{annotate_cell_frame, run_cell, CellError, CellResult};
use pgss::wire::{self, WireFailure};
use pgss::{CheckpointLadder, LadderSpec, RetryPolicy, SimContext, Track};
use pgss_ckpt::{index_key, job_key, JobRecordKind, RecordError, Store};
use pgss_obs::{
    json_string, scope_line, Clock, MetricsFrame, MetricsRecorder, MonotonicClock, Recorder,
};

use crate::json::{self, Value};
use crate::record::{IndexRecord, JobPhase, SpecRecord, StatusRecord};
use crate::spec::{CampaignSpec, Materialized};

/// Per-tenant limits. The defaults are unlimited; a limit of zero
/// concurrent cells parks the tenant's jobs in `Queued` indefinitely
/// (useful for drains and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Cells of this tenant allowed to run concurrently across all of
    /// its jobs.
    pub max_concurrent_cells: usize,
    /// Active (queued or running) jobs this tenant may have; submits
    /// beyond it are rejected.
    pub max_queued_jobs: usize,
}

impl Default for TenantQuota {
    fn default() -> TenantQuota {
        TenantQuota {
            max_concurrent_cells: usize::MAX,
            max_queued_jobs: usize::MAX,
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing cells and ladder builds. Like
    /// [`pgss::CampaignConfig`], this is explicit — resolve
    /// `PGSS_WORKERS` at the CLI boundary if you want the override.
    pub workers: usize,
    /// Retry policy applied to failing cells (the retry *count*
    /// semantics match the library runner's).
    pub retry: RetryPolicy,
    /// Quota for tenants without an explicit entry in `quotas`.
    pub default_quota: TenantQuota,
    /// Per-tenant quota overrides.
    pub quotas: BTreeMap<String, TenantQuota>,
    /// Lease deadline for in-flight cells, in nanoseconds of `clock`.
    /// A cell that overruns it is reaped into the failure ledger as
    /// [`pgss::campaign::CellError::DeadlineExceeded`] (after the usual
    /// retries) and its worker's eventual result is discarded. `None`
    /// disables supervision. The default (one hour) is a generous
    /// stuck-worker tripwire, not a performance bound.
    pub lease_deadline_ns: Option<u64>,
    /// The clock leases are measured on. Tests inject
    /// [`pgss_obs::ManualClock`] so deadline scenarios replay
    /// byte-identically; production uses the monotonic default.
    pub clock: Arc<dyn Clock>,
    /// Longest accepted request line in bytes; longer lines get a typed
    /// error and the connection is closed (slow-loris / garbage guard).
    pub max_line_bytes: usize,
    /// Per-connection read deadline. A connection idle past it is closed
    /// with a typed error. `None` waits forever (trusted-client mode).
    pub read_timeout: Option<Duration>,
    /// Concurrent connections (and hence in-flight requests — the
    /// protocol is one request at a time per connection) the server
    /// accepts before answering `busy` with a retry hint.
    pub max_conns: usize,
    /// The `retry_after_ms` hint attached to backpressure rejections.
    pub retry_after_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            retry: RetryPolicy::default(),
            default_quota: TenantQuota::default(),
            quotas: BTreeMap::new(),
            lease_deadline_ns: Some(3_600_000_000_000),
            clock: Arc::new(MonotonicClock::default()),
            max_line_bytes: 1 << 20,
            read_timeout: Some(Duration::from_secs(300)),
            max_conns: 256,
            retry_after_ms: 250,
        }
    }
}

impl ServeConfig {
    fn quota_for(&self, tenant: &str) -> TenantQuota {
        self.quotas
            .get(tenant)
            .copied()
            .unwrap_or(self.default_quota)
    }
}

/// Where the server should listen.
#[derive(Debug, Clone)]
pub enum Listen {
    /// A TCP address such as `127.0.0.1:0` (port 0 picks a free port).
    Tcp(String),
    /// A Unix-domain socket path (created on bind, removed on stop).
    #[cfg(unix)]
    Unix(PathBuf),
}

/// The address a started server is reachable at.
#[derive(Debug, Clone)]
pub enum BoundAddr {
    /// Bound TCP socket address.
    Tcp(SocketAddr),
    /// Bound Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl std::fmt::Display for BoundAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundAddr::Tcp(a) => write!(f, "tcp:{a}"),
            #[cfg(unix)]
            BoundAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// A bidirectional protocol stream (TCP or Unix).
pub(crate) enum Stream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    /// Applies a read deadline to the underlying socket; reads past it
    /// fail with `WouldBlock`/`TimedOut` instead of blocking forever.
    pub(crate) fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        Ok(match self {
            Listener::Tcp(l) => Stream::Tcp(l.accept()?.0),
            #[cfg(unix)]
            Listener::Unix(l) => Stream::Unix(l.accept()?.0),
        })
    }
}

/// Connects to a bound address (shared with the client module).
pub(crate) fn dial(addr: &BoundAddr) -> io::Result<Stream> {
    Ok(match addr {
        BoundAddr::Tcp(a) => Stream::Tcp(TcpStream::connect(a)?),
        #[cfg(unix)]
        BoundAddr::Unix(p) => Stream::Unix(UnixStream::connect(p)?),
    })
}

/// A message to a `watch` subscriber: an event line, or the final line
/// after which the subscription ends.
enum WatchMsg {
    Event(String),
    End(String),
}

enum LadderState {
    NotBuilt,
    Building,
    /// `None` means the build panicked and the group runs unaccelerated,
    /// exactly like the library runner's degradation path.
    Ready(Option<Arc<CheckpointLadder>>),
}

struct JobState {
    tenant: String,
    mat: Option<Arc<Materialized>>,
    phase: JobPhase,
    total: usize,
    done: Vec<bool>,
    done_count: usize,
    pending: VecDeque<usize>,
    /// Failed attempts so far, per still-retriable cell.
    attempts: BTreeMap<usize, u32>,
    inflight: usize,
    cancelled: bool,
    retries: u64,
    failures: Vec<WireFailure>,
    groups: Vec<LadderState>,
    watchers: Vec<mpsc::Sender<WatchMsg>>,
    started: Option<Instant>,
    /// Lease expiry (clock ns) per in-flight cell, when supervision is on.
    leases: BTreeMap<usize, u64>,
    /// Cells the watchdog reaped whose worker has not returned yet; the
    /// late result is discarded when it does.
    reaped: BTreeSet<usize>,
}

impl JobState {
    fn settled(&self) -> bool {
        self.done_count + self.failures.len() == self.total
            && self.pending.is_empty()
            && self.inflight == 0
    }
}

struct State {
    jobs: BTreeMap<u64, JobState>,
    /// Non-terminal jobs in submission order — the scheduler's
    /// round-robin ring.
    order: Vec<u64>,
    rr: usize,
    next_seq: u64,
}

struct Inner {
    store: Store,
    rec: Arc<MetricsRecorder>,
    cfg: ServeConfig,
    state: Mutex<State>,
    work: Condvar,
    shutdown: AtomicBool,
    /// Drain mode: stop admitting submits and claiming cells; the
    /// watchdog initiates shutdown once in-flight work is gone.
    draining: AtomicBool,
    /// Live connection count, for the connection cap.
    conns: AtomicUsize,
    addr: OnceLock<BoundAddr>,
}

enum WorkItem {
    Build { id: u64, group: usize },
    Cell { id: u64, cell: usize },
}

/// The cell's [`pgss::Job`]: canonical order is workload-major, then
/// configuration, then technique.
fn cell_job(mat: &Materialized, i: usize) -> pgss::Job<'_> {
    let t = mat.techniques.len();
    let c = mat.configs.len();
    let (w, rem) = (i / (c * t), i % (c * t));
    pgss::Job {
        workload: &mat.workloads[w],
        technique: &*mat.techniques[rem % t],
        config: mat.configs[rem / t],
    }
}

/// The (workload × config) ladder group a cell belongs to; cells of a
/// group are contiguous in cell order.
fn cell_group(mat: &Materialized, i: usize) -> usize {
    i / mat.techniques.len()
}

fn group_count(mat: &Materialized) -> usize {
    mat.workloads.len() * mat.configs.len()
}

/// The ladder spec shared by every group of a job: BBV tracks collected
/// over the techniques in first-appearance order, mirroring the library
/// runner so ladder content addresses (and rungs) are identical.
fn ladder_spec(mat: &Materialized) -> LadderSpec {
    let mut hashed_seeds: Vec<u64> = Vec::new();
    let mut with_full = false;
    for t in &mat.techniques {
        for track in t.tracks() {
            match track {
                Track::Hashed(s) if !hashed_seeds.contains(&s) => hashed_seeds.push(s),
                Track::Full => with_full = true,
                _ => {}
            }
        }
    }
    LadderSpec {
        stride: mat.stride,
        hashed_seeds,
        with_full,
    }
}

fn render_job_id(id: u64) -> String {
    format!("{id:016x}")
}

fn parse_job_id(s: &str) -> Option<u64> {
    (s.len() == 16).then(|| u64::from_str_radix(s, 16).ok())?
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            // A worker that panicked while holding the lock has already
            // been isolated (cells run under catch_unwind); the state
            // itself is guarded by per-step writes, so keep serving.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn write_status(&self, id: u64, job: &JobState) {
        let record = StatusRecord {
            phase: job.phase,
            retries: job.retries,
            failures: job.failures.clone(),
        };
        if self
            .store
            .put(job_key(JobRecordKind::Status, id, 0), &record.encode())
            .is_err()
        {
            self.rec.add("serve.store.put_failed", 1);
        }
    }

    fn running_cells(&self, st: &State, tenant: &str) -> usize {
        st.jobs
            .values()
            .filter(|j| j.tenant == tenant)
            .map(|j| j.inflight)
            .sum()
    }

    fn active_jobs(&self, st: &State, tenant: &str) -> usize {
        st.jobs
            .values()
            .filter(|j| j.tenant == tenant && !j.phase.is_terminal())
            .count()
    }

    fn find_work(&self, st: &mut State) -> Option<WorkItem> {
        if self.draining.load(Ordering::SeqCst) {
            // Draining: nothing new is claimed; pending cells stay
            // durable for the next server run.
            return None;
        }
        let n = st.order.len();
        for k in 0..n {
            let idx = (st.rr + k) % n;
            let id = st.order[idx];
            let Some(job) = st.jobs.get(&id) else {
                continue;
            };
            if job.phase.is_terminal() || job.cancelled || job.pending.is_empty() {
                continue;
            }
            let quota = self.cfg.quota_for(&job.tenant);
            if self.running_cells(st, &job.tenant) >= quota.max_concurrent_cells {
                continue;
            }
            let Some(mat) = job.mat.clone() else { continue };
            // Prefer a cell whose ladder is ready; otherwise start
            // building the first pending cell's ladder.
            let ready_pos = job
                .pending
                .iter()
                .position(|&i| matches!(job.groups[cell_group(&mat, i)], LadderState::Ready(_)));
            let Some(job) = st.jobs.get_mut(&id) else {
                continue;
            };
            if let Some(pos) = ready_pos {
                let Some(cell) = job.pending.remove(pos) else {
                    continue;
                };
                job.inflight += 1;
                if let Some(deadline) = self.cfg.lease_deadline_ns {
                    job.leases
                        .insert(cell, self.cfg.clock.now_ns().saturating_add(deadline));
                    self.rec.add("serve.lease.granted", 1);
                }
                if job.phase == JobPhase::Queued {
                    job.phase = JobPhase::Running;
                    if job.started.is_none() {
                        job.started = Some(Instant::now());
                    }
                    let snapshot = &st.jobs[&id];
                    self.write_status(id, snapshot);
                }
                st.rr = (idx + 1) % n;
                return Some(WorkItem::Cell { id, cell });
            }
            let build = job
                .pending
                .iter()
                .map(|&i| cell_group(&mat, i))
                .find(|&g| matches!(job.groups[g], LadderState::NotBuilt));
            if let Some(g) = build {
                job.groups[g] = LadderState::Building;
                st.rr = (idx + 1) % n;
                return Some(WorkItem::Build { id, group: g });
            }
        }
        None
    }

    fn notify_watchers(&self, job: &mut JobState, line: &str) {
        let mut sent = 0u64;
        job.watchers
            .retain(|w| match w.send(WatchMsg::Event(line.to_string())) {
                Ok(()) => {
                    sent += 1;
                    true
                }
                Err(_) => false,
            });
        self.rec.add("serve.cells.streamed", sent);
    }

    fn end_watchers(&self, job: &mut JobState) {
        let line = format!(
            "{{\"ok\":true,\"event\":\"end\",\"phase\":\"{}\"}}",
            job.phase.as_str()
        );
        for w in job.watchers.drain(..) {
            let _ = w.send(WatchMsg::End(line.clone()));
        }
    }

    /// Renders one completed cell as a watch-event line: cell identity,
    /// progress, and the cell's annotated metric frame folded in as a
    /// pinned-schema scope line.
    fn event_line(
        &self,
        id: u64,
        cell: usize,
        result: &CellResult,
        frame: &MetricsFrame,
        done: usize,
        total: usize,
    ) -> String {
        let frame_line = scope_line(&format!("{}/{}", result.workload, result.technique), frame);
        let mut out = String::new();
        out.push_str("{\"ok\":true,\"event\":\"cell\",\"job\":\"");
        out.push_str(&render_job_id(id));
        out.push_str("\",\"index\":");
        out.push_str(&cell.to_string());
        out.push_str(",\"done\":");
        out.push_str(&done.to_string());
        out.push_str(",\"total\":");
        out.push_str(&total.to_string());
        out.push_str(",\"workload\":");
        json_string(&mut out, &result.workload);
        out.push_str(",\"technique\":");
        json_string(&mut out, &result.technique);
        out.push_str(",\"ipc\":");
        pgss_obs::json_f64(&mut out, result.estimate.ipc);
        out.push_str(",\"frame\":");
        json_string(&mut out, &frame_line);
        out.push('}');
        out
    }

    fn complete_job(&self, id: u64, job: &mut JobState) {
        job.phase = JobPhase::Done;
        job.failures.sort_unstable_by_key(|f| f.job_index);
        self.write_status(id, job);
        self.rec.add("serve.jobs.completed", 1);
        if let Some(t0) = job.started {
            self.rec
                .span_closed("serve.job.run", t0.elapsed().as_nanos() as u64);
        }
        self.end_watchers(job);
    }

    fn finish_cancel(&self, id: u64, job: &mut JobState) {
        job.phase = JobPhase::Cancelled;
        job.pending.clear();
        self.write_status(id, job);
        self.rec.add("serve.jobs.cancelled", 1);
        self.end_watchers(job);
    }

    fn worker_loop(self: &Arc<Inner>) {
        loop {
            let item = {
                let mut st = self.lock();
                loop {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Some(item) = self.find_work(&mut st) {
                        break item;
                    }
                    st = match self.work.wait(st) {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                }
            };
            match item {
                WorkItem::Build { id, group } => self.run_build(id, group),
                WorkItem::Cell { id, cell } => self.run_one_cell(id, cell),
            }
            self.work.notify_all();
        }
    }

    fn run_build(&self, id: u64, group: usize) {
        let mat = {
            let st = self.lock();
            st.jobs.get(&id).and_then(|j| j.mat.clone())
        };
        let ladder = mat.as_ref().and_then(|mat| {
            let spec = ladder_spec(mat);
            let w = group / mat.configs.len();
            let c = group % mat.configs.len();
            let workload = &mat.workloads[w];
            let config = &mat.configs[c];
            // The capture pass runs arbitrary simulation; isolate it and
            // degrade to unaccelerated on panic, like the library runner.
            catch_unwind(AssertUnwindSafe(|| {
                CheckpointLadder::load_or_capture(&self.store, workload, config, &spec)
            }))
            .ok()
            .map(Arc::new)
        });
        if ladder.is_none() {
            self.rec.add("serve.ladders.degraded", 1);
        }
        let mut st = self.lock();
        if let Some(job) = st.jobs.get_mut(&id) {
            job.groups[group] = LadderState::Ready(ladder);
        }
    }

    fn run_one_cell(&self, id: u64, cell: usize) {
        let Some(mat) = ({
            let st = self.lock();
            st.jobs.get(&id).and_then(|j| j.mat.clone())
        }) else {
            return;
        };
        let ladder = {
            let st = self.lock();
            match st.jobs.get(&id).map(|j| &j.groups[cell_group(&mat, cell)]) {
                Some(LadderState::Ready(l)) => l.clone(),
                _ => None,
            }
        };
        let job_desc = cell_job(&mat, cell);
        let ctx = match ladder {
            Some(l) => SimContext::with_ladder(l),
            None => SimContext::none(),
        };
        let outcome = run_cell(&job_desc, &ctx);

        let mut st = self.lock();
        let Some(job) = st.jobs.get_mut(&id) else {
            return;
        };
        job.leases.remove(&cell);
        if job.reaped.remove(&cell) {
            // The watchdog already settled this cell (failure or retry)
            // and freed its slot; this zombie's late result — computed
            // before the cell record would be written — is discarded.
            self.rec.add("serve.lease.late_result", 1);
            return;
        }
        job.inflight -= 1;
        if job.cancelled {
            // Result discarded; the worker is free again.
            if job.inflight == 0 && !job.phase.is_terminal() {
                self.finish_cancel(id, job);
            }
            return;
        }
        match outcome {
            Ok((result, frame)) => {
                let bytes = wire::encode_cell_record(&result, &frame);
                if self
                    .store
                    .put(job_key(JobRecordKind::Cell, id, cell as u64), &bytes)
                    .is_err()
                {
                    self.rec.add("serve.store.put_failed", 1);
                }
                job.done[cell] = true;
                job.done_count += 1;
                job.attempts.remove(&cell);
                self.rec.add("serve.cells.executed", 1);
                let mut annotated = frame;
                annotate_cell_frame(&result, &mut annotated);
                let line =
                    self.event_line(id, cell, &result, &annotated, job.done_count, job.total);
                self.notify_watchers(job, &line);
            }
            Err(error) => {
                let attempts = job.attempts.entry(cell).or_insert(0);
                *attempts += 1;
                if *attempts < self.cfg.retry.max_attempts {
                    job.retries += 1;
                    job.pending.push_back(cell);
                    self.rec.add("serve.cells.retried", 1);
                } else {
                    let attempts = *attempts;
                    job.attempts.remove(&cell);
                    job.failures.push(WireFailure {
                        job_index: cell,
                        workload: job_desc.workload.name().to_string(),
                        technique: job_desc.technique.name(),
                        attempts,
                        error: error.to_string(),
                    });
                    self.rec.add("serve.cells.failed", 1);
                    let snapshot = &st.jobs[&id];
                    self.write_status(id, snapshot);
                    // Reborrow after the read-only snapshot.
                    let Some(job) = st.jobs.get_mut(&id) else {
                        return;
                    };
                    if job.settled() {
                        self.complete_job(id, job);
                    }
                    return;
                }
            }
        }
        if job.settled() {
            self.complete_job(id, job);
        }
    }

    /// Settles every cell whose lease has expired on the injected clock:
    /// frees its scheduler slot, marks it reaped (so the zombie worker's
    /// late result is discarded), and runs the standard retry/failure
    /// logic with [`CellError::DeadlineExceeded`]. Determinism comes from
    /// the clock and the cell identity, not from when this happens to be
    /// polled.
    fn reap_overdue(&self) {
        let Some(deadline_ns) = self.cfg.lease_deadline_ns else {
            return;
        };
        let now = self.cfg.clock.now_ns();
        let mut st = self.lock();
        let overdue: Vec<(u64, usize)> = st
            .jobs
            .iter()
            .flat_map(|(&id, j)| {
                j.leases
                    .iter()
                    .filter(|&(_, &expiry)| expiry <= now)
                    .map(|(&cell, _)| (id, cell))
                    .collect::<Vec<_>>()
            })
            .collect();
        if overdue.is_empty() {
            return;
        }
        for (id, cell) in overdue {
            let Some(mat) = st.jobs.get(&id).and_then(|j| j.mat.clone()) else {
                continue;
            };
            let Some(job) = st.jobs.get_mut(&id) else {
                continue;
            };
            if job.leases.remove(&cell).is_none() {
                continue; // the worker finished while we walked the list
            }
            job.reaped.insert(cell);
            job.inflight -= 1;
            self.rec.add("serve.lease.reaped", 1);
            if job.cancelled {
                if job.inflight == 0 && !job.phase.is_terminal() {
                    self.finish_cancel(id, job);
                }
                continue;
            }
            let attempts_entry = job.attempts.entry(cell).or_insert(0);
            *attempts_entry += 1;
            let attempts = *attempts_entry;
            if attempts < self.cfg.retry.max_attempts {
                job.retries += 1;
                job.pending.push_back(cell);
                self.rec.add("serve.cells.retried", 1);
            } else {
                job.attempts.remove(&cell);
                let desc = cell_job(&mat, cell);
                job.failures.push(WireFailure {
                    job_index: cell,
                    workload: desc.workload.name().to_string(),
                    technique: desc.technique.name(),
                    attempts,
                    error: CellError::DeadlineExceeded { deadline_ns }.to_string(),
                });
                self.rec.add("serve.cells.failed", 1);
                let snapshot = &st.jobs[&id];
                self.write_status(id, snapshot);
                let Some(job) = st.jobs.get_mut(&id) else {
                    continue;
                };
                if job.settled() {
                    self.complete_job(id, job);
                }
            }
        }
        drop(st);
        // Requeued retries (and freed quota slots) need workers.
        self.work.notify_all();
    }

    /// True when no worker holds a cell or ladder build — the drain
    /// completion condition.
    fn drained(&self) -> bool {
        let st = self.lock();
        st.jobs.values().all(|j| {
            j.inflight == 0 && !j.groups.iter().any(|g| matches!(g, LadderState::Building))
        })
    }

    /// The supervision thread: polls wall time at a short cadence but
    /// evaluates lease expiry against the *injected* clock, so tests
    /// drive deadlines with [`pgss_obs::ManualClock`] and production gets
    /// monotonic time — the poll cadence affects latency, never outcome.
    /// Doubles as the drain monitor: once draining and idle, it flips the
    /// server into shutdown so `Server::wait` returns and the process can
    /// exit 0.
    fn watchdog_loop(&self) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            self.reap_overdue();
            if self.draining.load(Ordering::SeqCst) && self.drained() {
                self.rec.add("serve.drain.completed", 1);
                self.initiate_shutdown();
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn initiate_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut st = self.lock();
            // Unblock watchers so their handler threads can exit.
            let ids: Vec<u64> = st.jobs.keys().copied().collect();
            for id in ids {
                if let Some(job) = st.jobs.get_mut(&id) {
                    job.watchers.clear();
                    let _ = job;
                }
            }
        }
        self.work.notify_all();
        // Unblock the accept loop with a throwaway connection.
        if let Some(addr) = self.addr.get() {
            let _ = dial(addr);
        }
    }
}

/// A running campaign server. Dropping the handle does **not** stop the
/// daemon; call [`Server::stop`] for a graceful shutdown (workers finish
/// their in-flight cells; all durable state is already on disk at every
/// instant, which is the point).
pub struct Server {
    inner: Arc<Inner>,
    addr: BoundAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Opens (or creates) the store at `store_dir`, resumes every
    /// non-terminal job found in it, binds `listen`, and starts the
    /// worker pool and accept loop.
    pub fn start(
        store_dir: impl Into<PathBuf>,
        listen: Listen,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        let rec = Arc::new(MetricsRecorder::with_clock(Arc::clone(&cfg.clock)));
        let store = Store::open(store_dir)?.with_recorder(Arc::clone(&rec) as Arc<dyn Recorder>);
        let inner = Arc::new(Inner {
            store,
            rec,
            cfg,
            state: Mutex::new(State {
                jobs: BTreeMap::new(),
                order: Vec::new(),
                rr: 0,
                next_seq: 0,
            }),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            addr: OnceLock::new(),
        });
        resume_jobs(&inner);

        let listener = match &listen {
            Listen::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr.as_str())?),
            #[cfg(unix)]
            Listen::Unix(path) => {
                // A stale socket file from a killed process would make
                // bind fail; a fresh server owns the path.
                let _ = std::fs::remove_file(path);
                Listener::Unix(UnixListener::bind(path)?)
            }
        };
        let addr = match &listener {
            Listener::Tcp(l) => BoundAddr::Tcp(l.local_addr()?),
            #[cfg(unix)]
            Listener::Unix(_) => match listen {
                #[cfg(unix)]
                Listen::Unix(path) => BoundAddr::Unix(path),
                Listen::Tcp(_) => unreachable!("listener/listen variants match"),
            },
        };
        let _ = inner.addr.set(addr.clone());

        let mut threads = Vec::new();
        for _ in 0..inner.cfg.workers.max(1) {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || inner.worker_loop()));
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || inner.watchdog_loop()));
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || accept_loop(&inner, listener)));
        }
        Ok(Server {
            inner,
            addr,
            threads,
        })
    }

    /// The bound address clients should dial.
    pub fn addr(&self) -> &BoundAddr {
        &self.addr
    }

    /// Graceful shutdown: stops accepting, lets workers finish their
    /// in-flight cells, joins every thread. Durable state needs no
    /// flushing — every record was written when it happened.
    pub fn stop(self) {
        self.inner.initiate_shutdown();
        self.wait();
    }

    /// Blocks until something else stops the server — a client-issued
    /// `shutdown` op, typically — then joins every thread. The CLI's
    /// serve-forever mode.
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
        #[cfg(unix)]
        if let BoundAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Startup resume: rebuild scheduler state from the store's job records.
fn resume_jobs(inner: &Arc<Inner>) {
    let index = match inner.store.get_checked(index_key()) {
        Ok(bytes) => match IndexRecord::decode(&bytes) {
            Ok(idx) => idx,
            Err(_) => {
                let _ = inner.store.quarantine(index_key());
                inner.rec.add("serve.store.index_corrupt", 1);
                IndexRecord::default()
            }
        },
        Err(RecordError::Missing) => IndexRecord::default(),
        Err(_) => {
            let _ = inner.store.quarantine(index_key());
            inner.rec.add("serve.store.index_corrupt", 1);
            IndexRecord::default()
        }
    };
    let mut st = inner.lock();
    st.next_seq = index.next_seq;
    for (id, tenant) in index.jobs {
        let spec_rec = match inner
            .store
            .get_checked(job_key(JobRecordKind::Spec, id, 0))
            .ok()
            .and_then(|b| SpecRecord::decode(&b).ok())
        {
            Some(r) => r,
            None => {
                inner.rec.add("serve.jobs.unresumable", 1);
                continue;
            }
        };
        let status = inner
            .store
            .get_checked(job_key(JobRecordKind::Status, id, 0))
            .ok()
            .and_then(|b| StatusRecord::decode(&b).ok())
            .unwrap_or(StatusRecord {
                phase: JobPhase::Queued,
                retries: 0,
                failures: Vec::new(),
            });
        let Ok(mat) = spec_rec.spec.materialize() else {
            inner.rec.add("serve.jobs.unresumable", 1);
            continue;
        };
        let mat = Arc::new(mat);
        let total = spec_rec.spec.cell_count();
        let mut done = vec![false; total];
        let mut done_count = 0usize;
        for (i, slot) in done.iter_mut().enumerate() {
            match inner
                .store
                .get_checked(job_key(JobRecordKind::Cell, id, i as u64))
            {
                Ok(bytes) => match wire::decode_cell_record(&bytes) {
                    Ok(_) => {
                        *slot = true;
                        done_count += 1;
                    }
                    Err(_) => {
                        // Store checksum passed but the payload didn't
                        // decode: quarantine and re-run the cell.
                        let _ = inner
                            .store
                            .quarantine(job_key(JobRecordKind::Cell, id, i as u64));
                        inner.rec.add("serve.cells.requeued_corrupt", 1);
                    }
                },
                Err(RecordError::Missing) => {}
                Err(_) => {
                    let _ = inner
                        .store
                        .quarantine(job_key(JobRecordKind::Cell, id, i as u64));
                    inner.rec.add("serve.cells.requeued_corrupt", 1);
                }
            }
        }
        let failed: Vec<usize> = status.failures.iter().map(|f| f.job_index).collect();
        let terminal = status.phase.is_terminal();
        let pending: VecDeque<usize> = if terminal {
            VecDeque::new()
        } else {
            (0..total)
                .filter(|i| !done[*i] && !failed.contains(i))
                .collect()
        };
        let mut job = JobState {
            tenant: tenant.clone(),
            mat: Some(mat),
            phase: status.phase,
            total,
            done,
            done_count,
            pending,
            attempts: BTreeMap::new(),
            inflight: 0,
            cancelled: status.phase == JobPhase::Cancelled,
            retries: status.retries,
            failures: status.failures,
            groups: Vec::new(),
            watchers: Vec::new(),
            started: None,
            leases: BTreeMap::new(),
            reaped: BTreeSet::new(),
        };
        if let Some(mat) = &job.mat {
            job.groups = (0..group_count(mat))
                .map(|_| LadderState::NotBuilt)
                .collect();
        }
        if !terminal {
            inner.rec.add("serve.jobs.resumed", 1);
            inner.rec.add("serve.cells.resumed", done_count as u64);
            if job.settled() {
                // Everything finished before the kill, but the Done
                // status never landed: settle it now.
                inner.complete_job(id, &mut job);
            } else {
                st.order.push(id);
            }
        }
        st.jobs.insert(id, job);
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: Listener) {
    loop {
        let conn = listener.accept();
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match conn {
            Ok(stream) => {
                let inner = Arc::clone(inner);
                // Handler threads are detached: they exit on EOF from the
                // peer, or when shutdown drops their watch senders.
                std::thread::spawn(move || handle_conn(&inner, stream));
            }
            Err(_) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn ok_line(fields: &str) -> String {
    if fields.is_empty() {
        "{\"ok\":true}".to_string()
    } else {
        format!("{{\"ok\":true,{fields}}}")
    }
}

fn err_line(message: &str) -> String {
    let mut out = String::from("{\"ok\":false,\"error\":");
    json_string(&mut out, message);
    out.push('}');
    out
}

/// A backpressure rejection: an error line carrying a `retry_after_ms`
/// hint, which [`crate::Client`] surfaces as `ClientError::Busy`.
fn busy_line(message: &str, retry_after_ms: u64) -> String {
    let mut out = String::from("{\"ok\":false,\"error\":");
    json_string(&mut out, message);
    out.push_str(",\"retry_after_ms\":");
    out.push_str(&retry_after_ms.to_string());
    out.push('}');
    out
}

fn write_line(w: &mut Stream, line: &str) -> io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Outcome of one bounded, deadline-guarded request-line read.
enum ReadLine {
    Line(String),
    Eof,
    TooLong,
    BadUtf8,
    TimedOut,
    Io,
}

/// Reads one newline-terminated request line without ever buffering more
/// than `max` bytes — the replacement for `BufReader::lines()`, whose
/// unbounded buffer is exactly what a slow-loris or garbage peer abuses.
fn read_request_line(reader: &mut BufReader<Stream>, max: usize) -> ReadLine {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return ReadLine::TimedOut
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadLine::Io,
        };
        if chunk.is_empty() {
            if buf.is_empty() {
                return ReadLine::Eof;
            }
            break; // EOF after a final unterminated line: serve it
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > max {
                    return ReadLine::TooLong;
                }
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                break;
            }
            None => {
                let n = chunk.len();
                if buf.len() + n > max {
                    return ReadLine::TooLong;
                }
                buf.extend_from_slice(chunk);
                reader.consume(n);
            }
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(line) => ReadLine::Line(line),
        Err(_) => ReadLine::BadUtf8,
    }
}

/// Decrements the live-connection count however the handler exits.
struct ConnGuard<'a>(&'a Inner);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.conns.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_conn(inner: &Arc<Inner>, stream: Stream) {
    let active = inner.conns.fetch_add(1, Ordering::SeqCst) + 1;
    let _guard = ConnGuard(inner);
    let mut writer = stream;
    if active > inner.cfg.max_conns {
        // Connection-level backpressure: a typed busy answer and a clean
        // close, never an unbounded pile of parked handler threads.
        inner.rec.add("serve.backpressure.conn_rejected", 1);
        let _ = write_line(
            &mut writer,
            &busy_line(
                &format!("server is at its connection cap ({})", inner.cfg.max_conns),
                inner.cfg.retry_after_ms,
            ),
        );
        return;
    }
    if writer.set_read_timeout(inner.cfg.read_timeout).is_err() {
        return;
    }
    let Ok(read_half) = writer.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    loop {
        match read_request_line(&mut reader, inner.cfg.max_line_bytes) {
            ReadLine::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                match dispatch(inner, &line, &mut writer) {
                    Ok(true) => {}
                    _ => return,
                }
            }
            ReadLine::Eof | ReadLine::Io => return,
            ReadLine::TooLong => {
                inner.rec.add("serve.protocol.oversized", 1);
                let _ = write_line(
                    &mut writer,
                    &err_line(&format!(
                        "request line exceeds {} bytes",
                        inner.cfg.max_line_bytes
                    )),
                );
                return;
            }
            ReadLine::BadUtf8 => {
                inner.rec.add("serve.protocol.malformed", 1);
                let _ = write_line(&mut writer, &err_line("request line is not valid UTF-8"));
                return;
            }
            ReadLine::TimedOut => {
                inner.rec.add("serve.conns.timed_out", 1);
                let _ = write_line(
                    &mut writer,
                    &err_line("read deadline exceeded; closing idle connection"),
                );
                return;
            }
        }
    }
}

/// Handles one request line; `Ok(false)` closes the connection.
fn dispatch(inner: &Arc<Inner>, line: &str, w: &mut Stream) -> io::Result<bool> {
    let req = match json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            write_line(w, &err_line(&format!("bad request: {e}")))?;
            return Ok(true);
        }
    };
    let op = req.get("op").and_then(Value::as_str).unwrap_or("");
    match op {
        "ping" => write_line(w, &ok_line("\"pong\":true"))?,
        "submit" => {
            let resp = handle_submit(inner, &req);
            write_line(w, &resp)?;
        }
        "status" => {
            let resp = handle_status(inner, &req);
            write_line(w, &resp)?;
        }
        "cancel" => {
            let resp = handle_cancel(inner, &req);
            write_line(w, &resp)?;
        }
        "report" => match assemble_report(inner, &req) {
            Ok(lines) => {
                write_line(
                    w,
                    &ok_line(&format!("\"kind\":\"report\",\"lines\":{}", lines.len())),
                )?;
                for l in &lines {
                    write_line(w, l)?;
                }
            }
            Err(e) => write_line(w, &err_line(&e))?,
        },
        "metrics" => {
            let line = scope_line("serve", &inner.rec.frame());
            write_line(w, &ok_line("\"kind\":\"metrics\",\"lines\":1"))?;
            write_line(w, &line)?;
        }
        "watch" => return handle_watch(inner, &req, w).map(|()| true),
        "drain" => {
            // Graceful drain: stop admitting and claiming, answer with
            // what is still in flight, and let the watchdog turn "idle"
            // into a clean exit. Idempotent.
            inner.rec.add("serve.drain.requested", 1);
            inner.draining.store(true, Ordering::SeqCst);
            inner.work.notify_all();
            let inflight: usize = {
                let st = inner.lock();
                st.jobs.values().map(|j| j.inflight).sum()
            };
            write_line(
                w,
                &ok_line(&format!("\"draining\":true,\"inflight\":{inflight}")),
            )?;
        }
        "gc" => {
            let resp = handle_gc(inner);
            write_line(w, &resp)?;
        }
        "shutdown" => {
            write_line(w, &ok_line("\"stopping\":true"))?;
            inner.initiate_shutdown();
            return Ok(false);
        }
        other => write_line(w, &err_line(&format!("unknown op {other:?}")))?,
    }
    Ok(true)
}

fn job_from_req<'a>(req: &Value, st: &'a mut State) -> Result<(u64, &'a mut JobState), String> {
    let id = req
        .get("job")
        .and_then(Value::as_str)
        .and_then(parse_job_id)
        .ok_or("request needs a \"job\" id (16 hex digits)")?;
    match st.jobs.get_mut(&id) {
        Some(job) => Ok((id, job)),
        None => Err(format!("unknown job {}", render_job_id(id))),
    }
}

fn handle_submit(inner: &Arc<Inner>, req: &Value) -> String {
    if inner.draining.load(Ordering::SeqCst) {
        inner.rec.add("serve.jobs.rejected", 1);
        return err_line("server is draining; new jobs are not admitted");
    }
    let tenant = req
        .get("tenant")
        .and_then(Value::as_str)
        .unwrap_or("default")
        .to_string();
    let Some(spec_json) = req.get("spec") else {
        return err_line("submit needs a \"spec\" object");
    };
    let spec = match CampaignSpec::from_json(spec_json) {
        Ok(s) => s,
        Err(e) => {
            inner.rec.add("serve.jobs.rejected", 1);
            return err_line(&e);
        }
    };
    let mat = match spec.materialize() {
        Ok(m) => Arc::new(m),
        Err(e) => {
            inner.rec.add("serve.jobs.rejected", 1);
            return err_line(&e);
        }
    };
    let mut st = inner.lock();
    let quota = inner.cfg.quota_for(&tenant);
    if inner.active_jobs(&st, &tenant) >= quota.max_queued_jobs {
        drop(st);
        inner.rec.add("serve.jobs.rejected", 1);
        inner.rec.add("serve.backpressure.rejections", 1);
        return busy_line(
            &format!(
                "tenant {tenant:?} is at its queued-job quota ({})",
                quota.max_queued_jobs
            ),
            inner.cfg.retry_after_ms,
        );
    }
    let seq = st.next_seq;
    st.next_seq += 1;
    let id = {
        let mut e = pgss_ckpt::Encoder::new();
        e.put_str(&tenant);
        e.put_u64(seq);
        e.put_bytes(&spec.encode());
        pgss_ckpt::fnv1a64(&e.into_bytes())
    };
    let total = spec.cell_count();
    let job = JobState {
        tenant: tenant.clone(),
        mat: Some(Arc::clone(&mat)),
        phase: JobPhase::Queued,
        total,
        done: vec![false; total],
        done_count: 0,
        pending: (0..total).collect(),
        attempts: BTreeMap::new(),
        inflight: 0,
        cancelled: false,
        retries: 0,
        failures: Vec::new(),
        groups: (0..group_count(&mat))
            .map(|_| LadderState::NotBuilt)
            .collect(),
        watchers: Vec::new(),
        started: None,
        leases: BTreeMap::new(),
        reaped: BTreeSet::new(),
    };
    // Durable order matters: spec and status first, then the index that
    // names them — a crash between writes leaves an unnamed record, not
    // a dangling index entry.
    let spec_record = SpecRecord {
        tenant: tenant.clone(),
        seq,
        spec,
    };
    let mut put_failed = inner
        .store
        .put(job_key(JobRecordKind::Spec, id, 0), &spec_record.encode())
        .is_err();
    inner.write_status(id, &job);
    let index = IndexRecord {
        next_seq: st.next_seq,
        jobs: {
            let mut jobs: Vec<(u64, String)> = st
                .jobs
                .iter()
                .map(|(jid, j)| (*jid, j.tenant.clone()))
                .collect();
            jobs.push((id, tenant));
            jobs
        },
    };
    put_failed |= inner.store.put(index_key(), &index.encode()).is_err();
    if put_failed {
        inner.rec.add("serve.store.put_failed", 1);
    }
    st.jobs.insert(id, job);
    st.order.push(id);
    drop(st);
    inner.rec.add("serve.jobs.submitted", 1);
    inner.work.notify_all();
    ok_line(&format!(
        "\"job\":\"{}\",\"cells\":{total}",
        render_job_id(id)
    ))
}

fn handle_status(inner: &Arc<Inner>, req: &Value) -> String {
    let mut st = inner.lock();
    match job_from_req(req, &mut st) {
        Ok((_, job)) => ok_line(&format!(
            "\"phase\":\"{}\",\"done\":{},\"total\":{},\"failed\":{},\"retries\":{}",
            job.phase.as_str(),
            job.done_count,
            job.total,
            job.failures.len(),
            job.retries
        )),
        Err(e) => err_line(&e),
    }
}

fn handle_cancel(inner: &Arc<Inner>, req: &Value) -> String {
    let mut st = inner.lock();
    let resp = match job_from_req(req, &mut st) {
        Ok((id, job)) => {
            if job.phase.is_terminal() {
                err_line(&format!("job is already {}", job.phase.as_str()))
            } else {
                job.cancelled = true;
                job.pending.clear();
                if job.inflight == 0 {
                    inner.finish_cancel(id, job);
                }
                ok_line("\"cancelled\":true")
            }
        }
        Err(e) => err_line(&e),
    };
    drop(st);
    inner.work.notify_all();
    resp
}

/// Mark-and-sweep over the server's store, answering the `gc` verb.
///
/// Marking and sweeping both happen under the scheduler lock: every
/// job-record write (cell, spec, status, index) happens under the same
/// lock, so no live record can land mid-sweep. The live roots are:
///
/// - the job index, plus every indexed job's spec and status records;
/// - **all** cell records `0..total` of every job, finished or not —
///   unfinished jobs never lose what they already computed;
/// - every ladder record ([`CheckpointLadder::live_keys`]: meta plus the
///   rungs the meta declares) of every job's workload × config grid.
///
/// A ladder *capture*'s write-back runs outside the scheduler lock
/// (rungs land before their meta record), so GC defers with a `busy`
/// answer while any build is in flight — builds are claimed under the
/// lock, so none can start mid-sweep either. Quarantined evidence is
/// structurally out of reach ([`Store::gc`] never enters the sidecar).
/// Records of jobs orphaned by a quarantined index are unreachable by
/// resume and therefore legitimately collectable.
fn handle_gc(inner: &Arc<Inner>) -> String {
    let st = inner.lock();
    let building = st
        .jobs
        .values()
        .any(|j| j.groups.iter().any(|g| matches!(g, LadderState::Building)));
    if building {
        inner.rec.add("serve.backpressure.rejections", 1);
        return busy_line(
            "gc deferred: a checkpoint-ladder build is in flight",
            inner.cfg.retry_after_ms,
        );
    }
    let mut live: BTreeSet<u64> = BTreeSet::new();
    live.insert(index_key());
    for (&id, job) in &st.jobs {
        live.insert(job_key(JobRecordKind::Spec, id, 0));
        live.insert(job_key(JobRecordKind::Status, id, 0));
        for i in 0..job.total {
            live.insert(job_key(JobRecordKind::Cell, id, i as u64));
        }
        if let Some(mat) = &job.mat {
            let spec = ladder_spec(mat);
            for workload in &mat.workloads {
                for config in &mat.configs {
                    live.extend(CheckpointLadder::live_keys(
                        &inner.store,
                        workload,
                        config,
                        &spec,
                    ));
                }
            }
        }
    }
    let report = inner.store.gc(|key| live.contains(&key));
    drop(st);
    match report {
        Ok(r) => ok_line(&format!(
            "\"kind\":\"gc\",\"checked\":{},\"live\":{},\"swept\":{},\"bytes_freed\":{}",
            r.checked, r.live, r.swept, r.bytes_freed
        )),
        Err(e) => err_line(&format!("gc failed: {e}")),
    }
}

/// Re-assembles a terminal job's canonical campaign artifact from its
/// durable records. Line-for-line the same bytes as
/// [`pgss::CampaignReport::canonical_jsonl`] on an equivalent library
/// run: header, cells in job order, failure ledger, per-cell scopes.
fn assemble_report(inner: &Arc<Inner>, req: &Value) -> Result<Vec<String>, String> {
    let mut st = inner.lock();
    let (id, job) = job_from_req(req, &mut st)?;
    if !job.phase.is_terminal() {
        return Err(format!(
            "job is {}; report needs a finished job",
            job.phase.as_str()
        ));
    }
    let (total, retries) = (job.total, job.retries);
    let failures = job.failures.clone();
    let mut cell_lines = Vec::new();
    let mut scope_lines = Vec::new();
    for i in 0..total {
        let bytes = match inner
            .store
            .get_checked(job_key(JobRecordKind::Cell, id, i as u64))
        {
            Ok(b) => b,
            Err(RecordError::Missing) => continue,
            Err(e) => return Err(format!("cell {i} record unreadable: {e:?}")),
        };
        let (cell, mut frame) =
            wire::decode_cell_record(&bytes).map_err(|e| format!("cell {i} corrupt: {e}"))?;
        annotate_cell_frame(&cell, &mut frame);
        scope_lines.push(scope_line(
            &format!("{}/{}", cell.workload, cell.technique),
            &frame,
        ));
        cell_lines.push(wire::canonical_cell_line(&cell));
    }
    let mut lines = Vec::with_capacity(1 + cell_lines.len() * 2 + failures.len());
    lines.push(wire::canonical_header(
        cell_lines.len(),
        failures.len(),
        retries,
    ));
    lines.extend(cell_lines);
    for f in &failures {
        lines.push(wire::canonical_failure_line(
            f.job_index,
            &f.workload,
            &f.technique,
            f.attempts,
            &f.error,
        ));
    }
    lines.extend(scope_lines);
    Ok(lines)
}

fn handle_watch(inner: &Arc<Inner>, req: &Value, w: &mut Stream) -> io::Result<()> {
    let (rx, replay) = {
        let mut st = inner.lock();
        let (id, job) = match job_from_req(req, &mut st) {
            Ok(x) => x,
            Err(e) => return write_line(w, &err_line(&e)),
        };
        // Replay what already finished, in job order, before going live.
        let mut replay = Vec::new();
        let done_count = job.done_count;
        let total = job.total;
        let done = job.done.clone();
        for (i, is_done) in done.iter().enumerate() {
            if !is_done {
                continue;
            }
            if let Ok(bytes) = inner
                .store
                .get_checked(job_key(JobRecordKind::Cell, id, i as u64))
            {
                if let Ok((cell, mut frame)) = wire::decode_cell_record(&bytes) {
                    annotate_cell_frame(&cell, &mut frame);
                    replay.push(inner.event_line(id, i, &cell, &frame, done_count, total));
                }
            }
        }
        inner.rec.add("serve.cells.streamed", replay.len() as u64);
        let Some(job) = st.jobs.get_mut(&id) else {
            return write_line(w, &err_line("job vanished"));
        };
        if job.phase.is_terminal() {
            let end = format!(
                "{{\"ok\":true,\"event\":\"end\",\"phase\":\"{}\"}}",
                job.phase.as_str()
            );
            drop(st);
            for line in &replay {
                write_line(w, line)?;
            }
            return write_line(w, &end);
        }
        let (tx, rx) = mpsc::channel();
        job.watchers.push(tx);
        (rx, replay)
    };
    for line in &replay {
        write_line(w, line)?;
    }
    loop {
        match rx.recv() {
            Ok(WatchMsg::Event(line)) => write_line(w, &line)?,
            Ok(WatchMsg::End(line)) => return write_line(w, &line),
            // Sender dropped without an end event: server shutting down.
            Err(_) => {
                return write_line(w, "{\"ok\":true,\"event\":\"end\",\"phase\":\"detached\"}")
            }
        }
    }
}
