//! Durable job records: the versioned payloads the server persists in
//! the checkpoint store so a killed process resumes mid-campaign.
//!
//! A job is made durable as four record kinds, addressed by
//! [`pgss_ckpt::job_key`]:
//!
//! * **Index** (singleton) — every job id the store knows, its tenant,
//!   and the submit-sequence counter. Rewritten on submit.
//! * **Spec** — the immutable submission: tenant, sequence, canonical
//!   [`CampaignSpec`] bytes. Written once.
//! * **Status** — the mutable phase, retry count, and failure ledger.
//!   Rewritten (atomically, via the store's write-then-rename) on every
//!   transition.
//! * **Cell** — one completed cell's result + raw metric frame, encoded
//!   by [`pgss::wire::encode_cell_record`]. Written exactly once per
//!   cell; their presence *is* the completion set, so resume never
//!   trusts a stale summary over the ground truth.
//!
//! Every payload starts with [`JOB_RECORD_VERSION`]; the store layer
//! additionally checksums and versions the container, so torn or corrupt
//! records surface as typed faults, get quarantined, and the affected
//! work is simply re-run.

use pgss::wire::WireFailure;
use pgss_ckpt::{CodecError, Decoder, Encoder};

use crate::spec::CampaignSpec;

/// Version of every job-record payload in this module.
pub const JOB_RECORD_VERSION: u32 = 1;

fn check_version(d: &mut Decoder<'_>) -> Result<(), CodecError> {
    if d.get_u32()? != JOB_RECORD_VERSION {
        return Err(CodecError::Malformed("job record version mismatch"));
    }
    Ok(())
}

/// Where a job is in its lifecycle. `Done` and `Cancelled` are terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Accepted, no cell has started (possibly quota-gated).
    Queued,
    /// At least one cell has started.
    Running,
    /// Every cell finished or exhausted its retries.
    Done,
    /// Cancelled by the client; no further cells will run.
    Cancelled,
}

impl JobPhase {
    /// Protocol rendering (`"queued"`, `"running"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Cancelled => "cancelled",
        }
    }

    /// True for `Done` and `Cancelled`.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobPhase::Done | JobPhase::Cancelled)
    }

    fn tag(self) -> u8 {
        match self {
            JobPhase::Queued => 0,
            JobPhase::Running => 1,
            JobPhase::Done => 2,
            JobPhase::Cancelled => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<JobPhase, CodecError> {
        Ok(match tag {
            0 => JobPhase::Queued,
            1 => JobPhase::Running,
            2 => JobPhase::Done,
            3 => JobPhase::Cancelled,
            _ => return Err(CodecError::Malformed("unknown job phase")),
        })
    }
}

/// The singleton job index: submit-sequence counter plus every job's id
/// and tenant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IndexRecord {
    /// Next submission sequence number.
    pub next_seq: u64,
    /// `(job id, tenant)` in submission order.
    pub jobs: Vec<(u64, String)>,
}

impl IndexRecord {
    /// Serialises the index.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u32(JOB_RECORD_VERSION);
        e.put_u64(self.next_seq);
        e.put_u64(self.jobs.len() as u64);
        for (id, tenant) in &self.jobs {
            e.put_u64(*id);
            e.put_str(tenant);
        }
        e.into_bytes()
    }

    /// Deserialises [`IndexRecord::encode`]'s bytes.
    pub fn decode(bytes: &[u8]) -> Result<IndexRecord, CodecError> {
        let mut d = Decoder::new(bytes);
        check_version(&mut d)?;
        let next_seq = d.get_u64()?;
        let n = d.get_u64()?;
        if n > d.remaining() as u64 {
            return Err(CodecError::Truncated);
        }
        let mut jobs = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let id = d.get_u64()?;
            jobs.push((id, d.get_str()?));
        }
        d.finish()?;
        Ok(IndexRecord { next_seq, jobs })
    }
}

/// A job's immutable submission record.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecRecord {
    /// Submitting tenant.
    pub tenant: String,
    /// Submission sequence number (feeds the job-id digest).
    pub seq: u64,
    /// The validated spec.
    pub spec: CampaignSpec,
}

impl SpecRecord {
    /// Serialises the record.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u32(JOB_RECORD_VERSION);
        e.put_str(&self.tenant);
        e.put_u64(self.seq);
        e.put_bytes(&self.spec.encode());
        e.into_bytes()
    }

    /// Deserialises [`SpecRecord::encode`]'s bytes.
    pub fn decode(bytes: &[u8]) -> Result<SpecRecord, CodecError> {
        let mut d = Decoder::new(bytes);
        check_version(&mut d)?;
        let tenant = d.get_str()?;
        let seq = d.get_u64()?;
        let spec_bytes = d.get_bytes()?;
        d.finish()?;
        let mut sd = Decoder::new(&spec_bytes);
        let spec = CampaignSpec::decode(&mut sd)?;
        sd.finish()?;
        Ok(SpecRecord { tenant, seq, spec })
    }
}

/// A job's mutable status record.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusRecord {
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Total retry attempts performed so far.
    pub retries: u64,
    /// Terminal failures, in job-index order; these cells are settled
    /// and are **not** re-run on resume.
    pub failures: Vec<WireFailure>,
}

impl StatusRecord {
    /// Serialises the record.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u32(JOB_RECORD_VERSION);
        e.put_u8(self.phase.tag());
        e.put_u64(self.retries);
        e.put_u64(self.failures.len() as u64);
        for f in &self.failures {
            // Same field layout as `pgss::wire::put_failure`, but from
            // the already-rendered ledger entry.
            e.put_u64(f.job_index as u64);
            e.put_str(&f.workload);
            e.put_str(&f.technique);
            e.put_u32(f.attempts);
            e.put_str(&f.error);
        }
        e.into_bytes()
    }

    /// Deserialises [`StatusRecord::encode`]'s bytes.
    pub fn decode(bytes: &[u8]) -> Result<StatusRecord, CodecError> {
        let mut d = Decoder::new(bytes);
        check_version(&mut d)?;
        let phase = JobPhase::from_tag(d.get_u8()?)?;
        let retries = d.get_u64()?;
        let n = d.get_u64()?;
        if n > d.remaining() as u64 {
            return Err(CodecError::Truncated);
        }
        let mut failures = Vec::with_capacity(n as usize);
        for _ in 0..n {
            failures.push(pgss::wire::get_failure(&mut d)?);
        }
        d.finish()?;
        Ok(StatusRecord {
            phase,
            retries,
            failures,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::json;

    fn spec() -> CampaignSpec {
        let v = json::parse(
            r#"{"suite":[{"name":"164.gzip","scale":0.01}],
                "techniques":[{"kind":"smarts","period_ops":50000}],"stride":50000}"#,
        )
        .unwrap();
        CampaignSpec::from_json(&v).unwrap()
    }

    #[test]
    fn records_roundtrip() {
        let idx = IndexRecord {
            next_seq: 3,
            jobs: vec![(0xdead, "t0".into()), (0xbeef, "t1".into())],
        };
        assert_eq!(IndexRecord::decode(&idx.encode()).unwrap(), idx);

        let sr = SpecRecord {
            tenant: "t0".into(),
            seq: 2,
            spec: spec(),
        };
        assert_eq!(SpecRecord::decode(&sr.encode()).unwrap(), sr);

        let st = StatusRecord {
            phase: JobPhase::Running,
            retries: 4,
            failures: vec![WireFailure {
                job_index: 1,
                workload: "164.gzip".into(),
                technique: "SMARTS(50k)".into(),
                attempts: 2,
                error: "technique panicked: boom".into(),
            }],
        };
        assert_eq!(StatusRecord::decode(&st.encode()).unwrap(), st);
    }

    #[test]
    fn corrupt_records_are_rejected() {
        let st = StatusRecord {
            phase: JobPhase::Done,
            retries: 0,
            failures: vec![],
        };
        let bytes = st.encode();
        let mut bad = bytes.clone();
        bad[0] ^= 0xff; // version
        assert!(StatusRecord::decode(&bad).is_err());
        assert!(StatusRecord::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut bad_phase = bytes.clone();
        bad_phase[4] = 9;
        assert!(StatusRecord::decode(&bad_phase).is_err());
    }

    #[test]
    fn phase_protocol_names() {
        assert_eq!(JobPhase::Queued.as_str(), "queued");
        assert!(JobPhase::Done.is_terminal());
        assert!(JobPhase::Cancelled.is_terminal());
        assert!(!JobPhase::Running.is_terminal());
    }
}
