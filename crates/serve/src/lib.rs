//! `pgss-serve`: a durable, resumable campaign-as-a-service daemon.
//!
//! The library campaign runner ([`pgss::campaign`]) executes one grid and
//! exits. This crate wraps the same cell-execution path in a persistent
//! server: clients submit campaign jobs (suite × technique × machine-config
//! grids) over a line-delimited JSON protocol on a TCP or Unix socket, a
//! work-stealing worker pool executes cells across all queued jobs under
//! per-tenant quotas, and partial results stream back out of order as
//! cells finish.
//!
//! Everything a job is — its spec, per-cell completion set, per-cell
//! results, and failure ledger — lives in the content-addressed
//! [`pgss_ckpt::Store`] as versioned, checksummed records, so a server
//! killed mid-campaign (even with SIGKILL) resumes on restart without
//! recomputing any finished cell, and a finished job's report reassembles
//! to the *byte-identical* canonical artifact the library's
//! [`pgss::CampaignReport::canonical_jsonl`] produces.
//!
//! Module map:
//!
//! * [`json`] — dependency-free JSON value parser for the protocol.
//! * [`spec`] — declarative campaign specs (what a client submits).
//! * [`record`] — the durable job-record payloads.
//! * [`server`] — listener, scheduler, worker pool, resume protocol.
//! * [`client`] — blocking protocol client (tests, examples, tooling).
//!
//! The `pgss_serve` binary wires [`server::Server`] to the command line.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod record;
pub mod server;
pub mod spec;

pub use client::{Backoff, CellEvent, Client, ClientError, GcOutcome, JobStatus};
pub use record::{IndexRecord, JobPhase, SpecRecord, StatusRecord, JOB_RECORD_VERSION};
pub use server::{BoundAddr, Listen, ServeConfig, Server, TenantQuota};
pub use spec::{CampaignSpec, ConfigSpec, Materialized, TechSpec};
