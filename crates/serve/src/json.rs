//! Minimal JSON reader for the line-delimited wire protocol.
//!
//! The workspace is hermetic (no external crates), so the server parses
//! its protocol with this ~200-line recursive-descent reader. It accepts
//! standard JSON (RFC 8259) with two deliberate simplifications that are
//! harmless for a machine-to-machine protocol: numbers are surfaced as
//! `f64`, and `\uXXXX` escapes outside the basic multilingual plane must
//! arrive as surrogate pairs (lone surrogates are rejected).
//!
//! **Writing** JSON does not live here: responses are assembled with
//! [`pgss_obs::json_string`] / [`pgss_obs::json_f64`], the same helpers
//! behind the pinned metrics schema, so everything the server emits is
//! escaped byte-identically to the library's own exports.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not significant to the protocol, so a
    /// sorted map keeps lookups simple.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (no fraction, no overflow).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Why a document failed to parse; rendered messages name the byte
/// offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What was wrong.
    pub message: &'static str,
    /// Byte offset of the problem.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document, requiring it to span the whole input
/// (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Nesting depth bound; protocol documents are shallow, and a bound keeps
/// a hostile input from exhausting the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            message,
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.bytes.get(self.pos) {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v << 4 | u16::from(d);
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self.bytes.get(self.pos).ok_or(self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a low surrogate must
                                // follow for a valid code point.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(self.err("lone surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("lone surrogate"));
                                }
                                let cp = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(cp).ok_or(self.err("invalid code point"))?
                            } else {
                                char::from_u32(u32::from(hi)).ok_or(self.err("lone surrogate"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(&c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so bytes
                    // are valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shapes() {
        let v = parse(r#"{"op":"submit","tenant":"t0","spec":{"stride":50000,"suite":[{"name":"164.gzip","scale":0.01}]}}"#).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("submit"));
        let spec = v.get("spec").unwrap();
        assert_eq!(spec.get("stride").and_then(Value::as_u64), Some(50_000));
        let suite = spec.get("suite").and_then(Value::as_arr).unwrap();
        assert_eq!(suite[0].get("scale").and_then(Value::as_f64), Some(0.01));
    }

    #[test]
    fn roundtrips_escapes() {
        let v = parse(r#""a\"b\\c\nA😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA😀"));
        // The obs emitter escapes exactly what this parser unescapes.
        let mut out = String::new();
        pgss_obs::json_string(&mut out, v.as_str().unwrap());
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            r#""unterminated"#,
            "1e999",
            "nul",
            "{} trailing",
            r#""\ud800""#,
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        // Deep nesting is bounded, not stack-exhausting.
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn numbers_and_literals() {
        assert_eq!(parse("-1.5e2").unwrap().as_f64(), Some(-150.0));
        assert_eq!(parse("true").unwrap().as_bool(), Some(true));
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-2").unwrap().as_u64(), None);
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
    }
}
