//! Campaign specifications: what a client submits, validated, canonically
//! encoded (for durable records and job-id digests), and materialised
//! into the workloads / techniques / machine configurations a campaign
//! actually runs.
//!
//! A spec is a *grid*: `suite × configs × techniques`, flattened in
//! workload-major order (for each workload, for each configuration, every
//! technique). With a single configuration this is exactly the order of
//! [`pgss::campaign::grid`], which is what makes a server-side run
//! byte-comparable to a direct library run of the same grid.

use pgss::{
    AdaptivePgss, FullDetailed, OnlineSimPoint, PgssSim, RankedSet, Signature, SimPointOffline,
    Smarts, Technique, TurboSmarts, TwoPhaseStratified,
};
use pgss_ckpt::{CodecError, Decoder, Encoder};
use pgss_cpu::MachineConfig;
use pgss_workloads::Workload;

use crate::json::Value;

/// One technique of the grid: a named kind plus the parameter overrides
/// the protocol exposes (everything else keeps the paper's defaults).
#[derive(Debug, Clone, PartialEq)]
pub enum TechSpec {
    /// [`Smarts`] with an optional sampling-period override.
    Smarts {
        /// `period_ops` override.
        period_ops: Option<u64>,
    },
    /// [`TurboSmarts`] with an optional sampling-period override.
    TurboSmarts {
        /// `smarts.period_ops` override.
        period_ops: Option<u64>,
    },
    /// [`PgssSim`] with optional fast-forward / spacing overrides.
    Pgss {
        /// `ff_ops` override.
        ff_ops: Option<u64>,
        /// `spacing_ops` override.
        spacing_ops: Option<u64>,
    },
    /// [`AdaptivePgss`] with the paper's defaults.
    AdaptivePgss,
    /// [`SimPointOffline`] with optional interval / cluster overrides.
    SimPoint {
        /// `interval_ops` override.
        interval_ops: Option<u64>,
        /// `k` override.
        k: Option<u64>,
    },
    /// [`OnlineSimPoint`] with an optional interval override.
    OnlineSimPoint {
        /// `interval_ops` override.
        interval_ops: Option<u64>,
    },
    /// [`FullDetailed`] — the ground truth, at ground-truth cost.
    Full,
    /// [`TwoPhaseStratified`] with optional period / budget overrides.
    TwoPhase {
        /// `ff_ops` override.
        ff_ops: Option<u64>,
        /// `budget` override.
        budget: Option<u64>,
    },
    /// [`RankedSet`] with optional period / replicate overrides.
    RankedSet {
        /// `ff_ops` override.
        ff_ops: Option<u64>,
        /// `replicates` override.
        replicates: Option<u64>,
    },
    /// [`PgssSim`] classifying on Memory Access Vectors instead of the
    /// hashed branch BBV.
    PgssMav {
        /// `ff_ops` override.
        ff_ops: Option<u64>,
        /// `spacing_ops` override.
        spacing_ops: Option<u64>,
    },
}

impl TechSpec {
    /// Builds the runnable technique this spec names.
    pub fn build(&self) -> Box<dyn Technique + Send + Sync> {
        match *self {
            TechSpec::Smarts { period_ops } => Box::new(Smarts {
                period_ops: period_ops.unwrap_or(Smarts::default().period_ops),
                ..Smarts::default()
            }),
            TechSpec::TurboSmarts { period_ops } => Box::new(TurboSmarts {
                smarts: Smarts {
                    period_ops: period_ops.unwrap_or(Smarts::default().period_ops),
                    ..Smarts::default()
                },
                ..TurboSmarts::default()
            }),
            TechSpec::Pgss {
                ff_ops,
                spacing_ops,
            } => Box::new(PgssSim {
                ff_ops: ff_ops.unwrap_or(PgssSim::default().ff_ops),
                spacing_ops: spacing_ops.unwrap_or(PgssSim::default().spacing_ops),
                ..PgssSim::default()
            }),
            TechSpec::AdaptivePgss => Box::new(AdaptivePgss::default()),
            TechSpec::SimPoint { interval_ops, k } => Box::new(SimPointOffline {
                interval_ops: interval_ops.unwrap_or(SimPointOffline::default().interval_ops),
                k: k.map_or(SimPointOffline::default().k, |k| k as usize),
                ..SimPointOffline::default()
            }),
            TechSpec::OnlineSimPoint { interval_ops } => Box::new(OnlineSimPoint {
                interval_ops: interval_ops.unwrap_or(OnlineSimPoint::default().interval_ops),
                ..OnlineSimPoint::default()
            }),
            TechSpec::Full => Box::new(FullDetailed::new()),
            TechSpec::TwoPhase { ff_ops, budget } => Box::new(TwoPhaseStratified {
                ff_ops: ff_ops.unwrap_or(TwoPhaseStratified::default().ff_ops),
                budget: budget.unwrap_or(TwoPhaseStratified::default().budget),
                ..TwoPhaseStratified::default()
            }),
            TechSpec::RankedSet { ff_ops, replicates } => Box::new(RankedSet {
                ff_ops: ff_ops.unwrap_or(RankedSet::default().ff_ops),
                replicates: replicates.unwrap_or(RankedSet::default().replicates),
                ..RankedSet::default()
            }),
            TechSpec::PgssMav {
                ff_ops,
                spacing_ops,
            } => Box::new(PgssSim {
                ff_ops: ff_ops.unwrap_or(PgssSim::default().ff_ops),
                spacing_ops: spacing_ops.unwrap_or(PgssSim::default().spacing_ops),
                signature: Signature::Mav,
                ..PgssSim::default()
            }),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            TechSpec::Smarts { .. } => 0,
            TechSpec::TurboSmarts { .. } => 1,
            TechSpec::Pgss { .. } => 2,
            TechSpec::AdaptivePgss => 3,
            TechSpec::SimPoint { .. } => 4,
            TechSpec::OnlineSimPoint { .. } => 5,
            TechSpec::Full => 6,
            TechSpec::TwoPhase { .. } => 7,
            TechSpec::RankedSet { .. } => 8,
            TechSpec::PgssMav { .. } => 9,
        }
    }

    fn encode(&self, e: &mut Encoder) {
        e.put_u8(self.tag());
        let opt = |e: &mut Encoder, v: Option<u64>| {
            e.put_bool(v.is_some());
            if let Some(v) = v {
                e.put_u64(v);
            }
        };
        match *self {
            TechSpec::Smarts { period_ops } | TechSpec::TurboSmarts { period_ops } => {
                opt(e, period_ops);
            }
            TechSpec::Pgss {
                ff_ops,
                spacing_ops,
            } => {
                opt(e, ff_ops);
                opt(e, spacing_ops);
            }
            TechSpec::SimPoint { interval_ops, k } => {
                opt(e, interval_ops);
                opt(e, k);
            }
            TechSpec::OnlineSimPoint { interval_ops } => opt(e, interval_ops),
            TechSpec::TwoPhase { ff_ops, budget } => {
                opt(e, ff_ops);
                opt(e, budget);
            }
            TechSpec::RankedSet { ff_ops, replicates } => {
                opt(e, ff_ops);
                opt(e, replicates);
            }
            TechSpec::PgssMav {
                ff_ops,
                spacing_ops,
            } => {
                opt(e, ff_ops);
                opt(e, spacing_ops);
            }
            TechSpec::AdaptivePgss | TechSpec::Full => {}
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<TechSpec, CodecError> {
        let opt = |d: &mut Decoder<'_>| -> Result<Option<u64>, CodecError> {
            Ok(if d.get_bool()? {
                Some(d.get_u64()?)
            } else {
                None
            })
        };
        Ok(match d.get_u8()? {
            0 => TechSpec::Smarts {
                period_ops: opt(d)?,
            },
            1 => TechSpec::TurboSmarts {
                period_ops: opt(d)?,
            },
            2 => TechSpec::Pgss {
                ff_ops: opt(d)?,
                spacing_ops: opt(d)?,
            },
            3 => TechSpec::AdaptivePgss,
            4 => TechSpec::SimPoint {
                interval_ops: opt(d)?,
                k: opt(d)?,
            },
            5 => TechSpec::OnlineSimPoint {
                interval_ops: opt(d)?,
            },
            6 => TechSpec::Full,
            7 => TechSpec::TwoPhase {
                ff_ops: opt(d)?,
                budget: opt(d)?,
            },
            8 => TechSpec::RankedSet {
                ff_ops: opt(d)?,
                replicates: opt(d)?,
            },
            9 => TechSpec::PgssMav {
                ff_ops: opt(d)?,
                spacing_ops: opt(d)?,
            },
            _ => return Err(CodecError::Malformed("unknown technique tag")),
        })
    }

    fn from_json(v: &Value) -> Result<TechSpec, String> {
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("technique needs a \"kind\" string")?;
        let u = |key: &str| -> Result<Option<u64>, String> {
            match v.get(key) {
                None => Ok(None),
                Some(x) => x.as_u64().map(Some).ok_or_else(|| {
                    format!("technique field {key:?} must be a non-negative integer")
                }),
            }
        };
        match kind {
            "smarts" => Ok(TechSpec::Smarts {
                period_ops: u("period_ops")?,
            }),
            "turbo_smarts" => Ok(TechSpec::TurboSmarts {
                period_ops: u("period_ops")?,
            }),
            "pgss" => Ok(TechSpec::Pgss {
                ff_ops: u("ff_ops")?,
                spacing_ops: u("spacing_ops")?,
            }),
            "adaptive_pgss" => Ok(TechSpec::AdaptivePgss),
            "simpoint" => Ok(TechSpec::SimPoint {
                interval_ops: u("interval_ops")?,
                k: u("k")?,
            }),
            "online_simpoint" => Ok(TechSpec::OnlineSimPoint {
                interval_ops: u("interval_ops")?,
            }),
            "full" => Ok(TechSpec::Full),
            "two_phase" => Ok(TechSpec::TwoPhase {
                ff_ops: u("ff_ops")?,
                budget: u("budget")?,
            }),
            "ranked_set" => Ok(TechSpec::RankedSet {
                ff_ops: u("ff_ops")?,
                replicates: u("replicates")?,
            }),
            "pgss_mav" => Ok(TechSpec::PgssMav {
                ff_ops: u("ff_ops")?,
                spacing_ops: u("spacing_ops")?,
            }),
            other => Err(format!("unknown technique kind {other:?}")),
        }
    }
}

/// One machine configuration of the grid: the default machine with the
/// overrides a design-space sweep typically varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfigSpec {
    /// `issue_width` override.
    pub issue_width: Option<u32>,
    /// `mshrs` override.
    pub mshrs: Option<u32>,
}

impl ConfigSpec {
    /// The concrete [`MachineConfig`] this spec describes.
    pub fn build(&self) -> MachineConfig {
        let mut c = MachineConfig::default();
        if let Some(w) = self.issue_width {
            c.issue_width = w;
        }
        if let Some(m) = self.mshrs {
            c.mshrs = m;
        }
        c
    }

    fn encode(&self, e: &mut Encoder) {
        let opt = |e: &mut Encoder, v: Option<u32>| {
            e.put_bool(v.is_some());
            if let Some(v) = v {
                e.put_u32(v);
            }
        };
        opt(e, self.issue_width);
        opt(e, self.mshrs);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<ConfigSpec, CodecError> {
        let opt = |d: &mut Decoder<'_>| -> Result<Option<u32>, CodecError> {
            Ok(if d.get_bool()? {
                Some(d.get_u32()?)
            } else {
                None
            })
        };
        Ok(ConfigSpec {
            issue_width: opt(d)?,
            mshrs: opt(d)?,
        })
    }

    fn from_json(v: &Value) -> Result<ConfigSpec, String> {
        let u32_field = |key: &str| -> Result<Option<u32>, String> {
            match v.get(key) {
                None => Ok(None),
                Some(x) => x
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .map(Some)
                    .ok_or_else(|| format!("config field {key:?} must be a u32")),
            }
        };
        Ok(ConfigSpec {
            issue_width: u32_field("issue_width")?,
            mshrs: u32_field("mshrs")?,
        })
    }
}

/// A validated campaign submission: the grid plus the checkpoint-ladder
/// stride its groups share.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// `(benchmark name, scale)` pairs; names must be known to
    /// [`pgss_workloads::by_name`].
    pub suite: Vec<(String, f64)>,
    /// The techniques of the grid, in submission order.
    pub techniques: Vec<TechSpec>,
    /// The machine configurations of the grid; `[ConfigSpec::default()]`
    /// when the submission omits them.
    pub configs: Vec<ConfigSpec>,
    /// Checkpoint-ladder rung stride in retired ops.
    pub stride: u64,
}

impl CampaignSpec {
    /// Parses and validates a submission's `"spec"` object.
    pub fn from_json(v: &Value) -> Result<CampaignSpec, String> {
        let suite_json = v
            .get("suite")
            .and_then(Value::as_arr)
            .ok_or("spec needs a \"suite\" array")?;
        let mut suite = Vec::new();
        for w in suite_json {
            let name = w
                .get("name")
                .and_then(Value::as_str)
                .ok_or("suite entry needs a \"name\" string")?;
            let scale = w
                .get("scale")
                .and_then(Value::as_f64)
                .ok_or("suite entry needs a numeric \"scale\"")?;
            if !(scale > 0.0 && scale.is_finite()) {
                return Err(format!("workload {name:?}: scale must be positive"));
            }
            if pgss_workloads::by_name(name, scale).is_none() {
                return Err(format!("unknown workload {name:?}"));
            }
            suite.push((name.to_string(), scale));
        }
        if suite.is_empty() {
            return Err("spec needs at least one workload".to_string());
        }
        let techs_json = v
            .get("techniques")
            .and_then(Value::as_arr)
            .ok_or("spec needs a \"techniques\" array")?;
        let techniques = techs_json
            .iter()
            .map(TechSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if techniques.is_empty() {
            return Err("spec needs at least one technique".to_string());
        }
        let configs = match v.get("configs") {
            None => vec![ConfigSpec::default()],
            Some(arr) => {
                let arr = arr.as_arr().ok_or("\"configs\" must be an array")?;
                if arr.is_empty() {
                    return Err("\"configs\" must not be empty".to_string());
                }
                arr.iter()
                    .map(ConfigSpec::from_json)
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        let stride = match v.get("stride") {
            None => 1_000_000,
            Some(s) => s.as_u64().ok_or("\"stride\" must be a positive integer")?,
        };
        if stride == 0 {
            return Err("\"stride\" must be positive".to_string());
        }
        Ok(CampaignSpec {
            suite,
            techniques,
            configs,
            stride,
        })
    }

    /// Canonical byte encoding: the digest input for job ids and the body
    /// of the durable spec record. Equal specs encode equal bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u64(self.suite.len() as u64);
        for (name, scale) in &self.suite {
            e.put_str(name);
            e.put_f64(*scale);
        }
        e.put_u64(self.techniques.len() as u64);
        for t in &self.techniques {
            t.encode(&mut e);
        }
        e.put_u64(self.configs.len() as u64);
        for c in &self.configs {
            c.encode(&mut e);
        }
        e.put_u64(self.stride);
        e.into_bytes()
    }

    /// Decodes [`CampaignSpec::encode`]'s bytes.
    pub fn decode(d: &mut Decoder<'_>) -> Result<CampaignSpec, CodecError> {
        let n = d.get_u64()?;
        if n > d.remaining() as u64 {
            return Err(CodecError::Truncated);
        }
        let mut suite = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let name = d.get_str()?;
            let scale = d.get_f64()?;
            suite.push((name, scale));
        }
        let n = d.get_u64()?;
        if n > d.remaining() as u64 {
            return Err(CodecError::Truncated);
        }
        let mut techniques = Vec::with_capacity(n as usize);
        for _ in 0..n {
            techniques.push(TechSpec::decode(d)?);
        }
        let n = d.get_u64()?;
        if n > d.remaining() as u64 {
            return Err(CodecError::Truncated);
        }
        let mut configs = Vec::with_capacity(n as usize);
        for _ in 0..n {
            configs.push(ConfigSpec::decode(d)?);
        }
        Ok(CampaignSpec {
            suite,
            techniques,
            configs,
            stride: d.get_u64()?,
        })
    }

    /// Cells in the grid: `suite × configs × techniques`.
    pub fn cell_count(&self) -> usize {
        self.suite.len() * self.configs.len() * self.techniques.len()
    }

    /// Instantiates the workloads and techniques this spec names.
    ///
    /// Fails only if a workload name became unknown between validation
    /// and materialisation — possible when a spec record written by a
    /// newer server is resumed by an older one.
    pub fn materialize(&self) -> Result<Materialized, String> {
        let mut workloads = Vec::with_capacity(self.suite.len());
        for (name, scale) in &self.suite {
            workloads.push(
                pgss_workloads::by_name(name, *scale)
                    .ok_or_else(|| format!("unknown workload {name:?}"))?,
            );
        }
        Ok(Materialized {
            workloads,
            techniques: self.techniques.iter().map(TechSpec::build).collect(),
            configs: self.configs.iter().map(ConfigSpec::build).collect(),
            stride: self.stride,
        })
    }
}

/// A spec made runnable: owned workloads, boxed techniques, concrete
/// machine configurations.
pub struct Materialized {
    /// Workloads, in suite order.
    pub workloads: Vec<Workload>,
    /// Techniques, in submission order.
    pub techniques: Vec<Box<dyn Technique + Send + Sync>>,
    /// Machine configurations, in submission order.
    pub configs: Vec<MachineConfig>,
    /// Checkpoint-ladder stride.
    pub stride: u64,
}

impl Materialized {
    /// The grid as [`pgss::Job`]s in canonical cell order: workload-major,
    /// then configuration, then technique. With one configuration this is
    /// [`pgss::campaign::grid`]'s order exactly.
    pub fn jobs(&self) -> Vec<pgss::Job<'_>> {
        let mut jobs =
            Vec::with_capacity(self.workloads.len() * self.configs.len() * self.techniques.len());
        for w in &self.workloads {
            for c in &self.configs {
                for t in &self.techniques {
                    jobs.push(pgss::Job {
                        workload: w,
                        technique: &**t,
                        config: *c,
                    });
                }
            }
        }
        jobs
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> CampaignSpec {
        let v = json::parse(
            r#"{"suite":[{"name":"164.gzip","scale":0.01},{"name":"300.twolf","scale":0.01}],
                "techniques":[{"kind":"smarts","period_ops":50000},{"kind":"pgss","ff_ops":50000,"spacing_ops":50000}],
                "stride":50000}"#,
        )
        .unwrap();
        CampaignSpec::from_json(&v).unwrap()
    }

    #[test]
    fn parses_and_roundtrips() {
        let spec = sample();
        assert_eq!(spec.cell_count(), 4);
        assert_eq!(spec.configs, vec![ConfigSpec::default()]);
        let bytes = spec.encode();
        let mut d = Decoder::new(&bytes);
        let back = CampaignSpec::decode(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(spec, back);
        assert_eq!(bytes, back.encode(), "canonical bytes are stable");
    }

    #[test]
    fn jobs_match_library_grid_order() {
        let spec = sample();
        let m = spec.materialize().unwrap();
        let jobs = m.jobs();
        assert_eq!(jobs.len(), 4);
        let techs: Vec<&(dyn Technique + Sync)> = m
            .techniques
            .iter()
            .map(|t| &**t as &(dyn Technique + Sync))
            .collect();
        let grid = pgss::campaign::grid(&m.workloads, &techs, m.configs[0]);
        for (a, b) in jobs.iter().zip(&grid) {
            assert_eq!(a.workload.name(), b.workload.name());
            assert_eq!(a.technique.name(), b.technique.name());
            assert_eq!(a.config, b.config);
        }
    }

    #[test]
    fn new_estimator_kinds_roundtrip_and_build() {
        let v = json::parse(
            r#"{"suite":[{"name":"164.gzip","scale":0.01}],
                "techniques":[{"kind":"two_phase","ff_ops":100000,"budget":40},
                              {"kind":"ranked_set","ff_ops":100000,"replicates":5},
                              {"kind":"pgss_mav","ff_ops":100000,"spacing_ops":100000}]}"#,
        )
        .unwrap();
        let spec = CampaignSpec::from_json(&v).unwrap();
        let bytes = spec.encode();
        let mut d = Decoder::new(&bytes);
        let back = CampaignSpec::decode(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(spec, back);
        let names: Vec<String> = spec.techniques.iter().map(|t| t.build().name()).collect();
        assert_eq!(
            names,
            [
                "TwoPhase(100k/b40)",
                "RankedSet(100k/r2x5)",
                "PGSS-MAV(100k/.05)"
            ]
        );
    }

    #[test]
    fn rejects_bad_specs() {
        for (doc, needle) in [
            (r#"{"techniques":[{"kind":"full"}]}"#, "suite"),
            (
                r#"{"suite":[],"techniques":[{"kind":"full"}]}"#,
                "at least one workload",
            ),
            (
                r#"{"suite":[{"name":"nope","scale":0.01}],"techniques":[{"kind":"full"}]}"#,
                "unknown workload",
            ),
            (
                r#"{"suite":[{"name":"164.gzip","scale":0.01}],"techniques":[]}"#,
                "at least one technique",
            ),
            (
                r#"{"suite":[{"name":"164.gzip","scale":0.01}],"techniques":[{"kind":"warp"}]}"#,
                "unknown technique",
            ),
            (
                r#"{"suite":[{"name":"164.gzip","scale":0.01}],"techniques":[{"kind":"full"}],"stride":0}"#,
                "stride",
            ),
            (
                r#"{"suite":[{"name":"164.gzip","scale":-1}],"techniques":[{"kind":"full"}]}"#,
                "scale",
            ),
            (
                r#"{"suite":[{"name":"164.gzip","scale":0.01}],"techniques":[{"kind":"full"}],"configs":[]}"#,
                "configs",
            ),
        ] {
            let v = json::parse(doc).unwrap();
            let err = CampaignSpec::from_json(&v).unwrap_err();
            assert!(err.contains(needle), "{doc}: {err}");
        }
    }

    #[test]
    fn config_overrides_apply() {
        let v = json::parse(
            r#"{"suite":[{"name":"164.gzip","scale":0.01}],
                "techniques":[{"kind":"full"}],
                "configs":[{"issue_width":2},{"issue_width":8,"mshrs":16}]}"#,
        )
        .unwrap();
        let spec = CampaignSpec::from_json(&v).unwrap();
        assert_eq!(spec.cell_count(), 2);
        let m = spec.materialize().unwrap();
        assert_eq!(m.configs[0].issue_width, 2);
        assert_eq!(m.configs[1].issue_width, 8);
        assert_eq!(m.configs[1].mshrs, 16);
        assert_eq!(m.configs[0].mshrs, MachineConfig::default().mshrs);
    }

    #[test]
    fn corrupt_spec_bytes_are_rejected() {
        let bytes = sample().encode();
        for cut in [0, 3, bytes.len() / 2] {
            let mut d = Decoder::new(&bytes[..cut]);
            assert!(CampaignSpec::decode(&mut d).is_err());
        }
    }
}
