//! The workload builder: kernels, segments, phase schedules, and memory
//! images.
//!
//! A workload is a *real program* in the `pgss-isa` instruction set. The
//! builder composes it from **segments** — independently-emitted code
//! regions, each instantiating one [`Kernel`] with its parameters baked in —
//! plus a **schedule**: a table in data memory listing `(segment,
//! iterations)` entries that a small dispatch loop walks at run time. Each
//! segment has its own static basic blocks, so phase structure is visible to
//! basic-block vectors exactly as it would be in compiled code.

use pgss_cpu::{Machine, MachineConfig, ReferenceMachine};
use pgss_isa::{Assembler, Cond, FpuOp, Label, Program, Reg};
use pgss_stats::DetRng;

/// Scratch/data registers reserved by the dispatch loop; kernels may use
/// `R1..=R23` freely.
mod regs {
    use pgss_isa::Reg;

    /// Iteration count handed to the segment by the dispatcher.
    pub const ITERS: Reg = Reg::R26;
    /// Schedule cursor (word address).
    pub const CURSOR: Reg = Reg::R30;
    /// Dispatch scratch.
    pub const SEG: Reg = Reg::R29;
    /// Dispatch scratch (jump-table address).
    pub const JT: Reg = Reg::R24;
}

/// One behavioural kernel; a segment instantiates a kernel with concrete
/// parameters.
///
/// The mapping from kernel parameters to microarchitectural behaviour:
/// working-set sizes against the 64 KB L1 / 1 MB L2 set memory-boundness,
/// `bias` sets branch predictability, chain/compute counts set ILP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Kernel {
    /// A streaming read-reduce loop over `region_words`, advancing
    /// `stride_words` per iteration and executing `compute_per_load`
    /// dependent ALU ops per load.
    Stream {
        /// Size of the walked region in words.
        region_words: usize,
        /// Words advanced per iteration.
        stride_words: usize,
        /// Dependent ALU operations per load.
        compute_per_load: u32,
    },
    /// `chains` independent pointer chases over a shared ring of
    /// `ring_words` (a random-cycle permutation), with
    /// `compute_per_step` ALU ops of independent work per iteration.
    Chase {
        /// Ring size in words; sets the working set.
        ring_words: usize,
        /// Independent chase chains (memory-level parallelism).
        chains: u32,
        /// Independent ALU operations per iteration.
        compute_per_step: u32,
    },
    /// Integer compute: `chains` independent dependency chains, each
    /// advanced `ops_per_chain` times per iteration.
    ComputeInt {
        /// Independent dependency chains.
        chains: u32,
        /// Ops appended to each chain per iteration.
        ops_per_chain: u32,
    },
    /// Floating-point compute: `chains` chains alternating multiply and
    /// add, `ops_per_chain` each, fed by one L1-resident load per iteration.
    ComputeFp {
        /// Independent dependency chains.
        chains: u32,
        /// Ops appended to each chain per iteration.
        ops_per_chain: u32,
    },
    /// Data-dependent branches: each iteration loads a pseudo-random word
    /// from a cycling `table_words` table and takes a branch when its low
    /// byte is below `bias` (so `bias/256` is the taken probability);
    /// `work_per_side` ALU ops run on each side.
    Branchy {
        /// Entropy table size in words.
        table_words: usize,
        /// Taken probability numerator out of 256. 128 is maximally
        /// unpredictable; 0 or 255 nearly free.
        bias: u8,
        /// ALU ops on each branch side.
        work_per_side: u32,
    },
    /// A streaming write loop over `region_words` with `stride_words`
    /// advance per iteration.
    StoreStream {
        /// Size of the written region in words.
        region_words: usize,
        /// Words advanced per iteration.
        stride_words: usize,
    },
}

/// Identifies a segment added to a [`WorkloadBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentId(usize);

/// The initial contents of data memory: sparse chunks of words.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryImage {
    chunks: Vec<(usize, Vec<i64>)>,
    /// One past the highest initialised word.
    high_water: usize,
}

impl MemoryImage {
    /// Adds a chunk at `base`.
    pub fn push(&mut self, base: usize, words: Vec<i64>) {
        self.high_water = self.high_water.max(base + words.len());
        self.chunks.push((base, words));
    }

    /// One past the highest initialised word address.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Copies the image into `memory`.
    ///
    /// # Panics
    ///
    /// Panics if any chunk extends past the end of `memory`.
    pub fn apply(&self, memory: &mut [i64]) {
        for (base, words) in &self.chunks {
            memory[*base..*base + words.len()].copy_from_slice(words);
        }
    }
}

struct Segment {
    /// Exact retired instructions per loop iteration (steady state,
    /// excluding the once-per-invocation preamble).
    ops_per_iter: u64,
    /// Retired instructions per invocation outside the loop (preamble +
    /// return jump).
    overhead_ops: u64,
    entry: Label,
}

/// Builds a [`Workload`](crate::Workload) from segments and a schedule.
///
/// # Example
///
/// ```
/// use pgss_workloads::{Kernel, WorkloadBuilder};
///
/// let mut b = WorkloadBuilder::new("toy", 42);
/// let hot = b.add_segment(Kernel::ComputeInt { chains: 4, ops_per_chain: 2 });
/// let cold = b.add_segment(Kernel::Chase { ring_words: 1 << 14, chains: 1, compute_per_step: 2 });
/// b.run(hot, 50_000);
/// b.run(cold, 50_000);
/// let w = b.finish();
/// let mut machine = w.machine();
/// let r = machine.run(pgss_cpu::Mode::Functional, u64::MAX);
/// assert!(r.halted);
/// // The schedule targets ~100k retired ops; allow 15% planning slack.
/// assert!((r.ops as f64 - 100_000.0).abs() < 15_000.0);
/// ```
pub struct WorkloadBuilder {
    name: String,
    rng: DetRng,
    segments: Vec<Segment>,
    /// `(segment, target_ops)` schedule entries.
    schedule: Vec<(SegmentId, u64)>,
    asm: Assembler,
    /// Bump allocator for data memory, in words.
    alloc_cursor: usize,
    memory: MemoryImage,
    /// Driver entry (initialises the schedule cursor once); the trampoline
    /// at address 0 jumps here. Bound in `finish`.
    driver_init: Label,
    /// Driver loop head (fetch + dispatch next schedule entry); segments
    /// jump back here. Bound in `finish`.
    driver_loop: Label,
    emitted_driver: bool,
    poison_dispatch: bool,
}

/// Words per schedule entry: `[segment, iterations, reserved, reserved]`.
const SCHED_ENTRY_WORDS: usize = 4;

impl WorkloadBuilder {
    /// Creates a builder; `seed` drives all pseudo-random initialisation
    /// (ring permutations, entropy tables), so equal seeds give bit-equal
    /// workloads.
    pub fn new(name: impl Into<String>, seed: u64) -> WorkloadBuilder {
        let mut asm = Assembler::new();
        let driver_init = asm.new_label();
        let driver_loop = asm.new_label();
        // Trampoline: execution starts at address 0, but segment code is
        // emitted before the driver, so the first instruction jumps to it.
        asm.jump(driver_init);
        WorkloadBuilder {
            name: name.into(),
            rng: DetRng::seed_from_u64(seed),
            segments: Vec::new(),
            schedule: Vec::new(),
            asm,
            // Leave a guard region at the bottom of memory.
            alloc_cursor: 64,
            memory: MemoryImage::default(),
            driver_init,
            driver_loop,
            emitted_driver: false,
            poison_dispatch: false,
        }
    }

    /// Corrupts the first schedule entry's segment index so the dispatch
    /// driver's first indirect jump targets an address far outside the
    /// program and the machine faults
    /// ([`pgss_cpu::MachineFault::IndirectJumpOutOfRange`]) instead of
    /// running.
    ///
    /// This exists for fault-path tests: it is the only way to produce a
    /// *workload* (not a hand-assembled program) whose execution aborts,
    /// which is what campaign- and driver-level tests need to prove that
    /// machine faults surface as typed errors end to end.
    pub fn poison_dispatch(&mut self) {
        self.poison_dispatch = true;
    }

    /// Reserves `words` of data memory and returns the base word address.
    fn alloc(&mut self, words: usize) -> usize {
        let base = self.alloc_cursor;
        self.alloc_cursor += words;
        base
    }

    /// Adds a segment instantiating `kernel`, emitting its code and
    /// initialising any memory it needs. Returns the id used by
    /// [`WorkloadBuilder::run`].
    pub fn add_segment(&mut self, kernel: Kernel) -> SegmentId {
        let entry = self.asm.new_label();
        self.asm.bind(entry);
        let (ops_per_iter, overhead_ops) = self.emit_kernel(&kernel);
        let id = SegmentId(self.segments.len());
        self.segments.push(Segment {
            ops_per_iter,
            overhead_ops,
            entry,
        });
        id
    }

    /// Appends a schedule entry running `segment` for approximately
    /// `target_ops` retired instructions.
    ///
    /// # Panics
    ///
    /// Panics if `segment` was not created by this builder.
    pub fn run(&mut self, segment: SegmentId, target_ops: u64) {
        assert!(
            segment.0 < self.segments.len(),
            "unknown segment {segment:?}"
        );
        self.schedule.push((segment, target_ops));
    }

    /// Appends `repeats` rounds of the given `(segment, ops)` pattern —
    /// convenient for periodic phase structure.
    pub fn alternate(&mut self, pattern: &[(SegmentId, u64)], repeats: usize) {
        for _ in 0..repeats {
            for &(seg, ops) in pattern {
                self.run(seg, ops);
            }
        }
    }

    /// The builder's RNG (for benchmark definitions that need extra
    /// deterministic randomness, e.g. irregular phase lengths).
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Emits the dispatch driver, resolves the schedule, and produces the
    /// workload.
    ///
    /// # Panics
    ///
    /// Panics if no segments were added or the schedule is empty.
    pub fn finish(mut self) -> crate::Workload {
        assert!(
            !self.segments.is_empty(),
            "workload needs at least one segment"
        );
        assert!(!self.schedule.is_empty(), "workload needs a schedule");
        assert!(!self.emitted_driver, "finish called twice");
        self.emitted_driver = true;

        // Resolve the schedule into a memory table.
        let sched_words = (self.schedule.len() + 1) * SCHED_ENTRY_WORDS;
        let sched_base = self.alloc(sched_words);
        let mut table = Vec::with_capacity(sched_words);
        let mut nominal_ops = 0u64;
        /// Retired instructions per dispatch: the driver loop body (7)
        /// plus the jump-table entry (1), measured from the emitted code
        /// below.
        const DISPATCH_OPS: u64 = 8;
        for &(seg, target_ops) in &self.schedule {
            let s = &self.segments[seg.0];
            let iters = (target_ops / s.ops_per_iter).max(1);
            table.extend_from_slice(&[seg.0 as i64, iters as i64, 0, 0]);
            nominal_ops += iters * s.ops_per_iter + s.overhead_ops + DISPATCH_OPS;
        }
        table.extend_from_slice(&[-1, 0, 0, 0]);
        if self.poison_dispatch {
            // A segment index far past the jump table; must stay positive
            // so the driver's `segment < 0 → done` check doesn't mask it.
            table[0] = 1 << 20;
        }
        self.memory.push(sched_base, table);

        // Driver: initialise the cursor once, then walk the schedule and
        // dispatch through a jump table of direct jumps.
        let asm = &mut self.asm;
        asm.bind(self.driver_init);
        let done = asm.new_label();
        asm.li(regs::CURSOR, sched_base as i64);
        asm.bind(self.driver_loop);
        asm.load(regs::SEG, regs::CURSOR, 0);
        asm.branch(Cond::Lt, regs::SEG, Reg::R0, done);
        asm.load(regs::ITERS, regs::CURSOR, 1);
        asm.addi(regs::CURSOR, regs::CURSOR, SCHED_ENTRY_WORDS as i64);
        let jt = asm.new_label();
        asm.la(regs::JT, jt);
        asm.add(regs::JT, regs::JT, regs::SEG);
        asm.jr(regs::JT);
        asm.bind(jt);
        let entries: Vec<Label> = self.segments.iter().map(|s| s.entry).collect();
        for entry in entries {
            asm.jump(entry);
        }
        asm.bind(done);
        asm.halt();

        let program = self.asm.finish().expect("workload assembly must resolve");
        crate::Workload::from_parts(
            self.name,
            program,
            self.memory,
            nominal_ops,
            self.alloc_cursor,
        )
    }
}

impl WorkloadBuilder {
    /// Emits the code for `kernel` at the current address. Returns
    /// `(ops_per_iter, overhead_ops)`.
    fn emit_kernel(&mut self, kernel: &Kernel) -> (u64, u64) {
        match *kernel {
            Kernel::Stream {
                region_words,
                stride_words,
                compute_per_load,
            } => self.emit_stream(region_words, stride_words, compute_per_load, false),
            Kernel::StoreStream {
                region_words,
                stride_words,
            } => self.emit_stream(region_words, stride_words, 0, true),
            Kernel::Chase {
                ring_words,
                chains,
                compute_per_step,
            } => self.emit_chase(ring_words, chains, compute_per_step),
            Kernel::ComputeInt {
                chains,
                ops_per_chain,
            } => self.emit_compute_int(chains, ops_per_chain),
            Kernel::ComputeFp {
                chains,
                ops_per_chain,
            } => self.emit_compute_fp(chains, ops_per_chain),
            Kernel::Branchy {
                table_words,
                bias,
                work_per_side,
            } => self.emit_branchy(table_words, bias, work_per_side),
        }
    }

    fn segment_return(&mut self) {
        let driver = self.driver_loop;
        self.asm.jump(driver);
    }

    fn emit_stream(
        &mut self,
        region_words: usize,
        stride_words: usize,
        compute: u32,
        store: bool,
    ) -> (u64, u64) {
        assert!(
            region_words > 0 && stride_words > 0,
            "stream kernel needs a non-empty region"
        );
        // Unroll factor: 8 independent loads issue before the first value is
        // consumed, exposing memory-level parallelism the way a scheduling
        // compiler (the paper's IMPACT) unrolls streaming loops. One
        // schedule "iteration" covers all 8 accesses.
        const U: usize = 8;
        assert!(
            region_words > U * stride_words,
            "stream region must exceed one unrolled group ({} words)",
            U * stride_words
        );
        let base = self.alloc(region_words);
        // Region contents: small integers (values are immaterial).
        self.memory.push(base, vec![1; region_words]);
        let asm = &mut self.asm;
        let (ptr, limit, acc, work) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
        let counter = Reg::R5;
        let lanes = [
            Reg::R8,
            Reg::R9,
            Reg::R10,
            Reg::R11,
            Reg::R12,
            Reg::R13,
            Reg::R14,
            Reg::R15,
        ];
        // Preamble: 4 ops (+1 for the return jump).
        asm.li(ptr, base as i64);
        // The wrap limit keeps every lane of the final group inside the
        // region: max access is ptr + (U-1)*stride.
        asm.li(limit, (base + region_words - (U - 1) * stride_words) as i64);
        asm.li(acc, 0);
        asm.mov(counter, regs::ITERS);
        let top = asm.bind_new_label();
        if store {
            for (u, _) in lanes.iter().enumerate() {
                asm.store(acc, ptr, (u * stride_words) as i64);
            }
        } else {
            for (u, lane) in lanes.iter().enumerate() {
                asm.load(*lane, ptr, (u * stride_words) as i64);
            }
            for lane in lanes {
                asm.add(acc, acc, lane);
            }
        }
        for k in 0..compute * U as u32 {
            // Load-independent compute overlapping the next group's misses
            // (`compute` ops per load, U loads per group).
            asm.alui(pgss_isa::AluOp::Add, work, work, i64::from(k % 7) + 1);
        }
        asm.addi(ptr, ptr, (U * stride_words) as i64);
        let no_wrap = asm.new_label();
        // The region is walked in whole groups; allocate regions as
        // multiples of the group span so the wrap test is exact.
        asm.branch(Cond::Lt, ptr, limit, no_wrap);
        asm.li(ptr, base as i64);
        asm.bind(no_wrap);
        asm.addi(counter, counter, -1);
        asm.branch(Cond::Ne, counter, Reg::R0, top);
        self.segment_return();
        let body = if store { U as u64 } else { 2 * U as u64 };
        // Steady state: body + compute + ptr advance + wrap test + counter
        // decrement + back branch. The wrap reset (`li`) executes on a small
        // minority of iterations and is excluded.
        let ops = body + u64::from(compute) * U as u64 + 4;
        (ops, 5)
    }

    fn emit_chase(&mut self, ring_words: usize, chains: u32, compute: u32) -> (u64, u64) {
        assert!(ring_words >= 2, "chase ring needs at least two nodes");
        let chains = chains.clamp(1, 4) as usize;
        let base = self.alloc(ring_words);
        // A single random cycle through all nodes, stored as absolute word
        // addresses.
        let mut order: Vec<usize> = (0..ring_words).collect();
        self.rng.shuffle(&mut order);
        let mut ring = vec![0i64; ring_words];
        for i in 0..ring_words {
            let from = order[i];
            let to = order[(i + 1) % ring_words];
            ring[from] = (base + to) as i64;
        }
        let starts: Vec<usize> = (0..chains)
            .map(|c| base + order[c * ring_words / chains])
            .collect();
        self.memory.push(base, ring);

        let asm = &mut self.asm;
        let chain_regs = [Reg::R1, Reg::R2, Reg::R3, Reg::R4];
        let (acc, counter) = (Reg::R5, Reg::R6);
        for (c, &start) in starts.iter().enumerate() {
            asm.li(chain_regs[c], start as i64);
        }
        asm.mov(counter, regs::ITERS);
        let top = asm.bind_new_label();
        for reg in chain_regs.iter().take(chains) {
            asm.load(*reg, *reg, 0);
        }
        for k in 0..compute {
            // Independent work overlapping the chase latency.
            asm.alui(pgss_isa::AluOp::Add, acc, acc, i64::from(k) + 1);
        }
        asm.addi(counter, counter, -1);
        asm.branch(Cond::Ne, counter, Reg::R0, top);
        self.segment_return();
        let ops = chains as u64 + u64::from(compute) + 2;
        (ops, chains as u64 + 2)
    }

    fn emit_compute_int(&mut self, chains: u32, ops_per_chain: u32) -> (u64, u64) {
        let chains = chains.clamp(1, 16) as usize;
        let asm = &mut self.asm;
        let counter = Reg::R20;
        asm.mov(counter, regs::ITERS);
        let top = asm.bind_new_label();
        for round in 0..ops_per_chain {
            for c in 0..chains {
                let r = Reg::from_index(1 + c).expect("chain register");
                asm.alui(pgss_isa::AluOp::Add, r, r, i64::from(round) + 1);
            }
        }
        asm.addi(counter, counter, -1);
        asm.branch(Cond::Ne, counter, Reg::R0, top);
        self.segment_return();
        (u64::from(ops_per_chain) * chains as u64 + 2, 2)
    }

    fn emit_compute_fp(&mut self, chains: u32, ops_per_chain: u32) -> (u64, u64) {
        let chains = chains.clamp(1, 14) as usize;
        // Constant pool: multiplier just above 1 and its reciprocal, so the
        // chains neither collapse to zero nor overflow.
        let pool = self.alloc(2);
        self.memory.push(
            pool,
            vec![
                1.000_000_1f64.to_bits() as i64,
                (1.0 / 1.000_000_1f64).to_bits() as i64,
            ],
        );
        let asm = &mut self.asm;
        let counter = Reg::R20;
        let addr = Reg::R21;
        let (up, down) = (Reg::R30, Reg::R31); // fp-file indices via Fpu ops
        asm.li(addr, pool as i64);
        asm.fload(up, addr, 0);
        asm.fload(down, addr, 1);
        asm.mov(counter, regs::ITERS);
        let top = asm.bind_new_label();
        for round in 0..ops_per_chain {
            // Alternate ×c and ×(1/c) so chain values stay near 1.0 forever.
            let factor = if round % 2 == 0 { up } else { down };
            for c in 0..chains {
                let r = Reg::from_index(1 + c).expect("chain register");
                asm.fpu(FpuOp::Mul, r, r, factor);
            }
        }
        asm.addi(counter, counter, -1);
        asm.branch(Cond::Ne, counter, Reg::R0, top);
        self.segment_return();
        (u64::from(ops_per_chain) * chains as u64 + 2, 5)
    }

    fn emit_branchy(&mut self, table_words: usize, bias: u8, work: u32) -> (u64, u64) {
        assert!(table_words > 0, "branchy kernel needs an entropy table");
        let base = self.alloc(table_words);
        let table: Vec<i64> = (0..table_words)
            .map(|_| self.rng.next_i64() & 0x7FFF_FFFF)
            .collect();
        self.memory.push(base, table);
        let asm = &mut self.asm;
        let (ptr, limit, v, low, acc, counter) =
            (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
        let threshold = Reg::R7;
        asm.li(ptr, base as i64);
        asm.li(limit, (base + table_words) as i64);
        asm.li(threshold, i64::from(bias));
        asm.mov(counter, regs::ITERS);
        let top = asm.bind_new_label();
        asm.load(v, ptr, 0);
        asm.addi(ptr, ptr, 1);
        let no_wrap = asm.new_label();
        asm.branch(Cond::Lt, ptr, limit, no_wrap);
        asm.li(ptr, base as i64);
        asm.bind(no_wrap);
        asm.andi(low, v, 255);
        let taken_side = asm.new_label();
        let join = asm.new_label();
        asm.branch(Cond::Lt, low, threshold, taken_side);
        for k in 0..work {
            asm.alui(pgss_isa::AluOp::Add, acc, acc, i64::from(k) + 1);
        }
        asm.jump(join);
        asm.bind(taken_side);
        for k in 0..work {
            asm.alui(pgss_isa::AluOp::Xor, acc, acc, i64::from(k) + 3);
        }
        asm.bind(join);
        asm.addi(counter, counter, -1);
        asm.branch(Cond::Ne, counter, Reg::R0, top);
        self.segment_return();
        // Steady state (taken path, no wrap): load, advance, wrap test,
        // mask, cond branch, work, counter, back branch; the not-taken path
        // additionally executes the join jump.
        let ops = 7 + u64::from(work);
        (ops, 5)
    }
}

/// Builds the machine for a finished workload (helper for
/// [`crate::Workload`]).
pub(crate) fn machine_for(
    program: &Program,
    memory: &MemoryImage,
    required_words: usize,
    config: MachineConfig,
) -> Machine {
    let mut machine = Machine::new(grown(config, required_words), program);
    memory.apply(machine.memory_mut());
    machine
}

/// Builds the reference-interpreter twin of [`machine_for`]: same grown
/// configuration, same initial memory image, so the two cores execute
/// identical programs over identical state.
pub(crate) fn reference_machine_for(
    program: &Program,
    memory: &MemoryImage,
    required_words: usize,
    config: MachineConfig,
) -> ReferenceMachine {
    let mut machine = ReferenceMachine::new(grown(config, required_words), program);
    memory.apply(machine.memory_mut());
    machine
}

fn grown(mut config: MachineConfig, required_words: usize) -> MachineConfig {
    let needed = required_words.next_power_of_two();
    if config.memory_words < needed {
        config.memory_words = needed;
    }
    config
}
