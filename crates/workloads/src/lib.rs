//! Synthetic SPEC2000-like benchmarks for the PGSS-Sim reproduction.
//!
//! The paper evaluates on ten SPEC2000 benchmarks (first reference inputs)
//! compiled with the IMPACT toolchain — a substrate that cannot be
//! redistributed or re-run here. This crate substitutes eleven synthetic
//! workloads, each a *real program* in the `pgss-isa` instruction set,
//! engineered to match the behavioural sketch the paper gives for its
//! counterpart:
//!
//! | Workload | Behavioural contract (from the paper) |
//! |---|---|
//! | `164.gzip` | fine-grained IPC oscillation that averages out at coarse sampling periods (Fig. 2); compress/huffman/window phase alternation |
//! | `177.mesa` | stable, high-IPC floating-point compute; long phases |
//! | `179.art` | very low IPC; high-frequency micro-phases of ~40–50k ops |
//! | `181.mcf` | very low IPC pointer chasing; ~40–50k-op micro-phases |
//! | `183.equake` | moderate-IPC FP streaming with periodic phase alternation |
//! | `188.ammp` | memory-bound FP; long stable phases |
//! | `197.parser` | branchy integer code; irregular phase lengths |
//! | `253.perlbmk` | many distinct phases (interpreter-like dispatch) |
//! | `256.bzip2` | block-structured phase alternation with fine-grained detail |
//! | `300.twolf` | tiny overall IPC stddev; weak coarse phases; rare short spikes |
//! | `168.wupwise` | long repetitive alternation → polymodal IPC distribution (Fig. 3) |
//!
//! Phase structure, cache behaviour, and branch behaviour are *emergent*
//! from executing the generated code over generated data (ring permutations,
//! entropy tables), not scripted: a basic-block-vector tracker watching the
//! run sees real branch addresses, and the cache hierarchy sees real address
//! streams.
//!
//! # Example
//!
//! ```
//! use pgss_cpu::Mode;
//!
//! // Tiny scale for the doctest; experiments use scale ≥ 0.25.
//! let workload = pgss_workloads::gzip(0.002);
//! let mut machine = workload.machine();
//! let result = machine.run(Mode::DetailedMeasured, u64::MAX);
//! assert!(result.halted);
//! assert!(result.ipc() > 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmarks;
mod builder;

pub use benchmarks::{
    ammp, art, by_name, bzip2, equake, gzip, mcf, mesa, parser, perlbmk, suite, twolf, wupwise,
    SUITE_NAMES,
};
pub use builder::{Kernel, MemoryImage, SegmentId, WorkloadBuilder};

use pgss_cpu::{Machine, MachineConfig, ReferenceMachine};
use pgss_isa::Program;

/// A generated benchmark: program, initial memory image, and metadata.
///
/// Construct workloads with [`WorkloadBuilder`] or the named benchmark
/// functions ([`gzip`], [`art`], …).
#[derive(Debug)]
pub struct Workload {
    name: String,
    program: Program,
    memory: MemoryImage,
    nominal_ops: u64,
    required_words: usize,
}

impl Workload {
    pub(crate) fn from_parts(
        name: String,
        program: Program,
        memory: MemoryImage,
        nominal_ops: u64,
        required_words: usize,
    ) -> Workload {
        Workload {
            name,
            program,
            memory,
            nominal_ops,
            required_words,
        }
    }

    /// The workload's name (e.g. `"164.gzip"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The generated program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The initial memory image.
    pub fn memory(&self) -> &MemoryImage {
        &self.memory
    }

    /// Planned retired-instruction count (the scheduler's target; actual
    /// executions land within a few percent).
    pub fn nominal_ops(&self) -> u64 {
        self.nominal_ops
    }

    /// Minimum data-memory size in words the workload needs.
    pub fn required_memory_words(&self) -> usize {
        self.required_words.next_power_of_two()
    }

    /// Builds a machine with the paper's default configuration (memory
    /// grown to fit) and the initial memory image applied.
    pub fn machine(&self) -> Machine {
        self.machine_with(MachineConfig::default())
    }

    /// Builds a machine with a custom configuration; `memory_words` is
    /// grown to fit the workload if needed.
    pub fn machine_with(&self, config: MachineConfig) -> Machine {
        builder::machine_for(&self.program, &self.memory, self.required_words, config)
    }

    /// Builds the reference-interpreter twin of [`Workload::machine_with`]:
    /// same grown configuration and the same initial memory image, so the
    /// two cores execute the identical workload from op 0 (the contract
    /// the differential tests and the `perf` harness rely on).
    pub fn reference_machine_with(&self, config: MachineConfig) -> ReferenceMachine {
        builder::reference_machine_for(&self.program, &self.memory, self.required_words, config)
    }
}

/// Reads the global scale factor from the `PGSS_SCALE` environment variable
/// (default `1.0`, clamped to `[0.001, 100.0]`).
///
/// All benchmark lengths are multiplied by this factor; the experiment
/// harnesses use it to trade fidelity for wall-clock time.
pub fn scale_from_env() -> f64 {
    std::env::var("PGSS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| v.is_finite())
        .map(|v| v.clamp(0.001, 100.0))
        .unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgss_cpu::Mode;

    #[test]
    fn workload_runs_to_halt_near_nominal_length() {
        let w = gzip(0.005);
        let mut m = w.machine();
        let r = m.run(Mode::Functional, u64::MAX);
        assert!(r.halted);
        let rel = (r.ops as f64 - w.nominal_ops() as f64).abs() / w.nominal_ops() as f64;
        assert!(
            rel < 0.1,
            "actual ops {} vs nominal {} (rel err {rel:.3})",
            r.ops,
            w.nominal_ops()
        );
    }

    #[test]
    fn scale_scales_length() {
        // Scales are chosen so the repetition counts round to 1 and 2.
        let small = gzip(0.1);
        let large = gzip(0.2);
        let ratio = large.nominal_ops() as f64 / small.nominal_ops() as f64;
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn machine_memory_grows_to_fit() {
        let w = art(0.004); // art has a large chase ring
        let m = w.machine();
        assert!(m.memory().len() >= w.required_memory_words());
    }

    #[test]
    fn poisoned_dispatch_faults_instead_of_running() {
        let mut b = WorkloadBuilder::new("poisoned", 7);
        let seg = b.add_segment(Kernel::ComputeInt {
            chains: 2,
            ops_per_chain: 4,
        });
        b.run(seg, 10_000);
        b.poison_dispatch();
        let w = b.finish();
        let mut m = w.machine();
        let r = m.run(Mode::Functional, u64::MAX);
        assert!(r.halted);
        assert!(
            matches!(
                m.fault(),
                Some(pgss_cpu::MachineFault::IndirectJumpOutOfRange { .. })
            ),
            "expected an out-of-range indirect jump, got {:?}",
            m.fault()
        );
    }

    #[test]
    fn deterministic_generation() {
        let a = parser(0.004);
        let b = parser(0.004);
        assert_eq!(a.program().instrs(), b.program().instrs());
        assert_eq!(a.memory(), b.memory());
    }
}
