//! The eleven named benchmarks.
//!
//! Each function builds a workload whose phase structure and
//! microarchitectural behaviour follow the sketch the paper gives for the
//! SPEC2000 benchmark of the same name (see the crate-level table). `scale`
//! multiplies the number of *pattern repetitions*, never the size of
//! individual phase intervals: the paper's phenomena live at absolute
//! granularities (40–50k-op micro-phases, 100k–10M-op sampling periods), so
//! those are preserved at every scale.

use pgss_stats::DetRng;

use crate::builder::{Kernel, WorkloadBuilder};
use crate::Workload;

/// The ten-benchmark evaluation suite of the paper, in its order.
pub const SUITE_NAMES: [&str; 10] = [
    "164.gzip",
    "177.mesa",
    "179.art",
    "181.mcf",
    "183.equake",
    "188.ammp",
    "197.parser",
    "253.perlbmk",
    "256.bzip2",
    "300.twolf",
];

/// Builds the paper's ten-benchmark suite at the given scale.
///
/// At `scale = 1.0` each benchmark retires roughly 45–60 M instructions.
pub fn suite(scale: f64) -> Vec<Workload> {
    SUITE_NAMES
        .iter()
        .map(|n| by_name(n, scale).expect("suite name"))
        .collect()
}

/// Builds a benchmark by name (any of [`SUITE_NAMES`] or `"168.wupwise"`);
/// `None` for unknown names.
pub fn by_name(name: &str, scale: f64) -> Option<Workload> {
    match name {
        "164.gzip" => Some(gzip(scale)),
        "177.mesa" => Some(mesa(scale)),
        "179.art" => Some(art(scale)),
        "181.mcf" => Some(mcf(scale)),
        "183.equake" => Some(equake(scale)),
        "188.ammp" => Some(ammp(scale)),
        "197.parser" => Some(parser(scale)),
        "253.perlbmk" => Some(perlbmk(scale)),
        "256.bzip2" => Some(bzip2(scale)),
        "300.twolf" => Some(twolf(scale)),
        "168.wupwise" => Some(wupwise(scale)),
        _ => None,
    }
}

fn reps(base: f64, scale: f64) -> usize {
    (base * scale).round().max(1.0) as usize
}

/// Deterministic ±7% jitter on a phase-interval target. Real programs'
/// phase lengths are not round multiples of sampling periods; without
/// jitter, interval-synchronised samplers would systematically land on
/// phase-transition transients, a measurement artifact no real benchmark
/// exhibits.
fn jit(rng: &mut DetRng, ops: u64) -> u64 {
    let f = 0.93 + rng.next_f64() * 0.14;
    (ops as f64 * f) as u64
}

const K: u64 = 1_000;
const M: u64 = 1_000_000;

/// `164.gzip`: compress/decompress block structure. Fine-grained (≈450k-op
/// period) oscillation between branchy deflate and high-ILP Huffman coding,
/// punctuated by window-copy streaming — visible at 100k-op sampling,
/// averaged away at 10M (Fig. 2).
pub fn gzip(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("164.gzip", 0x67_7A_69_70);
    let deflate = b.add_segment(Kernel::Branchy {
        table_words: 4096,
        bias: 96,
        work_per_side: 3,
    });
    let huffman = b.add_segment(Kernel::ComputeInt {
        chains: 4,
        ops_per_chain: 3,
    });
    let window = b.add_segment(Kernel::Stream {
        region_words: 512 * 1024, // 4 MiB: overflows the 1 MiB L2
        stride_words: 8,
        compute_per_load: 2,
    });
    for _ in 0..reps(10.0, scale) {
        for _ in 0..8 {
            let d = jit(b.rng(), 300 * K);
            b.run(deflate, d);
            let h = jit(b.rng(), 150 * K);
            b.run(huffman, h);
        }
        let wl = jit(b.rng(), 2 * M);
        b.run(window, wl);
    }
    b.finish()
}

/// `177.mesa`: stable high-IPC floating-point rendering with long phases
/// and an L1-resident texture walk.
pub fn mesa(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("177.mesa", 0x6D_65_73_61);
    let shader = b.add_segment(Kernel::ComputeFp {
        chains: 12,
        ops_per_chain: 2,
    });
    let texture = b.add_segment(Kernel::Stream {
        region_words: 6 * 1024, // 48 KiB: L1-resident
        stride_words: 1,
        compute_per_load: 1,
    });
    for _ in 0..reps(6.0, scale) {
        let sh = jit(b.rng(), 6 * M);
        b.run(shader, sh);
        let tx = jit(b.rng(), 2 * M);
        b.run(texture, tx);
    }
    b.finish()
}

/// `179.art`: neural-network simulation. Very low IPC (8 MiB chase ring)
/// with ~45k-op micro-phases against short FP bursts, inside two longer
/// alternating super-phases (scan vs. train).
pub fn art(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("179.art", 0x61_72_74);
    let scan = b.add_segment(Kernel::Chase {
        ring_words: 1024 * 1024, // 8 MiB
        chains: 2,
        compute_per_step: 4,
    });
    let match_fp = b.add_segment(Kernel::ComputeFp {
        chains: 1,
        ops_per_chain: 6,
    });
    let train = b.add_segment(Kernel::Chase {
        ring_words: 96 * 1024, // 768 KiB: mostly L2-resident
        chains: 2,
        compute_per_step: 2,
    });
    for _ in 0..reps(5.0, scale) {
        for _ in 0..110 {
            let sc = jit(b.rng(), 25 * K);
            b.run(scan, sc);
            let mf = jit(b.rng(), 20 * K);
            b.run(match_fp, mf);
        }
        for _ in 0..110 {
            let tr = jit(b.rng(), 30 * K);
            b.run(train, tr);
            let mf = jit(b.rng(), 15 * K);
            b.run(match_fp, mf);
        }
    }
    b.finish()
}

/// `181.mcf`: minimum-cost flow. The lowest IPC of the suite: a 16 MiB
/// pointer chase in ~46k-op micro-alternation with unpredictable pricing
/// branches, plus a longer pricing sweep every hundred pairs.
pub fn mcf(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("181.mcf", 0x6D_63_66);
    let spntree = b.add_segment(Kernel::Chase {
        ring_words: 2 * 1024 * 1024, // 16 MiB
        chains: 2,
        compute_per_step: 3,
    });
    let price = b.add_segment(Kernel::Branchy {
        table_words: 256 * 1024, // 2 MiB table: streams through the L2
        bias: 128,
        work_per_side: 1,
    });
    for _ in 0..reps(10.0, scale) {
        for _ in 0..100 {
            let sp = jit(b.rng(), 28 * K);
            b.run(spntree, sp);
            let pr = jit(b.rng(), 18 * K);
            b.run(price, pr);
        }
        let pr = jit(b.rng(), 500 * K);
        b.run(price, pr);
    }
    b.finish()
}

/// `183.equake`: earthquake FEM. Sparse-matrix assembly (line-strided,
/// memory-bound) alternating with FP solve and an L2-resident smoothing
/// pass; clean ~8M-op periodic phase structure.
pub fn equake(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("183.equake", 0x65_71_6B);
    let assemble = b.add_segment(Kernel::Stream {
        region_words: 256 * 1024, // 2 MiB
        stride_words: 8,
        compute_per_load: 3,
    });
    let solve = b.add_segment(Kernel::ComputeFp {
        chains: 6,
        ops_per_chain: 3,
    });
    let smooth = b.add_segment(Kernel::Stream {
        region_words: 16 * 1024, // 128 KiB
        stride_words: 1,
        compute_per_load: 2,
    });
    for _ in 0..reps(6.0, scale) {
        let a = jit(b.rng(), 3 * M);
        b.run(assemble, a);
        let so = jit(b.rng(), 4 * M);
        b.run(solve, so);
        let sm = jit(b.rng(), M);
        b.run(smooth, sm);
    }
    b.finish()
}

/// `188.ammp`: molecular dynamics. Memory-bound force computation over an
/// 8 MiB neighbour structure in long (10M-op) stable phases with short
/// FP integration bursts.
pub fn ammp(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("188.ammp", 0x61_6D_70);
    let forces = b.add_segment(Kernel::Stream {
        region_words: 1024 * 1024, // 8 MiB
        stride_words: 8,
        compute_per_load: 5,
    });
    let update = b.add_segment(Kernel::ComputeFp {
        chains: 4,
        ops_per_chain: 4,
    });
    for _ in 0..reps(4.0, scale) {
        let f = jit(b.rng(), 10 * M);
        b.run(forces, f);
        let u = jit(b.rng(), 2 * M);
        b.run(update, u);
    }
    b.finish()
}

/// `197.parser`: link-grammar parsing. Branchy dictionary walks with
/// *irregular* phase lengths (2–4M ops, pseudo-randomly drawn), cycling
/// through dictionary lookup, parse, and packing phases.
pub fn parser(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("197.parser", 0x70_61_72);
    let dict = b.add_segment(Kernel::Chase {
        ring_words: 64 * 1024, // 512 KiB: L2-resident
        chains: 2,
        compute_per_step: 3,
    });
    let parse = b.add_segment(Kernel::Branchy {
        table_words: 2048,
        bias: 110,
        work_per_side: 2,
    });
    let pack = b.add_segment(Kernel::ComputeInt {
        chains: 3,
        ops_per_chain: 3,
    });
    let segs = [dict, parse, pack];
    for i in 0..reps(16.0, scale) {
        let len = 2 * M + b.rng().range_u64(2 * M);
        b.run(segs[i % 3], len);
    }
    b.finish()
}

/// `253.perlbmk`: interpreter. Six distinct behaviours (dispatch, hashing,
/// regex scan, GC chase, string writes, numeric FP) visited in a seeded
/// random walk of 200k-op steps — many phases, frequent transitions.
pub fn perlbmk(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("253.perlbmk", 0x70_65_72);
    let interp = b.add_segment(Kernel::Branchy {
        table_words: 4096,
        bias: 128,
        work_per_side: 1,
    });
    let hashes = b.add_segment(Kernel::ComputeInt {
        chains: 2,
        ops_per_chain: 5,
    });
    let regex = b.add_segment(Kernel::Stream {
        region_words: 32 * 1024,
        stride_words: 1,
        compute_per_load: 3,
    });
    let gc = b.add_segment(Kernel::Chase {
        ring_words: 128 * 1024, // 1 MiB: right at L2 capacity
        chains: 2,
        compute_per_step: 2,
    });
    let strings = b.add_segment(Kernel::StoreStream {
        region_words: 64 * 1024,
        stride_words: 1,
    });
    let numeric = b.add_segment(Kernel::ComputeFp {
        chains: 5,
        ops_per_chain: 2,
    });
    let segs = [interp, hashes, regex, gc, strings, numeric];
    // Dispatch is the home phase; others are excursions.
    let weights = [4usize, 2, 2, 2, 1, 2];
    let total: usize = weights.iter().sum();
    for _ in 0..reps(260.0, scale) {
        let mut pick = b.rng().range_usize(total);
        let mut chosen = segs[0];
        for (s, &w) in segs.iter().zip(&weights) {
            if pick < w {
                chosen = *s;
                break;
            }
            pick -= w;
        }
        b.run(chosen, 200 * K);
    }
    b.finish()
}

/// `256.bzip2`: block compression. Burrows–Wheeler sorting (branchy +
/// cache-hostile chase in ~250k-op alternation), then Huffman coding, then
/// run-length streaming — a crisp block-phase structure with fine detail
/// inside the sort phase.
pub fn bzip2(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("256.bzip2", 0x0062_7A32);
    let sort_cmp = b.add_segment(Kernel::Branchy {
        table_words: 8192,
        bias: 128,
        work_per_side: 2,
    });
    let sort_move = b.add_segment(Kernel::Chase {
        ring_words: 512 * 1024, // 4 MiB
        chains: 2,
        compute_per_step: 2,
    });
    let huff = b.add_segment(Kernel::ComputeInt {
        chains: 4,
        ops_per_chain: 4,
    });
    let rle = b.add_segment(Kernel::Stream {
        region_words: 128 * 1024,
        stride_words: 1,
        compute_per_load: 1,
    });
    for _ in 0..reps(10.0, scale) {
        for _ in 0..10 {
            let sc = jit(b.rng(), 150 * K);
            b.run(sort_cmp, sc);
            let sm = jit(b.rng(), 100 * K);
            b.run(sort_move, sm);
        }
        let h = jit(b.rng(), 1500 * K);
        b.run(huff, h);
        let r = jit(b.rng(), M);
        b.run(rle, r);
    }
    b.finish()
}

/// `300.twolf`: place-and-route. Deliberately *weak* phase behaviour: two
/// nearly-identical annealing segments dominate (tiny overall IPC stddev),
/// with rare, short (50–60k-op) spikes of abnormally low or high
/// performance at fine granularity — the paper's Fig. 10 case study.
pub fn twolf(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("300.twolf", 0x74_77_66);
    let place_a = b.add_segment(Kernel::Branchy {
        table_words: 1024,
        bias: 64,
        work_per_side: 3,
    });
    let place_b = b.add_segment(Kernel::Branchy {
        table_words: 1024,
        bias: 72,
        work_per_side: 3,
    });
    let spike_lo = b.add_segment(Kernel::StoreStream {
        region_words: 512 * 1024, // 4 MiB: misses everywhere
        stride_words: 8,
    });
    let spike_hi = b.add_segment(Kernel::ComputeInt {
        chains: 6,
        ops_per_chain: 4,
    });
    for r in 0..reps(22.0, scale) {
        let pa = jit(b.rng(), M);
        b.run(place_a, pa);
        let lo = jit(b.rng(), 60 * K);
        b.run(spike_lo, lo);
        let pb = jit(b.rng(), M);
        b.run(place_b, pb);
        if r % 4 == 3 {
            let hi = jit(b.rng(), 50 * K);
            b.run(spike_hi, hi);
        }
    }
    b.finish()
}

/// `168.wupwise`: lattice QCD. Long, strictly repetitive alternation
/// between high-IPC ZGEMM-like FP compute and memory-bound ZAXPY-like
/// streaming — the polymodal IPC distribution of Fig. 3.
pub fn wupwise(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("168.wupwise", 0x77_75_70);
    let zgemm = b.add_segment(Kernel::ComputeFp {
        chains: 10,
        ops_per_chain: 2,
    });
    let zaxpy = b.add_segment(Kernel::Stream {
        region_words: 512 * 1024, // 4 MiB
        stride_words: 8,
        compute_per_load: 2,
    });
    for _ in 0..reps(6.0, scale) {
        let g = jit(b.rng(), 4 * M);
        b.run(zgemm, g);
        let z = jit(b.rng(), 4 * M);
        b.run(zaxpy, z);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgss_cpu::Mode;

    #[test]
    fn suite_has_papers_ten_benchmarks() {
        let s = suite(0.002);
        assert_eq!(s.len(), 10);
        for (w, name) in s.iter().zip(SUITE_NAMES) {
            assert_eq!(w.name(), name);
        }
    }

    #[test]
    fn by_name_roundtrip_and_unknown() {
        assert_eq!(by_name("179.art", 0.002).unwrap().name(), "179.art");
        assert_eq!(by_name("168.wupwise", 0.002).unwrap().name(), "168.wupwise");
        assert!(by_name("999.nope", 1.0).is_none());
    }

    #[test]
    fn every_benchmark_halts_at_tiny_scale() {
        for name in SUITE_NAMES.iter().chain(["168.wupwise"].iter()) {
            let w = by_name(name, 0.002).unwrap();
            let mut m = w.machine();
            let r = m.run(Mode::Functional, w.nominal_ops() * 2);
            assert!(r.halted, "{name} did not halt within 2x nominal ops");
        }
    }

    #[test]
    fn benchmarks_have_distinct_performance_profiles() {
        // mesa (compute) must be much faster than mcf (pointer chase), with
        // art also near the bottom — the suite-wide IPC ordering the paper
        // relies on.
        let ipc = |name: &str| {
            let w = by_name(name, 0.002).unwrap();
            let mut m = w.machine();
            let r = m.run(Mode::DetailedMeasured, u64::MAX);
            r.ipc()
        };
        let mesa_ipc = ipc("177.mesa");
        let mcf_ipc = ipc("181.mcf");
        let art_ipc = ipc("179.art");
        assert!(mesa_ipc > 1.5, "mesa IPC {mesa_ipc}");
        assert!(mcf_ipc < 0.6, "mcf IPC {mcf_ipc}");
        assert!(art_ipc < 0.9, "art IPC {art_ipc}");
        assert!(mesa_ipc > 3.0 * mcf_ipc);
    }
}
