//! Campaign observability harness: runs the fixed-configuration technique
//! grid behind Figures 12/13 under a metrics-recording campaign and prints
//! the per-cell detail-budget table — how much cycle-level simulation each
//! technique bought its accuracy with — plus the campaign-scope summary.
//!
//! With `--jsonl <path>` the full [`pgss::MetricsReport`] is exported as
//! JSON Lines (schema `pgss::METRICS_SCHEMA_VERSION`). The export is
//! byte-identical across reruns and `PGSS_WORKERS` settings, so it can be
//! diffed or checked into an experiment log.
//!
//! ```text
//! cargo run --release -p pgss-bench --bin campaign_metrics -- --jsonl metrics.jsonl
//! ```

use pgss::{
    campaign, OnlineSimPoint, PgssSim, RankedSet, Signature, SimPointOffline, Smarts, Technique,
    TurboSmarts, TwoPhaseStratified,
};
use pgss_bench::{banner, ops_fmt, pct, suite, Table};
use pgss_cpu::MachineConfig;

fn main() {
    banner("campaign metrics", "per-cell detail budgets + JSONL export");
    let jsonl_path = jsonl_arg();

    let smarts = Smarts {
        period_ops: 100_000,
        ..Smarts::default()
    };
    let turbo = TurboSmarts {
        smarts,
        ..TurboSmarts::default()
    };
    let simpoint = SimPointOffline {
        interval_ops: 1_000_000,
        k: 10,
        ..SimPointOffline::default()
    };
    let olsp = OnlineSimPoint::new();
    let pgss = PgssSim::new();
    let two_phase = TwoPhaseStratified::default();
    let ranked = RankedSet::default();
    let pgss_mav = PgssSim {
        signature: Signature::Mav,
        ..PgssSim::default()
    };
    let techs: Vec<&(dyn Technique + Sync)> = vec![
        &smarts, &turbo, &simpoint, &olsp, &pgss, &two_phase, &ranked, &pgss_mav,
    ];

    let workloads = suite();
    let jobs = campaign::grid(&workloads, &techs, MachineConfig::default());
    eprintln!(
        "running {} campaign cells (checkpoint-accelerated) ...",
        jobs.len()
    );
    let store = pgss_bench::checkpoint_store();
    // Resolve PGSS_WORKERS once, here at the CLI boundary; the library
    // itself never reads the environment.
    let config = pgss::CampaignConfig::with_workers(campaign::worker_threads());
    let report = match campaign::run_checkpointed_with(&jobs, 1_000_000, store.as_ref(), &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign failed to run: {e}");
            std::process::exit(1);
        }
    };
    if !report.is_complete() {
        eprintln!("{}", report.ledger());
        std::process::exit(1);
    }

    // Per-cell detail budgets, straight from the metric scopes (the same
    // numbers the JSONL export carries). Scope 0 is the campaign; cells
    // follow in job order.
    let mut table = Table::new(&[
        "benchmark",
        "technique",
        "detail ops",
        "detail share",
        "samples",
        "IPC",
        "95% ±",
    ]);
    for (cell, (_, frame)) in report.cells.iter().zip(&report.metrics.scopes[1..]) {
        let detail = frame.counter("cell.ops.warm") + frame.counter("cell.ops.detail");
        let total =
            detail + frame.counter("cell.ops.fast_forward") + frame.counter("cell.ops.functional");
        table.row(&[
            cell.workload.clone(),
            cell.technique.clone(),
            ops_fmt(detail),
            pct(detail as f64 / total.max(1) as f64),
            frame.counter("cell.samples").to_string(),
            format!("{:.4}", cell.estimate.ipc),
            cell.estimate
                .ci
                .map_or_else(|| "-".to_string(), |ci| format!("{:.4}", ci.half_width)),
        ]);
    }
    table.print();

    // Per-mode interpreter throughput: driver.ops.* counters over the
    // driver.wall.* span totals, folded across every cell. Wall-clock
    // derived, so this block is informative and machine-dependent — it
    // never enters the byte-stable JSONL export.
    let mut folded = pgss_obs::MetricsFrame::new();
    for (_, frame) in &report.metrics.scopes[1..] {
        folded.merge(frame);
    }
    let mut tput = Table::new(&["mode", "ops", "wall s", "Mops/s"]);
    for (label, ops_key, wall_key) in [
        (
            "fast-forward",
            "driver.ops.fast_forward",
            "driver.wall.fast_forward",
        ),
        (
            "functional",
            "driver.ops.functional",
            "driver.wall.functional",
        ),
        ("detail-warm", "driver.ops.warm", "driver.wall.warm"),
        ("detail-measured", "driver.ops.detail", "driver.wall.detail"),
    ] {
        let mut ops = folded.counter(ops_key);
        if ops_key == "driver.ops.functional" {
            // Ladder jumps charge skipped distance as *logical* functional
            // ops; physical throughput counts only executed work.
            ops = ops.saturating_sub(folded.counter("driver.ops.jumped"));
        }
        if ops == 0 {
            continue;
        }
        let wall_ns = folded.span(wall_key).map_or(0, |s| s.total_ns);
        let rate = (wall_ns > 0).then(|| ops as f64 * 1e9 / wall_ns as f64);
        tput.row(&[
            label.to_string(),
            ops_fmt(ops),
            format!("{:.2}", wall_ns as f64 / 1e9),
            rate.map_or_else(|| "-".to_string(), |r| format!("{:.1}", r / 1e6)),
        ]);
    }
    println!();
    println!("interpreter throughput by mode (driver.ops.* / driver.wall.*):");
    tput.print();

    let scope = report
        .metrics
        .scope("campaign")
        .expect("campaign scope always present");
    println!();
    println!(
        "campaign: {} jobs in {} groups, {} ok / {} failed, {} retries",
        scope.counter("campaign.jobs"),
        scope.counter("campaign.groups"),
        scope.counter("campaign.cells.ok"),
        scope.counter("campaign.cells.failed"),
        scope.counter("campaign.retries"),
    );
    println!(
        "checkpoints: {} jumps skipped {} ops (executed {}, capture {}); store {} hits / {} misses",
        scope.counter("ckpt.ladder.jumps"),
        ops_fmt(scope.counter("ckpt.ladder.skipped_ops")),
        ops_fmt(scope.counter("ckpt.ladder.executed_ops")),
        ops_fmt(scope.counter("ckpt.ladder.capture_ops")),
        scope.counter("ckpt.store.hit"),
        scope.counter("ckpt.store.miss"),
    );
    if let Some(share) = scope.dists.get("campaign.detail_share") {
        println!(
            "detail share across cells: mean {} (std {})",
            pct(share.mean()),
            pct(share.sample_stddev()),
        );
    }
    if let Some(span) = scope.span("campaign.run") {
        println!("wall time: {:.2} s", span.total_ns as f64 / 1e9);
    }

    if let Some(path) = jsonl_path {
        let jsonl = report.metrics.to_jsonl();
        if let Err(e) = std::fs::write(&path, &jsonl) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote {} metric scopes to {path}",
            report.metrics.scopes.len()
        );
    }
}

/// Parses `--jsonl <path>` from the command line, if present.
fn jsonl_arg() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--jsonl" {
            match args.next() {
                Some(path) => return Some(path),
                None => {
                    eprintln!("--jsonl needs a path argument");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}
