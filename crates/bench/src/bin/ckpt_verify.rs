//! `ckpt_verify`: offline self-healing pass over the on-disk caches.
//!
//! ```text
//! cargo run --release -p pgss-bench --bin ckpt_verify
//! ```
//!
//! Scans the ground-truth cache (`target/pgss_truth_cache/`) and the
//! shared checkpoint store (`target/pgss_ckpt_store/`), validating every
//! record's framing and checksum. Invalid files — torn writes, bit rot,
//! stale format versions, foreign files, leftover temp files — are moved
//! (never deleted) into each store's `quarantine/` sidecar, so the next
//! campaign recomputes them cleanly. Campaigns heal lazily on read
//! anyway; this tool just does the whole sweep up front and shows what it
//! found.
//!
//! Exit status: 0 when every surviving record is healthy (including when
//! repairs were made), 1 on I/O failure.

fn main() {
    let reports = match pgss_bench::verify_caches() {
        Ok(reports) => reports,
        Err(e) => {
            eprintln!("ckpt_verify: cannot scan stores: {e}");
            std::process::exit(1);
        }
    };
    if reports.is_empty() {
        println!("no on-disk caches found (nothing has been cached yet)");
        return;
    }
    for (dir, report) in &reports {
        println!(
            "{}: {} records checked, {} healthy, {} quarantined",
            dir.display(),
            report.checked,
            report.healthy,
            report.quarantined.len()
        );
        for q in &report.quarantined {
            match q.key {
                Some(key) => println!(
                    "  quarantined record {key:016x}: {} -> {}",
                    q.fault,
                    q.path.display()
                ),
                None => println!(
                    "  quarantined foreign file ({}): {}",
                    q.fault,
                    q.path.display()
                ),
            }
        }
    }
    let repaired: usize = reports.iter().map(|(_, r)| r.quarantined.len()).sum();
    if repaired > 0 {
        println!("{repaired} invalid file(s) quarantined; stores are healthy again");
    }
}
