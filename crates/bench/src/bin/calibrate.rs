//! Calibration utility: per-benchmark IPC profile and simulator throughput.
//!
//! Run with `cargo run --release -p pgss-bench --bin calibrate [scale]`.
//! Prints, for every workload: overall IPC (detailed), per-100k-op IPC mean
//! and stddev, phase-visible IPC range, and functional/detailed simulation
//! rates on this host — the numbers used to sanity-check that each synthetic
//! benchmark matches its behavioural contract (see `pgss-workloads`).

use std::time::Instant;

use pgss_cpu::Mode;
use pgss_stats::Welford;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    println!("calibrating at scale {scale}");
    println!(
        "{:<14} {:>8} {:>7} {:>7} {:>7} {:>7} {:>9} {:>9} {:>9}",
        "benchmark", "Mops", "IPC", "ipc100k", "sd100k", "cv", "min", "max", "Mops/s(f)"
    );
    let names: Vec<&str> = pgss_workloads::SUITE_NAMES
        .iter()
        .copied()
        .chain(["168.wupwise"])
        .collect();
    for name in names {
        let w = pgss_workloads::by_name(name, scale).expect("name");

        // Functional rate.
        let mut m = w.machine();
        let t0 = Instant::now();
        let r = m.run(Mode::Functional, u64::MAX);
        let func_rate = r.ops as f64 / t0.elapsed().as_secs_f64() / 1e6;
        let total_ops = r.ops;

        // Detailed pass with per-100k IPC.
        let mut m = w.machine();
        let t0 = Instant::now();
        let mut per100k = Welford::new();
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut cycles = 0u64;
        let mut ops = 0u64;
        loop {
            let r = m.run(Mode::DetailedMeasured, 100_000);
            if r.ops == 0 {
                break;
            }
            cycles += r.cycles;
            ops += r.ops;
            if r.ops == 100_000 {
                let ipc = r.ipc();
                per100k.push(ipc);
                min = min.min(ipc);
                max = max.max(ipc);
            }
            if r.halted {
                break;
            }
        }
        let det_rate = ops as f64 / t0.elapsed().as_secs_f64() / 1e6;
        let overall = ops as f64 / cycles as f64;
        println!(
            "{:<14} {:>8.1} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>9.3} {:>9.3} {:>6.1}/{:.1}",
            name,
            total_ops as f64 / 1e6,
            overall,
            per100k.mean(),
            per100k.population_stddev(),
            per100k.coefficient_of_variation(),
            min,
            max,
            func_rate,
            det_rate,
        );
    }
}
