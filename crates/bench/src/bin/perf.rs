//! Interpreter performance harness: times the decoded superblock core
//! ([`pgss_cpu::Machine`]) against the retained per-op reference
//! interpreter ([`pgss_cpu::ReferenceMachine`]) on the paper suite, per
//! simulation mode, and writes one schema-pinned `BENCH_<name>.json`
//! trajectory file per workload.
//!
//! Both cores run in the *same invocation* on the same programs, so the
//! reported speedups are same-machine, same-build ratios — the number the
//! CI ratchet (`scripts/ci.sh`, `scripts/perf-baseline.txt`) enforces for
//! functional mode. Wall times are real time and machine-dependent; the
//! JSON files are trajectories for local comparison, not byte-stable
//! artifacts (which is why they are `BENCH_*.json`, not checked-in
//! goldens).
//!
//! ```text
//! cargo run --release -p pgss-bench --bin perf -- [--smoke] [--out DIR]
//! ```
//!
//! `--smoke` shrinks the run (two workloads, fewer ops, fewer trials) for
//! CI gating; `--out DIR` redirects the JSON files (default: current
//! directory).

use std::fmt::Write as _;
use std::time::Instant;

use pgss_bench::{banner, ops_fmt, suite, Table};
use pgss_cpu::{MachineConfig, Mode};
use pgss_workloads::Workload;

/// Version pinning the `BENCH_*.json` layout. Bump deliberately when a
/// field changes meaning; `scripts/ci.sh` validates it.
const PERF_SCHEMA_VERSION: u64 = 1;

/// One timed mode on one workload: per-trial wall times for both cores
/// over the same op budget.
struct ModeRun {
    mode: &'static str,
    ops: u64,
    decoded_ns: Vec<u64>,
    reference_ns: Vec<u64>,
}

impl ModeRun {
    /// Best-trial throughput in ops/sec for the decoded core.
    fn decoded_rate(&self) -> f64 {
        rate(self.ops, &self.decoded_ns)
    }

    /// Best-trial throughput in ops/sec for the reference core.
    fn reference_rate(&self) -> f64 {
        rate(self.ops, &self.reference_ns)
    }

    /// Decoded-over-reference speedup (best trial each).
    fn speedup(&self) -> f64 {
        self.decoded_rate() / self.reference_rate()
    }
}

/// Best-trial (minimum wall time) rate; trials are never empty.
fn rate(ops: u64, wall_ns: &[u64]) -> f64 {
    let best = wall_ns.iter().copied().min().expect("at least one trial");
    ops as f64 * 1e9 / best.max(1) as f64
}

fn main() {
    let cfg = parse_args();
    banner(
        "perf",
        "decoded superblock core vs per-op reference interpreter",
    );
    let machine_cfg = MachineConfig::default();
    let workloads = suite();
    let workloads: Vec<&Workload> = if cfg.smoke {
        workloads.iter().take(2).collect()
    } else {
        workloads.iter().collect()
    };

    let modes = [
        ("fast_forward", Mode::FastForward),
        ("functional", Mode::Functional),
        ("detailed", Mode::DetailedMeasured),
    ];

    let mut table = Table::new(&[
        "benchmark",
        "mode",
        "ops",
        "decoded Mops/s",
        "reference Mops/s",
        "speedup",
    ]);
    let mut functional_speedups = Vec::new();
    for w in &workloads {
        let mut runs = Vec::new();
        for &(label, mode) in &modes {
            let max_ops = if cfg.smoke { 400_000 } else { 4_000_000 };
            let mut run = ModeRun {
                mode: label,
                ops: 0,
                decoded_ns: Vec::new(),
                reference_ns: Vec::new(),
            };
            for _ in 0..cfg.trials {
                // Fresh machines per trial: both cores execute the
                // identical instruction stream from op 0.
                let mut m = w.machine_with(machine_cfg);
                let t = Instant::now();
                let r = m.run(mode, max_ops);
                run.decoded_ns.push(t.elapsed().as_nanos() as u64);
                run.ops = r.ops;

                let mut reference = w.reference_machine_with(machine_cfg);
                let t = Instant::now();
                let rr = reference.run(mode, max_ops);
                run.reference_ns.push(t.elapsed().as_nanos() as u64);
                assert_eq!(
                    r.ops, rr.ops,
                    "cores disagree on retired ops — timing is meaningless"
                );
                assert_eq!(
                    m.pc(),
                    reference.pc(),
                    "cores diverged — timing is meaningless"
                );
            }
            table.row(&[
                w.name().to_string(),
                label.to_string(),
                ops_fmt(run.ops),
                format!("{:.1}", run.decoded_rate() / 1e6),
                format!("{:.1}", run.reference_rate() / 1e6),
                format!("{:.2}x", run.speedup()),
            ]);
            if label == "functional" {
                functional_speedups.push(run.speedup());
            }
            runs.push(run);
        }
        let path = format!("{}/BENCH_{}.json", cfg.out_dir, w.name());
        if let Err(e) = std::fs::write(&path, render_json(w.name(), &runs)) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    table.print();

    // Geometric mean: ratios multiply, so their mean must too.
    let geomean = (functional_speedups.iter().map(|s| s.ln()).sum::<f64>()
        / functional_speedups.len() as f64)
        .exp();
    println!();
    println!(
        "functional-mode speedup (geomean over {} workloads): {geomean:.2}x",
        functional_speedups.len()
    );
}

/// Renders one workload's `BENCH_<name>.json`: schema version, identity,
/// and the per-mode trial trajectories (nanosecond wall times in trial
/// order) plus derived best-trial rates.
fn render_json(name: &str, runs: &[ModeRun]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":{PERF_SCHEMA_VERSION},\"name\":\"{name}\",\"modes\":["
    );
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"mode\":\"{}\",\"ops\":{},\"decoded_wall_ns\":{:?},\"reference_wall_ns\":{:?},\"decoded_ops_per_sec\":{:.1},\"reference_ops_per_sec\":{:.1},\"speedup\":{:.4}}}",
            r.mode,
            r.ops,
            r.decoded_ns,
            r.reference_ns,
            r.decoded_rate(),
            r.reference_rate(),
            r.speedup(),
        );
    }
    out.push_str("]}\n");
    out
}

struct Config {
    smoke: bool,
    trials: u32,
    out_dir: String,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        smoke: false,
        trials: 3,
        out_dir: ".".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => {
                cfg.smoke = true;
                cfg.trials = 2;
            }
            "--out" => match args.next() {
                Some(dir) => cfg.out_dir = dir,
                None => {
                    eprintln!("--out needs a directory argument");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument {other:?} (expected --smoke / --out DIR)");
                std::process::exit(2);
            }
        }
    }
    cfg
}
