//! Shared infrastructure for the experiment harnesses that regenerate every
//! figure of the PGSS-Sim paper.
//!
//! Each figure is a `harness = false` bench target (`cargo bench -p
//! pgss-bench --bench fig11_pgss_sweep`, etc.) printing the figure's
//! rows/series as aligned text. This crate holds what they share: the
//! scaled parameter sets, a plain-text table printer, and a ground-truth
//! cache (full detailed simulation is the expensive common denominator, so
//! results are memoised on disk keyed by workload identity and scale).
//!
//! # Parameter scaling
//!
//! The paper's benchmarks run for hundreds of billions of instructions; the
//! synthetic suite defaults to ~50 M per benchmark (`PGSS_SCALE` multiplies
//! this). Parameters that interact with *absolute* program granularity keep
//! the paper's values — PGSS BBV periods {100k, 1M, 10M}, detailed sample
//! 1,000 + 3,000 warming, 1M-op spacing rule, thresholds {.05–.25}π —
//! while parameters that only set *statistical mass* are rescaled and
//! labelled in each harness: the SMARTS period becomes 100k (≈500 samples
//! per benchmark instead of the paper's ~100,000) and SimPoint interval
//! sizes become {100k, 1M} with {5, 10, 20} clusters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::PathBuf;

use pgss::{FullDetailed, GroundTruth};
use pgss_ckpt::{fnv1a64, Decoder, Encoder, Store};
use pgss_workloads::Workload;

/// The global scale factor (`PGSS_SCALE`, default 1.0).
pub fn scale() -> f64 {
    pgss_workloads::scale_from_env()
}

/// The paper's ten-benchmark suite at the global scale.
pub fn suite() -> Vec<Workload> {
    pgss_workloads::suite(scale())
}

/// Ground truth for `workload`, memoised in the checksummed record store
/// at `target/pgss_truth_cache/` (the same [`pgss_ckpt::Store`] format the
/// checkpoint subsystem uses) so repeated bench targets skip the full
/// detailed pass. The cache key hashes the workload's name, nominal
/// length, and the scale, so regenerating workloads invalidates stale
/// entries.
///
/// Concurrency-safe for parallel campaigns: each entry is one record,
/// written atomically (write-then-rename); torn, corrupt, or
/// stale-version records read as absent and are recomputed, never served.
/// Simulation is deterministic, so racing writers always store identical
/// payloads and any complete record wins.
pub fn cached_ground_truth(workload: &Workload) -> GroundTruth {
    let key = truth_key(workload);
    let store = truth_store();
    if let Some(truth) = store
        .as_ref()
        .ok()
        .and_then(|s| s.get(key))
        .and_then(|payload| decode_truth(&payload))
    {
        return truth;
    }
    let truth = FullDetailed::new().ground_truth(workload);
    if let Ok(store) = store {
        let _ = store.put(key, &encode_truth(&truth));
    }
    truth
}

/// Opens the ground-truth record store (shared format with the checkpoint
/// store).
fn truth_store() -> std::io::Result<Store> {
    Store::open(cache_path())
}

/// The cache key for a workload: a hash of its identity and the scale.
/// Public so store-GC callers can mark truth-cache entries as liveness
/// roots when a truth cache shares a store with other records.
pub fn truth_key(workload: &Workload) -> u64 {
    let mut e = Encoder::new();
    e.put_str("pgss-truth-v1");
    e.put_str(workload.name());
    e.put_u64(workload.nominal_ops());
    e.put_f64(scale());
    fnv1a64(&e.into_bytes())
}

fn encode_truth(truth: &GroundTruth) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_f64(truth.ipc);
    e.put_u64(truth.total_ops);
    e.put_u64(truth.cycles);
    e.into_bytes()
}

/// Decodes a cached ground-truth payload; malformed payloads (e.g. from
/// an older encoding) read as absent.
fn decode_truth(payload: &[u8]) -> Option<GroundTruth> {
    let mut d = Decoder::new(payload);
    let truth = GroundTruth {
        ipc: d.get_f64().ok()?,
        total_ops: d.get_u64().ok()?,
        cycles: d.get_u64().ok()?,
    };
    d.finish().ok()?;
    Some(truth)
}

/// Collects the consecutive-interval (ΔBBV, ΔIPC) sets behind Figures 7–9:
/// one detailed pass per suite benchmark at `period_ops`, hashed-BBV
/// tracking attached, deltas normalised per benchmark.
pub fn suite_deltas(period_ops: u64) -> Vec<(String, Vec<pgss::analysis::Delta>)> {
    let cfg = pgss_cpu::MachineConfig::default();
    suite()
        .iter()
        .map(|w| {
            let profile = pgss::analysis::interval_profile(w, &cfg, period_ops, 1);
            (w.name().to_string(), pgss::analysis::deltas(&profile))
        })
        .collect()
}

fn target_dir() -> PathBuf {
    // CARGO_TARGET_DIR is not set by default; fall back to the workspace's
    // target/. Anchor to the workspace root (two levels above this crate's
    // manifest) rather than the current directory: cargo runs bench
    // binaries with cwd = the crate directory but bins with cwd = the
    // invocation directory, and a cwd-relative path would give them
    // different caches.
    std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .map(|root| root.join("target"))
                .unwrap_or_else(|| PathBuf::from("target"))
        })
}

fn cache_path() -> PathBuf {
    target_dir().join("pgss_truth_cache")
}

/// The shared on-disk checkpoint store (`target/pgss_ckpt_store/`), so
/// repeated checkpoint-accelerated campaigns reuse captured ladders
/// across bench invocations. `None` when the directory cannot be created
/// — campaigns then fall back to in-memory capture.
pub fn checkpoint_store() -> Option<Store> {
    Store::open(target_dir().join("pgss_ckpt_store")).ok()
}

/// Health-checks every on-disk cache this crate maintains (the
/// ground-truth cache and the shared checkpoint store), quarantining any
/// corrupt, stale, or foreign files into each store's `quarantine/`
/// sidecar. Returns one `(store directory, report)` pair per store that
/// exists on disk; stores that were never created are skipped.
///
/// Quarantining is the *repair*: invalid records are preserved for
/// inspection but moved out of the read path, so the next campaign or
/// bench run recomputes and re-stores them instead of tripping over them.
pub fn verify_caches() -> std::io::Result<Vec<(PathBuf, pgss_ckpt::VerifyReport)>> {
    let mut out = Vec::new();
    for dir in [cache_path(), target_dir().join("pgss_ckpt_store")] {
        if dir.is_dir() {
            let report = Store::open(&dir)?.verify_all()?;
            out.push((dir, report));
        }
    }
    Ok(out)
}

/// A fixed-width plain-text table printer for figure output.
///
/// # Example
///
/// ```
/// let mut t = pgss_bench::Table::new(&["benchmark", "error %"]);
/// t.row(&["164.gzip".to_string(), format!("{:.2}", 1.234)]);
/// let s = t.render();
/// assert!(s.contains("164.gzip"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "  {cell:>w$}");
                }
            }
            out.push('\n');
        };
        render_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats an op count compactly (`1.5M`, `320k`, `64`).
pub fn ops_fmt(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.0}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Prints the standard harness banner: figure id, scale, and a one-line
/// description.
pub fn banner(figure: &str, what: &str) {
    println!("==============================================================");
    println!("{figure}: {what}");
    println!("scale = {} (set PGSS_SCALE to change)", scale());
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["name", "v"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].chars().collect::<Vec<_>>().len(), lines[0].len());
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.123456), "12.35%");
        assert_eq!(ops_fmt(42), "42");
        assert_eq!(ops_fmt(320_000), "320k");
        assert_eq!(ops_fmt(15_000_000), "15.0M");
    }

    #[test]
    fn truth_cache_roundtrip() {
        let w = pgss_workloads::twolf(0.002);
        // Note: uses the real cache store; the second call must hit it and
        // agree exactly.
        let a = cached_ground_truth(&w);
        let b = cached_ground_truth(&w);
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(a.ipc, b.ipc);
        // The record really is in the shared store format.
        let stored = truth_store().unwrap().get(truth_key(&w)).unwrap();
        assert_eq!(decode_truth(&stored), Some(a));
    }

    #[test]
    fn truth_cache_recovers_from_injected_corruption() {
        use std::fs;
        let w = pgss_workloads::mesa(0.002);
        let truth = cached_ground_truth(&w);
        let store = truth_store().unwrap();
        let path = store.path_for(truth_key(&w));
        let good = fs::read(&path).unwrap();

        // Torn write: record cut mid-payload.
        fs::write(&path, &good[..good.len() - 4]).unwrap();
        assert_eq!(store.get(truth_key(&w)), None);
        assert_eq!(cached_ground_truth(&w), truth);

        // Outright garbage where the record should be.
        fs::write(&path, b"this is not a record").unwrap();
        assert_eq!(cached_ground_truth(&w), truth);

        // Stale format version: reads as absent, then self-heals.
        let mut stale = fs::read(&path).unwrap();
        stale[8] = stale[8].wrapping_add(1);
        fs::write(&path, &stale).unwrap();
        assert_eq!(store.get(truth_key(&w)), None);
        assert_eq!(cached_ground_truth(&w), truth);
        assert!(store.get(truth_key(&w)).is_some(), "record did not heal");
    }

    #[test]
    fn truth_cache_concurrent_callers_agree() {
        let w = pgss_workloads::gzip(0.002);
        let results: Vec<GroundTruth> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| cached_ground_truth(&w)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &results[1..] {
            assert_eq!(*r, results[0]);
        }
        // And the stored record still parses cleanly afterwards.
        let stored = truth_store().unwrap().get(truth_key(&w)).unwrap();
        assert_eq!(decode_truth(&stored), Some(results[0]));
    }

    #[test]
    fn truth_key_separates_workloads() {
        let a = truth_key(&pgss_workloads::gzip(0.1));
        let b = truth_key(&pgss_workloads::mesa(0.1));
        // Tiny scales clamp to the same repetition count; these differ.
        let c = truth_key(&pgss_workloads::gzip(0.3));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
