//! Shared infrastructure for the experiment harnesses that regenerate every
//! figure of the PGSS-Sim paper.
//!
//! Each figure is a `harness = false` bench target (`cargo bench -p
//! pgss-bench --bench fig11_pgss_sweep`, etc.) printing the figure's
//! rows/series as aligned text. This crate holds what they share: the
//! scaled parameter sets, a plain-text table printer, and a ground-truth
//! cache (full detailed simulation is the expensive common denominator, so
//! results are memoised on disk keyed by workload identity and scale).
//!
//! # Parameter scaling
//!
//! The paper's benchmarks run for hundreds of billions of instructions; the
//! synthetic suite defaults to ~50 M per benchmark (`PGSS_SCALE` multiplies
//! this). Parameters that interact with *absolute* program granularity keep
//! the paper's values — PGSS BBV periods {100k, 1M, 10M}, detailed sample
//! 1,000 + 3,000 warming, 1M-op spacing rule, thresholds {.05–.25}π —
//! while parameters that only set *statistical mass* are rescaled and
//! labelled in each harness: the SMARTS period becomes 100k (≈500 samples
//! per benchmark instead of the paper's ~100,000) and SimPoint interval
//! sizes become {100k, 1M} with {5, 10, 20} clusters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use pgss::{FullDetailed, GroundTruth};
use pgss_workloads::Workload;

/// The global scale factor (`PGSS_SCALE`, default 1.0).
pub fn scale() -> f64 {
    pgss_workloads::scale_from_env()
}

/// The paper's ten-benchmark suite at the global scale.
pub fn suite() -> Vec<Workload> {
    pgss_workloads::suite(scale())
}

/// Ground truth for `workload`, memoised in
/// `target/pgss_truth_cache.txt` so repeated bench targets skip the full
/// detailed pass. The cache key includes the workload's name, nominal
/// length, and the scale, so regenerating workloads invalidates stale
/// entries.
///
/// Concurrency-safe for parallel campaigns: entries are *appended* (never
/// read-modify-written, which used to lose entries when two harnesses
/// raced), unparseable lines — e.g. a line torn by an interrupted writer —
/// are skipped, and duplicate keys are deduplicated on read. Simulation is
/// deterministic, so duplicate entries for a key always carry the same
/// values and the first valid one wins.
pub fn cached_ground_truth(workload: &Workload) -> GroundTruth {
    let key = format!("{} {} {}", workload.name(), workload.nominal_ops(), scale());
    let path = cache_path();
    if let Some(truth) = read_cache(&path, &key) {
        return truth;
    }
    let truth = FullDetailed::new().ground_truth(workload);
    let _ = fs::create_dir_all(path.parent().expect("cache path has a parent"));
    if let Ok(mut file) = fs::OpenOptions::new().create(true).append(true).open(&path) {
        use std::io::Write as _;
        let _ = writeln!(
            file,
            "{key}|{}|{}|{}",
            truth.ipc, truth.total_ops, truth.cycles
        );
    }
    truth
}

/// First valid entry for `key`, skipping unparseable or foreign lines.
fn read_cache(path: &std::path::Path, key: &str) -> Option<GroundTruth> {
    let text = fs::read_to_string(path).ok()?;
    text.lines().find_map(|line| {
        let mut parts = line.split('|');
        let (k, ipc, ops, cycles) = (parts.next()?, parts.next()?, parts.next()?, parts.next()?);
        if k != key {
            return None;
        }
        Some(GroundTruth {
            ipc: ipc.parse().ok()?,
            total_ops: ops.parse().ok()?,
            cycles: cycles.parse().ok()?,
        })
    })
}

/// Collects the consecutive-interval (ΔBBV, ΔIPC) sets behind Figures 7–9:
/// one detailed pass per suite benchmark at `period_ops`, hashed-BBV
/// tracking attached, deltas normalised per benchmark.
pub fn suite_deltas(period_ops: u64) -> Vec<(String, Vec<pgss::analysis::Delta>)> {
    let cfg = pgss_cpu::MachineConfig::default();
    suite()
        .iter()
        .map(|w| {
            let profile = pgss::analysis::interval_profile(w, &cfg, period_ops, 1);
            (w.name().to_string(), pgss::analysis::deltas(&profile))
        })
        .collect()
}

fn cache_path() -> PathBuf {
    // CARGO_TARGET_DIR is not set by default; fall back to ./target.
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"));
    target.join("pgss_truth_cache.txt")
}

/// A fixed-width plain-text table printer for figure output.
///
/// # Example
///
/// ```
/// let mut t = pgss_bench::Table::new(&["benchmark", "error %"]);
/// t.row(&["164.gzip".to_string(), format!("{:.2}", 1.234)]);
/// let s = t.render();
/// assert!(s.contains("164.gzip"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "  {cell:>w$}");
                }
            }
            out.push('\n');
        };
        render_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats an op count compactly (`1.5M`, `320k`, `64`).
pub fn ops_fmt(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.0}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Prints the standard harness banner: figure id, scale, and a one-line
/// description.
pub fn banner(figure: &str, what: &str) {
    println!("==============================================================");
    println!("{figure}: {what}");
    println!("scale = {} (set PGSS_SCALE to change)", scale());
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["name", "v"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].chars().collect::<Vec<_>>().len(), lines[0].len());
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.123456), "12.35%");
        assert_eq!(ops_fmt(42), "42");
        assert_eq!(ops_fmt(320_000), "320k");
        assert_eq!(ops_fmt(15_000_000), "15.0M");
    }

    #[test]
    fn truth_cache_roundtrip() {
        let w = pgss_workloads::twolf(0.002);
        // Note: uses the real cache file; the second call must hit it and
        // agree exactly.
        let a = cached_ground_truth(&w);
        let b = cached_ground_truth(&w);
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(a.ipc, b.ipc);
    }

    #[test]
    fn truth_cache_tolerates_garbage_lines() {
        let path = cache_path();
        let _ = fs::create_dir_all(path.parent().unwrap());
        {
            use std::io::Write as _;
            let mut f = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .unwrap();
            // A torn line from an interrupted writer, and outright garbage.
            writeln!(f, "half|an|entry").unwrap();
            writeln!(f, "not a cache line at all").unwrap();
            writeln!(f, "bad parse|x|y|z").unwrap();
        }
        let w = pgss_workloads::mesa(0.002);
        let a = cached_ground_truth(&w);
        let b = cached_ground_truth(&w);
        assert_eq!(a, b);
    }

    #[test]
    fn truth_cache_concurrent_callers_agree() {
        let w = pgss_workloads::gzip(0.002);
        let results: Vec<GroundTruth> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| cached_ground_truth(&w)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &results[1..] {
            assert_eq!(*r, results[0]);
        }
        // And the file still parses cleanly afterwards.
        assert_eq!(Some(results[0]), read_cache(&cache_path(), &cache_key(&w)));
    }

    fn cache_key(w: &Workload) -> String {
        format!("{} {} {}", w.name(), w.nominal_ops(), scale())
    }
}
