//! Criterion micro-benchmarks for the simulator's per-mode throughput and
//! the BBV-tracking overhead — the measured inputs to Figure 13.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pgss_bbv::{BbvHash, HashedBbvTracker};
use pgss_cpu::{MachineConfig, Mode};

fn bench_modes(c: &mut Criterion) {
    let cfg = MachineConfig::default();
    let ops_per_iter: u64 = 200_000;
    let mut group = c.benchmark_group("simulation_rate");
    group.throughput(Throughput::Elements(ops_per_iter));
    group.sample_size(20);

    for (mode, name) in [
        (Mode::FastForward, "fast_forward"),
        (Mode::Functional, "functional"),
        (Mode::DetailedWarming, "detailed_warming"),
        (Mode::DetailedMeasured, "detailed_measured"),
    ] {
        for with_bbv in [false, true] {
            let label = if with_bbv { format!("{name}+bbv") } else { name.to_string() };
            // A long-lived machine; each iteration advances it further.
            // gzip at a small scale regenerates cheaply per benchmark id.
            let workload = pgss_workloads::gzip(2.0);
            let mut machine = workload.machine_with(cfg);
            let mut tracker = HashedBbvTracker::new(BbvHash::from_seed(1));
            group.bench_function(BenchmarkId::new("mode", label), |b| {
                b.iter(|| {
                    if machine.halted() {
                        machine = workload.machine_with(cfg);
                    }
                    if with_bbv {
                        machine.run_with(mode, ops_per_iter, &mut tracker)
                    } else {
                        machine.run(mode, ops_per_iter)
                    }
                });
            });
        }
    }
    group.finish();
}

fn bench_bbv_math(c: &mut Criterion) {
    use pgss_bbv::HashedBbv;
    let mut a = HashedBbv::new();
    let mut b = HashedBbv::new();
    for i in 0..32 {
        a.record(i, (i as u64 + 3) * 17);
        b.record(i, (i as u64 + 5) * 13);
    }
    c.bench_function("hashed_bbv_angle", |bencher| {
        bencher.iter(|| std::hint::black_box(&a).angle(std::hint::black_box(&b)))
    });
}

criterion_group!(benches, bench_modes, bench_bbv_math);
criterion_main!(benches);
