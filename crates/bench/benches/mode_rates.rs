//! Self-timed micro-benchmarks for the simulator's per-mode throughput and
//! the BBV-tracking overhead — the measured inputs to Figure 13.

use std::time::Instant;

use pgss_bbv::{BbvHash, HashedBbv, HashedBbvTracker};
use pgss_bench::Table;
use pgss_cpu::{MachineConfig, Mode};

const OPS_PER_ITER: u64 = 200_000;
const ITERS: u32 = 20;

/// Median ops/s over `ITERS` timed runs of `ops` simulated instructions.
fn rate(mut step: impl FnMut() -> u64) -> f64 {
    let mut rates: Vec<f64> = (0..ITERS)
        .map(|_| {
            let start = Instant::now();
            let ops = step();
            ops as f64 / start.elapsed().as_secs_f64().max(1e-12)
        })
        .collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    rates[rates.len() / 2]
}

fn main() {
    pgss_bench::banner(
        "mode_rates",
        "per-mode simulation throughput (median of 20 runs)",
    );
    let cfg = MachineConfig::default();
    let mut table = Table::new(&["mode", "Mops/s", "Mops/s +bbv", "bbv overhead"]);

    for (mode, name) in [
        (Mode::FastForward, "fast_forward"),
        (Mode::Functional, "functional"),
        (Mode::DetailedWarming, "detailed_warming"),
        (Mode::DetailedMeasured, "detailed_measured"),
    ] {
        let mut rates = [0.0f64; 2];
        for (slot, with_bbv) in [false, true].into_iter().enumerate() {
            // A long-lived machine; each iteration advances it further.
            // gzip at a small scale regenerates cheaply per configuration.
            let workload = pgss_workloads::gzip(2.0);
            let mut machine = workload.machine_with(cfg);
            let mut tracker = HashedBbvTracker::new(BbvHash::from_seed(1));
            rates[slot] = rate(|| {
                if machine.halted() {
                    machine = workload.machine_with(cfg);
                }
                let r = if with_bbv {
                    machine.run_with(mode, OPS_PER_ITER, &mut tracker)
                } else {
                    machine.run(mode, OPS_PER_ITER)
                };
                r.ops.max(1)
            });
        }
        table.row(&[
            name.to_string(),
            format!("{:.2}", rates[0] / 1e6),
            format!("{:.2}", rates[1] / 1e6),
            format!("{:.1}%", (rates[0] / rates[1] - 1.0) * 100.0),
        ]);
    }
    table.print();

    // BBV angle math: nanoseconds per 32-dimension angle computation.
    let mut a = HashedBbv::new();
    let mut b = HashedBbv::new();
    for i in 0..32 {
        a.record(i, (i as u64 + 3) * 17);
        b.record(i, (i as u64 + 5) * 13);
    }
    let reps = 100_000u32;
    let mut best = f64::INFINITY;
    for _ in 0..ITERS {
        let start = Instant::now();
        let mut acc = 0.0;
        for _ in 0..reps {
            acc += std::hint::black_box(&a).angle(std::hint::black_box(&b));
        }
        std::hint::black_box(acc);
        best = best.min(start.elapsed().as_secs_f64() / f64::from(reps));
    }
    println!("hashed_bbv_angle: {:.1} ns/op", best * 1e9);
}
