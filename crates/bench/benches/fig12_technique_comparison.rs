//! Figure 12: sampling error and amount of detailed simulation for every
//! technique, across the ten benchmarks, with A-Mean/G-Mean columns.
//!
//! Per the paper, SimPoint/Online-SimPoint/PGSS are shown both at their
//! per-benchmark best configuration and at one fixed best-overall
//! configuration. Parameter grids are rescaled to the synthetic suite's
//! ~50M-op benchmarks (see `pgss-bench` crate docs): SMARTS period 100k,
//! SimPoint intervals {100k, 1M} × k {5, 10, 20}, Online SimPoint
//! intervals {100k, 1M} × thresholds {.05, .10}π, PGSS periods
//! {100k, 1M, 10M} × thresholds {.05 … .25}π.

use pgss::{
    Estimate, GroundTruth, OnlineSimPoint, PgssSim, SimPointOffline, Smarts, Technique,
    TurboSmarts,
};
use pgss_bench::{banner, cached_ground_truth, ops_fmt, pct, suite, Table};
use pgss_cpu::MachineConfig;
use pgss_workloads::Workload;

/// One column of the figure: a named strategy producing an estimate.
struct Column {
    name: &'static str,
    run: Box<dyn Fn(&Workload, &GroundTruth) -> Estimate>,
}

fn main() {
    banner("Figure 12", "error and detailed-simulation cost per technique");
    let cfg = MachineConfig::default();

    let smarts = Smarts { period_ops: 100_000, ..Smarts::default() };
    let columns: Vec<Column> = vec![
        Column { name: "SMARTS", run: Box::new(move |w, _| smarts.run(w)) },
        Column {
            name: "TurboSMARTS",
            run: Box::new(move |w, _| TurboSmarts { smarts, ..TurboSmarts::default() }.run(w)),
        },
        Column {
            name: "SimPoint(best)",
            run: Box::new(|w, t| {
                best_of(
                    [100_000u64, 1_000_000]
                        .iter()
                        .flat_map(|&i| {
                            [5usize, 10, 20].iter().map(move |&k| SimPointOffline {
                                interval_ops: i,
                                k,
                                ..SimPointOffline::default()
                            })
                        })
                        .map(|sp| sp.run(w))
                        .collect(),
                    t,
                )
            }),
        },
        Column {
            name: "SimPoint(10x1M)",
            run: Box::new(|w, _| {
                SimPointOffline { interval_ops: 1_000_000, k: 10, ..SimPointOffline::default() }
                    .run(w)
            }),
        },
        Column {
            name: "OLSimPoint(best)",
            run: Box::new(|w, t| {
                best_of(
                    [100_000u64, 1_000_000]
                        .iter()
                        .flat_map(|&i| {
                            [0.05, 0.10].iter().map(move |&th| OnlineSimPoint {
                                interval_ops: i,
                                threshold_rad: pgss::threshold(th),
                                ..OnlineSimPoint::default()
                            })
                        })
                        .map(|o| o.run(w))
                        .collect(),
                    t,
                )
            }),
        },
        Column {
            name: "OLSimPoint(1M/.10)",
            run: Box::new(|w, _| OnlineSimPoint::new().run(w)),
        },
        Column {
            name: "PGSS(best)",
            run: Box::new(|w, t| {
                best_of(
                    [100_000u64, 1_000_000, 10_000_000]
                        .iter()
                        .flat_map(|&p| {
                            [0.05, 0.10, 0.15, 0.20, 0.25]
                                .iter()
                                .map(move |&th| PgssSim::with_params(p, th))
                        })
                        .map(|p| p.run(w))
                        .collect(),
                    t,
                )
            }),
        },
        Column { name: "PGSS(1M/.05)", run: Box::new(|w, _| PgssSim::new().run(w)) },
    ];

    let workloads = suite();
    let truths: Vec<_> = workloads.iter().map(cached_ground_truth).collect();
    let _ = cfg;

    // results[column][benchmark]
    let mut errors: Vec<Vec<f64>> = vec![Vec::new(); columns.len()];
    let mut detailed: Vec<Vec<u64>> = vec![Vec::new(); columns.len()];
    for (w, t) in workloads.iter().zip(&truths) {
        eprintln!("running {} ...", w.name());
        for (c, col) in columns.iter().enumerate() {
            let est = (col.run)(w, t);
            errors[c].push(est.error_vs(t));
            detailed[c].push(est.detailed_ops());
        }
    }

    let mut header: Vec<String> = vec!["technique".into()];
    header.extend(workloads.iter().map(|w| w.name().to_string()));
    header.push("A-Mean".into());
    header.push("G-Mean".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    println!("\nSampling error (percent of benchmark IPC):");
    let mut t1 = Table::new(&header_refs);
    for (c, col) in columns.iter().enumerate() {
        let mut row = vec![col.name.to_string()];
        row.extend(errors[c].iter().map(|&e| pct(e)));
        row.push(pct(pgss_stats::amean(&errors[c]).unwrap()));
        row.push(pct(pgss_stats::gmean(&errors[c]).unwrap()));
        t1.row(&row);
    }
    t1.print();

    println!("\nAmount of detailed simulation (instructions):");
    let mut t2 = Table::new(&header_refs);
    for (c, col) in columns.iter().enumerate() {
        let mut row = vec![col.name.to_string()];
        row.extend(detailed[c].iter().map(|&d| ops_fmt(d)));
        let mean = detailed[c].iter().sum::<u64>() / detailed[c].len() as u64;
        let gmean =
            pgss_stats::gmean(&detailed[c].iter().map(|&d| d as f64).collect::<Vec<_>>()).unwrap();
        row.push(ops_fmt(mean));
        row.push(ops_fmt(gmean as u64));
        t2.row(&row);
    }
    t2.print();

    // The paper's headline ratios.
    let mean_det = |c: usize| detailed[c].iter().sum::<u64>() as f64 / detailed[c].len() as f64;
    let pgss_fixed = columns.len() - 1;
    println!("\ndetailed-simulation ratios vs PGSS(1M/.05):");
    for (c, col) in columns.iter().enumerate() {
        if c != pgss_fixed {
            println!("  {:<18} {:>8.1}x", col.name, mean_det(c) / mean_det(pgss_fixed));
        }
    }
    println!("\nExpected shape (paper): SMARTS and SimPoint most accurate;");
    println!("PGSS slightly worse but better than TurboSMARTS; PGSS uses ~an");
    println!("order of magnitude less detailed simulation than SMARTS and 2-3");
    println!("orders less than SimPoint variants.");
}

fn best_of(results: Vec<Estimate>, truth: &GroundTruth) -> Estimate {
    results
        .into_iter()
        .min_by(|a, b| a.error_vs(truth).partial_cmp(&b.error_vs(truth)).expect("finite errors"))
        .expect("at least one configuration")
}
