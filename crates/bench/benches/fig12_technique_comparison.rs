//! Figure 12: sampling error and amount of detailed simulation for every
//! technique, across the ten benchmarks, with A-Mean/G-Mean columns.
//!
//! Per the paper, SimPoint/Online-SimPoint/PGSS are shown both at their
//! per-benchmark best configuration and at one fixed best-overall
//! configuration. Parameter grids are rescaled to the synthetic suite's
//! ~50M-op benchmarks (see `pgss-bench` crate docs): SMARTS period 100k,
//! SimPoint intervals {100k, 1M} × k {5, 10, 20}, Online SimPoint
//! intervals {100k, 1M} × thresholds {.05, .10}π, PGSS periods
//! {100k, 1M, 10M} × thresholds {.05 … .25}π.
//!
//! Every (benchmark × configuration) cell is one campaign job, so the whole
//! figure fans out across the host's cores via [`pgss::campaign`]; the
//! "best" columns then pick per benchmark among their sweep's cells.

use std::ops::Range;

use pgss::{
    campaign, OnlineSimPoint, PgssSim, RankedSet, Signature, SimPointOffline, Smarts, Technique,
    TurboSmarts, TwoPhaseStratified,
};
use pgss_bench::{banner, cached_ground_truth, ops_fmt, pct, suite, Table};
use pgss_cpu::MachineConfig;

/// One column of the figure: a fixed configuration, or the per-benchmark
/// best of a sweep range (indices into the technique list).
struct Column {
    name: &'static str,
    select: Range<usize>,
}

fn main() {
    banner(
        "Figure 12",
        "error and detailed-simulation cost per technique",
    );
    let cfg = MachineConfig::default();

    let smarts = Smarts {
        period_ops: 100_000,
        ..Smarts::default()
    };
    let turbo = TurboSmarts {
        smarts,
        ..TurboSmarts::default()
    };
    let simpoints: Vec<SimPointOffline> = [100_000u64, 1_000_000]
        .iter()
        .flat_map(|&i| {
            [5usize, 10, 20].iter().map(move |&k| SimPointOffline {
                interval_ops: i,
                k,
                ..SimPointOffline::default()
            })
        })
        .collect();
    let olsps: Vec<OnlineSimPoint> = [100_000u64, 1_000_000]
        .iter()
        .flat_map(|&i| {
            [0.05, 0.10].iter().map(move |&th| OnlineSimPoint {
                interval_ops: i,
                threshold_rad: pgss::threshold(th),
                ..OnlineSimPoint::default()
            })
        })
        .collect();
    let pgsss: Vec<PgssSim> = [100_000u64, 1_000_000, 10_000_000]
        .iter()
        .flat_map(|&p| {
            [0.05, 0.10, 0.15, 0.20, 0.25]
                .iter()
                .map(move |&th| PgssSim::with_params(p, th))
        })
        .collect();

    // The PR-8 estimators at their defaults, plus PGSS on the MAV
    // signature — one cell each, compared against the sweeps' best.
    let two_phase = TwoPhaseStratified::default();
    let ranked = RankedSet::default();
    let pgss_mav = PgssSim {
        signature: Signature::Mav,
        ..PgssSim::default()
    };

    let mut techs: Vec<&(dyn Technique + Sync)> = vec![&smarts, &turbo];
    let sp_start = techs.len();
    techs.extend(simpoints.iter().map(|t| t as &(dyn Technique + Sync)));
    let sp_range = sp_start..techs.len();
    let olsp_start = techs.len();
    techs.extend(olsps.iter().map(|t| t as &(dyn Technique + Sync)));
    let olsp_range = olsp_start..techs.len();
    let pgss_start = techs.len();
    techs.extend(pgsss.iter().map(|t| t as &(dyn Technique + Sync)));
    let pgss_range = pgss_start..techs.len();
    let extra_start = techs.len();
    techs.push(&two_phase);
    techs.push(&ranked);
    techs.push(&pgss_mav);
    // The fixed best-overall configurations are members of their sweeps.
    let index_of = |range: &Range<usize>, name: &str| {
        range
            .clone()
            .find(|&i| techs[i].name() == name)
            .expect("fixed config is in its sweep")
    };
    let sp_fixed = index_of(
        &sp_range,
        &SimPointOffline {
            interval_ops: 1_000_000,
            k: 10,
            ..SimPointOffline::default()
        }
        .name(),
    );
    let olsp_fixed = index_of(&olsp_range, &OnlineSimPoint::new().name());
    let pgss_fixed = index_of(&pgss_range, &PgssSim::new().name());

    let columns: Vec<Column> = vec![
        Column {
            name: "SMARTS",
            select: 0..1,
        },
        Column {
            name: "TurboSMARTS",
            select: 1..2,
        },
        Column {
            name: "SimPoint(best)",
            select: sp_range,
        },
        Column {
            name: "SimPoint(10x1M)",
            select: sp_fixed..sp_fixed + 1,
        },
        Column {
            name: "OLSimPoint(best)",
            select: olsp_range,
        },
        Column {
            name: "OLSimPoint(1M/.10)",
            select: olsp_fixed..olsp_fixed + 1,
        },
        Column {
            name: "PGSS(best)",
            select: pgss_range,
        },
        Column {
            name: "PGSS(1M/.05)",
            select: pgss_fixed..pgss_fixed + 1,
        },
        Column {
            name: "TwoPhase(1M/b60)",
            select: extra_start..extra_start + 1,
        },
        Column {
            name: "RankedSet(1M/r2x5)",
            select: extra_start + 1..extra_start + 2,
        },
        Column {
            name: "PGSS-MAV(1M/.05)",
            select: extra_start + 2..extra_start + 3,
        },
    ];

    let workloads = suite();
    let truths: Vec<_> = workloads.iter().map(cached_ground_truth).collect();

    eprintln!(
        "running {} campaign cells (checkpoint-accelerated) ...",
        workloads.len() * techs.len()
    );
    let jobs = campaign::grid(&workloads, &techs, cfg);
    // Checkpoint-accelerated: each benchmark's functional fast-forward
    // prefix is captured once (or restored from the on-disk store) and
    // every cell jumps through it instead of re-executing it.
    let store = pgss_bench::checkpoint_store();
    // PGSS_WORKERS is resolved here at the harness boundary; the
    // library takes an explicit worker count.
    let config = pgss::CampaignConfig::with_workers(campaign::worker_threads());
    let campaign_report =
        match campaign::run_checkpointed_with(&jobs, 1_000_000, store.as_ref(), &config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fig12 campaign failed to run: {e}");
                std::process::exit(1);
            }
        };
    for fault in &campaign_report.checkpoint_faults {
        eprintln!("checkpoint fault healed: {fault}");
    }
    let report = campaign_report.ladder;
    // The campaign-scope metrics summarize where the figure's time went
    // (the full per-cell breakdown is `campaign_metrics --jsonl`).
    if let Some(scope) = campaign_report.metrics.scope("campaign") {
        eprintln!(
            "campaign metrics: {} cells ok / {} retries, wall {:.1} s, mean detail share {}",
            scope.counter("campaign.cells.ok"),
            scope.counter("campaign.retries"),
            scope
                .span("campaign.run")
                .map_or(0.0, |s| s.total_ns as f64 / 1e9),
            scope
                .dists
                .get("campaign.detail_share")
                .map_or_else(|| "-".to_string(), |d| pct(d.mean())),
        );
    }
    // The figure indexes the grid positionally, so every cell must exist.
    let cells = match campaign_report.into_cells() {
        Ok(cells) => cells,
        Err(e) => {
            eprintln!("fig12 campaign incomplete: {e}");
            std::process::exit(1);
        }
    };
    let cell = |w: usize, t: usize| &cells[w * techs.len() + t];
    eprintln!(
        "checkpointing: {} jumps skipped {} ops; executed {} of {} baseline \
         ops (ratio {:.3}, capture {} ops)",
        report.jumps,
        ops_fmt(report.skipped_ops),
        ops_fmt(report.total_executed()),
        ops_fmt(report.baseline_ops()),
        report.executed_ratio(),
        ops_fmt(report.capture_ops),
    );

    // results[column][benchmark]
    let mut errors: Vec<Vec<f64>> = vec![Vec::new(); columns.len()];
    let mut detailed: Vec<Vec<u64>> = vec![Vec::new(); columns.len()];
    for (wi, truth) in truths.iter().enumerate() {
        for (c, col) in columns.iter().enumerate() {
            // The column's estimate for this benchmark: its only cell, or
            // the lowest-error cell of its sweep.
            let est = col
                .select
                .clone()
                .map(|t| &cell(wi, t).estimate)
                .min_by(|a, b| {
                    a.error_vs(truth)
                        .partial_cmp(&b.error_vs(truth))
                        .expect("finite errors")
                })
                .expect("column selects at least one technique");
            errors[c].push(est.error_vs(truth));
            detailed[c].push(est.detailed_ops());
        }
    }

    let mut header: Vec<String> = vec!["technique".into()];
    header.extend(workloads.iter().map(|w| w.name().to_string()));
    header.push("A-Mean".into());
    header.push("G-Mean".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    println!("\nSampling error (percent of benchmark IPC):");
    let mut t1 = Table::new(&header_refs);
    for (c, col) in columns.iter().enumerate() {
        let mut row = vec![col.name.to_string()];
        row.extend(errors[c].iter().map(|&e| pct(e)));
        row.push(pct(pgss_stats::amean(&errors[c]).unwrap()));
        row.push(pct(pgss_stats::gmean(&errors[c]).unwrap()));
        t1.row(&row);
    }
    t1.print();

    println!("\nAmount of detailed simulation (instructions):");
    let mut t2 = Table::new(&header_refs);
    for (c, col) in columns.iter().enumerate() {
        let mut row = vec![col.name.to_string()];
        row.extend(detailed[c].iter().map(|&d| ops_fmt(d)));
        let mean = detailed[c].iter().sum::<u64>() / detailed[c].len() as u64;
        let gmean =
            pgss_stats::gmean(&detailed[c].iter().map(|&d| d as f64).collect::<Vec<_>>()).unwrap();
        row.push(ops_fmt(mean));
        row.push(ops_fmt(gmean as u64));
        t2.row(&row);
    }
    t2.print();

    // The paper's headline ratios.
    let mean_det = |c: usize| detailed[c].iter().sum::<u64>() as f64 / detailed[c].len() as f64;
    let pgss_fixed_col = columns
        .iter()
        .position(|c| c.name == "PGSS(1M/.05)")
        .expect("fixed PGSS column exists");
    println!("\ndetailed-simulation ratios vs PGSS(1M/.05):");
    for (c, col) in columns.iter().enumerate() {
        if c != pgss_fixed_col {
            println!(
                "  {:<18} {:>8.1}x",
                col.name,
                mean_det(c) / mean_det(pgss_fixed_col)
            );
        }
    }
    println!("\nExpected shape (paper): SMARTS and SimPoint most accurate;");
    println!("PGSS slightly worse but better than TurboSMARTS; PGSS uses ~an");
    println!("order of magnitude less detailed simulation than SMARTS and 2-3");
    println!("orders less than SimPoint variants.");
}
