//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. the 1M-op sample-spacing rule (PGSS §3);
//! 2. the per-phase confidence-interval stop (PGSS §3);
//! 3. detailed warming before each sample (SMARTS/PGSS);
//! 4. the hashed-BBV address hash: this reproduction's multiplicative mix
//!    versus the paper's literal 5-raw-bit selection (DESIGN.md §2).

use pgss::{PgssSim, PhaseTable, Smarts, Technique};
use pgss_bbv::{BbvHash, HashedBbvTracker};
use pgss_bench::{banner, cached_ground_truth, ops_fmt, pct, Table};
use pgss_cpu::Mode;

fn main() {
    banner(
        "Ablations",
        "spacing rule, CI stop, detailed warming, BBV hash",
    );
    let names = ["164.gzip", "183.equake", "300.twolf"];
    let workloads: Vec<_> = names
        .iter()
        .map(|n| pgss_workloads::by_name(n, pgss_bench::scale()).unwrap())
        .collect();
    let truths: Vec<_> = workloads.iter().map(cached_ground_truth).collect();

    // ---- 1 + 2: PGSS sampling-control ablations -------------------------
    println!("\n[1+2] PGSS(100k ff) sampling-control ablations:");
    let variants: [(&str, PgssSim); 3] = [
        (
            "full PGSS",
            PgssSim {
                ff_ops: 100_000,
                ..PgssSim::default()
            },
        ),
        // Spacing disabled: a phase may be sampled on every interval until
        // its CI closes.
        (
            "no spacing rule",
            PgssSim {
                ff_ops: 100_000,
                spacing_ops: 0,
                ..PgssSim::default()
            },
        ),
        // CI stop disabled (ci_rel = 0 can never be met): sampling is
        // limited only by the spacing rule.
        (
            "no CI stop",
            PgssSim {
                ff_ops: 100_000,
                ci_rel: 0.0,
                ..PgssSim::default()
            },
        ),
    ];
    let mut t = Table::new(&["variant", "benchmark", "error", "detailed ops", "samples"]);
    for (label, v) in &variants {
        for (w, truth) in workloads.iter().zip(&truths) {
            let est = v.run(w);
            t.row(&[
                label.to_string(),
                w.name().to_string(),
                pct(est.error_vs(truth)),
                ops_fmt(est.detailed_ops()),
                est.samples.to_string(),
            ]);
        }
    }
    t.print();
    println!("Reading: disabling the spacing rule lifts the per-phase sample");
    println!("cap, raising cost (~1.5x here); at the paper's scale it also");
    println!("concentrates samples on early occurrences. Disabling the CI stop");
    println!("changes nothing at laptop scale: the +-3% CIs rarely close, so");
    println!("the spacing rule is already the binding control.");

    // ---- 3: detailed warming --------------------------------------------
    println!("\n[3] SMARTS(100k) detailed-warming sweep:");
    let mut t = Table::new(&["warm ops", "benchmark", "error", "est IPC", "true IPC"]);
    for warm in [0u64, 1_000, 3_000, 10_000] {
        for (w, truth) in workloads.iter().zip(&truths) {
            let est = Smarts {
                unit_ops: 1_000,
                warm_ops: warm,
                period_ops: 100_000,
            }
            .run(w);
            t.row(&[
                warm.to_string(),
                w.name().to_string(),
                pct(est.error_vs(truth)),
                format!("{:.4}", est.ipc),
                format!("{:.4}", truth.ipc),
            ]);
        }
    }
    t.print();
    println!("Reading: the branchy workloads (twolf) benefit most from longer");
    println!("warming: short-lifetime pipeline and in-flight-miss state takes");
    println!("thousands of ops to re-establish after functional fast-forward;");
    println!("the paper's 3k-op choice sits on the flat part of the curve for");
    println!("the streaming workloads.");

    // ---- 4: hash variant -------------------------------------------------
    println!("\n[4] phase counts under the multiplicative mix vs the literal");
    println!("5-raw-bit hash (10 seeds), 1M-op intervals, 0.05π threshold:");
    let mut t = Table::new(&[
        "benchmark",
        "mix phases",
        "raw-bit phases (min..max over seeds)",
    ]);
    for w in &workloads {
        let mix = count_phases(w, BbvHash::from_seed(0x5047_5353));
        let mut raw: Vec<usize> = (0..10)
            .map(|s| count_phases(w, BbvHash::select_bits_from_seed(s)))
            .collect();
        raw.sort_unstable();
        t.row(&[
            w.name().to_string(),
            mix.to_string(),
            format!("{}..{}", raw.first().unwrap(), raw.last().unwrap()),
        ]);
    }
    t.print();
    println!("Expected: the literal raw-bit selection often collapses distinct");
    println!("phases on this repository's compact generated code (branch sites");
    println!("span a few hundred addresses, not a 32-bit address space), which");
    println!("is why the default hash mixes the address first (DESIGN.md §2).");
}

/// Number of phases the online detector finds using `hash`.
fn count_phases(w: &pgss_workloads::Workload, hash: BbvHash) -> usize {
    let mut machine = w.machine();
    let mut tracker = HashedBbvTracker::new(hash);
    let mut table = PhaseTable::new(pgss::threshold(0.05));
    loop {
        let r = machine.run_with(Mode::Functional, 1_000_000, &mut tracker);
        let bbv = tracker.take();
        if r.ops == 1_000_000 {
            table.classify(&bbv, r.ops);
        }
        if r.halted || r.ops == 0 {
            break;
        }
    }
    table.phases().len()
}
