//! Figure 8: percentage of significant IPC changes detected as phase
//! changes, versus the BBV threshold, for significance levels 0.1σ–0.5σ.
//!
//! The paper finds a knee around 0.05π radians, with better detection for
//! larger IPC changes. Per the paper, benchmarks are weighted equally: the
//! detection rate is computed per benchmark and averaged.

use pgss::analysis::{detection_rate, Delta};
use pgss_bench::{banner, suite_deltas, Table};

fn main() {
    banner(
        "Figure 8",
        "% of significant IPC changes caught vs BBV threshold",
    );
    let per_benchmark = suite_deltas(100_000);
    let sigma_levels = [0.1, 0.2, 0.3, 0.4, 0.5];
    let thresholds: Vec<f64> = (0..=20).map(|i| i as f64 * 0.025).collect(); // fractions of π

    let mut header: Vec<String> = vec!["threshold(π)".into()];
    header.extend(sigma_levels.iter().map(|s| format!(">{s:.1}σ")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    for &t in &thresholds {
        let rad = pgss::threshold(t);
        let mut row = vec![format!("{t:.3}")];
        for &sigma in &sigma_levels {
            row.push(
                match mean_rate(&per_benchmark, |d| detection_rate(d, rad, sigma)) {
                    Some(r) => pgss_bench::pct(r),
                    None => "-".into(),
                },
            );
        }
        table.row(&row);
    }
    table.print();
    println!("\nExpected shape (paper): high plateau at tiny thresholds with a");
    println!("knee near 0.05π, then decay; larger IPC changes are caught better.");
}

/// Equal-weight mean of a per-benchmark rate.
fn mean_rate(
    per_benchmark: &[(String, Vec<Delta>)],
    f: impl Fn(&[Delta]) -> Option<f64>,
) -> Option<f64> {
    let rates: Vec<f64> = per_benchmark.iter().filter_map(|(_, d)| f(d)).collect();
    pgss_stats::amean(&rates)
}
