//! Figure 11: PGSS-Sim sampling error for the ten benchmarks over BBV
//! sampling periods {100k, 1M, 10M} and thresholds {.05, .10, .15, .20,
//! .25}π, with arithmetic- and geometric-mean summary columns.
//!
//! The paper finds 1M/.05π best overall, with art and mcf degrading badly
//! at the 100k period (their ~40–50k-op micro-phases alias against the BBV
//! sampling).

use pgss::{PgssSim, Technique};
use pgss_bench::{banner, cached_ground_truth, pct, suite, Table};
use pgss_cpu::MachineConfig;

fn main() {
    banner(
        "Figure 11",
        "PGSS error: 3 BBV periods x 5 thresholds x 10 benchmarks",
    );
    let cfg = MachineConfig::default();
    let workloads = suite();
    let truths: Vec<_> = workloads.iter().map(cached_ground_truth).collect();

    let periods: [(u64, &str); 3] = [(100_000, "100k"), (1_000_000, "1M"), (10_000_000, "10M")];
    let thresholds = [0.05, 0.10, 0.15, 0.20, 0.25];

    let mut best_overall: Option<(f64, String)> = None;
    for (period, period_name) in periods {
        println!("\n--- {period_name} op BBV sampling period ---");
        let mut header: Vec<String> = vec!["benchmark".into()];
        header.extend(thresholds.iter().map(|t| format!(".{:02.0}π", t * 100.0)));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = Table::new(&header_refs);
        let mut errs_by_thresh: Vec<Vec<f64>> = vec![Vec::new(); thresholds.len()];

        for (w, truth) in workloads.iter().zip(&truths) {
            let mut row = vec![w.name().to_string()];
            for (ti, &t) in thresholds.iter().enumerate() {
                let est = PgssSim::with_params(period, t).run_with(w, &cfg);
                let err = est.error_vs(truth);
                errs_by_thresh[ti].push(err);
                row.push(pct(err));
            }
            table.row(&row);
        }
        let mut amean_row = vec!["A-Mean".to_string()];
        let mut gmean_row = vec!["G-Mean".to_string()];
        for (ti, errs) in errs_by_thresh.iter().enumerate() {
            let a = pgss_stats::amean(errs).unwrap();
            let g = pgss_stats::gmean(errs).unwrap();
            amean_row.push(pct(a));
            gmean_row.push(pct(g));
            let name = format!("{period_name}/.{:02.0}π", thresholds[ti] * 100.0);
            if best_overall.as_ref().is_none_or(|(b, _)| g < *b) {
                best_overall = Some((g, name));
            }
        }
        table.row(&amean_row);
        table.row(&gmean_row);
        table.print();
    }

    let (g, name) = best_overall.expect("at least one configuration");
    println!(
        "\nbest overall configuration by G-Mean: {name} ({})",
        pct(g)
    );
    println!("Expected shape (paper): 1M/.05π best overall; art/mcf degrade at");
    println!("the 100k period (micro-phase aliasing) and recover at 1M+.");
}
