//! Figure 13: total simulation times for SMARTS, SimPoint (10 clusters of
//! the large interval), Online SimPoint, and PGSS-Sim, decomposed into
//! fast-forwarding / detailed warming / detailed simulation, with the
//! measured per-mode simulation rates (with and without BBV tracking).
//!
//! The paper's point: BBV-tracking overhead is negligible (~1 %), detailed
//! simulation dominates where it exists, and PGSS's advantage in total time
//! is bounded by the functional:detailed speed ratio of the simulator.

use pgss::timing::{measure_rates, time_for, ModeRates, TimeBreakdown};
use pgss::{campaign, OnlineSimPoint, PgssSim, SimPointOffline, Smarts, Technique};
use pgss_bench::{banner, suite, Table};
use pgss_cpu::{MachineConfig, ModeOps};

fn main() {
    banner(
        "Figure 13",
        "total simulation time decomposition per technique",
    );
    let cfg = MachineConfig::default();

    // Measured rates on this host, mid-suite workload (gzip), with and
    // without the hashed-BBV tracker attached.
    let probe = pgss_workloads::gzip(0.2);
    let with_bbv = measure_rates(&probe, &cfg, true, 4_000_000);
    let without = measure_rates(&probe, &cfg, false, 4_000_000);
    let mut rates_table =
        Table::new(&["mode", "kops/s (with BBV)", "kops/s (w/o BBV)", "overhead"]);
    let mut rate_row = |name: &str, w: f64, wo: f64| {
        rates_table.row(&[
            name.to_string(),
            format!("{:.0}", w / 1e3),
            format!("{:.0}", wo / 1e3),
            format!("{:+.1}%", (wo / w - 1.0) * 100.0),
        ]);
    };
    rate_row("fast-forward", with_bbv.fast_forward, without.fast_forward);
    rate_row(
        "functional fast-forward",
        with_bbv.functional,
        without.functional,
    );
    rate_row(
        "detailed warming",
        with_bbv.detailed_warming,
        without.detailed_warming,
    );
    rate_row(
        "detailed simulation",
        with_bbv.detailed_measured,
        without.detailed_measured,
    );
    rates_table.print();

    // Per-technique mode_ops summed over the ten benchmarks; one campaign
    // cell per (benchmark × technique), run across the host's cores.
    let smarts = Smarts {
        period_ops: 100_000,
        ..Smarts::default()
    };
    let simpoint = SimPointOffline {
        interval_ops: 1_000_000,
        k: 10,
        ..Default::default()
    };
    let olsp = OnlineSimPoint::new();
    let pgss = PgssSim::new();
    let names = [
        "SMARTS",
        "SimPoint(10x1M)",
        "OLSimPoint(1M/.10)",
        "PGSS(1M/.05)",
    ];
    let techs: Vec<&(dyn Technique + Sync)> = vec![&smarts, &simpoint, &olsp, &pgss];

    let workloads = suite();
    eprintln!(
        "running {} campaign cells (checkpoint-accelerated) ...",
        workloads.len() * techs.len()
    );
    let jobs = campaign::grid(&workloads, &techs, cfg);
    // Acceleration changes only the physical work done by this harness,
    // never the *charged* mode ops the figure models, so the modelled
    // times below are still the paper's no-checkpoint times.
    let store = pgss_bench::checkpoint_store();
    // PGSS_WORKERS is resolved here at the harness boundary; the
    // library takes an explicit worker count.
    let config = pgss::CampaignConfig::with_workers(campaign::worker_threads());
    let campaign_report =
        match campaign::run_checkpointed_with(&jobs, 1_000_000, store.as_ref(), &config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fig13 campaign failed to run: {e}");
                std::process::exit(1);
            }
        };
    for fault in &campaign_report.checkpoint_faults {
        eprintln!("checkpoint fault healed: {fault}");
    }
    let report = campaign_report.ladder;
    if let Some(scope) = campaign_report.metrics.scope("campaign") {
        eprintln!(
            "campaign metrics: {} cells ok, wall {:.1} s",
            scope.counter("campaign.cells.ok"),
            scope
                .span("campaign.run")
                .map_or(0.0, |s| s.total_ns as f64 / 1e9),
        );
    }
    // The figure indexes the grid positionally, so every cell must exist.
    let cells = match campaign_report.into_cells() {
        Ok(cells) => cells,
        Err(e) => {
            eprintln!("fig13 campaign incomplete: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "checkpointing: executed {:.1}% of baseline ops ({} jumps)",
        report.executed_ratio() * 100.0,
        report.jumps
    );

    let mut table = Table::new(&[
        "technique",
        "fast-fwd (s)",
        "functional (s)",
        "warming (s)",
        "detailed (s)",
        "total (s)",
    ]);
    let mut totals: Vec<(String, TimeBreakdown)> = Vec::new();
    for (t_idx, name) in names.iter().enumerate() {
        let mut ops = ModeOps::default();
        for w_idx in 0..workloads.len() {
            let est = &cells[w_idx * techs.len() + t_idx].estimate;
            ops.fast_forward += est.mode_ops.fast_forward;
            ops.functional += est.mode_ops.functional;
            ops.detailed_warming += est.mode_ops.detailed_warming;
            ops.detailed_measured += est.mode_ops.detailed_measured;
        }
        let rates = ModeRates { ..with_bbv };
        let t = time_for(&ops, &rates);
        table.row(&[
            name.to_string(),
            format!("{:.2}", t.fast_forward_s),
            format!("{:.2}", t.functional_s),
            format!("{:.2}", t.detailed_warming_s),
            format!("{:.2}", t.detailed_s),
            format!("{:.2}", t.total()),
        ]);
        totals.push((name.to_string(), t));
    }
    println!("\nModelled total simulation time over the ten benchmarks");
    println!("(no checkpointing, as in the paper's Fig. 13):");
    table.print();

    let pgss = &totals.last().expect("PGSS ran").1;
    println!(
        "\ncombined detailed warming + simulation for PGSS: {:.3} s",
        pgss.detailed_warming_s + pgss.detailed_s
    );

    // The paper's future-work item: with a live-point (checkpoint) library,
    // fast-forwarding disappears and only the detailed component remains.
    println!("\nwith live-point checkpoints (paper Sec. 7 future work), the");
    println!("functional component vanishes; remaining modelled time:");
    for (name, t) in &totals {
        println!(
            "  {:<20} {:.3} s",
            name,
            t.detailed_warming_s + t.detailed_s
        );
    }
    println!("\nExpected shape (paper): all techniques are dominated by");
    println!("(functional) fast-forwarding without checkpoints; PGSS's detailed");
    println!("component is tiny (the paper: ~380 s of ~250,000 s); SimPoint's");
    println!("detailed share is the largest. BBV overhead is within noise.");
}
