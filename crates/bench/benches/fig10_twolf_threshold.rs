//! Figure 10: the effect of the threshold value on the measured phase
//! characteristics of 300.twolf.
//!
//! twolf is the paper's stress case: tiny overall IPC standard deviation
//! (~0.055) and weak coarse-grain phase behaviour, but short fine-grained
//! spikes. The figure shows, versus the threshold: the number of phases,
//! the number of phase changes, the average interval length, and the
//! within-phase IPC variation.

use pgss::analysis::{interval_profile, phase_threshold_sweep};
use pgss_bench::{banner, scale, Table};
use pgss_cpu::MachineConfig;
use pgss_stats::Welford;

fn main() {
    banner(
        "Figure 10",
        "threshold effects on 300.twolf phase characteristics",
    );
    let w = pgss_workloads::twolf(scale());
    let profile = interval_profile(&w, &MachineConfig::default(), 100_000, 1);
    let overall: Welford = profile.iter().map(|s| s.ipc).collect();
    println!(
        "{} intervals of 100k ops; overall IPC {:.3}, stddev {:.3} (paper: ~.055)\n",
        profile.len(),
        overall.mean(),
        overall.population_stddev()
    );

    // 0 → 0.5π in the paper's x-axis range (shown there in radians 0–1.57).
    let thresholds: Vec<f64> = (0..=20)
        .map(|i| pgss::threshold(i as f64 * 0.025))
        .collect();
    let rows = phase_threshold_sweep(&profile, &thresholds);

    let mut table = Table::new(&[
        "threshold(rad)",
        "phases",
        "changes",
        "avg interval (ops)",
        "IPC variation (σ)",
    ]);
    for r in &rows {
        table.row(&[
            format!("{:.3}", r.threshold_rad),
            r.num_phases.to_string(),
            r.num_changes.to_string(),
            format!("{:.0}", r.avg_interval_ops),
            format!("{:.3}", r.ipc_variation_sigmas),
        ]);
    }
    table.print();
    println!("\nExpected shape (paper): phase and change counts drop quickly as");
    println!("the threshold rises; average interval length grows; within-phase");
    println!("IPC variation rises toward 1σ (no stratification left).");

    // Sanity: monotone trends that the paper's figure exhibits.
    assert!(rows.first().unwrap().num_phases >= rows.last().unwrap().num_phases);
    assert!(rows.first().unwrap().avg_interval_ops <= rows.last().unwrap().avg_interval_ops);
}
