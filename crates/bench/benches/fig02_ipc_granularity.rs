//! Figure 2: IPC versus completed instructions for 164.gzip at different
//! sampling periods.
//!
//! The paper plots 100k/1M/10M/100M-op periods over the first 500M
//! instructions of gzip, showing wild fine-grained variation that is
//! averaged away at coarse periods. The synthetic suite is ~10× shorter, so
//! the periods scale to 10k/100k/1M/10M over the whole run. The harness
//! prints, per period: the number of intervals, the IPC range, and the
//! interval-to-interval IPC standard deviation — the "visibility of
//! fine-grained behaviour" the figure illustrates — plus a coarse
//! downsampled series for plotting.

use pgss::analysis::ipc_trace;
use pgss_bench::{banner, scale, Table};
use pgss_cpu::MachineConfig;
use pgss_stats::Welford;

fn main() {
    banner(
        "Figure 2",
        "IPC vs completed ops for 164.gzip at 4 sampling periods",
    );
    let w = pgss_workloads::gzip(scale());
    let cfg = MachineConfig::default();
    // Collect once at the finest period and aggregate upward (identical to
    // separate passes because IPC aggregates by cycles).
    let periods: [u64; 4] = [10_000, 100_000, 1_000_000, 10_000_000];
    let fine = ipc_trace(&w, &cfg, periods[0]);

    let mut table = Table::new(&[
        "period",
        "intervals",
        "min IPC",
        "max IPC",
        "stddev",
        "Δ|IPC| mean",
    ]);
    for &p in &periods {
        let group = (p / periods[0]) as usize;
        let series = aggregate(&fine, group);
        if series.len() < 2 {
            table.row(&[pgss_bench::ops_fmt(p), "too few".into()]);
            continue;
        }
        let wf: Welford = series.iter().copied().collect();
        let mut dmean = 0.0;
        for pair in series.windows(2) {
            dmean += (pair[1] - pair[0]).abs();
        }
        dmean /= (series.len() - 1) as f64;
        let min = series.iter().copied().fold(f64::INFINITY, f64::min);
        let max = series.iter().copied().fold(0.0, f64::max);
        table.row(&[
            pgss_bench::ops_fmt(p),
            series.len().to_string(),
            format!("{min:.3}"),
            format!("{max:.3}"),
            format!("{:.3}", wf.population_stddev()),
            format!("{dmean:.3}"),
        ]);
    }
    table.print();

    // A plottable series at the second-finest period (like the paper's
    // visible traces), downsampled to ≤60 points for the log.
    println!("\n100k-period IPC series (ops_completed, ipc):");
    let series = aggregate(&fine, 10);
    let step = (series.len() / 60).max(1);
    for (i, ipc) in series.iter().enumerate().step_by(step) {
        println!("  {:>12}  {ipc:.3}", (i as u64 + 1) * 100_000);
    }
    println!("\nExpected shape (paper): stddev and Δ|IPC| fall sharply as the");
    println!("period grows; the fine-grained oscillation is invisible at 10M.");
}

/// Groups consecutive fine intervals into coarse ones. IPC of a group is
/// the harmonic composition (equal ops per fine interval ⇒ mean CPI).
fn aggregate(fine: &[(u64, f64)], group: usize) -> Vec<f64> {
    fine.chunks(group)
        .filter(|c| c.len() == group)
        .map(|c| {
            let mean_cpi: f64 = c.iter().map(|(_, ipc)| 1.0 / ipc).sum::<f64>() / c.len() as f64;
            1.0 / mean_cpi
        })
        .collect()
}
