//! Figure 3: IPC versus time and the distribution of IPC for 168.wupwise.
//!
//! The paper shows a long, repetitive alternation between two performance
//! levels on real hardware, and a clearly non-Gaussian (polymodal)
//! distribution of cycles over IPC — the property that breaks
//! SMARTS/TurboSMARTS confidence statistics. The harness prints the
//! interval IPC trace, a cycle-weighted IPC histogram, and the detected
//! mode count.

use pgss::analysis::interval_profile;
use pgss_bench::{banner, scale, Table};
use pgss_cpu::MachineConfig;
use pgss_stats::Histogram;

fn main() {
    banner(
        "Figure 3",
        "IPC vs time and cycle-weighted IPC distribution for 168.wupwise",
    );
    let w = pgss_workloads::wupwise(scale());
    let profile = interval_profile(&w, &MachineConfig::default(), 100_000, 1);
    assert!(!profile.is_empty(), "workload too short");

    println!("IPC trace (100k-op intervals, downsampled):");
    let step = (profile.len() / 60).max(1);
    for (i, s) in profile.iter().enumerate().step_by(step) {
        let bar = "#".repeat((s.ipc * 20.0).round() as usize);
        println!("  {:>10}  {:>6.3}  {bar}", (i as u64 + 1) * 100_000, s.ipc);
    }

    let max_ipc = profile.iter().map(|s| s.ipc).fold(0.0, f64::max) * 1.05;
    let mut hist = Histogram::new(0.0, max_ipc.max(0.1), 24);
    for s in &profile {
        // Cycle-weighted, like the paper's right panel: cycles = ops / ipc.
        hist.add_weighted(s.ipc, (s.ops as f64 / s.ipc) as u64);
    }

    println!("\nDistribution (cycles spent per IPC bin):");
    let mut table = Table::new(&["IPC bin", "fraction", "bar"]);
    for i in 0..hist.counts().len() {
        let (lo, hi) = hist.bin_range(i);
        let f = hist.fraction(i);
        table.row(&[
            format!("{lo:.2}-{hi:.2}"),
            pgss_bench::pct(f),
            "#".repeat((f * 100.0).round() as usize),
        ]);
    }
    table.print();

    let modes = hist.modes(0.05);
    println!("\ndetected modes (≥5% mass): {modes}");
    println!("Expected shape (paper): a polymodal distribution — at least two");
    println!("clearly separated modes, one per macro phase, not a single Gaussian.");
    assert!(modes >= 2, "wupwise IPC distribution should be polymodal");
}
