//! Figure 9: percentage of detected phase changes that are false positives
//! (no significant IPC change), versus the BBV threshold, for significance
//! levels 0.1σ–0.5σ.
//!
//! False positives cost excess samples; the paper argues for setting the
//! threshold as high as possible without missing real performance changes.

use pgss::analysis::{false_positive_rate, Delta};
use pgss_bench::{banner, suite_deltas, Table};

fn main() {
    banner(
        "Figure 9",
        "% of detected phase changes that are false positives",
    );
    let per_benchmark = suite_deltas(100_000);
    let sigma_levels = [0.1, 0.2, 0.3, 0.4, 0.5];
    let thresholds: Vec<f64> = (0..=20).map(|i| i as f64 * 0.025).collect();

    let mut header: Vec<String> = vec!["threshold(π)".into()];
    header.extend(sigma_levels.iter().map(|s| format!("{s:.1}σ")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    for &t in &thresholds {
        let rad = pgss::threshold(t);
        let mut row = vec![format!("{t:.3}")];
        for &sigma in &sigma_levels {
            row.push(
                match mean_rate(&per_benchmark, |d| false_positive_rate(d, rad, sigma)) {
                    Some(r) => pgss_bench::pct(r),
                    None => "-".into(),
                },
            );
        }
        table.row(&row);
    }
    table.print();
    println!("\nExpected shape (paper): the false-positive fraction falls as the");
    println!("threshold rises (and is higher when more changes count as noise,");
    println!("i.e. at larger σ levels).");
}

fn mean_rate(
    per_benchmark: &[(String, Vec<Delta>)],
    f: impl Fn(&[Delta]) -> Option<f64>,
) -> Option<f64> {
    let rates: Vec<f64> = per_benchmark.iter().filter_map(|(_, d)| f(d)).collect();
    pgss_stats::amean(&rates)
}
