//! Figure 7: two-dimensional distribution of basic-block-vector change
//! versus IPC change between consecutive 100k-op samples, across the ten
//! Spec2000 benchmarks (equally weighted).
//!
//! The paper's takeaway: BBV changes greater than ≈0.05π radians typically
//! correspond to large IPC changes. The harness prints the density grid
//! (rows: IPC change in benchmark standard deviations; columns: BBV angle
//! as a fraction of π) plus the per-column mean IPC change.

use pgss::analysis::density_grid;
use pgss_bench::{banner, suite_deltas, Table};

fn main() {
    banner(
        "Figure 7",
        "(ΔBBV, ΔIPC) density over 100k-op samples, 10 benchmarks",
    );
    let per_benchmark = suite_deltas(100_000);
    for (name, d) in &per_benchmark {
        println!("  {name}: {} deltas", d.len());
    }
    let deltas: Vec<Vec<_>> = per_benchmark.iter().map(|(_, d)| d.clone()).collect();

    const XB: usize = 10; // BBV angle bins over [0, 0.5π]
    const YB: usize = 10; // IPC change bins over [0, 2.5σ]
    let x_max = 0.5 * std::f64::consts::PI;
    let y_max = 2.5;
    let grid = density_grid(&deltas, XB, YB, x_max, y_max);

    let mut header: Vec<String> = vec!["ΔIPC(σ) \\ ΔBBV(π)".to_string()];
    for x in 0..XB {
        header.push(format!(".{:02.0}", (x as f64 + 0.5) / XB as f64 * 50.0));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for y in (0..YB).rev() {
        let mut row = vec![format!("{:.2}", (y as f64 + 0.5) / YB as f64 * y_max)];
        for &v in &grid[y] {
            row.push(if v >= 0.0005 {
                format!("{:.1}", v * 100.0)
            } else {
                ".".to_string()
            });
        }
        table.row(&row);
    }
    table.print();
    println!("(cells: percent of samples, benchmarks equally weighted)");

    // Per-column conditional mean ΔIPC: rises with ΔBBV.
    println!("\nmean ΔIPC (σ) per ΔBBV column:");
    let all: Vec<_> = deltas.iter().flatten().collect();
    for x in 0..XB {
        let lo = x as f64 / XB as f64 * x_max;
        let hi = (x as f64 + 1.0) / XB as f64 * x_max;
        let in_col: Vec<f64> = all
            .iter()
            .filter(|d| d.bbv_angle >= lo && d.bbv_angle < hi)
            .map(|d| d.ipc_sigmas)
            .collect();
        let mean = pgss_stats::amean(&in_col).unwrap_or(0.0);
        println!(
            "  .{:02.0}π: {:>8} samples, mean {:.3}σ",
            (x as f64 + 0.5) / XB as f64 * 50.0,
            in_col.len(),
            mean
        );
    }
    println!("\nExpected shape (paper): mass concentrates near the origin; BBV");
    println!("changes above ≈.05π correspond to large IPC changes.");
}
