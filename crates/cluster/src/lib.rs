//! K-means clustering over randomly-projected basic-block vectors — the
//! offline analysis engine behind the SimPoint baseline.
//!
//! SimPoint 3.0 reduces each interval's basic-block vector to ~15 dimensions
//! with a random linear projection, clusters the projected points with
//! k-means (multiple seeds), scores candidate `k`s with the Bayesian
//! Information Criterion, and picks the interval closest to each centroid as
//! that phase's *simulation point*. This crate implements that pipeline:
//!
//! * [`project`] — seeded random projection.
//! * [`KMeans`] — k-means++ initialisation, Lloyd iterations, restarts.
//! * [`Clustering`] — assignments, centroids, inertia,
//!   [`Clustering::representatives`] and [`Clustering::weights`],
//!   [`Clustering::bic`].
//!
//! # Example
//!
//! ```
//! use pgss_cluster::KMeans;
//!
//! // Two well-separated blobs.
//! let mut data = Vec::new();
//! for i in 0..20 {
//!     let j = f64::from(i % 5) * 0.01;
//!     data.push(vec![j, j]);
//!     data.push(vec![10.0 + j, 10.0 - j]);
//! }
//! let clustering = KMeans::new(2).with_seed(7).run(&data);
//! let a = clustering.assignments()[0];
//! let b = clustering.assignments()[1];
//! assert_ne!(a, b);
//! // All even indices share a cluster, all odd indices the other.
//! assert!(data.iter().enumerate().all(|(i, _)| {
//!     clustering.assignments()[i] == if i % 2 == 0 { a } else { b }
//! }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pgss_stats::DetRng;

/// Projects `data` (rows of equal dimension) to `dims` dimensions with a
/// seeded uniform-random linear map, as SimPoint does before clustering.
///
/// Returns the input unchanged (as owned rows) when it is already at or
/// below the target dimensionality.
///
/// # Panics
///
/// Panics if rows have unequal lengths or `dims == 0`.
pub fn project(data: &[Vec<f64>], dims: usize, seed: u64) -> Vec<Vec<f64>> {
    assert!(
        dims > 0,
        "projection target must have at least one dimension"
    );
    let Some(first) = data.first() else {
        return Vec::new();
    };
    let d = first.len();
    assert!(
        data.iter().all(|r| r.len() == d),
        "all rows must have equal dimension"
    );
    if d <= dims {
        return data.to_vec();
    }
    let mut rng = DetRng::seed_from_u64(seed);
    // Column-major projection matrix with entries uniform in [-1, 1).
    let matrix: Vec<f64> = (0..d * dims).map(|_| rng.range_f64(-1.0, 1.0)).collect();
    data.iter()
        .map(|row| {
            (0..dims)
                .map(|j| {
                    row.iter()
                        .zip(matrix[j * d..(j + 1) * d].iter())
                        .map(|(x, m)| x * m)
                        .sum()
                })
                .collect()
        })
        .collect()
}

/// K-means configuration: `k`, seeding, iteration and restart limits.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeans {
    k: usize,
    seed: u64,
    max_iters: u32,
    restarts: u32,
}

impl KMeans {
    /// Creates a configuration for `k` clusters with default seed (0),
    /// 100 Lloyd iterations, and 5 restarts.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> KMeans {
        assert!(k > 0, "k must be positive");
        KMeans {
            k,
            seed: 0,
            max_iters: 100,
            restarts: 5,
        }
    }

    /// Sets the RNG seed (restart `r` uses `seed + r`).
    pub fn with_seed(mut self, seed: u64) -> KMeans {
        self.seed = seed;
        self
    }

    /// Sets the Lloyd iteration cap per restart.
    pub fn with_max_iters(mut self, max_iters: u32) -> KMeans {
        self.max_iters = max_iters.max(1);
        self
    }

    /// Sets the number of independent restarts (best inertia wins).
    pub fn with_restarts(mut self, restarts: u32) -> KMeans {
        self.restarts = restarts.max(1);
        self
    }

    /// Clusters `data`, returning the best result over all restarts.
    ///
    /// When `data` has fewer points than `k`, the effective `k` is reduced
    /// to the number of points.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or rows have unequal dimensions.
    pub fn run(&self, data: &[Vec<f64>]) -> Clustering {
        assert!(!data.is_empty(), "cannot cluster an empty data set");
        let d = data[0].len();
        assert!(
            data.iter().all(|r| r.len() == d),
            "all rows must have equal dimension"
        );
        let k = self.k.min(data.len());
        let mut best: Option<Clustering> = None;
        for r in 0..self.restarts {
            let c = self.run_once(data, k, self.seed + u64::from(r));
            if best.as_ref().is_none_or(|b| c.inertia < b.inertia) {
                best = Some(c);
            }
        }
        best.expect("at least one restart")
    }

    fn run_once(&self, data: &[Vec<f64>], k: usize, seed: u64) -> Clustering {
        let mut rng = DetRng::seed_from_u64(seed);
        let d = data[0].len();
        let mut centroids = kmeanspp_init(data, k, &mut rng);
        let mut assignments = vec![0u32; data.len()];
        let mut inertia = f64::INFINITY;
        for _ in 0..self.max_iters {
            // Assignment step.
            let mut new_inertia = 0.0;
            for (i, row) in data.iter().enumerate() {
                let (best_c, best_d) = nearest(row, &centroids);
                assignments[i] = best_c as u32;
                new_inertia += best_d;
            }
            // Update step.
            let mut sums = vec![vec![0.0; d]; k];
            let mut counts = vec![0usize; k];
            for (row, &a) in data.iter().zip(&assignments) {
                counts[a as usize] += 1;
                for (s, x) in sums[a as usize].iter_mut().zip(row) {
                    *s += x;
                }
            }
            for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if count > 0 {
                    for (cc, s) in c.iter_mut().zip(sum) {
                        *cc = s / count as f64;
                    }
                }
                // Empty clusters keep their centroid; k-means++ seeding makes
                // this rare and harmless for our data sizes.
            }
            let converged = (inertia - new_inertia).abs() <= 1e-12 * inertia.max(1.0);
            inertia = new_inertia;
            if converged {
                break;
            }
        }
        // Final assignment against the final centroids so that the invariant
        // "every point is assigned to its nearest centroid" holds exactly.
        let mut final_inertia = 0.0;
        for (i, row) in data.iter().enumerate() {
            let (best_c, best_d) = nearest(row, &centroids);
            assignments[i] = best_c as u32;
            final_inertia += best_d;
        }
        Clustering {
            assignments,
            centroids,
            inertia: final_inertia,
            dim: d,
        }
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest(row: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = sq_dist(row, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// k-means++ seeding: first centroid uniform, each further centroid drawn
/// with probability proportional to squared distance from the nearest chosen
/// centroid.
fn kmeanspp_init(data: &[Vec<f64>], k: usize, rng: &mut DetRng) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(data[rng.range_usize(data.len())].clone());
    let mut dists: Vec<f64> = data.iter().map(|r| sq_dist(r, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centroids; pick uniformly.
            data[rng.range_usize(data.len())].clone()
        } else {
            let mut target = rng.range_f64(0.0, total);
            let mut pick = data.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    pick = i;
                    break;
                }
                target -= d;
            }
            data[pick].clone()
        };
        for (dist, row) in dists.iter_mut().zip(data) {
            *dist = dist.min(sq_dist(row, &next));
        }
        centroids.push(next);
    }
    centroids
}

/// The result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    assignments: Vec<u32>,
    centroids: Vec<Vec<f64>>,
    inertia: f64,
    dim: usize,
}

impl Clustering {
    /// Cluster id per input row.
    pub fn assignments(&self) -> &[u32] {
        &self.assignments
    }

    /// The cluster centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Number of clusters (including any that ended up empty).
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Sum of squared distances from each point to its centroid.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// For each cluster, the index of the input row closest to its centroid
    /// — SimPoint's *simulation point* selection. Empty clusters yield
    /// `None`.
    pub fn representatives(&self, data: &[Vec<f64>]) -> Vec<Option<usize>> {
        let mut best: Vec<Option<(usize, f64)>> = vec![None; self.k()];
        for (i, row) in data.iter().enumerate() {
            let c = self.assignments[i] as usize;
            let d = sq_dist(row, &self.centroids[c]);
            if best[c].is_none_or(|(_, bd)| d < bd) {
                best[c] = Some((i, d));
            }
        }
        best.into_iter().map(|b| b.map(|(i, _)| i)).collect()
    }

    /// Fraction of rows assigned to each cluster — SimPoint's phase weights.
    pub fn weights(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.k()];
        for &a in &self.assignments {
            counts[a as usize] += 1;
        }
        let n = self.assignments.len() as f64;
        counts.into_iter().map(|c| c as f64 / n).collect()
    }

    /// Bayesian Information Criterion score (higher is better), as SimPoint
    /// uses to choose `k`: the log-likelihood of the data under a spherical
    /// Gaussian per cluster, penalised by model size.
    pub fn bic(&self, data: &[Vec<f64>]) -> f64 {
        let n = data.len() as f64;
        let k = self.k() as f64;
        let d = self.dim as f64;
        // Pooled spherical variance estimate.
        let denom = (data.len() as f64 - k).max(1.0) * d;
        let var = (self.inertia / denom).max(1e-12);
        let mut counts = vec![0usize; self.k()];
        for &a in &self.assignments {
            counts[a as usize] += 1;
        }
        let mut ll = 0.0;
        for &c in &counts {
            if c == 0 {
                continue;
            }
            let cn = c as f64;
            ll += cn * (cn.ln() - n.ln())
                - cn * d / 2.0 * (2.0 * std::f64::consts::PI * var).ln()
                - (cn - 1.0) * d / 2.0;
        }
        let params = k * (d + 1.0);
        ll - params / 2.0 * n.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(centers: &[(f64, f64)], per: usize) -> Vec<Vec<f64>> {
        let mut rng = DetRng::seed_from_u64(99);
        let mut out = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..per {
                out.push(vec![
                    cx + rng.range_f64(-0.1, 0.1),
                    cy + rng.range_f64(-0.1, 0.1),
                ]);
            }
        }
        out
    }

    #[test]
    fn separates_clear_blobs() {
        let data = blobs(&[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)], 30);
        let c = KMeans::new(3).with_seed(1).run(&data);
        // Each blob must be pure: all 30 members share one cluster id, and
        // the three ids are distinct.
        let ids: Vec<u32> = (0..3).map(|b| c.assignments()[b * 30]).collect();
        assert_eq!(
            {
                let mut s = ids.clone();
                s.sort_unstable();
                s.dedup();
                s.len()
            },
            3
        );
        for (b, &id) in ids.iter().enumerate() {
            for i in 0..30 {
                assert_eq!(c.assignments()[b * 30 + i], id);
            }
        }
    }

    #[test]
    fn assignments_are_nearest_centroid() {
        let data = blobs(&[(0.0, 0.0), (5.0, 5.0)], 25);
        let c = KMeans::new(2).with_seed(3).run(&data);
        for (i, row) in data.iter().enumerate() {
            let (nearest_c, _) = nearest(row, c.centroids());
            assert_eq!(c.assignments()[i] as usize, nearest_c);
        }
    }

    #[test]
    fn k_capped_at_data_len() {
        let data = vec![vec![0.0], vec![1.0]];
        let c = KMeans::new(10).run(&data);
        assert_eq!(c.k(), 2);
    }

    #[test]
    fn identical_points_have_zero_inertia() {
        let data = vec![vec![2.0, 2.0]; 8];
        let c = KMeans::new(3).run(&data);
        assert!(c.inertia() < 1e-20);
    }

    #[test]
    fn representatives_are_members_and_near_centroids() {
        let data = blobs(&[(0.0, 0.0), (8.0, 8.0)], 20);
        let c = KMeans::new(2).with_seed(5).run(&data);
        let reps = c.representatives(&data);
        for (cluster, rep) in reps.iter().enumerate() {
            let rep = rep.expect("non-empty cluster");
            assert_eq!(c.assignments()[rep] as usize, cluster);
            // The representative is at least as close as any other member.
            let rd = sq_dist(&data[rep], &c.centroids()[cluster]);
            for (i, row) in data.iter().enumerate() {
                if c.assignments()[i] as usize == cluster {
                    assert!(sq_dist(row, &c.centroids()[cluster]) >= rd - 1e-12);
                }
            }
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let data = blobs(&[(0.0, 0.0), (9.0, 9.0)], 17);
        let c = KMeans::new(2).run(&data);
        let w: f64 = c.weights().iter().sum();
        assert!((w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bic_prefers_true_k() {
        let data = blobs(&[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)], 40);
        let scores: Vec<f64> = (1..=6)
            .map(|k| KMeans::new(k).with_seed(2).run(&data).bic(&data))
            .collect();
        let best_k = 1 + scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best_k, 3, "BIC scores: {scores:?}");
    }

    #[test]
    fn projection_preserves_low_dim_data() {
        let data = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(project(&data, 5, 0), data);
    }

    #[test]
    fn projection_reduces_dim_and_separates_far_points() {
        let a = vec![0.0; 100];
        let mut b = vec![0.0; 100];
        for x in b.iter_mut() {
            *x = 50.0;
        }
        let p = project(&[a, b], 15, 42);
        assert_eq!(p[0].len(), 15);
        assert_eq!(p[1].len(), 15);
        assert!(
            sq_dist(&p[0], &p[1]) > 1.0,
            "projection collapsed distinct points"
        );
    }

    #[test]
    fn projection_is_deterministic_per_seed() {
        let data = vec![vec![1.0; 50], vec![2.0; 50]];
        assert_eq!(project(&data, 10, 7), project(&data, 10, 7));
        assert_ne!(project(&data, 10, 7), project(&data, 10, 8));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_data_panics() {
        let _ = KMeans::new(2).run(&[]);
    }
}
