//! Deterministic campaign-level fault injection (feature `fault-inject`).
//!
//! Builds on [`pgss_ckpt::faults`] (store put/get faults) and adds the
//! campaign-layer fault: **worker panics** targeted at exact cells. A
//! [`FaultPlan`] names cells by `(workload, technique)` identity, so the
//! same cells fault no matter how the parallel claim loop interleaves —
//! plans are order-independent and runs are reproducible.
//!
//! Like the store layer, this module is test-only machinery: it compiles
//! away without the feature, and an installed plan is process-global, so
//! tests that inject faults serialize on the shared
//! [`pgss_ckpt::faults::serialize`] lock (taken by [`install`] and held
//! by the returned guard).
//!
//! ```no_run
//! use pgss::faults::{self, CellPanic, FaultPlan};
//!
//! let _guard = faults::install(FaultPlan {
//!     cell_panics: vec![CellPanic {
//!         workload: "177.mesa".to_string(),
//!         technique: "SMARTS(50000/1000/3000)".to_string(),
//!         times: 1, // transient: first attempt panics, the retry heals it
//!     }],
//!     ..FaultPlan::default()
//! });
//! // run a campaign; the plan clears when _guard drops
//! ```

// Fault injection must never make fault *handling* flaky: no unwraps on
// this path either.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

pub use pgss_ckpt::faults::{injection_log, StoreFaultPlan};

use crate::campaign::INJECTED_PANIC_TAG;

/// One targeted worker-panic fault: the cell for `workload` × `technique`
/// panics on its next `times` attempts, then behaves. `times: u32::MAX`
/// is effectively permanent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellPanic {
    /// Workload name ([`pgss_workloads::Workload::name`]) of the cell.
    pub workload: String,
    /// Technique name ([`crate::Technique::name`]) of the cell.
    pub technique: String,
    /// How many attempts of this cell panic before it heals.
    pub times: u32,
}

/// One targeted worker-stall fault: the cell for `workload` × `technique`
/// blocks inside its next `times` attempts until [`release_stalls`] is
/// called (or the installed plan's guard drops). An empty `workload` or
/// `technique` matches any cell. This is the deterministic stand-in for a
/// wedged worker — the cell's *identity*, not timing, decides who stalls,
/// so lease-reaping tests replay identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellStall {
    /// Workload name of the cell, or `""` to match any workload.
    pub workload: String,
    /// Technique name of the cell, or `""` to match any technique.
    pub technique: String,
    /// How many attempts of this cell stall before it heals.
    pub times: u32,
}

/// A complete campaign fault schedule: targeted worker panics and stalls
/// plus the store-layer plan (failed puts, failed / corrupted / truncated
/// gets).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Cells that panic (see [`CellPanic`]).
    pub cell_panics: Vec<CellPanic>,
    /// Cells that stall until released (see [`CellStall`]).
    pub cell_stalls: Vec<CellStall>,
    /// Store faults, forwarded to [`pgss_ckpt::faults`].
    pub store: StoreFaultPlan,
}

static CELLS: Mutex<Vec<CellPanic>> = Mutex::new(Vec::new());
static STALLS: Mutex<Vec<CellStall>> = Mutex::new(Vec::new());
/// True when stalled cells may proceed. Flipped false by [`install`]ing a
/// plan with stalls, true again by [`release_stalls`] / guard drop.
static STALL_GATE: Mutex<bool> = Mutex::new(true);
static STALL_CV: Condvar = Condvar::new();

fn cells() -> MutexGuard<'static, Vec<CellPanic>> {
    // A panic under this short lock is itself an injected fault; the
    // state remains valid, so recover the guard.
    CELLS.lock().unwrap_or_else(PoisonError::into_inner)
}

fn stalls() -> MutexGuard<'static, Vec<CellStall>> {
    STALLS.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Clears the installed plan (both layers) when dropped, and releases
/// the process-wide fault-injection serialization lock.
pub struct FaultGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        // Wake anything still stalled *before* clearing the schedule, so
        // a test that forgot release_stalls() cannot wedge the process.
        release_stalls();
        cells().clear();
        stalls().clear();
        pgss_ckpt::faults::clear();
    }
}

/// Installs `plan` process-wide and returns a guard that uninstalls it on
/// drop. Takes the shared [`pgss_ckpt::faults::serialize`] lock so
/// concurrent fault-injecting tests (in any crate) cannot interleave
/// plans.
pub fn install(plan: FaultPlan) -> FaultGuard {
    crate::campaign::silence_injected_panic_reports();
    let serial = pgss_ckpt::faults::serialize();
    pgss_ckpt::faults::set_plan(plan.store);
    let stalling = !plan.cell_stalls.is_empty();
    *cells() = plan.cell_panics;
    *stalls() = plan.cell_stalls;
    *STALL_GATE.lock().unwrap_or_else(PoisonError::into_inner) = !stalling;
    FaultGuard { _serial: serial }
}

/// Releases every cell currently blocked (or about to block) in an
/// injected stall. Idempotent; also invoked by [`FaultGuard`] drop.
pub fn release_stalls() {
    *STALL_GATE.lock().unwrap_or_else(PoisonError::into_inner) = true;
    STALL_CV.notify_all();
}

/// Campaign-worker hook: panics (with [`INJECTED_PANIC_TAG`] in the
/// message) if the installed plan targets this cell and has attempts
/// left.
pub(crate) fn maybe_panic_cell(workload: &str, technique: &str) {
    let should_panic = {
        let mut cells = cells();
        match cells
            .iter_mut()
            .find(|c| c.workload == workload && c.technique == technique && c.times > 0)
        {
            Some(cell) => {
                cell.times -= 1;
                true
            }
            None => false,
        }
    };
    if should_panic {
        panic!("{INJECTED_PANIC_TAG} injected worker panic: {workload} × {technique}");
    }
}

/// Campaign-worker hook: blocks until [`release_stalls`] if the installed
/// plan stalls this cell and has attempts left. Runs inside the cell's
/// `catch_unwind`, outside any scheduler lock, so a stalled worker wedges
/// only itself — exactly what a lease watchdog must be able to reap.
pub(crate) fn maybe_stall_cell(workload: &str, technique: &str) {
    let should_stall = {
        let mut stalls = stalls();
        match stalls.iter_mut().find(|c| {
            (c.workload.is_empty() || c.workload == workload)
                && (c.technique.is_empty() || c.technique == technique)
                && c.times > 0
        }) {
            Some(cell) => {
                cell.times -= 1;
                true
            }
            None => false,
        }
    };
    if should_stall {
        let mut released = STALL_GATE.lock().unwrap_or_else(PoisonError::into_inner);
        while !*released {
            released = STALL_CV
                .wait(released)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn plan_targets_exact_cell_and_decrements() {
        let _guard = install(FaultPlan {
            cell_panics: vec![CellPanic {
                workload: "w".to_string(),
                technique: "t".to_string(),
                times: 1,
            }],
            ..FaultPlan::default()
        });
        // Wrong cell: no panic.
        maybe_panic_cell("w", "other");
        maybe_panic_cell("other", "t");
        // Right cell: panics once, then is spent.
        let hit = std::panic::catch_unwind(|| maybe_panic_cell("w", "t"));
        assert!(hit.is_err());
        maybe_panic_cell("w", "t"); // healed
    }

    #[test]
    fn stalled_cell_blocks_until_released_and_wildcards_match() {
        let _guard = install(FaultPlan {
            cell_stalls: vec![CellStall {
                workload: String::new(), // any workload
                technique: "t".to_string(),
                times: 1,
            }],
            ..FaultPlan::default()
        });
        maybe_stall_cell("w", "other"); // wrong technique: no stall
        let worker = std::thread::spawn(|| maybe_stall_cell("anything", "t"));
        // The worker is (about to be) parked; releasing lets it finish.
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(!worker.is_finished(), "cell should be stalled");
        release_stalls();
        worker.join().expect("released worker exits cleanly");
        maybe_stall_cell("anything", "t"); // spent: no stall
    }

    #[test]
    fn guard_drop_clears_both_layers() {
        {
            let _guard = install(FaultPlan {
                cell_panics: vec![CellPanic {
                    workload: "w".to_string(),
                    technique: "t".to_string(),
                    times: u32::MAX,
                }],
                store: StoreFaultPlan {
                    fail_puts: vec![0],
                    ..StoreFaultPlan::default()
                },
                ..FaultPlan::default()
            });
        }
        maybe_panic_cell("w", "t"); // cleared: no panic
    }
}
