//! Deterministic campaign-level fault injection (feature `fault-inject`).
//!
//! Builds on [`pgss_ckpt::faults`] (store put/get faults) and adds the
//! campaign-layer fault: **worker panics** targeted at exact cells. A
//! [`FaultPlan`] names cells by `(workload, technique)` identity, so the
//! same cells fault no matter how the parallel claim loop interleaves —
//! plans are order-independent and runs are reproducible.
//!
//! Like the store layer, this module is test-only machinery: it compiles
//! away without the feature, and an installed plan is process-global, so
//! tests that inject faults serialize on the shared
//! [`pgss_ckpt::faults::serialize`] lock (taken by [`install`] and held
//! by the returned guard).
//!
//! ```no_run
//! use pgss::faults::{self, CellPanic, FaultPlan};
//!
//! let _guard = faults::install(FaultPlan {
//!     cell_panics: vec![CellPanic {
//!         workload: "177.mesa".to_string(),
//!         technique: "SMARTS(50000/1000/3000)".to_string(),
//!         times: 1, // transient: first attempt panics, the retry heals it
//!     }],
//!     ..FaultPlan::default()
//! });
//! // run a campaign; the plan clears when _guard drops
//! ```

// Fault injection must never make fault *handling* flaky: no unwraps on
// this path either.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::sync::{Mutex, MutexGuard, PoisonError};

pub use pgss_ckpt::faults::{injection_log, StoreFaultPlan};

use crate::campaign::INJECTED_PANIC_TAG;

/// One targeted worker-panic fault: the cell for `workload` × `technique`
/// panics on its next `times` attempts, then behaves. `times: u32::MAX`
/// is effectively permanent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellPanic {
    /// Workload name ([`pgss_workloads::Workload::name`]) of the cell.
    pub workload: String,
    /// Technique name ([`crate::Technique::name`]) of the cell.
    pub technique: String,
    /// How many attempts of this cell panic before it heals.
    pub times: u32,
}

/// A complete campaign fault schedule: targeted worker panics plus the
/// store-layer plan (failed puts, failed / corrupted / truncated gets).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Cells that panic (see [`CellPanic`]).
    pub cell_panics: Vec<CellPanic>,
    /// Store faults, forwarded to [`pgss_ckpt::faults`].
    pub store: StoreFaultPlan,
}

static CELLS: Mutex<Vec<CellPanic>> = Mutex::new(Vec::new());

fn cells() -> MutexGuard<'static, Vec<CellPanic>> {
    // A panic under this short lock is itself an injected fault; the
    // state remains valid, so recover the guard.
    CELLS.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Clears the installed plan (both layers) when dropped, and releases
/// the process-wide fault-injection serialization lock.
pub struct FaultGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        cells().clear();
        pgss_ckpt::faults::clear();
    }
}

/// Installs `plan` process-wide and returns a guard that uninstalls it on
/// drop. Takes the shared [`pgss_ckpt::faults::serialize`] lock so
/// concurrent fault-injecting tests (in any crate) cannot interleave
/// plans.
pub fn install(plan: FaultPlan) -> FaultGuard {
    crate::campaign::silence_injected_panic_reports();
    let serial = pgss_ckpt::faults::serialize();
    pgss_ckpt::faults::set_plan(plan.store);
    *cells() = plan.cell_panics;
    FaultGuard { _serial: serial }
}

/// Campaign-worker hook: panics (with [`INJECTED_PANIC_TAG`] in the
/// message) if the installed plan targets this cell and has attempts
/// left.
pub(crate) fn maybe_panic_cell(workload: &str, technique: &str) {
    let should_panic = {
        let mut cells = cells();
        match cells
            .iter_mut()
            .find(|c| c.workload == workload && c.technique == technique && c.times > 0)
        {
            Some(cell) => {
                cell.times -= 1;
                true
            }
            None => false,
        }
    };
    if should_panic {
        panic!("{INJECTED_PANIC_TAG} injected worker panic: {workload} × {technique}");
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn plan_targets_exact_cell_and_decrements() {
        let _guard = install(FaultPlan {
            cell_panics: vec![CellPanic {
                workload: "w".to_string(),
                technique: "t".to_string(),
                times: 1,
            }],
            ..FaultPlan::default()
        });
        // Wrong cell: no panic.
        maybe_panic_cell("w", "other");
        maybe_panic_cell("other", "t");
        // Right cell: panics once, then is spent.
        let hit = std::panic::catch_unwind(|| maybe_panic_cell("w", "t"));
        assert!(hit.is_err());
        maybe_panic_cell("w", "t"); // healed
    }

    #[test]
    fn guard_drop_clears_both_layers() {
        {
            let _guard = install(FaultPlan {
                cell_panics: vec![CellPanic {
                    workload: "w".to_string(),
                    technique: "t".to_string(),
                    times: u32::MAX,
                }],
                store: StoreFaultPlan {
                    fail_puts: vec![0],
                    ..StoreFaultPlan::default()
                },
            });
        }
        maybe_panic_cell("w", "t"); // cleared: no panic
    }
}
