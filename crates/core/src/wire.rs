//! Versioned byte codecs and the canonical campaign artifact.
//!
//! The campaign server persists per-cell results and metric frames in the
//! checkpoint store and must reassemble them — possibly across a server
//! restart — into output **byte-identical** to a direct library run. This
//! module owns both halves of that contract:
//!
//! * binary codecs (on [`pgss_ckpt::codec`]) for [`CellResult`],
//!   [`MetricsFrame`], and failure-ledger entries, versioned by
//!   [`WIRE_FORMAT_VERSION`] so a layout change orphans old records
//!   instead of misreading them;
//! * the *canonical campaign artifact* line formatters behind
//!   [`crate::CampaignReport::canonical_jsonl`], shared verbatim by the
//!   server's report assembly so both sides emit the same bytes.
//!
//! # What the canonical artifact contains
//!
//! A header (cell/failure/retry counts), one line per successful cell in
//! job order (estimate, mode ops, CI, phase summary, driver trace), one
//! line per ledger entry, then the per-cell metric scopes on the pinned
//! `pgss-obs` JSONL schema. It deliberately **excludes** the `"campaign"`
//! metric scope and the ladder/checkpoint-fault accounting: those
//! describe *how* the run was executed (store hits vs. captures, healed
//! faults, wall spans) and legitimately differ between an uninterrupted
//! run and a resumed one, while everything in the artifact is a pure
//! function of the job grid.
//!
//! Span wall times never enter the artifact (scope lines carry counts
//! only — see `pgss_obs`), and floats are emitted with shortest-roundtrip
//! formatting, so bit-identical results produce byte-identical artifacts.

// Decoded records feed campaign reports; a stray unwrap would turn a
// corrupt record into an abort instead of a typed error.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt::Write as _;

use pgss_ckpt::{CodecError, Decoder, Encoder};
use pgss_cpu::ModeOps;
use pgss_obs::{json_f64, json_string, MetricsFrame, SpanStat};
use pgss_stats::{ConfidenceInterval, Histogram, Welford};

use crate::campaign::{CellFailure, CellResult};
use crate::driver::RunTrace;
use crate::estimate::{Estimate, PhaseSummary};

/// Version of every encoding in this module. Bump on any layout change;
/// decoders reject other versions.
pub const WIRE_FORMAT_VERSION: u32 = 1;

fn check_version(d: &mut Decoder<'_>) -> Result<(), CodecError> {
    if d.get_u32()? != WIRE_FORMAT_VERSION {
        return Err(CodecError::Malformed("wire format version mismatch"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Cell results

fn put_estimate(e: &mut Encoder, est: &Estimate) {
    e.put_f64(est.ipc);
    e.put_u64(est.mode_ops.fast_forward);
    e.put_u64(est.mode_ops.functional);
    e.put_u64(est.mode_ops.detailed_warming);
    e.put_u64(est.mode_ops.detailed_measured);
    e.put_u64(est.samples);
    e.put_bool(est.phases.is_some());
    if let Some(p) = &est.phases {
        e.put_u64(p.phases as u64);
        e.put_u64(p.changes);
        e.put_u64_slice(&p.samples_per_phase);
        e.put_u64(p.weights.len() as u64);
        for &w in &p.weights {
            e.put_f64(w);
        }
    }
    e.put_bool(est.ci.is_some());
    if let Some(ci) = &est.ci {
        e.put_f64(ci.mean);
        e.put_f64(ci.half_width);
        e.put_u64(ci.n);
    }
}

fn get_estimate(d: &mut Decoder<'_>) -> Result<Estimate, CodecError> {
    let ipc = d.get_f64()?;
    let mode_ops = ModeOps {
        fast_forward: d.get_u64()?,
        functional: d.get_u64()?,
        detailed_warming: d.get_u64()?,
        detailed_measured: d.get_u64()?,
    };
    let samples = d.get_u64()?;
    let phases = if d.get_bool()? {
        let phases = usize::try_from(d.get_u64()?)
            .map_err(|_| CodecError::Malformed("phase count overflow"))?;
        let changes = d.get_u64()?;
        let samples_per_phase = d.get_u64_slice()?;
        let n = usize::try_from(d.get_u64()?)
            .map_err(|_| CodecError::Malformed("weight count overflow"))?;
        if n > d.remaining() / 8 {
            return Err(CodecError::Truncated);
        }
        let mut weights = Vec::with_capacity(n);
        for _ in 0..n {
            weights.push(d.get_f64()?);
        }
        Some(PhaseSummary {
            phases,
            changes,
            samples_per_phase,
            weights,
        })
    } else {
        None
    };
    let ci = if d.get_bool()? {
        Some(ConfidenceInterval {
            mean: d.get_f64()?,
            half_width: d.get_f64()?,
            n: d.get_u64()?,
        })
    } else {
        None
    };
    Ok(Estimate {
        ipc,
        mode_ops,
        samples,
        phases,
        ci,
    })
}

fn put_trace(e: &mut Encoder, t: &RunTrace) {
    for &s in &t.segments {
        e.put_u64(s);
    }
    e.put_u64(t.truncated_segments);
    e.put_u64(t.samples_taken);
    e.put_u64(t.skipped_ci_met);
    e.put_u64(t.skipped_spacing);
    e.put_u64(t.phases_created);
    e.put_u64(t.phase_changes);
}

fn get_trace(d: &mut Decoder<'_>) -> Result<RunTrace, CodecError> {
    let mut segments = [0u64; 4];
    for s in &mut segments {
        *s = d.get_u64()?;
    }
    Ok(RunTrace {
        segments,
        truncated_segments: d.get_u64()?,
        samples_taken: d.get_u64()?,
        skipped_ci_met: d.get_u64()?,
        skipped_spacing: d.get_u64()?,
        phases_created: d.get_u64()?,
        phase_changes: d.get_u64()?,
    })
}

/// Encodes one completed cell — result plus its (un-annotated) metric
/// frame — as a versioned record payload.
pub fn encode_cell_record(cell: &CellResult, frame: &MetricsFrame) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u32(WIRE_FORMAT_VERSION);
    e.put_str(&cell.workload);
    e.put_str(&cell.technique);
    put_estimate(&mut e, &cell.estimate);
    put_trace(&mut e, &cell.trace);
    put_frame(&mut e, frame);
    e.into_bytes()
}

/// Decodes a record produced by [`encode_cell_record`].
pub fn decode_cell_record(bytes: &[u8]) -> Result<(CellResult, MetricsFrame), CodecError> {
    let mut d = Decoder::new(bytes);
    check_version(&mut d)?;
    let workload = d.get_str()?;
    let technique = d.get_str()?;
    let estimate = get_estimate(&mut d)?;
    let trace = get_trace(&mut d)?;
    let frame = get_frame(&mut d)?;
    d.finish()?;
    Ok((
        CellResult {
            workload,
            technique,
            estimate,
            trace,
        },
        frame,
    ))
}

// ---------------------------------------------------------------------------
// Metric frames

/// Encodes a [`MetricsFrame`] body (no version header — callers embed
/// frames inside versioned records).
///
/// Span **wall times are dropped** (counts survive): wall time is
/// nondeterministic and already excluded from frame equality and the
/// JSONL export, so round-tripping a frame preserves everything those
/// contracts observe.
pub fn put_frame(e: &mut Encoder, frame: &MetricsFrame) {
    e.put_u64(frame.counters.len() as u64);
    for (k, &v) in &frame.counters {
        e.put_str(k);
        e.put_u64(v);
    }
    e.put_u64(frame.spans.len() as u64);
    for (k, s) in &frame.spans {
        e.put_str(k);
        e.put_u64(s.count);
    }
    e.put_u64(frame.dists.len() as u64);
    for (k, w) in &frame.dists {
        e.put_str(k);
        e.put_u64(w.count());
        e.put_f64(w.mean());
        e.put_f64(w.m2());
    }
    e.put_u64(frame.hists.len() as u64);
    for (k, h) in &frame.hists {
        e.put_str(k);
        e.put_f64(h.min());
        e.put_f64(h.max());
        e.put_u64_slice(h.counts());
    }
}

/// Decodes a frame body written by [`put_frame`].
pub fn get_frame(d: &mut Decoder<'_>) -> Result<MetricsFrame, CodecError> {
    let mut frame = MetricsFrame::new();
    for _ in 0..d.get_u64()? {
        let k = d.get_str()?;
        frame.counters.insert(k, d.get_u64()?);
    }
    for _ in 0..d.get_u64()? {
        let k = d.get_str()?;
        frame.spans.insert(
            k,
            SpanStat {
                count: d.get_u64()?,
                total_ns: 0,
            },
        );
    }
    for _ in 0..d.get_u64()? {
        let k = d.get_str()?;
        let n = d.get_u64()?;
        let mean = d.get_f64()?;
        let m2 = d.get_f64()?;
        frame.dists.insert(k, Welford::from_parts(n, mean, m2));
    }
    for _ in 0..d.get_u64()? {
        let k = d.get_str()?;
        let min = d.get_f64()?;
        let max = d.get_f64()?;
        let counts = d.get_u64_slice()?;
        if counts.is_empty() || !(min.is_finite() && max.is_finite() && min < max) {
            return Err(CodecError::Malformed("histogram shape"));
        }
        frame
            .hists
            .insert(k, Histogram::from_parts(min, max, counts));
    }
    Ok(frame)
}

// ---------------------------------------------------------------------------
// Failure-ledger entries

/// Encodes one failure-ledger entry. The cause is stored **rendered**
/// (its `Display` form): the ledger's purpose downstream of a campaign is
/// the human-readable report line, and rendering at fail time keeps the
/// record format independent of the `CellError` variant set.
pub fn put_failure(e: &mut Encoder, f: &CellFailure) {
    e.put_u64(f.job_index as u64);
    e.put_str(&f.workload);
    e.put_str(&f.technique);
    e.put_u32(f.attempts);
    e.put_str(&f.error.to_string());
}

/// A decoded failure-ledger entry; the error is the rendered cause (see
/// [`put_failure`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFailure {
    /// Index of the failed cell in the campaign's job grid.
    pub job_index: usize,
    /// Workload name of the failed cell.
    pub workload: String,
    /// Technique name of the failed cell.
    pub technique: String,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// Rendered terminal error.
    pub error: String,
}

/// Decodes an entry written by [`put_failure`].
pub fn get_failure(d: &mut Decoder<'_>) -> Result<WireFailure, CodecError> {
    Ok(WireFailure {
        job_index: usize::try_from(d.get_u64()?)
            .map_err(|_| CodecError::Malformed("job index overflow"))?,
        workload: d.get_str()?,
        technique: d.get_str()?,
        attempts: d.get_u32()?,
        error: d.get_str()?,
    })
}

// ---------------------------------------------------------------------------
// Canonical campaign artifact

/// The artifact's header line: campaign-level counts.
pub fn canonical_header(cells: usize, failed: usize, retries: u64) -> String {
    format!(
        "{{\"v\":{WIRE_FORMAT_VERSION},\"kind\":\"campaign\",\
         \"cells\":{cells},\"failed\":{failed},\"retries\":{retries}}}"
    )
}

/// One successful cell's artifact line: the full estimate and driver
/// trace, floats in shortest-roundtrip form.
pub fn canonical_cell_line(cell: &CellResult) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"v\":{WIRE_FORMAT_VERSION},\"kind\":\"cell\",");
    out.push_str("\"workload\":");
    json_string(&mut out, &cell.workload);
    out.push_str(",\"technique\":");
    json_string(&mut out, &cell.technique);
    out.push_str(",\"ipc\":");
    json_f64(&mut out, cell.estimate.ipc);
    let ops = cell.estimate.mode_ops;
    let _ = write!(
        out,
        ",\"mode_ops\":{{\"fast_forward\":{},\"functional\":{},\"warm\":{},\"detail\":{}}}",
        ops.fast_forward, ops.functional, ops.detailed_warming, ops.detailed_measured
    );
    let _ = write!(out, ",\"samples\":{}", cell.estimate.samples);
    out.push_str(",\"ci\":");
    match &cell.estimate.ci {
        Some(ci) => {
            out.push_str("{\"mean\":");
            json_f64(&mut out, ci.mean);
            out.push_str(",\"half_width\":");
            json_f64(&mut out, ci.half_width);
            let _ = write!(out, ",\"n\":{}}}", ci.n);
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"phases\":");
    match &cell.estimate.phases {
        Some(p) => {
            let _ = write!(out, "{{\"phases\":{},\"changes\":{}", p.phases, p.changes);
            out.push_str(",\"samples_per_phase\":[");
            for (i, s) in p.samples_per_phase.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{s}");
            }
            out.push_str("],\"weights\":[");
            for (i, w) in p.weights.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json_f64(&mut out, *w);
            }
            out.push_str("]}");
        }
        None => out.push_str("null"),
    }
    let t = &cell.trace;
    let _ = write!(
        out,
        ",\"trace\":{{\"segments\":[{},{},{},{}],\"truncated\":{},\"samples_taken\":{},\
         \"skipped_ci_met\":{},\"skipped_spacing\":{},\"phases_created\":{},\
         \"phase_changes\":{}}}}}",
        t.segments[0],
        t.segments[1],
        t.segments[2],
        t.segments[3],
        t.truncated_segments,
        t.samples_taken,
        t.skipped_ci_met,
        t.skipped_spacing,
        t.phases_created,
        t.phase_changes
    );
    out
}

/// One failure-ledger artifact line; `error` is the rendered cause.
pub fn canonical_failure_line(
    job_index: usize,
    workload: &str,
    technique: &str,
    attempts: u32,
    error: &str,
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"v\":{WIRE_FORMAT_VERSION},\"kind\":\"failure\",\"job\":{job_index},\"workload\":"
    );
    json_string(&mut out, workload);
    out.push_str(",\"technique\":");
    json_string(&mut out, technique);
    let _ = write!(out, ",\"attempts\":{attempts},\"error\":");
    json_string(&mut out, error);
    out.push('}');
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample_cell() -> CellResult {
        CellResult {
            workload: "164.gzip".to_string(),
            technique: "SMARTS(50k)".to_string(),
            estimate: Estimate {
                ipc: 1.2345678901234567,
                mode_ops: ModeOps {
                    fast_forward: 10,
                    functional: 1_000_000,
                    detailed_warming: 3_000,
                    detailed_measured: 1_000,
                },
                samples: 42,
                phases: Some(PhaseSummary {
                    phases: 3,
                    changes: 17,
                    samples_per_phase: vec![10, 20, 12],
                    weights: vec![0.5, 0.25, 0.25],
                }),
                ci: Some(ConfidenceInterval {
                    mean: 1.23,
                    half_width: 0.04,
                    n: 42,
                }),
            },
            trace: RunTrace {
                segments: [1, 200, 40, 40],
                truncated_segments: 1,
                samples_taken: 42,
                skipped_ci_met: 3,
                skipped_spacing: 5,
                phases_created: 3,
                phase_changes: 17,
            },
        }
    }

    fn sample_frame() -> MetricsFrame {
        let mut f = MetricsFrame::new();
        f.add("driver.ops.functional", 1_000_000);
        f.spans.insert(
            "cell.run".to_string(),
            SpanStat {
                count: 1,
                total_ns: 987,
            },
        );
        f.dists
            .insert("ipc".to_string(), [1.0, 1.5, 2.0].into_iter().collect());
        let mut h = Histogram::new(0.0, 2.0, 4);
        h.add(1.1);
        f.hists.insert("share".to_string(), h);
        f
    }

    #[test]
    fn cell_record_roundtrips() {
        let cell = sample_cell();
        let frame = sample_frame();
        let bytes = encode_cell_record(&cell, &frame);
        let (cell2, frame2) = decode_cell_record(&bytes).unwrap();
        assert_eq!(cell, cell2);
        // Frame equality ignores span wall time, which the codec drops.
        assert_eq!(frame, frame2);
        assert_eq!(frame2.span("cell.run").unwrap().total_ns, 0);
        assert_eq!(
            frame.dists["ipc"].mean().to_bits(),
            frame2.dists["ipc"].mean().to_bits()
        );
    }

    #[test]
    fn cell_record_rejects_version_and_truncation() {
        let bytes = encode_cell_record(&sample_cell(), &sample_frame());
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(decode_cell_record(&bad).is_err());
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_cell_record(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn failure_roundtrips() {
        let f = CellFailure {
            job_index: 7,
            workload: "177.mesa".to_string(),
            technique: "PGSS".to_string(),
            attempts: 2,
            error: crate::campaign::CellError::Panicked("boom".to_string()),
        };
        let mut e = Encoder::new();
        put_failure(&mut e, &f);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = get_failure(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back.job_index, 7);
        assert_eq!(back.error, "technique panicked: boom");
        assert_eq!(
            canonical_failure_line(
                back.job_index,
                &back.workload,
                &back.technique,
                back.attempts,
                &back.error
            ),
            canonical_failure_line(7, "177.mesa", "PGSS", 2, &f.error.to_string())
        );
    }

    #[test]
    fn canonical_lines_are_valid_shapes() {
        let header = canonical_header(9, 1, 2);
        assert!(header.starts_with("{\"v\":1,\"kind\":\"campaign\""));
        assert!(header.contains("\"cells\":9"));
        let line = canonical_cell_line(&sample_cell());
        assert!(line.contains("\"workload\":\"164.gzip\""));
        assert!(line.contains("\"segments\":[1,200,40,40]"));
        assert!(line.ends_with("}}"));
        // Bit-identical estimates produce byte-identical lines.
        assert_eq!(line, canonical_cell_line(&sample_cell()));
        let mut other = sample_cell();
        other.estimate.ipc = f64::from_bits(other.estimate.ipc.to_bits() ^ 1);
        assert_ne!(line, canonical_cell_line(&other));
    }
}
