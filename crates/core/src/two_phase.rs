//! Two-phase stratified sampling (Ekman & Stenström, ISPASS 2005): a cheap
//! pilot pass estimates each stratum's variance, then the remaining detail
//! budget is Neyman-allocated where variance actually lives.

use std::collections::BTreeSet;

use pgss_cpu::{MachineConfig, Mode};
use pgss_stats::{neyman_allocation, stratified_variance, ConfidenceInterval, Welford, Z_95};
use pgss_workloads::Workload;

use crate::ckpt::SimContext;
use crate::driver::{
    Directive, RunTrace, SamplingPolicy, Segment, SegmentOutcome, Signature, SimDriver, Track,
};
use crate::estimate::{Estimate, PhaseSummary, Technique};
use crate::phase::PhaseTable;

/// Two-phase stratified sampling over online phase strata:
///
/// 1. a **classification pass** (functional, signature-tracked) assigns every
///    `ff_ops` interval to a phase stratum, exactly as PGSS's classifier
///    would;
/// 2. a **pilot pass** detail-simulates `pilot_per_stratum` samples per
///    stratum (spread evenly over the stratum's occurrences), yielding a
///    first per-stratum CPI variance estimate;
/// 3. the remaining `budget` is split by **Neyman allocation** —
///    `n_h ∝ W_h·s_h` — so high-weight, high-variance strata get the extra
///    samples, and a **main pass** simulates them;
/// 4. the estimate composes per-stratum means by instruction weight, with a
///    proper post-allocation stratified 95 % interval
///    (`Σ W_h²·s_h²/n_h`, [`pgss_stats::stratified_variance`]).
///
/// Unlike PGSS the detail budget is **fixed up front**; the technique's bet
/// is that spending it where the pilot saw variance beats PGSS's per-phase
/// stopping rule at equal coverage. The statistical-validation sweep
/// adjudicates that bet empirically.
///
/// # Example
///
/// ```no_run
/// use pgss::{Technique, TwoPhaseStratified};
///
/// let est = TwoPhaseStratified::new().run(&pgss_workloads::gzip(0.05));
/// assert!(est.ci.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPhaseStratified {
    /// Stratification interval (the classifier's BBV period).
    pub ff_ops: u64,
    /// Phase-change threshold in radians.
    pub threshold_rad: f64,
    /// Measured detailed instructions per sample.
    pub unit_ops: u64,
    /// Detailed-warming instructions before each sample.
    pub warm_ops: u64,
    /// Pilot (phase-1) samples per stratum.
    pub pilot_per_stratum: u64,
    /// Total sample budget across both phases; the pilot spends
    /// `strata × pilot_per_stratum` of it and Neyman allocation splits the
    /// rest.
    pub budget: u64,
    /// Seed choosing the five hashed-BBV address bits.
    pub hash_seed: u64,
    /// Phase-signature family the classifier runs on.
    pub signature: Signature,
}

impl Default for TwoPhaseStratified {
    fn default() -> TwoPhaseStratified {
        TwoPhaseStratified {
            ff_ops: 1_000_000,
            threshold_rad: crate::threshold(0.05),
            unit_ops: 1_000,
            warm_ops: 3_000,
            pilot_per_stratum: 3,
            budget: 60,
            hash_seed: 0x5047_5353,
            signature: Signature::Bbv,
        }
    }
}

impl TwoPhaseStratified {
    /// The defaults above (1M-op strata, 3 pilot samples, budget 60).
    pub fn new() -> TwoPhaseStratified {
        TwoPhaseStratified::default()
    }
}

/// The classification pass: one BBV interval per `ff_ops`, phase per
/// complete interval.
struct ClassifyPolicy {
    ff_ops: u64,
    table: PhaseTable,
    interval_phases: Vec<usize>,
    done: bool,
}

impl SamplingPolicy for ClassifyPolicy {
    fn next(&mut self, _trace: &mut RunTrace) -> Directive {
        if self.done {
            Directive::Finish
        } else {
            Directive::Run(Segment::with_bbv(Mode::Functional, self.ff_ops))
        }
    }

    fn observe(&mut self, outcome: &SegmentOutcome, trace: &mut RunTrace) {
        if outcome.complete() {
            let bbv = outcome
                .bbv
                .as_ref()
                .expect("classify intervals close a BBV");
            let c = self.table.classify(bbv.hashed(), outcome.ops);
            if c.created {
                trace.phases_created += 1;
            }
            self.interval_phases.push(c.phase);
        }
        if outcome.halted || outcome.ops == 0 {
            self.done = true;
        }
    }
}

/// A replay pass visiting a sorted set of interval indices: functional
/// fast-forward to each interval's start, then a warm + measured sample at
/// its head. Shared by the pilot and main passes (and by
/// [`crate::RankedSet`]'s measure pass).
pub(crate) struct PointReplayPolicy {
    pub ff_ops: u64,
    pub warm_ops: u64,
    pub unit_ops: u64,
    /// Interval indices to sample, sorted ascending.
    pub points: Vec<usize>,
    /// Index into `points` of the sample being worked on.
    idx: usize,
    /// The machine's current absolute op position.
    cursor: u64,
    /// Whether the warm-up for the current point has run.
    warmed: bool,
    /// CPI per point, aligned with `points` (`NaN` until measured).
    pub cpis: Vec<f64>,
    done: bool,
}

impl PointReplayPolicy {
    pub fn new(ff_ops: u64, warm_ops: u64, unit_ops: u64, points: Vec<usize>) -> PointReplayPolicy {
        assert!(
            warm_ops + unit_ops <= ff_ops,
            "a sample (warm {warm_ops} + unit {unit_ops}) must fit inside one interval ({ff_ops})"
        );
        let n = points.len();
        PointReplayPolicy {
            ff_ops,
            warm_ops,
            unit_ops,
            points,
            idx: 0,
            cursor: 0,
            warmed: false,
            cpis: vec![f64::NAN; n],
            done: false,
        }
    }
}

impl SamplingPolicy for PointReplayPolicy {
    fn next(&mut self, _trace: &mut RunTrace) -> Directive {
        if self.done {
            return Directive::Finish;
        }
        match self.points.get(self.idx) {
            None => Directive::Finish,
            Some(&p) => {
                let start = p as u64 * self.ff_ops;
                if self.cursor < start {
                    Directive::Run(Segment::new(Mode::Functional, start - self.cursor))
                } else if !self.warmed {
                    Directive::Run(Segment::new(Mode::DetailedWarming, self.warm_ops))
                } else {
                    Directive::Run(Segment::new(Mode::DetailedMeasured, self.unit_ops))
                }
            }
        }
    }

    fn observe(&mut self, outcome: &SegmentOutcome, trace: &mut RunTrace) {
        self.cursor += outcome.ops;
        match outcome.segment.mode {
            Mode::Functional => {}
            Mode::DetailedWarming => self.warmed = true,
            _ => {
                if outcome.complete() {
                    self.cpis[self.idx] = outcome.cpi();
                    trace.samples_taken += 1;
                }
                self.idx += 1;
                self.warmed = false;
            }
        }
        if outcome.halted {
            self.done = true;
        }
    }
}

/// Picks `k` entries spread evenly over `list` (all of `list` when
/// `k >= len`). Deterministic; preserves ascending order of the input.
fn spread(list: &[usize], k: u64) -> Vec<usize> {
    let len = list.len();
    if k as usize >= len {
        return list.to_vec();
    }
    (0..k)
        .map(|i| list[((2 * i as usize + 1) * len) / (2 * k as usize)])
        .collect()
}

impl Technique for TwoPhaseStratified {
    fn name(&self) -> String {
        let period = if self.ff_ops.is_multiple_of(1_000_000) {
            format!("{}M", self.ff_ops / 1_000_000)
        } else {
            format!("{}k", self.ff_ops / 1_000)
        };
        format!(
            "TwoPhase{}({}/b{})",
            self.signature.name_suffix(),
            period,
            self.budget
        )
    }

    fn run_with(&self, workload: &Workload, config: &MachineConfig) -> Estimate {
        self.run_traced(workload, config).0
    }

    fn run_traced(&self, workload: &Workload, config: &MachineConfig) -> (Estimate, RunTrace) {
        self.run_traced_ctx(workload, config, &SimContext::none())
    }

    fn tracks(&self) -> Vec<Track> {
        vec![self.signature.hashed_track(self.hash_seed), Track::None]
    }

    fn run_traced_ctx(
        &self,
        workload: &Workload,
        config: &MachineConfig,
        ctx: &SimContext,
    ) -> (Estimate, RunTrace) {
        assert!(
            self.ff_ops > 0 && self.unit_ops > 0,
            "ff_ops and unit_ops must be positive"
        );
        // Pass 1: stratify every interval (charged; it is functional-only).
        let mut classify = SimDriver::new(
            workload,
            config,
            self.signature.hashed_track(self.hash_seed),
        );
        ctx.bind(&mut classify);
        let mut cp = ClassifyPolicy {
            ff_ops: self.ff_ops,
            table: PhaseTable::new(self.threshold_rad),
            interval_phases: Vec::new(),
            done: false,
        };
        classify.run(&mut cp);
        let ClassifyPolicy {
            table,
            interval_phases,
            ..
        } = cp;
        assert!(
            !interval_phases.is_empty(),
            "workload shorter than one stratification interval"
        );
        let mut trace = *classify.trace();
        trace.phase_changes = table.changes();
        let mut mode_ops = classify.mode_ops();

        let num_strata = table.phases().len();
        let mut occurrences: Vec<Vec<usize>> = vec![Vec::new(); num_strata];
        for (i, &p) in interval_phases.iter().enumerate() {
            occurrences[p].push(i);
        }

        // Pass 2: the pilot — `pilot_per_stratum` samples per stratum,
        // spread evenly over its occurrences.
        let pilot_points: Vec<Vec<usize>> = occurrences
            .iter()
            .map(|occ| spread(occ, self.pilot_per_stratum))
            .collect();
        let mut run_pass = |points: Vec<usize>| -> Vec<(usize, f64)> {
            let mut replay = SimDriver::new(workload, config, Track::None);
            ctx.bind(&mut replay);
            let mut policy =
                PointReplayPolicy::new(self.ff_ops, self.warm_ops, self.unit_ops, points);
            replay.run(&mut policy);
            trace.merge(replay.trace());
            let pass_ops = replay.mode_ops();
            mode_ops.fast_forward += pass_ops.fast_forward;
            mode_ops.functional += pass_ops.functional;
            mode_ops.detailed_warming += pass_ops.detailed_warming;
            mode_ops.detailed_measured += pass_ops.detailed_measured;
            policy
                .points
                .iter()
                .zip(&policy.cpis)
                .filter(|(_, cpi)| cpi.is_finite())
                .map(|(&p, &cpi)| (p, cpi))
                .collect()
        };
        let mut flat: Vec<usize> = pilot_points.iter().flatten().copied().collect();
        flat.sort_unstable();
        let pilot_results = run_pass(flat);

        let mut stats: Vec<Welford> = vec![Welford::new(); num_strata];
        for &(point, cpi) in &pilot_results {
            stats[interval_phases[point]].push(cpi);
        }

        // Phase 2 allocation: Neyman over (weight, pilot stddev), clamped to
        // each stratum's unsampled occurrences.
        let weights = table.weights();
        let pilot_spent: u64 = pilot_points.iter().map(|p| p.len() as u64).sum();
        let main_budget = self.budget.saturating_sub(pilot_spent);
        let alloc_input: Vec<(f64, f64)> = weights
            .iter()
            .zip(&stats)
            .map(|(&w, s)| (w, s.sample_stddev()))
            .collect();
        let alloc = neyman_allocation(main_budget, &alloc_input);
        let mut main_flat: Vec<usize> = Vec::new();
        for ((occ, pilot), &n) in occurrences.iter().zip(&pilot_points).zip(&alloc) {
            let taken: BTreeSet<usize> = pilot.iter().copied().collect();
            let remaining: Vec<usize> =
                occ.iter().copied().filter(|i| !taken.contains(i)).collect();
            main_flat.extend(spread(&remaining, n));
        }
        main_flat.sort_unstable();
        let main_results = run_pass(main_flat);
        for &(point, cpi) in &main_results {
            stats[interval_phases[point]].push(cpi);
        }

        // Compose the estimate and its post-allocation stratified interval.
        let global = {
            let mut all = Welford::new();
            for s in &stats {
                all.merge(s);
            }
            all
        };
        assert!(
            global.count() > 0,
            "two-phase sampling took no samples; raise budget or shrink ff_ops"
        );
        let cpi: f64 = stats
            .iter()
            .zip(&weights)
            .map(|(s, &w)| {
                let m = if s.count() > 0 {
                    s.mean()
                } else {
                    global.mean()
                };
                w * m
            })
            .sum();
        // Strata with a single sample contribute no measured variance term —
        // the same optimism under partial coverage as PGSS's composed
        // interval, which the validation sweep tolerates by design.
        let strata_var: Vec<(f64, f64, u64)> = stats
            .iter()
            .zip(&weights)
            .map(|(s, &w)| (w, s.sample_variance(), s.count()))
            .collect();
        let total_samples = global.count();
        let cpi_ci = ConfidenceInterval {
            mean: cpi,
            half_width: if total_samples < 2 {
                f64::INFINITY
            } else {
                Z_95 * stratified_variance(&strata_var).sqrt()
            },
            n: total_samples,
        };

        let estimate = Estimate {
            ipc: 1.0 / cpi,
            mode_ops,
            samples: total_samples,
            phases: Some(PhaseSummary {
                phases: num_strata,
                changes: table.changes(),
                samples_per_phase: stats.iter().map(|s| s.count()).collect(),
                weights,
            }),
            ci: Some(crate::estimate::ipc_interval_from_cpi(cpi_ci)),
        };
        (estimate, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::relative_error;
    use crate::FullDetailed;

    fn scaled() -> TwoPhaseStratified {
        TwoPhaseStratified {
            ff_ops: 100_000,
            warm_ops: 1_500,
            unit_ops: 500,
            budget: 40,
            ..TwoPhaseStratified::default()
        }
    }

    #[test]
    fn spread_is_even_and_deterministic() {
        let list: Vec<usize> = (0..10).collect();
        assert_eq!(spread(&list, 2), vec![2, 7]);
        assert_eq!(spread(&list, 3), vec![1, 5, 8]);
        assert_eq!(spread(&list, 20), list);
        assert_eq!(spread(&[], 3), Vec::<usize>::new());
    }

    #[test]
    fn stays_within_budget() {
        let w = pgss_workloads::gzip(0.02);
        let t = scaled();
        let est = t.run(&w);
        assert!(est.samples <= t.budget, "{} samples", est.samples);
        assert!(est.samples > 0);
        assert!(
            est.detailed_ops() <= t.budget * (t.warm_ops + t.unit_ops),
            "detail {}",
            est.detailed_ops()
        );
    }

    #[test]
    fn reasonable_accuracy_with_finite_ci() {
        let w = pgss_workloads::wupwise(0.02);
        let truth = FullDetailed::new().ground_truth(&w);
        let est = scaled().run(&w);
        let err = relative_error(est.ipc, truth.ipc);
        assert!(err < 0.2, "two-phase error {err:.4}");
        let ci = est.ci.expect("stratified interval");
        assert!(ci.half_width.is_finite() && ci.half_width > 0.0);
    }

    #[test]
    fn pilot_variance_steers_allocation() {
        // gzip's phases differ in CPI variance; the unstable one must end
        // up with more samples than the stable ones beyond the pilot floor.
        let w = pgss_workloads::gzip(0.02);
        let est = scaled().run(&w);
        let p = est.phases.unwrap();
        let max = *p.samples_per_phase.iter().max().unwrap();
        let min = *p.samples_per_phase.iter().min().unwrap();
        assert!(max > min, "allocation flat: {:?}", p.samples_per_phase);
    }

    #[test]
    fn deterministic() {
        let w = pgss_workloads::parser(0.01);
        let a = scaled().run(&w);
        let b = scaled().run(&w);
        assert_eq!(a, b);
    }

    #[test]
    fn name_encodes_parameters() {
        assert_eq!(TwoPhaseStratified::new().name(), "TwoPhase(1M/b60)");
        assert_eq!(
            TwoPhaseStratified {
                signature: Signature::Mav,
                ..scaled()
            }
            .name(),
            "TwoPhase-MAV(100k/b40)"
        );
    }
}
