//! Parallel campaign runner: fan a workload × technique matrix across
//! threads.
//!
//! The paper's figures are all *campaigns* — every benchmark in the suite
//! run under every technique under comparison. Because a technique run is
//! "construct [`crate::driver::SimDriver`]s, run policies" with no shared
//! mutable state, cells are embarrassingly parallel: workers claim jobs
//! from an atomic counter and results are returned **in job order**
//! regardless of thread count or scheduling, so campaign output is
//! deterministic and directly comparable across runs.
//!
//! # Example
//!
//! ```no_run
//! use pgss::{campaign, PgssSim, Smarts, Technique};
//!
//! let workloads = vec![pgss_workloads::gzip(0.05), pgss_workloads::mesa(0.05)];
//! let smarts = Smarts::new();
//! let pgss = PgssSim::new();
//! let techniques: Vec<&(dyn Technique + Sync)> = vec![&smarts, &pgss];
//! let jobs = campaign::grid(&workloads, &techniques, Default::default());
//! for cell in campaign::run(&jobs) {
//!     println!("{} × {}: {:.3} IPC", cell.workload, cell.technique, cell.estimate.ipc);
//! }
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use pgss_ckpt::Store;
use pgss_cpu::MachineConfig;
use pgss_workloads::Workload;

use crate::ckpt::{CheckpointLadder, LadderReport, LadderSpec, SimContext};
use crate::driver::{RunTrace, Track};
use crate::estimate::{Estimate, Technique};

/// One campaign cell: a technique applied to a workload on a machine
/// configuration.
///
/// Jobs borrow their workload and technique, so a campaign over a big
/// matrix shares one copy of each workload's program and memory image
/// across every worker thread.
#[derive(Clone, Copy)]
pub struct Job<'a> {
    /// The workload to simulate.
    pub workload: &'a Workload,
    /// The sampling technique to run. `Sync` because several workers may
    /// read the (immutable) technique parameters concurrently.
    pub technique: &'a (dyn Technique + Sync),
    /// Machine configuration for this cell, enabling design-space sweeps
    /// where the configuration varies per cell.
    pub config: MachineConfig,
}

impl<'a> Job<'a> {
    /// A job with the default machine configuration.
    pub fn new(workload: &'a Workload, technique: &'a (dyn Technique + Sync)) -> Job<'a> {
        Job {
            workload,
            technique,
            config: MachineConfig::default(),
        }
    }
}

/// One completed campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// [`Workload`] name.
    pub workload: String,
    /// [`Technique::name`] of the technique that ran.
    pub technique: String,
    /// The technique's estimate.
    pub estimate: Estimate,
    /// What the technique's driver passes executed.
    pub trace: RunTrace,
}

/// Builds the full `workloads × techniques` matrix in workload-major order
/// (all techniques of the first workload, then the second, …) with one
/// shared machine configuration.
pub fn grid<'a>(
    workloads: &'a [Workload],
    techniques: &'a [&'a (dyn Technique + Sync)],
    config: MachineConfig,
) -> Vec<Job<'a>> {
    workloads
        .iter()
        .flat_map(|w| {
            techniques.iter().map(move |&t| Job {
                workload: w,
                technique: t,
                config,
            })
        })
        .collect()
}

/// Worker-thread count for [`run`] and [`run_checkpointed`]: the
/// `PGSS_WORKERS` environment variable when it parses as a positive
/// integer, otherwise the host's available parallelism.
pub fn worker_threads() -> usize {
    if let Some(n) = std::env::var("PGSS_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `jobs` on [`worker_threads`] threads. See [`run_on`].
pub fn run(jobs: &[Job<'_>]) -> Vec<CellResult> {
    run_on(jobs, worker_threads())
}

/// Runs `jobs` on `threads` worker threads, returning one [`CellResult`]
/// per job **in job order** — output is identical for any thread count.
///
/// Workers claim the next unclaimed job from an atomic cursor, so long
/// cells (FullDetailed on the largest workload) never leave other workers
/// idle behind a static partition.
///
/// # Panics
///
/// Panics if `threads` is zero, or if a technique panics (the panic is
/// propagated once all workers have stopped).
pub fn run_on(jobs: &[Job<'_>], threads: usize) -> Vec<CellResult> {
    assert!(threads > 0, "campaign needs at least one worker thread");
    if jobs.is_empty() {
        return Vec::new();
    }
    let threads = threads.min(jobs.len());
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, CellResult)> = Vec::with_capacity(jobs.len());
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        let (estimate, trace) = job.technique.run_traced(job.workload, &job.config);
                        local.push((
                            i,
                            CellResult {
                                workload: job.workload.name().to_string(),
                                technique: job.technique.name(),
                                estimate,
                                trace,
                            },
                        ));
                    }
                    local
                })
            })
            .collect();
        for worker in workers {
            indexed.extend(worker.join().expect("campaign worker panicked"));
        }
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, cell)| cell).collect()
}

/// Runs `jobs` with checkpoint acceleration: each distinct
/// (workload, config) group's shared functional fast-forward prefix is
/// captured **once** into a [`CheckpointLadder`] (rungs every `stride`
/// retired ops, carrying every BBV track the group's techniques declare
/// via [`Technique::tracks`]) and fanned out to all of the group's cells,
/// whose drivers then restore instead of re-executing functional
/// stretches.
///
/// Results are **identical** to [`run`] on the same jobs — estimates,
/// traces, ordering — because driver jumps are bit-exact and logically
/// charged; only the physical work changes, summarised in the returned
/// [`LadderReport`] (capture cost, jumps, skipped vs. executed ops, and
/// [`LadderReport::executed_ratio`]).
///
/// With a [`Store`], ladders are read from / written back to disk, so a
/// re-run of the same campaign (same workloads, configs, stride, tracks,
/// snapshot format) skips capture entirely; corrupt or stale records
/// silently fall back to capture. Groups are processed sequentially so at
/// most one workload's ladder is resident; cells within a group run on
/// [`worker_threads`] threads.
///
/// # Panics
///
/// Panics if `stride` is zero or a technique panics.
pub fn run_checkpointed(
    jobs: &[Job<'_>],
    stride: u64,
    store: Option<&Store>,
) -> (Vec<CellResult>, LadderReport) {
    let mut report = LadderReport::default();
    if jobs.is_empty() {
        return (Vec::new(), report);
    }
    let threads = worker_threads();
    // Group cells sharing a workload and configuration; each group shares
    // one ladder.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        match groups.iter_mut().find(|g| {
            let j = &jobs[g[0]];
            std::ptr::eq(j.workload, job.workload) && j.config == job.config
        }) {
            Some(g) => g.push(i),
            None => groups.push(vec![i]),
        }
    }
    let mut indexed: Vec<(usize, CellResult)> = Vec::with_capacity(jobs.len());
    for group in &groups {
        let first = &jobs[group[0]];
        let mut hashed_seeds: Vec<u64> = Vec::new();
        let mut with_full = false;
        for &i in group {
            for t in jobs[i].technique.tracks() {
                match t {
                    Track::Hashed(s) if !hashed_seeds.contains(&s) => hashed_seeds.push(s),
                    Track::Full => with_full = true,
                    _ => {}
                }
            }
        }
        let spec = LadderSpec {
            stride,
            hashed_seeds,
            with_full,
        };
        let ladder = Arc::new(match store {
            Some(st) => CheckpointLadder::load_or_capture(st, first.workload, &first.config, &spec),
            None => CheckpointLadder::capture(first.workload, &first.config, &spec),
        });
        let ctx = SimContext::with_ladder(Arc::clone(&ladder));
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let workers: Vec<_> = (0..threads.min(group.len()))
                .map(|_| {
                    let (cursor, ctx) = (&cursor, &ctx);
                    s.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let k = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&i) = group.get(k) else { break };
                            let job = &jobs[i];
                            let (estimate, trace) =
                                job.technique.run_traced_ctx(job.workload, &job.config, ctx);
                            local.push((
                                i,
                                CellResult {
                                    workload: job.workload.name().to_string(),
                                    technique: job.technique.name(),
                                    estimate,
                                    trace,
                                },
                            ));
                        }
                        local
                    })
                })
                .collect();
            for worker in workers {
                indexed.extend(worker.join().expect("campaign worker panicked"));
            }
        });
        report.merge(&ladder.report());
    }
    indexed.sort_by_key(|&(i, _)| i);
    (indexed.into_iter().map(|(_, cell)| cell).collect(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PgssSim, Smarts, TurboSmarts};

    fn suite() -> Vec<Workload> {
        vec![
            pgss_workloads::gzip(0.01),
            pgss_workloads::mesa(0.01),
            pgss_workloads::twolf(0.01),
        ]
    }

    fn techniques() -> (Smarts, TurboSmarts, PgssSim) {
        let smarts = Smarts {
            period_ops: 50_000,
            ..Smarts::default()
        };
        (
            smarts,
            TurboSmarts {
                smarts,
                ..TurboSmarts::default()
            },
            PgssSim {
                ff_ops: 50_000,
                spacing_ops: 50_000,
                ..PgssSim::default()
            },
        )
    }

    #[test]
    fn grid_is_workload_major() {
        let workloads = suite();
        let (smarts, turbo, pgss) = techniques();
        let techs: Vec<&(dyn Technique + Sync)> = vec![&smarts, &turbo, &pgss];
        let jobs = grid(&workloads, &techs, MachineConfig::default());
        assert_eq!(jobs.len(), 9);
        assert_eq!(jobs[0].workload.name(), "164.gzip");
        assert_eq!(jobs[2].workload.name(), "164.gzip");
        assert_eq!(jobs[3].workload.name(), "177.mesa");
        assert_eq!(jobs[1].technique.name(), turbo.name());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let workloads = suite();
        let (smarts, turbo, pgss) = techniques();
        let techs: Vec<&(dyn Technique + Sync)> = vec![&smarts, &turbo, &pgss];
        let jobs = grid(&workloads, &techs, MachineConfig::default());
        let serial = run_on(&jobs, 1);
        let parallel = run_on(&jobs, 4);
        assert_eq!(serial, parallel);
        let names: Vec<_> = serial
            .iter()
            .map(|c| (c.workload.as_str(), c.technique.clone()))
            .collect();
        assert_eq!(names[0].0, "164.gzip");
        assert_eq!(names[8].0, "300.twolf");
    }

    #[test]
    fn cells_match_direct_runs() {
        let w = pgss_workloads::gzip(0.01);
        let (smarts, _, _) = techniques();
        let jobs = vec![Job::new(&w, &smarts)];
        let cells = run(&jobs);
        let (estimate, trace) = smarts.run_traced(&w, &MachineConfig::default());
        assert_eq!(cells[0].estimate, estimate);
        assert_eq!(cells[0].trace, trace);
        assert_eq!(cells[0].workload, "164.gzip");
    }

    #[test]
    fn empty_campaign_is_empty() {
        assert!(run_on(&[], 8).is_empty());
        let (cells, report) = run_checkpointed(&[], 100_000, None);
        assert!(cells.is_empty());
        assert_eq!(report, crate::ckpt::LadderReport::default());
    }

    #[test]
    fn checkpointed_campaign_matches_plain_with_fewer_executed_ops() {
        let workloads = vec![pgss_workloads::gzip(0.01), pgss_workloads::twolf(0.01)];
        let (smarts, turbo, pgss) = techniques();
        let techs: Vec<&(dyn Technique + Sync)> = vec![&smarts, &turbo, &pgss];
        let jobs = grid(&workloads, &techs, MachineConfig::default());
        let plain = run(&jobs);
        let (fast, report) = run_checkpointed(&jobs, 25_000, None);
        assert_eq!(plain, fast, "acceleration must not change any cell");
        assert!(report.jumps > 0);
        assert!(report.skipped_ops > 0);
        assert!(
            report.total_executed() < report.baseline_ops(),
            "executed {} must beat baseline {}",
            report.total_executed(),
            report.baseline_ops()
        );
        assert!(report.executed_ratio() < 1.0);
    }

    #[test]
    fn worker_threads_env_override() {
        // Env mutation is process-global; keep set/restore in one test.
        std::env::set_var("PGSS_WORKERS", "3");
        assert_eq!(worker_threads(), 3);
        std::env::set_var("PGSS_WORKERS", "not-a-number");
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(worker_threads(), host);
        std::env::set_var("PGSS_WORKERS", "0");
        assert_eq!(worker_threads(), host);
        std::env::remove_var("PGSS_WORKERS");
        assert_eq!(worker_threads(), host);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let w = pgss_workloads::twolf(0.002);
        let (smarts, _, _) = techniques();
        let jobs = vec![Job::new(&w, &smarts)];
        let _ = run_on(&jobs, 0);
    }
}
