//! Parallel campaign runner: fan a workload × technique matrix across
//! threads, isolating faults so one bad cell never kills the grid.
//!
//! The paper's figures are all *campaigns* — every benchmark in the suite
//! run under every technique under comparison. Because a technique run is
//! "construct [`crate::driver::SimDriver`]s, run policies" with no shared
//! mutable state, cells are embarrassingly parallel: workers claim jobs
//! from an atomic counter and results are returned **in job order**
//! regardless of thread count or scheduling, so campaign output is
//! deterministic and directly comparable across runs.
//!
//! # Fault tolerance
//!
//! A production campaign over thousands of cells cannot be all-or-nothing.
//! Every cell runs under [`std::panic::catch_unwind`], so a panicking
//! technique costs exactly its own cell; failed cells are retried a
//! bounded, deterministic number of times (see [`RetryPolicy`] — retry
//! order is seeded and reproducible, with no wall-clock backoff, so two
//! runs of the same campaign produce byte-identical reports); whatever
//! still fails lands in the [`CampaignReport::failures`] ledger with its
//! workload / technique / cause context while every other cell's result
//! is delivered bit-identical to a fault-free run. Checkpoint-store
//! faults (corrupt records, I/O errors) are healed by the ladder layer
//! and surfaced in [`CampaignReport::checkpoint_faults`]. Configuration
//! errors (zero threads, zero stride) are reported as
//! [`CampaignError::InvalidConfig`] instead of panicking.
//!
//! # Example
//!
//! ```no_run
//! use pgss::{campaign, PgssSim, Smarts, Technique};
//!
//! let workloads = vec![pgss_workloads::gzip(0.05), pgss_workloads::mesa(0.05)];
//! let smarts = Smarts::new();
//! let pgss = PgssSim::new();
//! let techniques: Vec<&(dyn Technique + Sync)> = vec![&smarts, &pgss];
//! let jobs = campaign::grid(&workloads, &techniques, Default::default());
//! let report = campaign::run(&jobs);
//! for cell in &report.cells {
//!     println!("{} × {}: {:.3} IPC", cell.workload, cell.technique, cell.estimate.ipc);
//! }
//! for failure in &report.failures {
//!     eprintln!("FAILED {failure}");
//! }
//! ```

// One panicking cell must never take down a campaign: every fallible step
// on this path reports through the ledger instead of unwrapping.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use pgss_ckpt::Store;
use pgss_cpu::MachineConfig;
use pgss_obs::{MetricsFrame, MetricsRecorder, MetricsReport, Recorder, Span};
use pgss_stats::DetRng;
use pgss_workloads::Workload;

use crate::ckpt::{CheckpointLadder, LadderReport, LadderSpec, SimContext};
use crate::driver::{RunTrace, Track};
use crate::estimate::{Estimate, Technique};

/// One campaign cell: a technique applied to a workload on a machine
/// configuration.
///
/// Jobs borrow their workload and technique, so a campaign over a big
/// matrix shares one copy of each workload's program and memory image
/// across every worker thread.
#[derive(Clone, Copy)]
pub struct Job<'a> {
    /// The workload to simulate.
    pub workload: &'a Workload,
    /// The sampling technique to run. `Sync` because several workers may
    /// read the (immutable) technique parameters concurrently.
    pub technique: &'a (dyn Technique + Sync),
    /// Machine configuration for this cell, enabling design-space sweeps
    /// where the configuration varies per cell.
    pub config: MachineConfig,
}

impl<'a> Job<'a> {
    /// A job with the default machine configuration.
    pub fn new(workload: &'a Workload, technique: &'a (dyn Technique + Sync)) -> Job<'a> {
        Job {
            workload,
            technique,
            config: MachineConfig::default(),
        }
    }
}

/// One completed campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// [`Workload`] name.
    pub workload: String,
    /// [`Technique::name`] of the technique that ran.
    pub technique: String,
    /// The technique's estimate.
    pub estimate: Estimate,
    /// What the technique's driver passes executed.
    pub trace: RunTrace,
}

/// Why a single campaign cell failed (the *cause* part of a
/// [`CellFailure`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CellError {
    /// The technique panicked; the payload carries the panic message.
    Panicked(String),
    /// The simulated machine aborted with a structured fault (e.g. an
    /// out-of-range indirect jump) during one of the cell's driver
    /// passes. Unlike [`CellError::Panicked`], no unwinding is involved:
    /// the machine halts, the driver deposits the fault into the cell's
    /// [`crate::SimContext`], and the cell is failed with the typed
    /// reason.
    MachineFault(pgss_cpu::MachineFault),
    /// The cell overran its supervision lease and was reaped by a
    /// watchdog (`pgss-serve`'s lease-based cell supervision). The cell's
    /// worker may still be running, but its result — if one ever arrives —
    /// is discarded. The deadline is carried in nanoseconds of the
    /// supervising clock so replays under an injected clock are
    /// byte-identical.
    DeadlineExceeded {
        /// The lease deadline the cell overran, in nanoseconds.
        deadline_ns: u64,
    },
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::Panicked(msg) => write!(f, "technique panicked: {msg}"),
            CellError::MachineFault(fault) => write!(f, "machine fault: {fault}"),
            CellError::DeadlineExceeded { deadline_ns } => {
                write!(
                    f,
                    "deadline exceeded: cell overran its {deadline_ns}ns lease"
                )
            }
        }
    }
}

/// One entry in a campaign's failure ledger: which cell failed, after how
/// many attempts, and why. The grid's other cells are unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Index of the failed cell in the campaign's job slice.
    pub job_index: usize,
    /// Workload name of the failed cell.
    pub workload: String,
    /// Technique name of the failed cell.
    pub technique: String,
    /// Attempts made (initial run plus retries) before giving up.
    pub attempts: u32,
    /// The terminal error of the last attempt.
    pub error: CellError,
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell #{} {} × {}: {} (after {} attempt{})",
            self.job_index,
            self.workload,
            self.technique,
            self.error,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
        )
    }
}

/// A campaign-level error: the campaign could not run (or could not be
/// reduced to plain cells) at all, as opposed to individual cells failing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CampaignError {
    /// A configuration parameter makes the campaign unrunnable.
    InvalidConfig {
        /// Which parameter (e.g. `"threads"`, `"stride"`).
        param: &'static str,
        /// What is wrong with it.
        reason: String,
    },
    /// Some cells failed; returned by [`CampaignReport::into_cells`] when
    /// the caller needs the full grid.
    Incomplete {
        /// Number of failed cells.
        failed: usize,
        /// Total cells in the campaign.
        total: usize,
        /// Rendering of the first ledger entry.
        first: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::InvalidConfig { param, reason } => {
                write!(f, "invalid campaign configuration: {param}: {reason}")
            }
            CampaignError::Incomplete {
                failed,
                total,
                first,
            } => write!(
                f,
                "campaign incomplete: {failed} of {total} cells failed (first: {first})"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Deterministic bounded retry for failed cells.
///
/// Retries carry **no wall-clock backoff**: techniques are pure functions
/// of their inputs, so a retry either deterministically succeeds (the
/// fault was external — e.g. an injected or environmental panic) or
/// deterministically fails again, and waiting would only slow the grid.
/// The retry *order* is a seeded shuffle of the failed cells, so two runs
/// with the same seed replay retries identically — reports are
/// byte-identical — while not hammering cells in claim order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per cell (first run included); 1 disables retry.
    pub max_attempts: u32,
    /// Seed for the retry-order shuffle.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            seed: 0x7067_7373, // "pgss"
        }
    }
}

impl RetryPolicy {
    /// No retries: one attempt per cell.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }
}

/// Execution configuration for a campaign: worker count and retry policy.
///
/// The worker count is an **explicit field**, never read from the
/// environment inside the library: callers that want the `PGSS_WORKERS`
/// override resolve it once at their own boundary (see
/// [`worker_threads`]) and pass the result here. That keeps every
/// `run*` entry point a pure function of its arguments — embedders like
/// the campaign server pick worker counts per job without touching
/// process-global state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Worker threads for the claim loop; must be at least 1.
    pub workers: usize,
    /// Retry policy for failed cells.
    pub retry: RetryPolicy,
}

impl Default for CampaignConfig {
    /// Host parallelism and the default [`RetryPolicy`] — deliberately
    /// **not** consulting `PGSS_WORKERS`.
    fn default() -> CampaignConfig {
        CampaignConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            retry: RetryPolicy::default(),
        }
    }
}

impl CampaignConfig {
    /// `workers` workers with the default retry policy.
    pub fn with_workers(workers: usize) -> CampaignConfig {
        CampaignConfig {
            workers,
            ..CampaignConfig::default()
        }
    }

    fn validate(&self) -> Result<(), CampaignError> {
        if self.workers == 0 {
            return Err(CampaignError::InvalidConfig {
                param: "threads",
                reason: "campaign needs at least one worker thread".to_string(),
            });
        }
        if self.retry.max_attempts == 0 {
            return Err(CampaignError::InvalidConfig {
                param: "retry.max_attempts",
                reason: "every cell needs at least one attempt".to_string(),
            });
        }
        Ok(())
    }
}

/// What a campaign produced: every successful cell (in job order), the
/// failure ledger for everything else, and checkpointing accounting.
///
/// The report is plain data with deterministic contents — equal campaigns
/// (same jobs, same faults, same retry seed) produce `==`, byte-identical
/// reports regardless of thread count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignReport {
    /// Successful cells, in job order (failed cells leave gaps).
    pub cells: Vec<CellResult>,
    /// The failure ledger: one entry per cell that exhausted its retry
    /// budget, in job order. Empty for a fault-free campaign.
    pub failures: Vec<CellFailure>,
    /// Total retry attempts performed (0 for a fault-free campaign).
    pub retries: u64,
    /// Checkpoint-acceleration accounting; all-zero for plain [`run`]s.
    pub ladder: LadderReport,
    /// Checkpoint-store faults healed or tolerated along the way:
    /// quarantined corrupt records, store I/O errors, failed write-backs,
    /// capture-pass panics — one human-readable line each. These are
    /// informational: the affected cells still produced bit-exact results
    /// via recapture or unaccelerated execution.
    pub checkpoint_faults: Vec<String>,
    /// Observability: a `"campaign"` scope (job/retry/failure counters,
    /// checkpoint-store and ladder accounting, detail-share distribution)
    /// followed by one `"workload/technique"` scope per successful cell in
    /// job order, each carrying that cell's driver counters. Per-worker
    /// frames are merged at join in job order, so the report — and its
    /// [`MetricsReport::to_jsonl`] export — is byte-identical regardless
    /// of the worker count (span wall times are excluded from comparison
    /// and export; see `pgss_obs`).
    pub metrics: MetricsReport,
}

impl CampaignReport {
    /// True when every cell succeeded.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// The successful cell for `workload` × `technique`, if any.
    pub fn cell(&self, workload: &str, technique: &str) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.technique == technique)
    }

    /// Unwraps the report into its cells, requiring a complete campaign —
    /// for callers (figure harnesses, positional indexers) that need the
    /// full grid. Fails with [`CampaignError::Incomplete`] naming the
    /// first ledger entry otherwise.
    pub fn into_cells(self) -> Result<Vec<CellResult>, CampaignError> {
        match self.failures.first() {
            None => Ok(self.cells),
            Some(first) => Err(CampaignError::Incomplete {
                failed: self.failures.len(),
                total: self.cells.len() + self.failures.len(),
                first: first.to_string(),
            }),
        }
    }

    /// Renders the failure ledger (and checkpoint-fault notes) as
    /// human-readable lines; a fault-free campaign renders a one-line
    /// all-clear.
    pub fn ledger(&self) -> String {
        let mut out = String::new();
        if self.is_complete() {
            out.push_str(&format!("all {} cells succeeded", self.cells.len()));
        } else {
            out.push_str(&format!(
                "{} of {} cells failed ({} retr{} attempted):\n",
                self.failures.len(),
                self.cells.len() + self.failures.len(),
                self.retries,
                if self.retries == 1 { "y" } else { "ies" },
            ));
            for failure in &self.failures {
                out.push_str(&format!("  {failure}\n"));
            }
        }
        if !self.checkpoint_faults.is_empty() {
            out.push_str("\ncheckpoint faults healed:\n");
            for fault in &self.checkpoint_faults {
                out.push_str(&format!("  {fault}\n"));
            }
        }
        out
    }

    /// The *canonical campaign artifact*: a JSONL rendering of everything
    /// in the report that is a pure function of the job grid — header
    /// counts, every successful cell's estimate and trace (in job order),
    /// the failure ledger, and the per-cell metric scopes on the pinned
    /// `pgss-obs` schema.
    ///
    /// Execution-path accounting — the `"campaign"` metric scope, the
    /// ladder report, healed checkpoint faults — is deliberately
    /// excluded: it legitimately differs between, say, a cold-store run
    /// and a warm-store rerun. The remainder is **byte-identical** across
    /// worker counts, checkpoint acceleration, store temperature, and a
    /// campaign-server run resumed after a crash, which is exactly the
    /// equivalence the server's tests pin. Line formats live in
    /// [`crate::wire`].
    pub fn canonical_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&crate::wire::canonical_header(
            self.cells.len(),
            self.failures.len(),
            self.retries,
        ));
        out.push('\n');
        for cell in &self.cells {
            out.push_str(&crate::wire::canonical_cell_line(cell));
            out.push('\n');
        }
        for f in &self.failures {
            out.push_str(&crate::wire::canonical_failure_line(
                f.job_index,
                &f.workload,
                &f.technique,
                f.attempts,
                &f.error.to_string(),
            ));
            out.push('\n');
        }
        for (name, frame) in &self.metrics.scopes {
            if name != "campaign" {
                out.push_str(&pgss_obs::scope_line(name, frame));
                out.push('\n');
            }
        }
        out
    }
}

/// Builds the full `workloads × techniques` matrix in workload-major order
/// (all techniques of the first workload, then the second, …) with one
/// shared machine configuration.
pub fn grid<'a>(
    workloads: &'a [Workload],
    techniques: &'a [&'a (dyn Technique + Sync)],
    config: MachineConfig,
) -> Vec<Job<'a>> {
    workloads
        .iter()
        .flat_map(|w| {
            techniques.iter().map(move |&t| Job {
                workload: w,
                technique: t,
                config,
            })
        })
        .collect()
}

/// The **CLI-boundary** worker-count resolver: the `PGSS_WORKERS`
/// environment variable when it parses as a positive integer, otherwise
/// the host's available parallelism. A set-but-invalid `PGSS_WORKERS` is
/// reported once to stderr instead of being silently ignored.
///
/// The library's `run*` entry points never call this — they take the
/// worker count from [`CampaignConfig`]. Binaries and examples that want
/// the environment override resolve it here, once, and pass the result
/// in: `CampaignConfig::with_workers(worker_threads())`.
pub fn worker_threads() -> usize {
    worker_threads_from(std::env::var("PGSS_WORKERS").ok().as_deref())
}

/// The injected-lookup core of [`worker_threads`]: resolves the worker
/// count from an optional `PGSS_WORKERS` value, so policy is testable
/// without mutating the process-global environment.
pub fn worker_threads_from(pgss_workers: Option<&str>) -> usize {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let Some(v) = pgss_workers else { return host };
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            // Warn once per process: campaigns call this per run, and a
            // typo'd override should be visible, not a silent fallback.
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "pgss: ignoring PGSS_WORKERS={v:?} (not a positive integer); \
                     using host parallelism ({host})"
                );
            });
            host
        }
    }
}

/// Marker embedded in every panic message this crate's fault-injection
/// and fault-tolerance tests raise on purpose, so
/// [`silence_injected_panic_reports`] can suppress their default-hook
/// noise without touching real panics.
pub const INJECTED_PANIC_TAG: &str = "[pgss-injected-fault]";

/// Test support: installs (once per process) a panic hook that drops the
/// default "thread panicked" report for panics whose message contains
/// [`INJECTED_PANIC_TAG`], keeping fault-tolerance test output readable.
/// All other panics report exactly as before.
pub fn silence_injected_panic_reports() {
    static INSTALLED: std::sync::Once = std::sync::Once::new();
    INSTALLED.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !msg.contains(INJECTED_PANIC_TAG) {
                default_hook(info);
            }
        }));
    });
}

/// Renders a caught panic payload as the message for a [`CellError`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs **one** campaign cell in full isolation: fresh recorder, fresh
/// fault slot, `catch_unwind` around the technique, typed-fault-outranks-
/// panic resolution. This is the single execution path for a cell — the
/// claim-loop workers here and the campaign server's workers both call
/// it, so a cell's result and metric frame are bit-identical no matter
/// which scheduler ran it.
///
/// The returned frame is the cell's **raw** driver frame; the
/// estimate-derived counters are layered on separately (at finalize
/// time here, at assembly time in the server) by
/// [`annotate_cell_frame`].
///
/// Only `ctx`'s ladder is inherited: the recorder and fault slot are
/// per-attempt, so faults never leak between cells or retries and a cell
/// healed by retry carries exactly the metrics of its clean run.
pub fn run_cell(job: &Job<'_>, ctx: &SimContext) -> Result<(CellResult, MetricsFrame), CellError> {
    let workload = job.workload.name().to_string();
    let technique = job.technique.name();
    let rec = Arc::new(MetricsRecorder::new());
    let cell_ctx = SimContext {
        ladder: ctx.ladder.clone(),
        recorder: Arc::clone(&rec) as Arc<dyn Recorder>,
        // Fresh per cell: faults must not leak between cells or retry
        // attempts.
        fault: Arc::new(std::sync::OnceLock::new()),
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "fault-inject")]
        {
            crate::faults::maybe_panic_cell(&workload, &technique);
            crate::faults::maybe_stall_cell(&workload, &technique);
        }
        let _span = Span::enter(&*rec, "cell.run");
        job.technique
            .run_traced_ctx(job.workload, &job.config, &cell_ctx)
    }));
    match (cell_ctx.first_fault(), outcome) {
        // A driver pass that aborts on a machine fault deposits it before
        // anything else happens: the typed fault outranks both a
        // normally-returned (truncated) estimate and any downstream panic
        // the truncation causes in the technique (e.g. an empty sample
        // population).
        (Some(fault), _) => Err(CellError::MachineFault(fault)),
        (None, Ok((estimate, trace))) => Ok((
            CellResult {
                workload,
                technique,
                estimate,
                trace,
            },
            rec.frame(),
        )),
        (None, Err(payload)) => Err(CellError::Panicked(panic_message(payload))),
    }
}

/// Layers the estimate-derived counters (logical mode ops, sample count)
/// onto a cell's raw metric frame — the deterministic annotation every
/// assembled report applies, whether the cell ran here or in the campaign
/// server.
pub fn annotate_cell_frame(cell: &CellResult, frame: &mut MetricsFrame) {
    let ops = cell.estimate.mode_ops;
    frame.add("cell.ops.fast_forward", ops.fast_forward);
    frame.add("cell.ops.functional", ops.functional);
    frame.add("cell.ops.warm", ops.detailed_warming);
    frame.add("cell.ops.detail", ops.detailed_measured);
    frame.add("cell.samples", cell.estimate.samples);
}

/// Runs the cells named by `order` (indices into `jobs`) on up to
/// `threads` claim-loop workers, isolating each cell via [`run_cell`].
/// Successes are appended to `results` together with the cell's metric
/// frame, failures to `failed`; both keyed by job index, so callers can
/// merge passes and sort once at the end.
fn run_cells(
    jobs: &[Job<'_>],
    order: &[usize],
    threads: usize,
    ctx: &SimContext,
    results: &mut Vec<(usize, CellResult, MetricsFrame)>,
    failed: &mut Vec<(usize, CellError)>,
) {
    if order.is_empty() {
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads.min(order.len()).max(1))
            .map(|_| {
                let cursor = &cursor;
                s.spawn(move || {
                    let mut ok = Vec::new();
                    let mut bad = Vec::new();
                    loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = order.get(k) else { break };
                        match run_cell(&jobs[i], ctx) {
                            Ok((cell, frame)) => ok.push((i, cell, frame)),
                            Err(error) => bad.push((i, error)),
                        }
                    }
                    (ok, bad)
                })
            })
            .collect();
        for worker in workers {
            match worker.join() {
                Ok((ok, bad)) => {
                    results.extend(ok);
                    failed.extend(bad);
                }
                // A panic escaping catch_unwind means the harness itself
                // is broken (cell bookkeeping, not a technique): propagate.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
}

/// The isolation + retry engine shared by [`run_on`] and
/// [`run_checkpointed`]: first pass over `order`, then up to
/// `retry.max_attempts - 1` seeded-order retry passes over whatever
/// failed, then a ledger for the rest.
fn execute(
    jobs: &[Job<'_>],
    order: &[usize],
    threads: usize,
    ctx: &SimContext,
    retry: &RetryPolicy,
    results: &mut Vec<(usize, CellResult, MetricsFrame)>,
    report: &mut CampaignReport,
) {
    let mut failed: Vec<(usize, CellError)> = Vec::new();
    run_cells(jobs, order, threads, ctx, results, &mut failed);
    for attempt in 2..=retry.max_attempts {
        if failed.is_empty() {
            break;
        }
        // Deterministic, seeded retry order: canonical (sorted) base,
        // shuffled by (seed, attempt) — reproducible run to run.
        let mut again: Vec<usize> = failed.iter().map(|&(i, _)| i).collect();
        again.sort_unstable();
        let mut rng = DetRng::seed_from_u64(
            retry
                .seed
                .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        rng.shuffle(&mut again);
        report.retries += again.len() as u64;
        failed.clear();
        run_cells(jobs, &again, threads, ctx, results, &mut failed);
    }
    failed.sort_unstable_by_key(|&(i, _)| i);
    report
        .failures
        .extend(failed.into_iter().map(|(job_index, error)| {
            let job = &jobs[job_index];
            CellFailure {
                job_index,
                workload: job.workload.name().to_string(),
                technique: job.technique.name(),
                attempts: retry.max_attempts,
                error,
            }
        }));
}

/// Folds per-cell metric frames and the campaign-level recorder into
/// `report`: cells are sorted into job order, fold-time cell counters
/// (logical mode ops, sample counts) and the campaign-wide detail-share
/// distribution are derived from the estimates, and the metrics report is
/// assembled as the `"campaign"` scope followed by one scope per cell.
///
/// Everything here runs on the campaign thread in job order — Welford
/// folding order is part of the determinism contract, so the same cells
/// produce the same bytes no matter how many workers computed them.
fn finalize(
    report: &mut CampaignReport,
    mut results: Vec<(usize, CellResult, MetricsFrame)>,
    campaign_rec: &MetricsRecorder,
) {
    results.sort_unstable_by_key(|&(i, _, _)| i);
    campaign_rec.add("campaign.cells.ok", results.len() as u64);
    campaign_rec.add("campaign.cells.failed", report.failures.len() as u64);
    campaign_rec.add("campaign.retries", report.retries);
    campaign_rec.register_hist("campaign.detail_share", 0.0, 1.0, 20);
    for (_, cell, frame) in &mut results {
        let ops = cell.estimate.mode_ops;
        annotate_cell_frame(cell, frame);
        if ops.total() > 0 {
            let share = ops.detailed() as f64 / ops.total() as f64;
            campaign_rec.observe("campaign.detail_share", share);
            campaign_rec.record_hist("campaign.detail_share", share);
        }
    }
    let mut metrics = MetricsReport::new();
    metrics.push_scope("campaign", campaign_rec.frame());
    report.cells = results
        .into_iter()
        .map(|(_, cell, frame)| {
            metrics.push_scope(format!("{}/{}", cell.workload, cell.technique), frame);
            cell
        })
        .collect();
    report.metrics = metrics;
}

/// The plain-campaign core shared by [`run`], [`run_on`], and
/// [`run_on_with`]; assumes a validated config.
fn run_validated(jobs: &[Job<'_>], config: &CampaignConfig) -> CampaignReport {
    let mut report = CampaignReport::default();
    let campaign_rec = MetricsRecorder::new();
    campaign_rec.add("campaign.jobs", jobs.len() as u64);
    let order: Vec<usize> = (0..jobs.len()).collect();
    let mut results = Vec::with_capacity(jobs.len());
    {
        let _span = Span::enter(&campaign_rec, "campaign.run");
        execute(
            jobs,
            &order,
            config.workers.max(1),
            &SimContext::none(),
            &config.retry,
            &mut results,
            &mut report,
        );
    }
    finalize(&mut report, results, &campaign_rec);
    report
}

/// Runs `jobs` with the default [`CampaignConfig`] (host parallelism,
/// default retry). See [`run_with`]; infallible because the default
/// config is valid by construction.
pub fn run(jobs: &[Job<'_>]) -> CampaignReport {
    run_validated(jobs, &CampaignConfig::default())
}

/// Runs `jobs` under an explicit [`CampaignConfig`], returning a
/// [`CampaignReport`] whose successful cells are **in job order** —
/// output is identical for any worker count.
///
/// Workers claim the next unclaimed job from an atomic cursor, so long
/// cells (FullDetailed on the largest workload) never leave other workers
/// idle behind a static partition. A panicking technique costs only its
/// own cell (see the module docs); `workers == 0` or a zero-attempt retry
/// policy is reported as [`CampaignError::InvalidConfig`].
pub fn run_with(
    jobs: &[Job<'_>],
    config: &CampaignConfig,
) -> Result<CampaignReport, CampaignError> {
    config.validate()?;
    Ok(run_validated(jobs, config))
}

/// Runs `jobs` on `threads` worker threads with the default
/// [`RetryPolicy`]. See [`run_with`].
pub fn run_on(jobs: &[Job<'_>], threads: usize) -> Result<CampaignReport, CampaignError> {
    run_on_with(jobs, threads, &RetryPolicy::default())
}

/// [`run_on`] with an explicit [`RetryPolicy`]. See [`run_with`].
pub fn run_on_with(
    jobs: &[Job<'_>],
    threads: usize,
    retry: &RetryPolicy,
) -> Result<CampaignReport, CampaignError> {
    run_with(
        jobs,
        &CampaignConfig {
            workers: threads,
            retry: *retry,
        },
    )
}

/// Runs `jobs` with checkpoint acceleration: each distinct
/// (workload, config) group's shared functional fast-forward prefix is
/// captured **once** into a [`CheckpointLadder`] (rungs every `stride`
/// retired ops, carrying every BBV track the group's techniques declare
/// via [`Technique::tracks`]) and fanned out to all of the group's cells,
/// whose drivers then restore instead of re-executing functional
/// stretches.
///
/// Results are **identical** to [`run`] on the same jobs — estimates,
/// traces, ordering — because driver jumps are bit-exact and logically
/// charged; only the physical work changes, summarised in
/// [`CampaignReport::ladder`] (capture cost, jumps, skipped vs. executed
/// ops, and [`LadderReport::executed_ratio`]).
///
/// With a [`Store`], ladders are read from / written back to disk, so a
/// re-run of the same campaign (same workloads, configs, stride, tracks,
/// snapshot format) skips capture entirely. Store faults degrade, never
/// abort: corrupt records are quarantined and recaptured (self-healing),
/// I/O errors fall back to capture, and a panicking capture pass demotes
/// its group to unaccelerated execution — each event is recorded in
/// [`CampaignReport::checkpoint_faults`], and none of them changes any
/// cell's bits. Groups are processed sequentially so at most one
/// workload's ladder is resident; cells within a group run on the
/// configured worker count ([`CampaignConfig::workers`]).
///
/// `stride == 0` is reported as [`CampaignError::InvalidConfig`].
pub fn run_checkpointed(
    jobs: &[Job<'_>],
    stride: u64,
    store: Option<&Store>,
) -> Result<CampaignReport, CampaignError> {
    run_checkpointed_with(jobs, stride, store, &CampaignConfig::default())
}

/// [`run_checkpointed`] under an explicit [`CampaignConfig`] — the fully
/// parameterised checkpoint-accelerated entry point (no environment
/// reads; see [`CampaignConfig`]).
pub fn run_checkpointed_with(
    jobs: &[Job<'_>],
    stride: u64,
    store: Option<&Store>,
    config: &CampaignConfig,
) -> Result<CampaignReport, CampaignError> {
    config.validate()?;
    if stride == 0 {
        return Err(CampaignError::InvalidConfig {
            param: "stride",
            reason: "checkpoint ladders need a positive rung stride".to_string(),
        });
    }
    let mut report = CampaignReport::default();
    if jobs.is_empty() {
        return Ok(report);
    }
    let campaign_rec = Arc::new(MetricsRecorder::new());
    campaign_rec.add("campaign.jobs", jobs.len() as u64);
    // Route the store's hit/miss/quarantine/byte counters into the
    // campaign scope. All store traffic happens on this thread (groups
    // are processed sequentially), so the counters are deterministic.
    let store = store.map(|st| st.clone().with_recorder(Arc::clone(&campaign_rec) as _));
    let store = store.as_ref();
    let threads = config.workers.max(1);
    let retry = config.retry;
    // Group cells sharing a workload and configuration; each group shares
    // one ladder.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        match groups.iter_mut().find(|g| {
            let j = &jobs[g[0]];
            std::ptr::eq(j.workload, job.workload) && j.config == job.config
        }) {
            Some(g) => g.push(i),
            None => groups.push(vec![i]),
        }
    }
    campaign_rec.add("campaign.groups", groups.len() as u64);
    let mut results: Vec<(usize, CellResult, MetricsFrame)> = Vec::with_capacity(jobs.len());
    let campaign_span = Span::enter(&*campaign_rec, "campaign.run");
    for group in &groups {
        let first = &jobs[group[0]];
        let mut hashed_seeds: Vec<u64> = Vec::new();
        let mut with_full = false;
        for &i in group {
            for t in jobs[i].technique.tracks() {
                match t {
                    Track::Hashed(s) if !hashed_seeds.contains(&s) => hashed_seeds.push(s),
                    Track::Full => with_full = true,
                    _ => {}
                }
            }
        }
        let spec = LadderSpec {
            stride,
            hashed_seeds,
            with_full,
        };
        // The capture pass runs arbitrary simulation; isolate it like a
        // cell. On panic the group gracefully degrades to unaccelerated
        // execution — bit-identical results, only slower.
        let captured = catch_unwind(AssertUnwindSafe(|| match store {
            Some(st) => CheckpointLadder::load_or_capture(st, first.workload, &first.config, &spec),
            None => CheckpointLadder::capture(first.workload, &first.config, &spec),
        }));
        let (ctx, ladder) = match captured {
            Ok(ladder) => {
                report
                    .checkpoint_faults
                    .extend(ladder.fault_log().iter().cloned());
                let ladder = Arc::new(ladder);
                (SimContext::with_ladder(Arc::clone(&ladder)), Some(ladder))
            }
            Err(payload) => {
                report.checkpoint_faults.push(format!(
                    "{}: checkpoint capture panicked: {}; group ran unaccelerated",
                    first.workload.name(),
                    panic_message(payload)
                ));
                (SimContext::none(), None)
            }
        };
        execute(
            jobs,
            group,
            threads,
            &ctx,
            &retry,
            &mut results,
            &mut report,
        );
        if let Some(ladder) = ladder {
            report.ladder.merge(&ladder.report());
        }
    }
    drop(campaign_span);
    // Mirror the ladder accounting as campaign-scope counters so the
    // JSONL export carries the acceleration story alongside the cells.
    campaign_rec.add("ckpt.ladder.jumps", report.ladder.jumps);
    campaign_rec.add("ckpt.ladder.skipped_ops", report.ladder.skipped_ops);
    campaign_rec.add("ckpt.ladder.executed_ops", report.ladder.executed_ops);
    campaign_rec.add("ckpt.ladder.capture_ops", report.ladder.capture_ops);
    campaign_rec.add(
        "campaign.checkpoint_faults",
        report.checkpoint_faults.len() as u64,
    );
    report.failures.sort_unstable_by_key(|f| f.job_index);
    finalize(&mut report, results, &campaign_rec);
    Ok(report)
}

#[cfg(test)]
// Tests may unwrap: a panic here is a test failure, not a lost campaign.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::{PgssSim, Smarts, TurboSmarts};
    use std::sync::atomic::AtomicU32;

    fn suite() -> Vec<Workload> {
        vec![
            pgss_workloads::gzip(0.01),
            pgss_workloads::mesa(0.01),
            pgss_workloads::twolf(0.01),
        ]
    }

    fn techniques() -> (Smarts, TurboSmarts, PgssSim) {
        let smarts = Smarts {
            period_ops: 50_000,
            ..Smarts::default()
        };
        (
            smarts,
            TurboSmarts {
                smarts,
                ..TurboSmarts::default()
            },
            PgssSim {
                ff_ops: 50_000,
                spacing_ops: 50_000,
                ..PgssSim::default()
            },
        )
    }

    /// Delegates to SMARTS but panics on one workload — a deterministic
    /// "poisoned cell".
    struct Exploder {
        inner: Smarts,
        on: &'static str,
    }

    impl Technique for Exploder {
        fn name(&self) -> String {
            format!("Exploder({})", self.inner.name())
        }
        fn run_with(&self, workload: &Workload, config: &MachineConfig) -> Estimate {
            self.run_traced(workload, config).0
        }
        fn run_traced_ctx(
            &self,
            workload: &Workload,
            config: &MachineConfig,
            ctx: &SimContext,
        ) -> (Estimate, RunTrace) {
            assert!(
                workload.name() != self.on,
                "{INJECTED_PANIC_TAG} deliberate test panic for {}",
                self.on
            );
            self.inner.run_traced_ctx(workload, config, ctx)
        }
    }

    /// Panics on the first `flakes` attempts of one workload's cell, then
    /// behaves — a deterministic transient fault.
    struct Flaky {
        inner: Smarts,
        on: &'static str,
        flakes: AtomicU32,
    }

    impl Technique for Flaky {
        fn name(&self) -> String {
            format!("Flaky({})", self.inner.name())
        }
        fn run_with(&self, workload: &Workload, config: &MachineConfig) -> Estimate {
            self.run_traced(workload, config).0
        }
        fn run_traced_ctx(
            &self,
            workload: &Workload,
            config: &MachineConfig,
            ctx: &SimContext,
        ) -> (Estimate, RunTrace) {
            if workload.name() == self.on {
                let left = self
                    .flakes
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                    .is_ok();
                assert!(!left, "{INJECTED_PANIC_TAG} transient test panic");
            }
            self.inner.run_traced_ctx(workload, config, ctx)
        }
    }

    /// A machine fault during a cell's driver passes fails the cell with
    /// the typed [`CellError::MachineFault`] — no panic, no unwinding —
    /// and leaves the rest of the grid untouched.
    #[test]
    fn machine_faults_surface_as_typed_cell_errors() {
        use pgss_workloads::{Kernel, WorkloadBuilder};
        let faulty = {
            let mut b = WorkloadBuilder::new("faulty", 3);
            let seg = b.add_segment(Kernel::ComputeInt {
                chains: 2,
                ops_per_chain: 4,
            });
            b.run(seg, 10_000);
            b.poison_dispatch();
            b.finish()
        };
        let healthy = pgss_workloads::gzip(0.01);
        let (smarts, _, _) = techniques();
        let jobs = vec![Job::new(&faulty, &smarts), Job::new(&healthy, &smarts)];
        let report = run_on(&jobs, 2).unwrap();
        assert_eq!(report.failures.len(), 1);
        let failure = &report.failures[0];
        assert_eq!(failure.workload, "faulty");
        assert!(
            matches!(
                failure.error,
                CellError::MachineFault(pgss_cpu::MachineFault::IndirectJumpOutOfRange { .. })
            ),
            "expected a typed machine fault, got {:?}",
            failure.error
        );
        // Faults are deterministic, so retrying the cell cannot help and
        // the healthy cell must be unaffected.
        assert!(report.cell("164.gzip", &smarts.name()).is_some());
        assert!(report.cell("faulty", &smarts.name()).is_none());
    }

    #[test]
    fn grid_is_workload_major() {
        let workloads = suite();
        let (smarts, turbo, pgss) = techniques();
        let techs: Vec<&(dyn Technique + Sync)> = vec![&smarts, &turbo, &pgss];
        let jobs = grid(&workloads, &techs, MachineConfig::default());
        assert_eq!(jobs.len(), 9);
        assert_eq!(jobs[0].workload.name(), "164.gzip");
        assert_eq!(jobs[2].workload.name(), "164.gzip");
        assert_eq!(jobs[3].workload.name(), "177.mesa");
        assert_eq!(jobs[1].technique.name(), turbo.name());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let workloads = suite();
        let (smarts, turbo, pgss) = techniques();
        let techs: Vec<&(dyn Technique + Sync)> = vec![&smarts, &turbo, &pgss];
        let jobs = grid(&workloads, &techs, MachineConfig::default());
        let serial = run_on(&jobs, 1).unwrap();
        let parallel = run_on(&jobs, 4).unwrap();
        assert_eq!(serial, parallel);
        assert!(serial.is_complete());
        assert_eq!(serial.retries, 0);
        let names: Vec<_> = serial
            .cells
            .iter()
            .map(|c| (c.workload.as_str(), c.technique.clone()))
            .collect();
        assert_eq!(names[0].0, "164.gzip");
        assert_eq!(names[8].0, "300.twolf");
    }

    #[test]
    fn cells_match_direct_runs() {
        let w = pgss_workloads::gzip(0.01);
        let (smarts, _, _) = techniques();
        let jobs = vec![Job::new(&w, &smarts)];
        let report = run(&jobs);
        let (estimate, trace) = smarts.run_traced(&w, &MachineConfig::default());
        assert_eq!(report.cells[0].estimate, estimate);
        assert_eq!(report.cells[0].trace, trace);
        assert_eq!(report.cells[0].workload, "164.gzip");
        assert_eq!(
            report.cell("164.gzip", &smarts.name()).unwrap().estimate,
            estimate
        );
        assert!(report.cell("164.gzip", "nonesuch").is_none());
    }

    #[test]
    fn empty_campaign_is_empty() {
        assert!(run_on(&[], 8).unwrap().cells.is_empty());
        let report = run_checkpointed(&[], 100_000, None).unwrap();
        assert!(report.cells.is_empty());
        assert!(report.is_complete());
        assert_eq!(report.ladder, crate::ckpt::LadderReport::default());
    }

    #[test]
    fn checkpointed_campaign_matches_plain_with_fewer_executed_ops() {
        let workloads = vec![pgss_workloads::gzip(0.01), pgss_workloads::twolf(0.01)];
        let (smarts, turbo, pgss) = techniques();
        let techs: Vec<&(dyn Technique + Sync)> = vec![&smarts, &turbo, &pgss];
        let jobs = grid(&workloads, &techs, MachineConfig::default());
        let plain = run(&jobs);
        let fast = run_checkpointed(&jobs, 25_000, None).unwrap();
        assert_eq!(
            plain.cells, fast.cells,
            "acceleration must not change any cell"
        );
        assert!(fast.is_complete());
        assert!(fast.checkpoint_faults.is_empty());
        // The campaign scope mirrors the ladder accounting as counters.
        let scope = fast.metrics.scope("campaign").unwrap();
        assert_eq!(scope.counter("ckpt.ladder.jumps"), fast.ladder.jumps);
        assert_eq!(
            scope.counter("ckpt.ladder.skipped_ops"),
            fast.ladder.skipped_ops
        );
        assert_eq!(scope.counter("campaign.groups"), 2);
        let report = fast.ladder;
        assert!(report.jumps > 0);
        assert!(report.skipped_ops > 0);
        assert!(
            report.total_executed() < report.baseline_ops(),
            "executed {} must beat baseline {}",
            report.total_executed(),
            report.baseline_ops()
        );
        assert!(report.executed_ratio() < 1.0);
    }

    #[test]
    fn metrics_are_deterministic_and_mirror_the_cells() {
        let workloads = vec![pgss_workloads::gzip(0.01)];
        let (smarts, _, pgss) = techniques();
        let techs: Vec<&(dyn Technique + Sync)> = vec![&smarts, &pgss];
        let jobs = grid(&workloads, &techs, MachineConfig::default());
        let a = run_on(&jobs, 1).unwrap();
        let b = run_on(&jobs, 4).unwrap();
        assert_eq!(a.metrics, b.metrics, "metrics must not depend on workers");
        assert_eq!(a.metrics.to_jsonl(), b.metrics.to_jsonl());

        let campaign = a.metrics.scope("campaign").unwrap();
        assert_eq!(campaign.counter("campaign.jobs"), 2);
        assert_eq!(campaign.counter("campaign.cells.ok"), 2);
        assert_eq!(campaign.counter("campaign.cells.failed"), 0);
        assert_eq!(campaign.counter("campaign.retries"), 0);
        assert_eq!(campaign.span("campaign.run").unwrap().count, 1);
        assert_eq!(campaign.dists["campaign.detail_share"].count(), 2);
        assert_eq!(campaign.hists["campaign.detail_share"].total(), 2);

        // Scope order: campaign first, then one scope per cell in job
        // order, each mirroring that cell's estimate accounting and the
        // driver's own logical-op counters.
        assert_eq!(a.metrics.scopes.len(), 1 + a.cells.len());
        for (cell, (name, frame)) in a.cells.iter().zip(&a.metrics.scopes[1..]) {
            assert_eq!(name, &format!("{}/{}", cell.workload, cell.technique));
            let ops = cell.estimate.mode_ops;
            assert_eq!(frame.counter("cell.ops.detail"), ops.detailed_measured);
            assert_eq!(frame.counter("cell.ops.functional"), ops.functional);
            assert_eq!(frame.counter("cell.samples"), cell.estimate.samples);
            assert_eq!(frame.counter("driver.ops.detail"), ops.detailed_measured);
            assert_eq!(frame.span("cell.run").unwrap().count, 1);
        }
    }

    #[test]
    fn worker_threads_lookup_is_hermetic() {
        // No process-global env mutation: values are injected directly.
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(worker_threads_from(None), host);
        assert_eq!(worker_threads_from(Some("3")), 3);
        assert_eq!(worker_threads_from(Some(" 5 ")), 5);
        assert_eq!(worker_threads_from(Some("not-a-number")), host);
        assert_eq!(worker_threads_from(Some("0")), host);
        assert_eq!(worker_threads_from(Some("-2")), host);
        assert_eq!(worker_threads_from(Some("")), host);
    }

    #[test]
    fn zero_threads_is_invalid_config_not_a_panic() {
        let w = pgss_workloads::twolf(0.002);
        let (smarts, _, _) = techniques();
        let jobs = vec![Job::new(&w, &smarts)];
        let err = run_on(&jobs, 0).unwrap_err();
        assert!(matches!(
            err,
            CampaignError::InvalidConfig {
                param: "threads",
                ..
            }
        ));
        assert!(err.to_string().contains("at least one worker"));
        let err = run_on_with(
            &jobs,
            2,
            &RetryPolicy {
                max_attempts: 0,
                seed: 0,
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CampaignError::InvalidConfig {
                param: "retry.max_attempts",
                ..
            }
        ));
    }

    #[test]
    fn zero_stride_is_invalid_config_not_a_panic() {
        let w = pgss_workloads::twolf(0.002);
        let (smarts, _, _) = techniques();
        let jobs = vec![Job::new(&w, &smarts)];
        let err = run_checkpointed(&jobs, 0, None).unwrap_err();
        assert!(matches!(
            err,
            CampaignError::InvalidConfig {
                param: "stride",
                ..
            }
        ));
    }

    #[test]
    fn panicking_cell_is_isolated_and_ledgered() {
        silence_injected_panic_reports();
        let workloads = suite();
        let (smarts, _, _) = techniques();
        let exploder = Exploder {
            inner: smarts,
            on: "177.mesa",
        };
        let techs: Vec<&(dyn Technique + Sync)> = vec![&exploder, &smarts];
        let jobs = grid(&workloads, &techs, MachineConfig::default());
        let report = run_on(&jobs, 4).unwrap();

        // Exactly the poisoned cell failed, after the full retry budget.
        assert_eq!(report.failures.len(), 1);
        let failure = &report.failures[0];
        assert_eq!(failure.workload, "177.mesa");
        assert_eq!(failure.technique, exploder.name());
        assert_eq!(failure.attempts, RetryPolicy::default().max_attempts);
        assert_eq!(failure.job_index, 2);
        let CellError::Panicked(msg) = &failure.error else {
            panic!("expected a panic error, got {:?}", failure.error);
        };
        assert!(
            msg.contains(INJECTED_PANIC_TAG),
            "unexpected message {msg:?}"
        );
        assert_eq!(report.retries, 1, "one retry for the one failed cell");
        assert!(!report.is_complete());
        assert!(report.ledger().contains("177.mesa"));
        assert!(report.into_cells().is_err());

        // Every other cell is bit-identical to a direct, fault-free run.
        let report = run_on(&jobs, 4).unwrap();
        assert_eq!(report.cells.len(), jobs.len() - 1);
        for cell in &report.cells {
            let w = workloads
                .iter()
                .find(|w| w.name() == cell.workload)
                .unwrap();
            let (estimate, trace) = smarts.run_traced(w, &MachineConfig::default());
            assert_eq!(
                cell.estimate, estimate,
                "{} × {}",
                cell.workload, cell.technique
            );
            assert_eq!(cell.trace, trace);
        }
    }

    #[test]
    fn transient_panic_heals_via_deterministic_retry() {
        silence_injected_panic_reports();
        let workloads = suite();
        let (smarts, _, _) = techniques();
        let run_once = || {
            let flaky = Flaky {
                inner: smarts,
                on: "300.twolf",
                flakes: AtomicU32::new(1),
            };
            let techs: Vec<&(dyn Technique + Sync)> = vec![&flaky];
            let jobs = grid(&workloads, &techs, MachineConfig::default());
            run_on(&jobs, 2).unwrap()
        };
        let report = run_once();
        assert!(report.is_complete(), "retry must heal a transient fault");
        assert_eq!(report.retries, 1);
        assert_eq!(report.cells.len(), 3);
        // The healed cell's result is bit-identical to the underlying
        // technique's fault-free run.
        let (estimate, trace) = smarts.run_traced(&workloads[2], &MachineConfig::default());
        assert_eq!(report.cells[2].estimate, estimate);
        assert_eq!(report.cells[2].trace, trace);
        // Same faults, same seed: byte-identical reports.
        let second = run_once();
        assert_eq!(report, second);
        assert_eq!(format!("{report:?}"), format!("{second:?}"));
    }

    #[test]
    fn exhausted_retries_keep_remaining_cells_and_report_attempts() {
        silence_injected_panic_reports();
        let workloads = suite();
        let (smarts, _, _) = techniques();
        let flaky = Flaky {
            inner: smarts,
            on: "164.gzip",
            flakes: AtomicU32::new(u32::MAX), // never heals
        };
        let techs: Vec<&(dyn Technique + Sync)> = vec![&flaky];
        let jobs = grid(&workloads, &techs, MachineConfig::default());
        let retry = RetryPolicy {
            max_attempts: 3,
            seed: 7,
        };
        let report = run_on_with(&jobs, 2, &retry).unwrap();
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].attempts, 3);
        assert_eq!(report.retries, 2, "two retry passes over the one cell");
        assert_eq!(report.cells.len(), 2);
    }
}
