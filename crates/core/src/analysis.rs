//! Interval-level characterisation machinery behind the paper's Figures 2,
//! 3, and 6–10: IPC traces, per-interval (IPC, BBV) profiles, the ΔBBV/ΔIPC
//! quadrant analysis, and the phase-threshold sweep.

use pgss_bbv::{BbvHash, HashedBbv, HashedBbvTracker};
use pgss_cpu::{MachineConfig, Mode};
use pgss_stats::Welford;
use pgss_workloads::Workload;

use crate::phase::PhaseTable;

/// One interval of a detailed characterisation run.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSample {
    /// The interval's IPC under detailed simulation.
    pub ipc: f64,
    /// The interval's hashed basic-block vector.
    pub bbv: HashedBbv,
    /// Retired instructions (equals the requested period except possibly
    /// for the final interval, which is discarded by the collectors here).
    pub ops: u64,
}

/// Runs the workload in detailed mode and returns `(ops_completed, ipc)`
/// per `period_ops` interval — the data behind Fig. 2's IPC-versus-time
/// curves at different sampling periods.
///
/// The trailing partial interval is discarded.
///
/// # Panics
///
/// Panics if `period_ops` is zero.
pub fn ipc_trace(workload: &Workload, config: &MachineConfig, period_ops: u64) -> Vec<(u64, f64)> {
    assert!(period_ops > 0, "period_ops must be positive");
    let mut machine = workload.machine_with(*config);
    let mut out = Vec::new();
    let mut completed = 0u64;
    loop {
        let r = machine.run(Mode::DetailedMeasured, period_ops);
        completed += r.ops;
        if r.ops == period_ops {
            out.push((completed, r.ipc()));
        }
        if r.halted || r.ops == 0 {
            break;
        }
    }
    out
}

/// Runs the workload in detailed mode collecting one [`IntervalSample`]
/// (IPC + hashed BBV) per `period_ops` — the joint data behind Figs. 7–10.
///
/// # Panics
///
/// Panics if `period_ops` is zero.
pub fn interval_profile(
    workload: &Workload,
    config: &MachineConfig,
    period_ops: u64,
    hash_seed: u64,
) -> Vec<IntervalSample> {
    assert!(period_ops > 0, "period_ops must be positive");
    let mut machine = workload.machine_with(*config);
    let mut tracker = HashedBbvTracker::new(BbvHash::from_seed(hash_seed));
    let mut out = Vec::new();
    loop {
        let r = machine.run_with(Mode::DetailedMeasured, period_ops, &mut tracker);
        let bbv = tracker.take();
        if r.ops == period_ops {
            out.push(IntervalSample {
                ipc: r.ipc(),
                bbv,
                ops: r.ops,
            });
        }
        if r.halted || r.ops == 0 {
            break;
        }
    }
    out
}

/// The change between two consecutive intervals: BBV angle and IPC change
/// expressed in units of the benchmark's interval-IPC standard deviation
/// (the paper's cross-benchmark normalisation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delta {
    /// Angle between the two intervals' BBVs, in radians.
    pub bbv_angle: f64,
    /// `|ΔIPC|` in benchmark standard deviations.
    pub ipc_sigmas: f64,
}

/// Computes consecutive-interval [`Delta`]s from a profile, normalising IPC
/// changes by the profile's own IPC standard deviation.
///
/// Returns an empty vector when the profile has fewer than two intervals or
/// zero variance.
pub fn deltas(profile: &[IntervalSample]) -> Vec<Delta> {
    if profile.len() < 2 {
        return Vec::new();
    }
    let sigma = profile
        .iter()
        .map(|s| s.ipc)
        .collect::<Welford>()
        .population_stddev();
    if sigma == 0.0 {
        return Vec::new();
    }
    profile
        .windows(2)
        .map(|w| Delta {
            bbv_angle: w[0].bbv.angle(&w[1].bbv),
            ipc_sigmas: (w[1].ipc - w[0].ipc).abs() / sigma,
        })
        .collect()
}

/// Fig. 8's metric: among changes with `|ΔIPC| > sigma_level`, the fraction
/// whose BBV change exceeds `threshold_rad` — detected changes (Region 2)
/// over all significant changes (Regions 1 + 2 of Fig. 6).
///
/// `None` when there are no significant changes.
pub fn detection_rate(deltas: &[Delta], threshold_rad: f64, sigma_level: f64) -> Option<f64> {
    let significant: Vec<_> = deltas
        .iter()
        .filter(|d| d.ipc_sigmas > sigma_level)
        .collect();
    if significant.is_empty() {
        return None;
    }
    let detected = significant
        .iter()
        .filter(|d| d.bbv_angle > threshold_rad)
        .count();
    Some(detected as f64 / significant.len() as f64)
}

/// Fig. 9's metric: among detected phase changes (BBV change above the
/// threshold), the fraction whose IPC change is *not* significant — false
/// positives (Region 4) over all detections (Regions 2 + 4 of Fig. 6).
///
/// `None` when nothing is detected.
pub fn false_positive_rate(deltas: &[Delta], threshold_rad: f64, sigma_level: f64) -> Option<f64> {
    let detected: Vec<_> = deltas
        .iter()
        .filter(|d| d.bbv_angle > threshold_rad)
        .collect();
    if detected.is_empty() {
        return None;
    }
    let false_pos = detected
        .iter()
        .filter(|d| d.ipc_sigmas <= sigma_level)
        .count();
    Some(false_pos as f64 / detected.len() as f64)
}

/// Fig. 7's two-dimensional distribution: per-benchmark delta sets are each
/// binned into an `x_bins × y_bins` grid over `[0, x_max] × [0, y_max]`
/// (values clamped into the edge bins), normalised to fractions, then
/// averaged so every benchmark is weighted equally.
///
/// Returns `grid[y][x]` with `y` increasing in IPC change and `x` in BBV
/// angle.
pub fn density_grid(
    per_benchmark: &[Vec<Delta>],
    x_bins: usize,
    y_bins: usize,
    x_max: f64,
    y_max: f64,
) -> Vec<Vec<f64>> {
    assert!(
        x_bins > 0 && y_bins > 0,
        "grid needs at least one bin per axis"
    );
    let mut grid = vec![vec![0.0f64; x_bins]; y_bins];
    let mut contributing = 0usize;
    for deltas in per_benchmark {
        if deltas.is_empty() {
            continue;
        }
        contributing += 1;
        let share = 1.0 / deltas.len() as f64;
        for d in deltas {
            let x = ((d.bbv_angle / x_max * x_bins as f64) as usize).min(x_bins - 1);
            let y = ((d.ipc_sigmas / y_max * y_bins as f64) as usize).min(y_bins - 1);
            grid[y][x] += share;
        }
    }
    if contributing > 0 {
        for row in &mut grid {
            for cell in row.iter_mut() {
                *cell /= contributing as f64;
            }
        }
    }
    grid
}

/// One row of Fig. 10's threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdSweepRow {
    /// The phase threshold in radians.
    pub threshold_rad: f64,
    /// Distinct phases discovered at this threshold.
    pub num_phases: usize,
    /// Interval-to-interval phase transitions.
    pub num_changes: u64,
    /// Mean contiguous same-phase run length, in retired instructions.
    pub avg_interval_ops: f64,
    /// Mean within-phase IPC standard deviation, in units of the
    /// benchmark's overall interval-IPC standard deviation (weighted by
    /// phase size) — Fig. 10's "IPC variance" axis.
    pub ipc_variation_sigmas: f64,
}

/// Sweeps the online phase detector over `thresholds` against a fixed
/// interval profile, reporting Fig. 10's four statistics per threshold.
pub fn phase_threshold_sweep(
    profile: &[IntervalSample],
    thresholds: &[f64],
) -> Vec<ThresholdSweepRow> {
    let overall_sigma = profile
        .iter()
        .map(|s| s.ipc)
        .collect::<Welford>()
        .population_stddev();
    thresholds
        .iter()
        .map(|&threshold_rad| {
            let mut table = PhaseTable::new(threshold_rad);
            let mut per_phase: Vec<Welford> = Vec::new();
            let total_ops: u64 = profile.iter().map(|s| s.ops).sum();
            for s in profile {
                let c = table.classify(&s.bbv, s.ops);
                if c.created {
                    per_phase.push(Welford::new());
                }
                per_phase[c.phase].push(s.ipc);
            }
            let changes = table.changes();
            let avg_interval_ops = total_ops as f64 / (changes + 1) as f64;
            let mut acc = 0.0;
            let mut weight = 0.0;
            for w in &per_phase {
                if w.count() > 0 {
                    acc += w.population_stddev() * w.count() as f64;
                    weight += w.count() as f64;
                }
            }
            let within = if weight > 0.0 { acc / weight } else { 0.0 };
            ThresholdSweepRow {
                threshold_rad,
                num_phases: table.phases().len(),
                num_changes: changes,
                avg_interval_ops,
                ipc_variation_sigmas: if overall_sigma > 0.0 {
                    within / overall_sigma
                } else {
                    0.0
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ipc: f64, bucket: usize) -> IntervalSample {
        let mut bbv = HashedBbv::new();
        bbv.record(bucket, 1000);
        IntervalSample {
            ipc,
            bbv,
            ops: 1000,
        }
    }

    fn alternating_profile(n: usize) -> Vec<IntervalSample> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    sample(2.0, 0)
                } else {
                    sample(1.0, 9)
                }
            })
            .collect()
    }

    #[test]
    fn deltas_normalise_by_sigma() {
        let p = alternating_profile(10);
        let d = deltas(&p);
        assert_eq!(d.len(), 9);
        // Alternating 1/2 IPC: sigma = 0.5, every |ΔIPC| = 1.0 → 2 sigmas.
        for delta in &d {
            assert!((delta.ipc_sigmas - 2.0).abs() < 1e-9);
            assert!(delta.bbv_angle > 1.5); // orthogonal BBVs
        }
    }

    #[test]
    fn deltas_degenerate_cases() {
        assert!(deltas(&[]).is_empty());
        assert!(deltas(&[sample(1.0, 0)]).is_empty());
        // Zero variance.
        let flat: Vec<_> = (0..5).map(|_| sample(1.0, 0)).collect();
        assert!(deltas(&flat).is_empty());
    }

    #[test]
    fn detection_catches_real_changes() {
        let d = deltas(&alternating_profile(20));
        // Every change is significant and has a large BBV angle.
        assert_eq!(detection_rate(&d, crate::threshold(0.05), 0.5), Some(1.0));
        // With an absurd threshold nothing is detected.
        assert_eq!(detection_rate(&d, 10.0, 0.5), Some(0.0));
        // No significant changes at an absurd sigma level.
        assert_eq!(detection_rate(&d, 0.1, 100.0), None);
    }

    #[test]
    fn false_positives_flag_noise_detections() {
        // BBVs alternate every interval but the IPC only moves once, at the
        // very end: all but one detection is a false positive.
        let mut p: Vec<_> = (0..19)
            .map(|i| sample(1.0, if i % 2 == 0 { 0 } else { 9 }))
            .collect();
        p.push(sample(1.5, 9)); // index 18 has bucket 0, so this change is detected

        let d = deltas(&p);
        let fp = false_positive_rate(&d, crate::threshold(0.05), 0.5).unwrap();
        assert!((fp - 18.0 / 19.0).abs() < 1e-9, "false-positive rate {fp}");
        assert_eq!(false_positive_rate(&d, 10.0, 0.5), None);
    }

    #[test]
    fn density_grid_weighs_benchmarks_equally() {
        // Benchmark A: 100 deltas in one cell; benchmark B: 1 delta in
        // another. Each contributes 0.5 to its cell.
        let a = vec![
            Delta {
                bbv_angle: 0.01,
                ipc_sigmas: 0.01
            };
            100
        ];
        let b = vec![Delta {
            bbv_angle: 1.5,
            ipc_sigmas: 0.9,
        }];
        let g = density_grid(&[a, b], 4, 4, 1.6, 1.0);
        assert!((g[0][0] - 0.5).abs() < 1e-9);
        assert!((g[3][3] - 0.5).abs() < 1e-9);
        let total: f64 = g.iter().flatten().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_sweep_is_monotone_in_the_right_direction() {
        let p = alternating_profile(40);
        let rows = phase_threshold_sweep(
            &p,
            &[
                crate::threshold(0.05),
                crate::threshold(0.25),
                std::f64::consts::FRAC_PI_2 + 0.1,
            ],
        );
        // Tight threshold: 2 phases, 39 changes, zero within-phase
        // variation.
        assert_eq!(rows[0].num_phases, 2);
        assert_eq!(rows[0].num_changes, 39);
        assert!(rows[0].ipc_variation_sigmas < 1e-9);
        // Beyond π/2 everything merges: 1 phase, no changes, and the
        // within-phase variation equals the overall (ratio 1).
        assert_eq!(rows[2].num_phases, 1);
        assert_eq!(rows[2].num_changes, 0);
        assert!((rows[2].ipc_variation_sigmas - 1.0).abs() < 1e-9);
        // Phase count never increases with the threshold.
        assert!(rows[0].num_phases >= rows[1].num_phases);
        assert!(rows[1].num_phases >= rows[2].num_phases);
        // Average interval length grows with the threshold.
        assert!(rows[2].avg_interval_ops > rows[0].avg_interval_ops);
    }

    #[test]
    fn trace_and_profile_agree_on_a_real_workload() {
        let w = pgss_workloads::twolf(0.002);
        let cfg = MachineConfig::default();
        let trace = ipc_trace(&w, &cfg, 100_000);
        let profile = interval_profile(&w, &cfg, 100_000, 7);
        assert_eq!(trace.len(), profile.len());
        for ((_, a), s) in trace.iter().zip(&profile) {
            assert!((a - s.ipc).abs() < 1e-12);
        }
    }
}
