//! Typed checkpoints on top of the [`pgss_ckpt`] byte store: snapshot
//! encoding, content-address keys, and the capture ladder that lets
//! many driver passes share one functional fast-forward of a workload.
//!
//! Layering (bottom to top):
//!
//! 1. [`pgss_ckpt::codec`] / [`pgss_ckpt::Store`] — bytes only; versioned,
//!    checksummed, crash-safe records.
//! 2. This module — encodes [`pgss_cpu::MachineSnapshot`] /
//!    [`crate::driver::DriverSnapshot`] payloads, derives content-address
//!    keys from (workload identity, machine config, op offset), and
//!    builds [`CheckpointLadder`]s: snapshots at a fixed op stride with
//!    *cumulative* BBV tracker state per rung.
//! 3. [`crate::driver::SimDriver`] — restores snapshots and, when a
//!    ladder is attached, *jumps* over functional segments by restoring
//!    the highest rung inside the segment instead of executing it.
//! 4. [`crate::campaign::run_checkpointed`] — captures each workload's
//!    ladder once and fans restores out to every technique in the grid.
//!
//! This is the paper's TurboSMARTS idea (SMARTS with live-state
//! checkpoints) generalised: any pass that functionally fast-forwards —
//! SMARTS inter-sample gaps, PGSS/Online-SimPoint classification
//! intervals, SimPoint profile and replay skips — can consume the same
//! checkpoints, because functional warming leaves the machine in exactly
//! the state any other warm-mode path would (architectural execution and
//! cache/predictor updates are mode-independent).
//!
//! # Fault tolerance
//!
//! Store reads are *self-healing*: [`CheckpointLadder::load_or_capture`]
//! reads via [`Store::get_checked`], and any record that exists but fails
//! validation is moved into the store's quarantine sidecar (never
//! deleted — the evidence survives for post-mortem) before the ladder is
//! recaptured from scratch and written back. Every such event, plus any
//! store I/O error or failed write-back, lands in the ladder's
//! [`CheckpointLadder::fault_log`], which campaigns surface in their
//! report ledger. Because recapture reproduces the exact bytes the rung
//! held before it rotted, healing is invisible to results.

// Checkpoint state feeds bit-exact simulation results; a stray unwrap on
// this path would turn a recoverable corrupt record into an abort.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicU64, Ordering};

use pgss_bbv::{BbvHash, FullBbv, FullBbvTracker, HashedBbv, HashedBbvTracker, HASHED_BBV_DIM};
use pgss_ckpt::{fnv1a64, CodecError, Decoder, Encoder, RecordError, Store};
use pgss_cpu::{
    BranchPredictorState, BtbState, CacheState, MachineConfig, MachineSnapshot, MemSystemState,
    Mode, ModeOps,
};
use pgss_workloads::Workload;

use crate::driver::DriverSnapshot;

/// Version of the *payload* encoding produced by this module (the store
/// has its own record-layout version,
/// [`pgss_ckpt::STORE_FORMAT_VERSION`]). Bump on any change to the
/// snapshot byte layout; decoders reject other versions, and the version
/// participates in content-address keys so stale records are simply
/// never found.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// Encodes a machine snapshot. The memory image uses zero-run
/// compression, so the encoded size tracks the workload's touched
/// footprint rather than the configured memory size.
pub fn encode_machine_snapshot(snap: &MachineSnapshot) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u32(SNAPSHOT_FORMAT_VERSION);
    e.put_u32(snap.pc);
    for &r in &snap.regs {
        e.put_i64(r);
    }
    for &f in &snap.fregs {
        e.put_f64(f);
    }
    e.put_i64_slice_rle(&snap.mem);
    e.put_bool(snap.halted);
    put_mode_ops(&mut e, snap.mode_ops);
    e.put_u64(snap.ops_since_taken);
    for c in [&snap.memsys.l1i, &snap.memsys.l1d, &snap.memsys.l2] {
        e.put_u64_slice(&c.ways);
        e.put_u64(c.hits);
        e.put_u64(c.misses);
    }
    e.put_bytes(&snap.bpred.counters);
    e.put_u64(snap.bpred.history);
    e.put_u64(snap.bpred.predictions);
    e.put_u64(snap.bpred.mispredictions);
    e.put_u64(snap.btb.targets.len() as u64);
    for &t in &snap.btb.targets {
        e.put_u32(t);
    }
    e.into_bytes()
}

/// Decodes bytes produced by [`encode_machine_snapshot`], rejecting
/// other snapshot-format versions.
pub fn decode_machine_snapshot(bytes: &[u8]) -> Result<MachineSnapshot, CodecError> {
    let mut d = Decoder::new(bytes);
    let snap = decode_machine_snapshot_from(&mut d)?;
    d.finish()?;
    Ok(snap)
}

fn decode_machine_snapshot_from(d: &mut Decoder<'_>) -> Result<MachineSnapshot, CodecError> {
    if d.get_u32()? != SNAPSHOT_FORMAT_VERSION {
        return Err(CodecError::Malformed("snapshot format version mismatch"));
    }
    let pc = d.get_u32()?;
    let mut regs = [0i64; 32];
    for r in &mut regs {
        *r = d.get_i64()?;
    }
    let mut fregs = [0f64; 32];
    for f in &mut fregs {
        *f = d.get_f64()?;
    }
    let mem = d.get_i64_slice_rle()?;
    let halted = d.get_bool()?;
    let mode_ops = get_mode_ops(d)?;
    let ops_since_taken = d.get_u64()?;
    let l1i = get_cache_state(d)?;
    let l1d = get_cache_state(d)?;
    let l2 = get_cache_state(d)?;
    let counters = d.get_bytes()?;
    let bpred = BranchPredictorState {
        counters,
        history: d.get_u64()?,
        predictions: d.get_u64()?,
        mispredictions: d.get_u64()?,
    };
    let n = d.get_u64()?;
    let n = usize::try_from(n).map_err(|_| CodecError::Malformed("length overflow"))?;
    let mut targets = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        targets.push(d.get_u32()?);
    }
    Ok(MachineSnapshot {
        pc,
        regs,
        fregs,
        mem,
        halted,
        mode_ops,
        ops_since_taken,
        memsys: MemSystemState { l1i, l1d, l2 },
        bpred,
        btb: BtbState { targets },
    })
}

fn get_cache_state(d: &mut Decoder<'_>) -> Result<CacheState, CodecError> {
    Ok(CacheState {
        ways: d.get_u64_slice()?,
        hits: d.get_u64()?,
        misses: d.get_u64()?,
    })
}

fn put_mode_ops(e: &mut Encoder, ops: ModeOps) {
    e.put_u64(ops.fast_forward);
    e.put_u64(ops.functional);
    e.put_u64(ops.detailed_warming);
    e.put_u64(ops.detailed_measured);
}

fn get_mode_ops(d: &mut Decoder<'_>) -> Result<ModeOps, CodecError> {
    Ok(ModeOps {
        fast_forward: d.get_u64()?,
        functional: d.get_u64()?,
        detailed_warming: d.get_u64()?,
        detailed_measured: d.get_u64()?,
    })
}

fn put_hashed_bbv(e: &mut Encoder, bbv: &HashedBbv) {
    e.put_u64_slice(bbv.counts());
}

fn get_hashed_bbv(d: &mut Decoder<'_>) -> Result<HashedBbv, CodecError> {
    let counts = d.get_u64_slice()?;
    let counts: [u64; HASHED_BBV_DIM] = counts
        .try_into()
        .map_err(|_| CodecError::Malformed("hashed BBV dimension"))?;
    Ok(HashedBbv::from_counts(counts))
}

/// Encodes a full driver snapshot (machine state, retired position,
/// in-flight BBV tracker state).
pub fn encode_driver_snapshot(snap: &DriverSnapshot) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u32(SNAPSHOT_FORMAT_VERSION);
    e.put_u64(snap.retired);
    e.put_bytes(&encode_machine_snapshot(&snap.machine));
    e.put_bool(snap.hashed_current.is_some());
    if let Some(h) = &snap.hashed_current {
        put_hashed_bbv(&mut e, h);
    }
    e.put_bool(snap.full_current.is_some());
    if let Some(f) = &snap.full_current {
        e.put_u64_slice(f.counts());
    }
    e.into_bytes()
}

/// Decodes bytes produced by [`encode_driver_snapshot`].
pub fn decode_driver_snapshot(bytes: &[u8]) -> Result<DriverSnapshot, CodecError> {
    let mut d = Decoder::new(bytes);
    if d.get_u32()? != SNAPSHOT_FORMAT_VERSION {
        return Err(CodecError::Malformed("snapshot format version mismatch"));
    }
    let retired = d.get_u64()?;
    let machine_bytes = d.get_bytes()?;
    let machine = decode_machine_snapshot(&machine_bytes)?;
    let hashed_current = d.get_bool()?.then(|| get_hashed_bbv(&mut d)).transpose()?;
    let full_current = d
        .get_bool()?
        .then(|| d.get_u64_slice().map(FullBbv::from_counts))
        .transpose()?;
    d.finish()?;
    Ok(DriverSnapshot {
        machine,
        retired,
        hashed_current,
        full_current,
    })
}

/// The identity a checkpoint is keyed by: which workload (name, nominal
/// size, program shape — scale is baked into the nominal op count), which
/// machine configuration, and which retired-op offset. Two runs agreeing
/// on all of these see identical machine state at the offset, so records
/// are safely shareable across processes.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointKey {
    /// Workload name.
    pub workload: String,
    /// The workload's nominal op count (scale-dependent).
    pub nominal_ops: u64,
    /// Instruction count of the program (identity proxy).
    pub program_len: u64,
    /// Static basic-block count of the program (identity proxy).
    pub num_blocks: u64,
    /// Memory words the workload requires (identity proxy for its data
    /// image).
    pub init_words: u64,
    /// Digest of every [`MachineConfig`] field.
    pub config_digest: u64,
    /// Retired-op offset the snapshot was captured at.
    pub op_offset: u64,
}

impl CheckpointKey {
    /// Builds the key identifying `workload` × `config` at `op_offset`.
    pub fn new(workload: &Workload, config: &MachineConfig, op_offset: u64) -> CheckpointKey {
        CheckpointKey {
            workload: workload.name().to_string(),
            nominal_ops: workload.nominal_ops(),
            program_len: workload.program().len() as u64,
            num_blocks: workload.program().num_blocks() as u64,
            init_words: workload.required_memory_words() as u64,
            config_digest: config_digest(config),
            op_offset,
        }
    }

    /// The 64-bit content address for [`Store`] lookups. Includes the
    /// snapshot format version, so a version bump orphans (rather than
    /// misreads) old records.
    pub fn hash(&self) -> u64 {
        self.hash_with_tag(0)
    }

    fn hash_with_tag(&self, tag: u64) -> u64 {
        let mut e = Encoder::new();
        e.put_u32(SNAPSHOT_FORMAT_VERSION);
        e.put_str(&self.workload);
        e.put_u64(self.nominal_ops);
        e.put_u64(self.program_len);
        e.put_u64(self.num_blocks);
        e.put_u64(self.init_words);
        e.put_u64(self.config_digest);
        e.put_u64(self.op_offset);
        e.put_u64(tag);
        fnv1a64(&e.into_bytes())
    }
}

/// FNV digest over every field of a [`MachineConfig`].
pub fn config_digest(config: &MachineConfig) -> u64 {
    let mut e = Encoder::new();
    e.put_u32(config.issue_width);
    for c in [config.l1i, config.l1d, config.l2] {
        e.put_u64(c.size_bytes);
        e.put_u64(c.line_bytes);
        e.put_u32(c.associativity);
    }
    e.put_u32(config.bpred.history_bits);
    e.put_u32(config.bpred.btb_entries);
    let l = config.lat;
    for v in [
        l.alu,
        l.mul,
        l.div,
        l.fp_add,
        l.fp_mul,
        l.fp_div,
        l.l1_hit,
        l.l2_hit,
        l.memory,
        l.mispredict,
    ] {
        e.put_u32(v);
    }
    e.put_u64(config.memory_words as u64);
    e.put_u32(config.mshrs);
    fnv1a64(&e.into_bytes())
}

/// What a [`CheckpointLadder`] capture pass tracks alongside the
/// snapshots.
///
/// Jumping into a BBV-tracked pass requires the ladder to carry that
/// track's *cumulative* counts, so the union of every consuming
/// technique's tracks must be declared up front (the campaign derives it
/// from [`crate::Technique::tracks`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LadderSpec {
    /// Distance between rungs, in retired ops.
    pub stride: u64,
    /// Hash seeds whose cumulative hashed BBVs each rung carries.
    pub hashed_seeds: Vec<u64>,
    /// Whether rungs carry the cumulative full (per-static-block) BBV.
    pub with_full: bool,
}

impl LadderSpec {
    /// A machine-state-only spec (sufficient for `Track::None` passes).
    pub fn machine_only(stride: u64) -> LadderSpec {
        LadderSpec {
            stride,
            hashed_seeds: Vec::new(),
            with_full: false,
        }
    }
}

/// One rung: the workload's complete state at `retired`, held as encoded
/// (zero-run-compressed) bytes plus cumulative-since-op-0 tracker counts.
#[derive(Debug, Clone)]
pub(crate) struct LadderRung {
    pub(crate) retired: u64,
    pub(crate) machine: Vec<u8>,
    pub(crate) hashed_cum: Vec<HashedBbv>,
    pub(crate) full_cum: Option<FullBbv>,
}

/// Live counters a ladder accumulates while drivers consume it.
#[derive(Debug, Default)]
pub struct LadderCounters {
    jumps: AtomicU64,
    skipped_ops: AtomicU64,
    executed_ops: AtomicU64,
}

/// A point-in-time copy of a ladder's counters plus its capture cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LadderReport {
    /// Restores performed in place of functional execution.
    pub jumps: u64,
    /// Ops skipped via those restores (charged logically, not executed).
    pub skipped_ops: u64,
    /// Ops actually executed by drivers attached to this ladder.
    pub executed_ops: u64,
    /// Ops the capture pass itself executed (0 when the ladder was
    /// loaded from a store).
    pub capture_ops: u64,
}

impl LadderReport {
    /// Merges another report into this one.
    pub fn merge(&mut self, other: &LadderReport) {
        self.jumps += other.jumps;
        self.skipped_ops += other.skipped_ops;
        self.executed_ops += other.executed_ops;
        self.capture_ops += other.capture_ops;
    }

    /// Ops physically executed, capture included.
    pub fn total_executed(&self) -> u64 {
        self.executed_ops + self.capture_ops
    }

    /// Ops the same segment schedules would have executed without
    /// checkpoints (no capture pass, nothing skipped).
    pub fn baseline_ops(&self) -> u64 {
        self.executed_ops + self.skipped_ops
    }

    /// `total_executed / baseline_ops`: below 1.0 when checkpointing
    /// paid off.
    pub fn executed_ratio(&self) -> f64 {
        if self.baseline_ops() == 0 {
            1.0
        } else {
            self.total_executed() as f64 / self.baseline_ops() as f64
        }
    }
}

/// A ladder of checkpoints up a workload's execution: snapshots every
/// [`LadderSpec::stride`] retired ops, each carrying cumulative BBV
/// tracker state, captured by one functional pass (or loaded from a
/// [`Store`]). Attached to [`crate::driver::SimDriver`]s via
/// [`crate::SimContext`], it lets every functional fast-forward segment
/// be replaced by a restore of the highest rung the segment spans —
/// with identical observable results, because functional warming is
/// deterministic and mode-independent.
#[derive(Debug)]
pub struct CheckpointLadder {
    spec: LadderSpec,
    rungs: Vec<LadderRung>,
    capture_ops: u64,
    counters: LadderCounters,
    fault_log: Vec<String>,
}

impl CheckpointLadder {
    /// Runs the capture pass: one functional execution of `workload` to
    /// halt, snapshotting at every stride boundary.
    ///
    /// # Panics
    ///
    /// Panics if `spec.stride` is zero.
    pub fn capture(workload: &Workload, config: &MachineConfig, spec: &LadderSpec) -> Self {
        assert!(spec.stride > 0, "ladder stride must be positive");
        let mut machine = workload.machine_with(*config);
        let hashed: Vec<HashedBbvTracker> = spec
            .hashed_seeds
            .iter()
            .map(|&s| HashedBbvTracker::new(BbvHash::from_seed(s)))
            .collect();
        let full = spec
            .with_full
            .then(|| FullBbvTracker::new(workload.program()));
        let mut sink = (hashed, full);
        let mut rungs = Vec::new();
        let mut retired = 0u64;
        loop {
            let r = machine.run_with(Mode::Functional, spec.stride, &mut sink);
            retired += r.ops;
            if r.ops == spec.stride {
                rungs.push(LadderRung {
                    retired,
                    machine: encode_machine_snapshot(&machine.snapshot()),
                    hashed_cum: sink.0.iter().map(|t| *t.current()).collect(),
                    full_cum: sink.1.as_ref().map(|t| t.current().clone()),
                });
            }
            if r.halted || r.ops < spec.stride {
                break;
            }
        }
        CheckpointLadder {
            spec: spec.clone(),
            rungs,
            capture_ops: retired,
            counters: LadderCounters::default(),
            fault_log: Vec::new(),
        }
    }

    /// Like [`CheckpointLadder::capture`], but first tries to load every
    /// rung from `store` (keyed by workload identity × config × offset ×
    /// spec) and, after a capture, writes the rungs back.
    ///
    /// Store reads are tolerant *and self-healing*: a record that exists
    /// but fails validation is quarantined (moved into the store's
    /// sidecar directory, never deleted) and the whole ladder is
    /// recaptured and written back, transparently re-creating the
    /// quarantined rungs. Missing records and I/O errors also fall back
    /// to capture. Writes are best-effort (an unwritable store only costs
    /// future reuse). Every fault handled this way is described in
    /// [`CheckpointLadder::fault_log`].
    pub fn load_or_capture(
        store: &Store,
        workload: &Workload,
        config: &MachineConfig,
        spec: &LadderSpec,
    ) -> Self {
        assert!(spec.stride > 0, "ladder stride must be positive");
        let tag = Self::spec_tag(spec);
        let meta_key = CheckpointKey::new(workload, config, u64::MAX).hash_with_tag(tag);
        let mut log = Vec::new();
        if let Some(mut ladder) =
            Self::try_load(store, workload, config, spec, tag, meta_key, &mut log)
        {
            ladder.fault_log = log;
            return ladder;
        }
        let mut ladder = Self::capture(workload, config, spec);
        // Best-effort write-back; rungs first so a complete meta record
        // implies complete rungs.
        let mut ok = true;
        for rung in &ladder.rungs {
            let key = CheckpointKey::new(workload, config, rung.retired).hash_with_tag(tag);
            if let Err(e) = store.put(key, &encode_rung(rung)) {
                log.push(format!(
                    "{}: write-back of checkpoint rung @{} failed: {e}",
                    workload.name(),
                    rung.retired
                ));
                ok = false;
            }
        }
        if ok {
            let mut e = Encoder::new();
            e.put_u64(ladder.capture_ops);
            e.put_u64(ladder.rungs.len() as u64);
            if let Err(e) = store.put(meta_key, &e.into_bytes()) {
                log.push(format!(
                    "{}: write-back of ladder meta record failed: {e}",
                    workload.name()
                ));
            }
        }
        ladder.fault_log = log;
        ladder
    }

    /// One tolerated store read for `try_load`: `Ok(payload)` on a valid
    /// record, `Err(abandon_load)` otherwise — quarantining invalid
    /// records (self-healing) and logging everything except a silent
    /// first-run miss.
    fn read_healing(
        store: &Store,
        key: u64,
        what: &str,
        silent_miss: bool,
        workload: &Workload,
        log: &mut Vec<String>,
    ) -> Result<Vec<u8>, ()> {
        match store.get_checked(key) {
            Ok(payload) => Ok(payload),
            Err(RecordError::Missing) => {
                if !silent_miss {
                    log.push(format!(
                        "{}: missing {what} (key {key:016x}) despite complete meta; recapturing",
                        workload.name()
                    ));
                }
                Err(())
            }
            Err(RecordError::Invalid(fault)) => {
                let dest = match store.quarantine(key) {
                    Ok(Some(path)) => format!("quarantined to {}", path.display()),
                    Ok(None) => "already gone".to_string(),
                    Err(e) => format!("quarantine failed: {e}"),
                };
                log.push(format!(
                    "{}: corrupt {what} (key {key:016x}): {fault}; {dest}; recapturing",
                    workload.name()
                ));
                Err(())
            }
            Err(e @ RecordError::Io(..)) => {
                log.push(format!(
                    "{}: {what} (key {key:016x}) unreadable: {e}; recapturing",
                    workload.name()
                ));
                Err(())
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // internal; mirrors load_or_capture's context
    fn try_load(
        store: &Store,
        workload: &Workload,
        config: &MachineConfig,
        spec: &LadderSpec,
        tag: u64,
        meta_key: u64,
        log: &mut Vec<String>,
    ) -> Option<Self> {
        let meta =
            Self::read_healing(store, meta_key, "ladder meta record", true, workload, log).ok()?;
        let mut d = Decoder::new(&meta);
        let count = (|| {
            d.get_u64()?; // capture_ops of the original capture; unused
            let count = d.get_u64()?;
            d.finish()?;
            Ok::<u64, CodecError>(count)
        })()
        .ok()?;
        let mut rungs = Vec::with_capacity(count as usize);
        for i in 1..=count {
            let offset = i * spec.stride;
            let key = CheckpointKey::new(workload, config, offset).hash_with_tag(tag);
            let what = format!("checkpoint rung @{offset}");
            let payload = Self::read_healing(store, key, &what, false, workload, log).ok()?;
            let rung = match decode_rung(&payload, spec) {
                Ok(rung) if rung.retired == offset => rung,
                // The record checksummed clean but its payload is not the
                // rung the key promises — quarantine it like corruption.
                _ => {
                    let dest = match store.quarantine(key) {
                        Ok(Some(path)) => format!("quarantined to {}", path.display()),
                        Ok(None) => "already gone".to_string(),
                        Err(e) => format!("quarantine failed: {e}"),
                    };
                    log.push(format!(
                        "{}: undecodable {what} (key {key:016x}); {dest}; recapturing",
                        workload.name()
                    ));
                    return None;
                }
            };
            rungs.push(rung);
        }
        Some(CheckpointLadder {
            spec: spec.clone(),
            rungs,
            capture_ops: 0,
            counters: LadderCounters::default(),
            fault_log: Vec::new(),
        })
    }

    /// The content addresses a persisted ladder for `workload` × `config`
    /// × `spec` occupies in `store`: the meta record plus every rung the
    /// meta record declares. These are GC liveness roots — a
    /// [`Store::gc`] caller marks them live to keep accelerated campaigns
    /// warm across sweeps.
    ///
    /// When the meta record is missing or corrupt the ladder is already
    /// unreachable (`load_or_capture` would recapture), so only the meta
    /// key itself is reported; any orphaned rungs are legitimately
    /// collectable and will be transparently re-created on the next
    /// capture. Callers must not run a sweep concurrently with a ladder
    /// *capture*: rungs are written before their meta record, so a sweep
    /// in that window would (harmlessly but wastefully) collect them.
    pub fn live_keys(
        store: &Store,
        workload: &Workload,
        config: &MachineConfig,
        spec: &LadderSpec,
    ) -> Vec<u64> {
        let tag = Self::spec_tag(spec);
        let meta_key = CheckpointKey::new(workload, config, u64::MAX).hash_with_tag(tag);
        let mut keys = vec![meta_key];
        let Ok(meta) = store.get_checked(meta_key) else {
            return keys;
        };
        let mut d = Decoder::new(&meta);
        let count = (|| {
            d.get_u64()?; // capture_ops; irrelevant to liveness
            let count = d.get_u64()?;
            d.finish()?;
            Ok::<u64, CodecError>(count)
        })()
        .unwrap_or(0);
        for i in 1..=count {
            keys.push(CheckpointKey::new(workload, config, i * spec.stride).hash_with_tag(tag));
        }
        keys
    }

    /// A digest of the spec, mixed into keys so ladders with different
    /// tracked seeds never alias.
    fn spec_tag(spec: &LadderSpec) -> u64 {
        let mut e = Encoder::new();
        e.put_u64(spec.stride);
        e.put_u64_slice(&spec.hashed_seeds);
        e.put_bool(spec.with_full);
        fnv1a64(&e.into_bytes())
    }

    /// The spec this ladder was captured with.
    pub fn spec(&self) -> &LadderSpec {
        &self.spec
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// True when the capture found no complete stride.
    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    /// Index of `seed` in the carried hashed tracks.
    pub(crate) fn seed_index(&self, seed: u64) -> Option<usize> {
        self.spec.hashed_seeds.iter().position(|&s| s == seed)
    }

    /// Whether rungs carry full-BBV cumulative state.
    pub(crate) fn has_full(&self) -> bool {
        self.spec.with_full
    }

    /// The highest rung strictly after `after` and at or below `upto`.
    pub(crate) fn best_rung_in(&self, after: u64, upto: u64) -> Option<&LadderRung> {
        let idx = self.rungs.partition_point(|r| r.retired <= upto);
        let candidate = self.rungs.get(idx.checked_sub(1)?)?;
        (candidate.retired > after).then_some(candidate)
    }

    pub(crate) fn record_jump(&self, skipped: u64) {
        self.counters.jumps.fetch_add(1, Ordering::Relaxed);
        self.counters
            .skipped_ops
            .fetch_add(skipped, Ordering::Relaxed);
    }

    pub(crate) fn record_executed(&self, ops: u64) {
        self.counters.executed_ops.fetch_add(ops, Ordering::Relaxed);
    }

    /// Store faults this ladder healed or tolerated while loading /
    /// writing back: quarantined corrupt records, missing rungs, I/O
    /// errors, failed write-backs — one human-readable line each, in the
    /// order encountered. Empty on a clean load or a first capture.
    pub fn fault_log(&self) -> &[String] {
        &self.fault_log
    }

    /// Point-in-time counters plus the capture cost.
    pub fn report(&self) -> LadderReport {
        LadderReport {
            jumps: self.counters.jumps.load(Ordering::Relaxed),
            skipped_ops: self.counters.skipped_ops.load(Ordering::Relaxed),
            executed_ops: self.counters.executed_ops.load(Ordering::Relaxed),
            capture_ops: self.capture_ops,
        }
    }
}

fn encode_rung(rung: &LadderRung) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u64(rung.retired);
    e.put_bytes(&rung.machine);
    e.put_u64(rung.hashed_cum.len() as u64);
    for h in &rung.hashed_cum {
        put_hashed_bbv(&mut e, h);
    }
    e.put_bool(rung.full_cum.is_some());
    if let Some(f) = &rung.full_cum {
        e.put_u64_slice(f.counts());
    }
    e.into_bytes()
}

fn decode_rung(bytes: &[u8], spec: &LadderSpec) -> Result<LadderRung, CodecError> {
    let mut d = Decoder::new(bytes);
    let retired = d.get_u64()?;
    let machine = d.get_bytes()?;
    // Validate eagerly so a corrupted record surfaces here (tolerant
    // fallback to capture) rather than as a panic at jump time.
    decode_machine_snapshot(&machine)?;
    let n = d.get_u64()?;
    if n != spec.hashed_seeds.len() as u64 {
        return Err(CodecError::Malformed("ladder seed count mismatch"));
    }
    let mut hashed_cum = Vec::with_capacity(n as usize);
    for _ in 0..n {
        hashed_cum.push(get_hashed_bbv(&mut d)?);
    }
    let full_cum = d
        .get_bool()?
        .then(|| d.get_u64_slice().map(FullBbv::from_counts))
        .transpose()?;
    if full_cum.is_some() != spec.with_full {
        return Err(CodecError::Malformed("ladder full-BBV mismatch"));
    }
    d.finish()?;
    Ok(LadderRung {
        retired,
        machine,
        hashed_cum,
        full_cum,
    })
}

/// Per-run context threaded to [`crate::Technique::run_traced_ctx`]:
/// carries the checkpoint ladder (if any) and the metrics recorder every
/// driver pass of the run should attach — see [`SimContext::bind`].
#[derive(Debug, Clone)]
pub struct SimContext {
    /// The workload's checkpoint ladder, shared across the techniques of
    /// a checkpoint-accelerated campaign.
    pub ladder: Option<std::sync::Arc<CheckpointLadder>>,
    /// Metrics sink for the run ([`pgss_obs::NoopRecorder`] by default,
    /// which costs nothing).
    pub recorder: std::sync::Arc<dyn pgss_obs::Recorder>,
    /// Shared slot capturing the first [`pgss_cpu::MachineFault`] of any
    /// driver pass bound to this context. Campaign cells read it after a
    /// technique returns, turning structured machine aborts (e.g. an
    /// out-of-range indirect jump) into typed cell errors instead of
    /// panics.
    pub fault: std::sync::Arc<std::sync::OnceLock<pgss_cpu::MachineFault>>,
}

impl Default for SimContext {
    fn default() -> SimContext {
        SimContext {
            ladder: None,
            recorder: std::sync::Arc::new(pgss_obs::NoopRecorder),
            fault: std::sync::Arc::new(std::sync::OnceLock::new()),
        }
    }
}

impl SimContext {
    /// A context with no acceleration and no metrics — techniques behave
    /// exactly as their plain `run_traced`.
    pub fn none() -> SimContext {
        SimContext::default()
    }

    /// A context carrying `ladder`.
    pub fn with_ladder(ladder: std::sync::Arc<CheckpointLadder>) -> SimContext {
        SimContext {
            ladder: Some(ladder),
            ..SimContext::default()
        }
    }

    /// A context carrying `recorder`.
    pub fn with_recorder(recorder: std::sync::Arc<dyn pgss_obs::Recorder>) -> SimContext {
        SimContext {
            recorder,
            ..SimContext::default()
        }
    }

    /// The first machine fault deposited by any driver pass bound to this
    /// context, if one occurred.
    pub fn first_fault(&self) -> Option<pgss_cpu::MachineFault> {
        self.fault.get().copied()
    }

    /// The same context with `recorder` attached (builder-style).
    pub fn and_recorder(mut self, recorder: std::sync::Arc<dyn pgss_obs::Recorder>) -> SimContext {
        self.recorder = recorder;
        self
    }

    /// Attaches everything this context carries to a driver pass: the
    /// ladder (if any) and the recorder. Every technique calls this on
    /// each [`crate::driver::SimDriver`] it constructs, so instrumented
    /// campaigns see every pass.
    pub fn bind(&self, driver: &mut crate::driver::SimDriver) {
        if let Some(ladder) = &self.ladder {
            driver.attach_ladder(std::sync::Arc::clone(ladder));
        }
        driver.attach_recorder(std::sync::Arc::clone(&self.recorder));
        driver.attach_fault_sink(std::sync::Arc::clone(&self.fault));
    }
}

#[cfg(test)]
// Tests may unwrap: a panic here is a test failure, not a lost campaign.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn workload() -> Workload {
        pgss_workloads::gzip(0.005)
    }

    #[test]
    fn machine_snapshot_codec_roundtrips() {
        let w = workload();
        let mut m = w.machine();
        m.run(Mode::Functional, 40_000);
        let snap = m.snapshot();
        let bytes = encode_machine_snapshot(&snap);
        let back = decode_machine_snapshot(&bytes).unwrap();
        assert_eq!(snap, back);
        // Compressed far below the raw 32 MiB memory image.
        assert!(
            bytes.len() < 8 * snap.mem.len() / 4,
            "encoded {} bytes for {} mem words",
            bytes.len(),
            snap.mem.len()
        );
    }

    #[test]
    fn snapshot_decoder_rejects_version_and_corruption() {
        let w = workload();
        let snap = w.machine().snapshot();
        let mut bytes = encode_machine_snapshot(&snap);
        bytes[0] ^= 0xff; // version field
        assert!(decode_machine_snapshot(&bytes).is_err());
        let good = encode_machine_snapshot(&snap);
        assert!(decode_machine_snapshot(&good[..good.len() - 3]).is_err());
    }

    #[test]
    fn keys_separate_workload_config_and_offset() {
        let w = workload();
        let cfg = MachineConfig::default();
        let base = CheckpointKey::new(&w, &cfg, 100).hash();
        assert_eq!(CheckpointKey::new(&w, &cfg, 100).hash(), base);
        assert_ne!(CheckpointKey::new(&w, &cfg, 200).hash(), base);
        let other_cfg = MachineConfig {
            issue_width: 2,
            ..cfg
        };
        assert_ne!(CheckpointKey::new(&w, &other_cfg, 100).hash(), base);
        let other_w = pgss_workloads::wupwise(0.005);
        assert_ne!(CheckpointKey::new(&other_w, &cfg, 100).hash(), base);
    }

    #[test]
    fn ladder_capture_places_rungs_on_stride_boundaries() {
        let w = workload();
        let cfg = MachineConfig::default();
        let spec = LadderSpec::machine_only(25_000);
        let ladder = CheckpointLadder::capture(&w, &cfg, &spec);
        assert!(!ladder.is_empty());
        let total = ladder.report().capture_ops;
        assert_eq!(ladder.len() as u64, total / 25_000);
        for (i, rung) in ladder.rungs.iter().enumerate() {
            assert_eq!(rung.retired, (i as u64 + 1) * 25_000);
        }
        // best_rung_in picks the highest rung in range.
        let r = ladder.best_rung_in(0, 60_000).unwrap();
        assert_eq!(r.retired, 50_000);
        assert!(ladder.best_rung_in(50_000, 50_000).is_none());
        assert!(ladder.best_rung_in(0, 10_000).is_none());
    }

    #[test]
    fn ladder_rungs_match_direct_snapshots() {
        let w = workload();
        let cfg = MachineConfig::default();
        let ladder = CheckpointLadder::capture(&w, &cfg, &LadderSpec::machine_only(30_000));
        let mut m = w.machine_with(cfg);
        m.run(Mode::Functional, 60_000);
        let direct = m.snapshot();
        let rung = ladder.best_rung_in(0, 60_000).unwrap();
        assert_eq!(rung.retired, 60_000);
        assert_eq!(decode_machine_snapshot(&rung.machine).unwrap(), direct);
    }

    #[test]
    fn ladder_store_roundtrip_and_corruption_fallback() {
        let dir = std::env::temp_dir().join(format!("pgss-ladder-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let w = workload();
        let cfg = MachineConfig::default();
        let spec = LadderSpec {
            stride: 40_000,
            hashed_seeds: vec![7],
            with_full: false,
        };
        let captured = CheckpointLadder::load_or_capture(&store, &w, &cfg, &spec);
        assert!(captured.report().capture_ops > 0, "first build captures");
        let loaded = CheckpointLadder::load_or_capture(&store, &w, &cfg, &spec);
        assert_eq!(loaded.report().capture_ops, 0, "second build loads");
        assert_eq!(loaded.len(), captured.len());
        for (a, b) in loaded.rungs.iter().zip(&captured.rungs) {
            assert_eq!(a.retired, b.retired);
            assert_eq!(a.machine, b.machine);
            assert_eq!(a.hashed_cum, b.hashed_cum);
        }
        // Corrupt one rung record: the load path falls back to capture.
        let tag = CheckpointLadder::spec_tag(&spec);
        let key = CheckpointKey::new(&w, &cfg, spec.stride).hash_with_tag(tag);
        let path = store.path_for(key);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let refetched = CheckpointLadder::load_or_capture(&store, &w, &cfg, &spec);
        assert!(
            refetched.report().capture_ops > 0,
            "corrupt rung must force recapture"
        );
        // Self-healing: the corrupt record was quarantined (not deleted),
        // the event was logged, and the recapture wrote a healthy record
        // back, so the next load is clean.
        let log = refetched.fault_log();
        assert!(
            log.iter().any(|l| l.contains("quarantined")
                && l.contains(w.name())
                && l.contains(&format!("@{}", spec.stride))),
            "fault log must name the quarantined rung: {log:?}"
        );
        assert!(store
            .quarantine_dir()
            .join(format!("{key:016x}.rec"))
            .exists());
        let healed = CheckpointLadder::load_or_capture(&store, &w, &cfg, &spec);
        assert_eq!(healed.report().capture_ops, 0, "store did not self-heal");
        assert!(healed.fault_log().is_empty());
        for (a, b) in healed.rungs.iter().zip(&captured.rungs) {
            assert_eq!(a.machine, b.machine, "healed rung differs from capture");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
