//! Online SimPoint (Pereira et al., CODES+ISSS 2005), as evaluated in the
//! paper: online phase detection with one large detailed sample at each
//! phase's first occurrence, under a perfect phase predictor.

use pgss_cpu::{MachineConfig, Mode};
use pgss_stats::weighted_mean;
use pgss_workloads::Workload;

use crate::ckpt::SimContext;
use crate::driver::{
    Directive, RunTrace, SamplingPolicy, Segment, SegmentOutcome, Signature, SimDriver, Track,
};
use crate::estimate::{Estimate, PhaseSummary, Technique};
use crate::phase::PhaseTable;

/// The online-SimPoint baseline: intervals are classified into phases by
/// BBV similarity *online*, and the **first occurrence** of each phase is
/// detail-simulated in full — one large sample per phase, like offline
/// SimPoint but without the clustering pass.
///
/// The paper grants this technique a *perfect phase predictor* ("the phase
/// profile was known prior to the actual simulation"), so the
/// implementation first derives the phase-per-interval map with a free
/// functional pass, then replays the program, switching to detailed
/// simulation exactly over each phase's first interval. Only that replay's
/// instructions are charged.
///
/// Its weaknesses — which PGSS-Sim addresses — are that a phase's first
/// occurrence may be unrepresentative (warm-up effects), and that every
/// phase costs a full interval of detailed simulation regardless of its
/// stability or frequency.
///
/// # Example
///
/// ```no_run
/// use pgss::{OnlineSimPoint, Technique};
///
/// let w = pgss_workloads::equake(0.05);
/// let est = OnlineSimPoint::new().run(&w);
/// assert!(est.phases.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineSimPoint {
    /// Interval (sample) size in instructions; the paper tests 1 M, 10 M,
    /// and 100 M, with 100 M best overall.
    pub interval_ops: u64,
    /// Phase-similarity threshold in radians (the paper's best overall:
    /// 0.1 π).
    pub threshold_rad: f64,
    /// Hash seed for the hashed BBV.
    pub hash_seed: u64,
    /// Phase-signature family the oracle pass classifies on: the hashed
    /// branch BBV (default) or Memory Access Vectors.
    pub signature: Signature,
}

impl Default for OnlineSimPoint {
    fn default() -> OnlineSimPoint {
        OnlineSimPoint {
            interval_ops: 1_000_000,
            threshold_rad: crate::threshold(0.10),
            hash_seed: 0x0151,
            signature: Signature::Bbv,
        }
    }
}

impl OnlineSimPoint {
    /// The defaults above (interval 1 M, threshold 0.1 π).
    pub fn new() -> OnlineSimPoint {
        OnlineSimPoint::default()
    }
}

/// The oracle pass: classify every complete interval into a phase. Free
/// under the paper's perfect-predictor assumption — its driver's mode ops
/// are discarded.
struct OraclePolicy {
    interval_ops: u64,
    table: PhaseTable,
    interval_phases: Vec<usize>,
    done: bool,
}

impl SamplingPolicy for OraclePolicy {
    fn next(&mut self, _trace: &mut RunTrace) -> Directive {
        if self.done {
            Directive::Finish
        } else {
            Directive::Run(Segment::with_bbv(Mode::Functional, self.interval_ops))
        }
    }

    fn observe(&mut self, outcome: &SegmentOutcome, trace: &mut RunTrace) {
        if outcome.complete() {
            let bbv = outcome.bbv.as_ref().expect("oracle intervals close a BBV");
            let c = self.table.classify(bbv.hashed(), outcome.ops);
            if c.created {
                trace.phases_created += 1;
            }
            self.interval_phases.push(c.phase);
        }
        if outcome.halted || outcome.ops == 0 {
            self.done = true;
        }
    }
}

/// The charged pass: detailed over each phase's first interval, functional
/// (warming) elsewhere, then run functionally to the halt.
struct ChargedPolicy {
    interval_ops: u64,
    /// Phase of each complete interval, from the oracle pass.
    interval_phases: Vec<usize>,
    /// First-occurrence interval index per phase.
    first_of: Vec<usize>,
    /// Current interval index; one past the end means the trailing
    /// run-to-halt segment, two past means finish.
    cursor: usize,
    cpi_of_phase: Vec<f64>,
    samples: u64,
}

impl SamplingPolicy for ChargedPolicy {
    fn next(&mut self, _trace: &mut RunTrace) -> Directive {
        match self.interval_phases.get(self.cursor) {
            Some(&p) if self.first_of[p] == self.cursor => {
                Directive::Run(Segment::new(Mode::DetailedMeasured, self.interval_ops))
            }
            Some(_) => Directive::Run(Segment::new(Mode::Functional, self.interval_ops)),
            // Trailing partial interval (uncounted in the oracle) is
            // skipped functionally.
            None if self.cursor == self.interval_phases.len() => {
                Directive::Run(Segment::new(Mode::Functional, u64::MAX))
            }
            None => Directive::Finish,
        }
    }

    fn observe(&mut self, outcome: &SegmentOutcome, trace: &mut RunTrace) {
        if outcome.segment.mode == Mode::DetailedMeasured && outcome.ops > 0 {
            let p = self.interval_phases[self.cursor];
            self.cpi_of_phase[p] = outcome.cpi();
            self.samples += 1;
            trace.samples_taken += 1;
        }
        self.cursor += 1;
    }
}

impl Technique for OnlineSimPoint {
    fn name(&self) -> String {
        format!(
            "OnlineSimPoint{}({}M/.{:02.0})",
            self.signature.name_suffix(),
            self.interval_ops / 1_000_000,
            self.threshold_rad / std::f64::consts::PI * 100.0
        )
    }

    fn run_with(&self, workload: &Workload, config: &MachineConfig) -> Estimate {
        self.run_traced(workload, config).0
    }

    fn run_traced(&self, workload: &Workload, config: &MachineConfig) -> (Estimate, RunTrace) {
        self.run_traced_ctx(workload, config, &SimContext::none())
    }

    fn tracks(&self) -> Vec<Track> {
        vec![self.signature.hashed_track(self.hash_seed), Track::None]
    }

    fn run_traced_ctx(
        &self,
        workload: &Workload,
        config: &MachineConfig,
        ctx: &SimContext,
    ) -> (Estimate, RunTrace) {
        assert!(self.interval_ops > 0, "interval_ops must be positive");
        let attach = |d: &mut SimDriver| ctx.bind(d);
        // Oracle pass (free, per the paper's perfect-predictor assumption):
        // classify every interval.
        let mut oracle = SimDriver::new(
            workload,
            config,
            self.signature.hashed_track(self.hash_seed),
        );
        attach(&mut oracle);
        let mut oracle_policy = OraclePolicy {
            interval_ops: self.interval_ops,
            table: PhaseTable::new(self.threshold_rad),
            interval_phases: Vec::new(),
            done: false,
        };
        oracle.run(&mut oracle_policy);
        let OraclePolicy {
            table,
            interval_phases,
            ..
        } = oracle_policy;
        assert!(
            !interval_phases.is_empty(),
            "workload shorter than one interval"
        );
        let mut trace = *oracle.trace();
        trace.phase_changes = table.changes();

        // First occurrence of each phase.
        let num_phases = table.phases().len();
        let mut first_of = vec![usize::MAX; num_phases];
        for (i, &p) in interval_phases.iter().enumerate() {
            if first_of[p] == usize::MAX {
                first_of[p] = i;
            }
        }

        // Charged pass on a fresh machine; only its mode ops are billed.
        let mut charged = SimDriver::new(workload, config, Track::None);
        attach(&mut charged);
        let mut policy = ChargedPolicy {
            interval_ops: self.interval_ops,
            interval_phases,
            first_of,
            cursor: 0,
            cpi_of_phase: vec![f64::NAN; num_phases],
            samples: 0,
        };
        charged.run(&mut policy);
        trace.merge(charged.trace());

        let weights: Vec<f64> = table.weights();
        let pairs: Vec<(f64, f64)> = policy
            .cpi_of_phase
            .iter()
            .zip(&weights)
            .filter(|(cpi, _)| cpi.is_finite())
            .map(|(&cpi, &w)| (cpi, w))
            .collect();
        let cpi = weighted_mean(&pairs).expect("at least one phase sampled");

        let samples_per_phase = policy
            .cpi_of_phase
            .iter()
            .map(|c| u64::from(c.is_finite()))
            .collect();
        let estimate = Estimate {
            ipc: 1.0 / cpi,
            mode_ops: charged.mode_ops(),
            samples: policy.samples,
            phases: Some(PhaseSummary {
                phases: num_phases,
                changes: table.changes(),
                samples_per_phase,
                weights,
            }),
            // One representative sample per phase: no within-phase variance
            // to build a confidence claim from.
            ci: None,
        };
        (estimate, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::relative_error;
    use crate::FullDetailed;

    fn small() -> OnlineSimPoint {
        OnlineSimPoint {
            interval_ops: 100_000,
            ..OnlineSimPoint::default()
        }
    }

    #[test]
    fn cost_is_one_interval_per_phase() {
        let w = pgss_workloads::wupwise(0.02);
        let est = small().run(&w);
        let p = est.phases.as_ref().unwrap();
        assert_eq!(est.detailed_ops(), est.samples * 100_000);
        assert!(est.samples <= p.phases as u64);
    }

    #[test]
    fn finds_the_two_wupwise_phases() {
        let w = pgss_workloads::wupwise(0.02);
        let est = small().run(&w);
        let p = est.phases.unwrap();
        // Two macro phases (plus possibly a transition phase or two).
        assert!((2..=5).contains(&p.phases), "found {} phases", p.phases);
    }

    #[test]
    fn reasonably_accurate_on_periodic_workload() {
        let w = pgss_workloads::equake(0.02);
        let truth = FullDetailed::new().ground_truth(&w);
        let est = small().run(&w);
        let err = relative_error(est.ipc, truth.ipc);
        assert!(err < 0.25, "error {err:.4}");
    }
}
