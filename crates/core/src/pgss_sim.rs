//! Phase-Guided Small-Sample Simulation — the paper's contribution.

use pgss_cpu::{MachineConfig, Mode};
use pgss_stats::{weighted_mean, ConfidenceInterval, Welford, Z_95, Z_997};
use pgss_workloads::Workload;

use crate::ckpt::SimContext;
use crate::driver::{
    Directive, RunTrace, SamplingPolicy, Segment, SegmentOutcome, Signature, SimDriver, Track,
};
use crate::estimate::{Estimate, PhaseSummary, Technique};
use crate::phase::PhaseTable;

/// PGSS-Sim, following the flow chart of the paper's Figure 5:
///
/// 1. **Fast-forwarding** (`ff_ops`: the BBV sampling period, 100k/1M/10M)
///    in functional-warming mode while the hashed BBV accumulates.
/// 2. The interval's BBV is compared to the last interval's; below the
///    threshold the data joins the current phase, otherwise it is matched
///    against every known phase or a **new phase is created**.
/// 3. If the phase's confidence interval is within bounds, **detailed
///    simulation of that phase stops** (the sample is skipped); if the
///    phase's last sample fell within the last `spacing_ops` (1 M), the
///    sample is also skipped, spreading samples across the phase's
///    occurrences to capture temporal variation.
/// 4. Otherwise a SMARTS-style sample runs: **detailed warm-up**
///    (`warm_ops`, ~3,000) then **detailed simulation** (`unit_ops`,
///    1,000), and its CPI is credited to the current phase. (Fig. 5 draws
///    the sample at the top of the loop; executing it right after the
///    interval that requested it is the same cycle of the same loop, and
///    guarantees every sample runs on a machine the preceding fast-forward
///    has warmed — with ~50 samples per benchmark at this reproduction's
///    scale, a single cold-start sample would otherwise dominate the
///    estimate, a small-sample artifact the paper's 10⁵-sample runs never
///    see.)
///
/// Phases that occur often or vary a lot automatically receive more
/// samples; rare or stable phases receive fewer — the adaptivity that gives
/// PGSS an order of magnitude less detailed simulation than SMARTS at
/// comparable accuracy.
///
/// The final estimate composes per-phase mean CPIs weighted by each phase's
/// retired-instruction share (phases that never received a sample — rare,
/// short-lived ones — fall back to the global mean CPI).
///
/// # Example
///
/// ```no_run
/// use pgss::{PgssSim, Technique};
///
/// // The paper's best overall configuration: 1M-op BBV period, 0.05π.
/// let est = PgssSim::new().run(&pgss_workloads::gzip(0.05));
/// println!("{} phases", est.phases.unwrap().phases);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgssSim {
    /// Fast-forward (BBV sampling) period; the paper sweeps 100k, 1M, 10M
    /// and finds 1M best overall.
    pub ff_ops: u64,
    /// Phase-change threshold in radians; the paper sweeps 0.05π–0.25π and
    /// finds 0.05π best overall.
    pub threshold_rad: f64,
    /// Measured detailed instructions per sample (1,000, as SMARTS).
    pub unit_ops: u64,
    /// Detailed-warming instructions before each sample (3,000, as
    /// SMARTS).
    pub warm_ops: u64,
    /// Per-phase relative confidence target (±3 %).
    pub ci_rel: f64,
    /// z-score for the per-phase confidence interval (3.0 → 99.7 %).
    pub z: f64,
    /// Minimum samples per phase before its confidence interval may stop
    /// sampling.
    pub min_samples: u64,
    /// Sample-spacing rule: skip a sample if this phase was last sampled
    /// within this many retired instructions (1 M in the paper).
    pub spacing_ops: u64,
    /// Seed choosing the five hashed-BBV address bits.
    pub hash_seed: u64,
    /// Phase-signature family the classifier runs on: the paper's hashed
    /// branch BBV (default) or Memory Access Vectors.
    pub signature: Signature,
}

impl Default for PgssSim {
    fn default() -> PgssSim {
        PgssSim {
            ff_ops: 1_000_000,
            threshold_rad: crate::threshold(0.05),
            unit_ops: 1_000,
            warm_ops: 3_000,
            ci_rel: 0.03,
            z: Z_997,
            min_samples: 8,
            spacing_ops: 1_000_000,
            hash_seed: 0x5047_5353,
            signature: Signature::Bbv,
        }
    }
}

impl PgssSim {
    /// The paper's best overall configuration (1M-op period, 0.05π
    /// threshold).
    pub fn new() -> PgssSim {
        PgssSim::default()
    }

    /// Convenience constructor for the paper's parameter sweep (Fig. 11):
    /// `period` in ops and `threshold` as a fraction of π.
    pub fn with_params(ff_ops: u64, threshold_frac_pi: f64) -> PgssSim {
        PgssSim {
            ff_ops,
            threshold_rad: crate::threshold(threshold_frac_pi),
            ..PgssSim::default()
        }
    }
}

/// Per-phase sampling state.
#[derive(Debug, Clone, Default)]
struct PhaseStats {
    cpi: Welford,
    last_sample_at: Option<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Fast-forward one BBV period, then classify.
    Classify,
    /// Detailed warm-up before a sample.
    Warm,
    /// The measured detailed sample itself.
    Measure,
    Done,
}

/// The Figure-5 flow chart as a [`SamplingPolicy`]. The driver's hashed
/// tracker stays attached across warm/measured segments (their ops land in
/// the next interval's vector, as the paper's always-on hardware would), so
/// only the functional segments close BBV intervals.
struct PgssPolicy {
    params: PgssSim,
    table: PhaseTable,
    stats: Vec<PhaseStats>,
    state: State,
    /// Phase chosen by the most recent classification; the sample that
    /// follows is credited to it.
    current_phase: usize,
    /// Detailed ops taken since the last classification, attributed to the
    /// following interval (samples sit between intervals).
    carry_ops: u64,
    total_samples: u64,
}

impl PgssPolicy {
    fn new(params: PgssSim) -> PgssPolicy {
        PgssPolicy {
            params,
            table: PhaseTable::new(params.threshold_rad),
            stats: Vec::new(),
            state: State::Classify,
            current_phase: 0,
            carry_ops: 0,
            total_samples: 0,
        }
    }
}

impl SamplingPolicy for PgssPolicy {
    fn next(&mut self, _trace: &mut RunTrace) -> Directive {
        let p = &self.params;
        match self.state {
            State::Classify => Directive::Run(Segment::with_bbv(Mode::Functional, p.ff_ops)),
            State::Warm => Directive::Run(Segment::new(Mode::DetailedWarming, p.warm_ops)),
            State::Measure => Directive::Run(Segment::new(Mode::DetailedMeasured, p.unit_ops)),
            State::Done => Directive::Finish,
        }
    }

    fn observe(&mut self, outcome: &SegmentOutcome, trace: &mut RunTrace) {
        match self.state {
            State::Classify => {
                let bbv = outcome
                    .bbv
                    .as_ref()
                    .expect("classify segments close an interval");
                if outcome.ops == 0 {
                    self.state = State::Done;
                    return;
                }
                let c = self
                    .table
                    .classify(bbv.hashed(), outcome.ops + self.carry_ops);
                self.carry_ops = 0;
                if c.created {
                    self.stats.push(PhaseStats::default());
                    trace.phases_created += 1;
                }
                if outcome.halted {
                    self.state = State::Done;
                    return;
                }
                // Per Fig. 5: sample unless the phase's confidence interval
                // is already met or the phase was sampled within the
                // spacing window.
                self.current_phase = c.phase;
                let p = &self.params;
                let phase = &self.stats[c.phase];
                let ci_met = phase.cpi.count() >= p.min_samples
                    && ConfidenceInterval::from_welford(&phase.cpi, p.z).meets_relative(p.ci_rel);
                let recently_sampled = phase
                    .last_sample_at
                    .is_some_and(|at| outcome.retired.saturating_sub(at) < p.spacing_ops);
                if ci_met {
                    trace.skipped_ci_met += 1;
                } else if recently_sampled {
                    trace.skipped_spacing += 1;
                }
                self.state = if ci_met || recently_sampled {
                    State::Classify
                } else {
                    State::Warm
                };
            }
            State::Warm => {
                self.carry_ops += outcome.ops;
                self.state = if outcome.halted {
                    State::Done
                } else {
                    State::Measure
                };
            }
            State::Measure => {
                self.carry_ops += outcome.ops;
                if outcome.complete() {
                    let phase = &mut self.stats[self.current_phase];
                    phase.cpi.push(outcome.cpi());
                    phase.last_sample_at = Some(outcome.retired);
                    self.total_samples += 1;
                    trace.samples_taken += 1;
                }
                self.state = if outcome.halted {
                    State::Done
                } else {
                    State::Classify
                };
            }
            State::Done => unreachable!("no segments are issued after Done"),
        }
    }
}

impl Technique for PgssSim {
    fn name(&self) -> String {
        let period = if self.ff_ops.is_multiple_of(1_000_000) {
            format!("{}M", self.ff_ops / 1_000_000)
        } else {
            format!("{}k", self.ff_ops / 1_000)
        };
        format!(
            "PGSS{}({}/.{:02.0})",
            self.signature.name_suffix(),
            period,
            self.threshold_rad / std::f64::consts::PI * 100.0
        )
    }

    fn run_with(&self, workload: &Workload, config: &MachineConfig) -> Estimate {
        self.run_traced(workload, config).0
    }

    fn run_traced(&self, workload: &Workload, config: &MachineConfig) -> (Estimate, RunTrace) {
        self.run_traced_ctx(workload, config, &SimContext::none())
    }

    fn tracks(&self) -> Vec<Track> {
        vec![self.signature.hashed_track(self.hash_seed)]
    }

    fn run_traced_ctx(
        &self,
        workload: &Workload,
        config: &MachineConfig,
        ctx: &SimContext,
    ) -> (Estimate, RunTrace) {
        assert!(
            self.unit_ops > 0 && self.ff_ops > 0,
            "unit_ops and ff_ops must be positive"
        );
        let mut driver = SimDriver::new(
            workload,
            config,
            self.signature.hashed_track(self.hash_seed),
        );
        ctx.bind(&mut driver);
        let mut policy = PgssPolicy::new(*self);
        driver.run(&mut policy);
        let PgssPolicy {
            table,
            stats,
            total_samples,
            ..
        } = policy;

        // Compose the estimate: per-phase mean CPI weighted by instruction
        // share; unsampled phases fall back to the global mean.
        let weights = table.weights();
        let global = {
            let mut all = Welford::new();
            for s in &stats {
                all.merge(&s.cpi);
            }
            all
        };
        assert!(
            global.count() > 0,
            "PGSS took no samples; workload too short for ff_ops"
        );
        let pairs: Vec<(f64, f64)> = stats
            .iter()
            .zip(&weights)
            .map(|(s, &w)| {
                let cpi = if s.cpi.count() > 0 {
                    s.cpi.mean()
                } else {
                    global.mean()
                };
                (cpi, w)
            })
            .collect();
        let cpi = weighted_mean(&pairs).unwrap_or_else(|| global.mean());

        // Composed stratified 95 % interval: the estimator is a weighted
        // sum of per-phase sample means, so its variance is
        // Σ w_p² · s_p² / n_p over the sampled phases (phases that fell
        // back to the global mean contribute no measured variance term —
        // the claim is therefore optimistic when coverage is partial,
        // which the statistical-validation sweep tolerates by design).
        let var: f64 = stats
            .iter()
            .zip(&weights)
            .filter(|(s, _)| s.cpi.count() > 1)
            .map(|(s, &w)| w * w * s.cpi.sample_variance() / s.cpi.count() as f64)
            .sum();
        let cpi_ci = ConfidenceInterval {
            mean: cpi,
            half_width: if total_samples < 2 {
                f64::INFINITY
            } else {
                Z_95 * var.sqrt()
            },
            n: total_samples,
        };

        let samples_per_phase = stats.iter().map(|s| s.cpi.count()).collect();
        let mut trace = *driver.trace();
        trace.phase_changes = table.changes();
        let estimate = Estimate {
            ipc: 1.0 / cpi,
            mode_ops: driver.mode_ops(),
            samples: total_samples,
            phases: Some(PhaseSummary {
                phases: table.phases().len(),
                changes: table.changes(),
                samples_per_phase,
                weights,
            }),
            ci: Some(crate::estimate::ipc_interval_from_cpi(cpi_ci)),
        };
        (estimate, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::relative_error;
    use crate::{FullDetailed, Smarts};

    fn scaled() -> PgssSim {
        // Scaled-down spacing/period for the small test workloads.
        PgssSim {
            ff_ops: 100_000,
            spacing_ops: 100_000,
            ..PgssSim::default()
        }
    }

    #[test]
    fn stable_workload_needs_few_samples() {
        let w = pgss_workloads::mesa(0.02);
        let est = scaled().run(&w);
        let p = est.phases.as_ref().unwrap();
        assert!(p.phases <= 6, "mesa fragmented into {} phases", p.phases);
        // Stability ⇒ CIs close quickly ⇒ far fewer samples than intervals.
        let intervals = w.nominal_ops() / 100_000;
        assert!(
            est.samples < intervals / 2,
            "{} samples for {} intervals",
            est.samples,
            intervals
        );
    }

    #[test]
    fn uses_less_detailed_simulation_than_smarts() {
        let w = pgss_workloads::equake(0.02);
        let smarts = Smarts {
            period_ops: 100_000,
            ..Smarts::default()
        }
        .run(&w);
        let pgss = scaled().run(&w);
        assert!(
            pgss.detailed_ops() * 2 <= smarts.detailed_ops(),
            "PGSS {} vs SMARTS {} detailed ops",
            pgss.detailed_ops(),
            smarts.detailed_ops()
        );
    }

    #[test]
    fn reasonable_accuracy() {
        let w = pgss_workloads::wupwise(0.02);
        let truth = FullDetailed::new().ground_truth(&w);
        let est = scaled().run(&w);
        let err = relative_error(est.ipc, truth.ipc);
        assert!(err < 0.2, "PGSS error {err:.4}");
    }

    #[test]
    fn unstable_phases_get_more_samples() {
        let w = pgss_workloads::gzip(0.02);
        let est = scaled().run(&w);
        let p = est.phases.unwrap();
        // At least one phase kept being sampled well past min_samples while
        // another closed early — adaptivity in action.
        let max = *p.samples_per_phase.iter().max().unwrap();
        let min = *p.samples_per_phase.iter().min().unwrap();
        assert!(max > min, "samples per phase: {:?}", p.samples_per_phase);
    }

    #[test]
    fn deterministic() {
        let w = pgss_workloads::parser(0.01);
        let a = scaled().run(&w);
        let b = scaled().run(&w);
        assert_eq!(a, b);
    }

    #[test]
    fn name_encodes_parameters() {
        assert_eq!(PgssSim::new().name(), "PGSS(1M/.05)");
        assert_eq!(PgssSim::with_params(100_000, 0.25).name(), "PGSS(100k/.25)");
    }
}
