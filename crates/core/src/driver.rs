//! The shared sampling engine: [`SimDriver`] owns the machine loop every
//! technique used to hand-roll, and [`SamplingPolicy`] is the per-technique
//! brain that decides which segment to execute next from what it has
//! observed so far.
//!
//! The split mirrors live-sampling systems such as Pac-Sim: one engine
//! executes a stream of *segments* (a [`pgss_cpu::Mode`] plus an op budget),
//! handles halt and truncation uniformly, accumulates the per-mode retired
//! counts and the retired-op position, and maintains a [`RunTrace`] of what
//! happened; policies are small state machines that never touch the machine
//! directly. A technique is then "construct driver(s), run policy(ies),
//! compose an [`crate::Estimate`]" — and a campaign runner can fan many such
//! runs across threads because the engine has no global state.
//!
//! # Example
//!
//! ```no_run
//! use pgss::driver::{Directive, RunTrace, SamplingPolicy, Segment, SegmentOutcome, SimDriver, Track};
//! use pgss_cpu::Mode;
//!
//! /// Measure one 10k-op detailed sample and stop.
//! struct OneSample(Option<SegmentOutcome>);
//! impl SamplingPolicy for OneSample {
//!     fn next(&mut self, _trace: &mut RunTrace) -> Directive {
//!         if self.0.is_some() {
//!             Directive::Finish
//!         } else {
//!             Directive::Run(Segment::new(Mode::DetailedMeasured, 10_000))
//!         }
//!     }
//!     fn observe(&mut self, outcome: &SegmentOutcome, trace: &mut RunTrace) {
//!         trace.samples_taken += 1;
//!         self.0 = Some(outcome.clone());
//!     }
//! }
//!
//! let w = pgss_workloads::gzip(0.01);
//! let mut driver = SimDriver::new(&w, &pgss_cpu::MachineConfig::default(), Track::None);
//! let mut policy = OneSample(None);
//! driver.run(&mut policy);
//! println!("retired {} ops", driver.retired());
//! ```

use std::sync::{Arc, OnceLock};

use pgss_bbv::{BbvHash, FullBbv, FullBbvTracker, HashedBbv, HashedBbvTracker, MavTracker};
use pgss_cpu::{Machine, MachineConfig, MachineFault, MachineSnapshot, Mode, ModeOps};
use pgss_obs::{Recorder, Span};
use pgss_workloads::Workload;

use crate::ckpt::{decode_machine_snapshot, CheckpointLadder};

/// The `driver.ops.*` / `driver.segments.*` counter names for a mode.
fn mode_metric_keys(mode: Mode) -> (&'static str, &'static str) {
    match mode {
        Mode::FastForward => ("driver.ops.fast_forward", "driver.segments.fast_forward"),
        Mode::Functional => ("driver.ops.functional", "driver.segments.functional"),
        Mode::DetailedWarming => ("driver.ops.warm", "driver.segments.warm"),
        Mode::DetailedMeasured => ("driver.ops.detail", "driver.segments.detail"),
    }
}

/// The `driver.wall.*` span name for a mode: wall time spent inside
/// `Machine::run_with` for that mode's segments. Dividing the matching
/// `driver.ops.*` counter by this span's total yields per-mode interpreter
/// throughput (see [`pgss_obs::MetricsFrame::rate_per_sec`]). Span *counts*
/// are deterministic (one per executed segment); the wall total is real
/// time and stays out of the byte-stable export, like every span.
pub fn mode_wall_key(mode: Mode) -> &'static str {
    match mode {
        Mode::FastForward => "driver.wall.fast_forward",
        Mode::Functional => "driver.wall.functional",
        Mode::DetailedWarming => "driver.wall.warm",
        Mode::DetailedMeasured => "driver.wall.detail",
    }
}

/// What the driver's retire sink tracks alongside execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Track {
    /// No BBV tracking; segments never yield vectors.
    None,
    /// The paper's hashed BBV (32 registers), hash chosen by this seed.
    Hashed(u64),
    /// SimPoint-style full per-static-block BBVs.
    Full,
    /// Memory Access Vectors: per-interval counts of data accesses binned
    /// into 32 memory regions ([`pgss_bbv::MavTracker`]). The vector is
    /// [`HashedBbv`]-shaped and delivered as [`Bbv::Hashed`], so phase
    /// tables and clustering consume either signature unchanged.
    Mav,
}

/// Which phase-signature family a phase-aware technique collects —
/// selectable per technique so offline/online SimPoint and PGSS can each
/// run on either control-flow or data-access signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Signature {
    /// The technique's native basic-block-vector signature: the paper's
    /// hashed branch BBV for the online techniques, the full
    /// per-static-block BBV for offline SimPoint.
    #[default]
    Bbv,
    /// Memory Access Vector ([`Track::Mav`]): phases distinguished by
    /// which memory regions the program touches rather than which
    /// branches it takes.
    Mav,
}

impl Signature {
    /// The driver track for a hashed-BBV-native (online) technique whose
    /// hash seed is `seed`.
    pub fn hashed_track(self, seed: u64) -> Track {
        match self {
            Signature::Bbv => Track::Hashed(seed),
            Signature::Mav => Track::Mav,
        }
    }

    /// The driver track for a full-BBV-native (offline SimPoint) profile
    /// pass.
    pub fn full_track(self) -> Track {
        match self {
            Signature::Bbv => Track::Full,
            Signature::Mav => Track::Mav,
        }
    }

    /// Technique-name suffix distinguishing the MAV variant (`""` or
    /// `"-MAV"`), so default names stay byte-identical.
    pub fn name_suffix(self) -> &'static str {
        match self {
            Signature::Bbv => "",
            Signature::Mav => "-MAV",
        }
    }
}

/// One unit of execution: run up to `max_ops` retired instructions in
/// `mode`, optionally closing a BBV interval at the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Simulation mode for this segment.
    pub mode: Mode,
    /// Retired-instruction budget; the segment ends early on halt.
    pub max_ops: u64,
    /// When `true`, the tracker's accumulated vector is taken at the end of
    /// the segment and delivered in [`SegmentOutcome::bbv`] — tracking
    /// itself runs continuously across segments, exactly like the paper's
    /// hardware, so warming/measured ops between intervals still land in
    /// the following interval's vector.
    pub take_bbv: bool,
}

impl Segment {
    /// A segment with no BBV interval boundary.
    pub fn new(mode: Mode, max_ops: u64) -> Segment {
        Segment {
            mode,
            max_ops,
            take_bbv: false,
        }
    }

    /// A segment that closes a BBV interval when it ends.
    pub fn with_bbv(mode: Mode, max_ops: u64) -> Segment {
        Segment {
            mode,
            max_ops,
            take_bbv: true,
        }
    }
}

/// A basic-block vector taken at a segment boundary.
// A `SegmentOutcome` is consumed immediately by the policy, never stored in
// bulk, so the inline 264-byte `HashedBbv` beats a per-segment allocation.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Bbv {
    /// A hashed 32-register vector ([`Track::Hashed`]).
    Hashed(HashedBbv),
    /// A full per-static-block vector, L2-normalised ([`Track::Full`]).
    Full(Vec<f64>),
}

impl Bbv {
    /// The hashed vector, panicking for other kinds (policy/driver
    /// tracking-mode mismatch is a programming error).
    pub fn hashed(&self) -> &HashedBbv {
        match self {
            Bbv::Hashed(v) => v,
            Bbv::Full(_) => panic!("expected a hashed BBV, driver is tracking full BBVs"),
        }
    }

    /// The normalised full vector, panicking for other kinds.
    pub fn full(&self) -> &[f64] {
        match self {
            Bbv::Full(v) => v,
            Bbv::Hashed(_) => panic!("expected a full BBV, driver is tracking hashed BBVs"),
        }
    }
}

/// What happened when a [`Segment`] executed.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentOutcome {
    /// The segment as requested.
    pub segment: Segment,
    /// Instructions retired during the segment (< `max_ops` on halt).
    pub ops: u64,
    /// Cycles elapsed (zero in functional modes).
    pub cycles: u64,
    /// Whether the program halted during (or before) the segment.
    pub halted: bool,
    /// Cumulative retired instructions across the whole run, *after* this
    /// segment — the retired-op position sampling rules key on.
    pub retired: u64,
    /// The BBV interval closed by this segment, if `take_bbv` was set.
    pub bbv: Option<Bbv>,
}

impl SegmentOutcome {
    /// CPI of this segment; panics in functional modes (no timing model).
    pub fn cpi(&self) -> f64 {
        assert!(self.ops > 0, "CPI of an empty segment");
        self.cycles as f64 / self.ops as f64
    }

    /// `true` when the segment retired its full budget.
    pub fn complete(&self) -> bool {
        self.ops == self.segment.max_ops
    }
}

/// What a policy wants next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Directive {
    /// Execute this segment, then call
    /// [`SamplingPolicy::observe`] with its outcome.
    Run(Segment),
    /// The run is over.
    Finish,
}

/// Counters describing one run through the driver — which segments
/// executed, which samples were taken or skipped and why, and what the
/// phase table did. Cheap plain counters, always on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunTrace {
    /// Segments executed per mode, indexed like [`Mode`]
    /// (fast-forward, functional, detailed-warming, detailed-measured).
    pub segments: [u64; 4],
    /// Segments that ended before their op budget (halt), excluding
    /// run-to-halt segments (`max_ops == u64::MAX`).
    pub truncated_segments: u64,
    /// Measured samples credited to the estimate (policy-maintained).
    pub samples_taken: u64,
    /// Samples skipped because the phase's confidence interval was met.
    pub skipped_ci_met: u64,
    /// Samples skipped by the sample-spacing rule.
    pub skipped_spacing: u64,
    /// Phases created in the phase table.
    pub phases_created: u64,
    /// Interval-to-interval phase transitions observed.
    pub phase_changes: u64,
}

impl RunTrace {
    /// Total segments executed across all modes.
    pub fn total_segments(&self) -> u64 {
        self.segments.iter().sum()
    }

    /// Samples skipped for any reason.
    pub fn samples_skipped(&self) -> u64 {
        self.skipped_ci_met + self.skipped_spacing
    }

    /// Accumulates another trace (for techniques that run several passes).
    pub fn merge(&mut self, other: &RunTrace) {
        for (a, b) in self.segments.iter_mut().zip(&other.segments) {
            *a += b;
        }
        self.truncated_segments += other.truncated_segments;
        self.samples_taken += other.samples_taken;
        self.skipped_ci_met += other.skipped_ci_met;
        self.skipped_spacing += other.skipped_spacing;
        self.phases_created += other.phases_created;
        self.phase_changes += other.phase_changes;
    }
}

/// A sampling technique's decision procedure, driven by [`SimDriver::run`]:
/// `next` picks the segment to execute (or finishes), `observe` digests the
/// outcome. Both receive the run's [`RunTrace`] so policies can record
/// sample/skip/phase events next to the driver's segment counters.
pub trait SamplingPolicy {
    /// The next segment to execute, or [`Directive::Finish`].
    fn next(&mut self, trace: &mut RunTrace) -> Directive;

    /// Digests the outcome of the segment most recently issued by
    /// [`SamplingPolicy::next`]. Called for every executed segment,
    /// including ones cut short by a halt.
    fn observe(&mut self, outcome: &SegmentOutcome, trace: &mut RunTrace);
}

/// The tracking sink composed into every segment execution: all trackers
/// optional, so one monomorphized `run_with` path covers all techniques.
type TrackSink = (
    Option<HashedBbvTracker>,
    Option<FullBbvTracker>,
    Option<MavTracker>,
);

/// Everything needed to resume a driver pass exactly where another left
/// off: the machine's architectural and warm state, the retired-op
/// position, and the in-flight (untaken) BBV tracker state.
///
/// Produced by [`SimDriver::snapshot`], consumed by
/// [`SimDriver::from_snapshot`]; serialised by
/// [`crate::ckpt::encode_driver_snapshot`]. The restore-then-run
/// guarantee is bit-exactness: a driver restored at position X observes
/// segment outcomes identical to one that executed to X uninterrupted.
#[derive(Debug, Clone, PartialEq)]
pub struct DriverSnapshot {
    /// Complete machine state (architectural + warm microarchitectural).
    pub machine: MachineSnapshot,
    /// Cumulative retired instructions at the capture point.
    pub retired: u64,
    /// The hashed tracker's accumulated-but-untaken interval vector, when
    /// the capturing driver tracked [`Track::Hashed`] — or the MAV
    /// tracker's (the MAV is [`HashedBbv`]-shaped) under [`Track::Mav`].
    pub hashed_current: Option<HashedBbv>,
    /// The full tracker's accumulated-but-untaken interval vector, when
    /// the capturing driver tracked [`Track::Full`].
    pub full_current: Option<FullBbv>,
}

/// The shared execution engine. Owns the machine, the (optional) BBV
/// tracker, the cumulative retired-op position, and the [`RunTrace`].
///
/// A driver instance is one *pass* over a workload; techniques that make
/// several passes (SimPoint's profile + replay, Online SimPoint's oracle +
/// charged run) construct one driver per pass and merge the traces.
pub struct SimDriver {
    machine: Machine,
    sink: TrackSink,
    track: Track,
    retired: u64,
    trace: RunTrace,
    /// Checkpoint ladder to jump with / charge executed ops to, if any.
    ladder: Option<Arc<CheckpointLadder>>,
    /// Whether functional segments may be replaced by ladder restores:
    /// requires the ladder to cover this driver's track, and (for tracked
    /// drivers) attachment before any execution so the taken-interval
    /// cumulative below is complete.
    jumps_ok: bool,
    /// Index of this driver's hash seed in the ladder's carried tracks.
    seed_idx: Option<usize>,
    /// Sum of every hashed interval vector taken so far; a rung's
    /// cumulative minus this is exactly the tracker state a continuous
    /// run would hold at the rung.
    hashed_taken: HashedBbv,
    /// Full-BBV counterpart of `hashed_taken`.
    full_taken: Option<FullBbv>,
    /// Metrics sink for per-segment op counters; `None` (the common case)
    /// costs nothing on the hot path.
    recorder: Option<Arc<dyn Recorder>>,
    /// Shared slot where the first machine fault of the run is deposited,
    /// so campaign plumbing can surface it as a typed cell error without
    /// unwinding. `None` when no one is listening.
    fault_sink: Option<Arc<OnceLock<MachineFault>>>,
}

impl SimDriver {
    /// Builds a fresh machine for `workload` and a tracker per `track`.
    pub fn new(workload: &Workload, config: &MachineConfig, track: Track) -> SimDriver {
        let machine = workload.machine_with(*config);
        let sink = match track {
            Track::None => (None, None, None),
            Track::Hashed(seed) => (
                Some(HashedBbvTracker::new(BbvHash::from_seed(seed))),
                None,
                None,
            ),
            Track::Full => (None, Some(FullBbvTracker::new(workload.program())), None),
            Track::Mav => (None, None, Some(MavTracker::new(machine.memory().len()))),
        };
        SimDriver {
            machine,
            sink,
            track,
            retired: 0,
            trace: RunTrace::default(),
            ladder: None,
            jumps_ok: false,
            seed_idx: None,
            hashed_taken: HashedBbv::new(),
            full_taken: None,
            recorder: None,
            fault_sink: None,
        }
    }

    /// Builds a driver resuming from `snap` instead of from op 0: machine
    /// state is restored, the position is `snap.retired`, and tracker
    /// state is re-seeded from the snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `track` requires tracker state the snapshot does not
    /// carry (it was captured by a driver with a different track).
    pub fn from_snapshot(
        workload: &Workload,
        config: &MachineConfig,
        track: Track,
        snap: &DriverSnapshot,
    ) -> SimDriver {
        let mut d = SimDriver::new(workload, config, track);
        d.machine.restore(&snap.machine);
        d.retired = snap.retired;
        if let (Some(t), _, _) = &mut d.sink {
            let cur = snap
                .hashed_current
                .as_ref()
                .expect("snapshot lacks the hashed tracker state this track requires");
            t.set_current(*cur);
        }
        if let (_, Some(t), _) = &mut d.sink {
            let cur = snap
                .full_current
                .clone()
                .expect("snapshot lacks the full tracker state this track requires");
            t.set_current(cur);
        }
        if let (_, _, Some(t)) = &mut d.sink {
            let cur = snap
                .hashed_current
                .as_ref()
                .expect("snapshot lacks the MAV tracker state this track requires");
            t.set_current(*cur);
        }
        d
    }

    /// Captures the driver's complete resumable state; see
    /// [`DriverSnapshot`].
    pub fn snapshot(&self) -> DriverSnapshot {
        DriverSnapshot {
            machine: self.machine.snapshot(),
            retired: self.retired,
            hashed_current: self
                .sink
                .0
                .as_ref()
                .map(|t| *t.current())
                .or_else(|| self.sink.2.as_ref().map(|t| *t.current())),
            full_current: self.sink.1.as_ref().map(|t| t.current().clone()),
        }
    }

    /// Attaches a checkpoint ladder. From here on, every op this driver
    /// executes is charged to the ladder's counters, and — when the
    /// ladder covers this driver's track — functional segments are
    /// *jumped*: instead of executing up to a rung inside the segment,
    /// the rung is restored, the skipped ops are charged as functional
    /// (so [`crate::Estimate`]s stay byte-identical), and only the
    /// remainder executes.
    ///
    /// Tracked drivers ([`Track::Hashed`] / [`Track::Full`]) must attach
    /// before executing anything; attached later they still charge
    /// executed ops but never jump, because the taken-interval cumulative
    /// needed to reconstruct tracker state is unknown.
    pub fn attach_ladder(&mut self, ladder: Arc<CheckpointLadder>) {
        let covers = match self.track {
            Track::None => true,
            Track::Hashed(seed) => {
                self.seed_idx = ladder.seed_index(seed);
                self.seed_idx.is_some()
            }
            Track::Full => ladder.has_full(),
            // Ladders carry no region-access cumulatives, so MAV drivers
            // charge executed ops but never jump.
            Track::Mav => false,
        };
        self.jumps_ok = covers && (self.retired == 0 || matches!(self.track, Track::None));
        if self.jumps_ok {
            self.hashed_taken = HashedBbv::new();
            self.full_taken = self
                .sink
                .1
                .as_ref()
                .map(|t| FullBbv::zeroed(t.current().dim()));
        }
        self.ladder = Some(ladder);
    }

    /// Attaches a metrics recorder. Every executed segment then reports
    /// `driver.segments.<mode>` (+1), `driver.ops.<mode>` (the segment's
    /// *logical* ops, including any distance covered by a ladder jump),
    /// and `driver.ops.jumped` / `driver.jumps` for skipped work. All
    /// values are deterministic, so recorded frames are byte-comparable
    /// across runs. A disabled recorder is not retained — the hot path
    /// stays a single `Option` check.
    pub fn attach_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = recorder.enabled().then_some(recorder);
    }

    /// Attaches a shared fault slot. If any segment of this run aborts on
    /// a [`MachineFault`] (e.g. an out-of-range indirect jump), the first
    /// such fault is deposited into the slot; later faults — from this
    /// driver or from sibling passes sharing the slot — are dropped, so
    /// the slot always reports the run's *first* structured abort.
    pub fn attach_fault_sink(&mut self, slot: Arc<OnceLock<MachineFault>>) {
        self.fault_sink = Some(slot);
    }

    /// The fault that halted this driver's machine, if any.
    pub fn fault(&self) -> Option<MachineFault> {
        self.machine.fault()
    }

    /// Runs `policy` to completion: alternately asks it for a segment and
    /// hands back the outcome, until it answers [`Directive::Finish`].
    pub fn run<P: SamplingPolicy + ?Sized>(&mut self, policy: &mut P) {
        while let Directive::Run(segment) = policy.next(&mut self.trace) {
            let outcome = self.execute(segment);
            policy.observe(&outcome, &mut self.trace);
        }
    }

    /// Executes a single segment: one `run_with` call with the composed
    /// tracking sink, uniform halt/truncation handling, position and trace
    /// accounting.
    ///
    /// With a covering [`CheckpointLadder`] attached, a functional
    /// segment that spans a rung restores the highest such rung and
    /// executes only the remainder. The outcome — ops, halt flag,
    /// truncation, position, any taken BBV — and the machine's logical
    /// [`ModeOps`] are identical to full execution; only the physical
    /// work differs, which the ladder's counters record.
    pub fn execute(&mut self, segment: Segment) -> SegmentOutcome {
        let mut skipped = 0u64;
        if segment.mode == Mode::Functional && self.jumps_ok && !self.machine.halted() {
            if let Some(ladder) = &self.ladder {
                let upto = self.retired.saturating_add(segment.max_ops);
                if let Some(rung) = ladder.best_rung_in(self.retired, upto) {
                    skipped = rung.retired - self.retired;
                    let snap = decode_machine_snapshot(&rung.machine)
                        .expect("ladder rungs are validated at construction");
                    let pre = self.machine.mode_ops();
                    self.machine.restore(&snap);
                    // The restored machine carries the capture pass's op
                    // accounting; charge this run's instead, with the
                    // skipped distance as the functional ops it stands for.
                    self.machine.set_mode_ops(ModeOps {
                        functional: pre.functional + skipped,
                        ..pre
                    });
                    if let (Some(tr), _, _) = &mut self.sink {
                        let idx = self.seed_idx.expect("jumps_ok implies seed coverage");
                        tr.set_current(rung.hashed_cum[idx].diff(&self.hashed_taken));
                    }
                    if let (_, Some(tr), _) = &mut self.sink {
                        let cum = rung
                            .full_cum
                            .as_ref()
                            .expect("jumps_ok implies full-BBV coverage");
                        let taken = self
                            .full_taken
                            .as_ref()
                            .expect("full taken cumulative initialised at attach");
                        tr.set_current(cum.diff(taken));
                    }
                    self.retired = rung.retired;
                    ladder.record_jump(skipped);
                }
            }
        }
        let r = {
            // Time the interpreter call per mode (span count stays
            // deterministic: one per segment; the wall total never enters
            // the byte-stable export).
            let _wall = self
                .recorder
                .as_deref()
                .map(|rec| Span::enter(rec, mode_wall_key(segment.mode)));
            self.machine
                .run_with(segment.mode, segment.max_ops - skipped, &mut self.sink)
        };
        if let Some(fault) = self.machine.fault() {
            if let Some(slot) = &self.fault_sink {
                let _ = slot.set(fault);
            }
        }
        if let Some(ladder) = &self.ladder {
            ladder.record_executed(r.ops);
        }
        let ops = skipped + r.ops;
        self.retired += r.ops;
        self.trace.segments[segment.mode as usize] += 1;
        if ops < segment.max_ops && segment.max_ops != u64::MAX {
            self.trace.truncated_segments += 1;
        }
        if let Some(rec) = &self.recorder {
            let (ops_key, seg_key) = mode_metric_keys(segment.mode);
            rec.add(ops_key, ops);
            rec.add(seg_key, 1);
            if skipped > 0 {
                rec.add("driver.jumps", 1);
                rec.add("driver.ops.jumped", skipped);
            }
        }
        let bbv = if segment.take_bbv {
            match &mut self.sink {
                (Some(hashed), _, _) => {
                    let v = hashed.take();
                    if self.jumps_ok {
                        self.hashed_taken.merge(&v);
                    }
                    Some(Bbv::Hashed(v))
                }
                (_, Some(full), _) => {
                    let v = full.take();
                    if let Some(taken) = &mut self.full_taken {
                        taken.merge(&v);
                    }
                    Some(Bbv::Full(v.normalized()))
                }
                (_, _, Some(mav)) => Some(Bbv::Hashed(mav.take())),
                (None, None, None) => {
                    panic!("segment requested a BBV but the driver tracks nothing")
                }
            }
        } else {
            None
        };
        SegmentOutcome {
            segment,
            ops,
            cycles: r.cycles,
            halted: r.halted,
            retired: self.retired,
            bbv,
        }
    }

    /// Per-mode retired instructions accumulated by this driver's machine.
    pub fn mode_ops(&self) -> ModeOps {
        self.machine.mode_ops()
    }

    /// Cumulative retired instructions across all segments so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// The run's trace counters.
    pub fn trace(&self) -> &RunTrace {
        &self.trace
    }

    /// Whether the underlying machine has halted.
    pub fn halted(&self) -> bool {
        self.machine.halted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload() -> Workload {
        let mut b = pgss_workloads::WorkloadBuilder::new("tiny", 11);
        let seg = b.add_segment(pgss_workloads::Kernel::ComputeInt {
            chains: 4,
            ops_per_chain: 3,
        });
        b.run(seg, 300_000);
        b.finish()
    }

    /// Runs a fixed segment plan, recording outcomes.
    struct Plan {
        segments: Vec<Segment>,
        next: usize,
        outcomes: Vec<SegmentOutcome>,
        stop_on_halt: bool,
    }

    impl Plan {
        fn new(segments: Vec<Segment>) -> Plan {
            Plan {
                segments,
                next: 0,
                outcomes: Vec::new(),
                stop_on_halt: false,
            }
        }
    }

    impl SamplingPolicy for Plan {
        fn next(&mut self, _trace: &mut RunTrace) -> Directive {
            if self.stop_on_halt && self.outcomes.last().is_some_and(|o| o.halted) {
                return Directive::Finish;
            }
            match self.segments.get(self.next) {
                Some(&s) => {
                    self.next += 1;
                    Directive::Run(s)
                }
                None => Directive::Finish,
            }
        }

        fn observe(&mut self, outcome: &SegmentOutcome, _trace: &mut RunTrace) {
            self.outcomes.push(outcome.clone());
        }
    }

    #[test]
    fn op_accounting_matches_machine() {
        let w = tiny_workload();
        let mut d = SimDriver::new(&w, &MachineConfig::default(), Track::None);
        let mut p = Plan::new(vec![
            Segment::new(Mode::Functional, 50_000),
            Segment::new(Mode::DetailedWarming, 3_000),
            Segment::new(Mode::DetailedMeasured, 1_000),
            Segment::new(Mode::Functional, 50_000),
        ]);
        d.run(&mut p);
        let ops = d.mode_ops();
        assert_eq!(ops.functional, 100_000);
        assert_eq!(ops.detailed_warming, 3_000);
        assert_eq!(ops.detailed_measured, 1_000);
        assert_eq!(d.retired(), ops.total());
        // Outcomes carry the running position.
        assert_eq!(p.outcomes[0].retired, 50_000);
        assert_eq!(p.outcomes[2].retired, 54_000);
        assert_eq!(p.outcomes[3].retired, 104_000);
        assert_eq!(d.trace().segments, [0, 2, 1, 1]);
        assert_eq!(d.trace().truncated_segments, 0);
    }

    #[test]
    fn halt_mid_segment_truncates_uniformly() {
        let w = tiny_workload();
        let total = {
            let mut m = w.machine();
            m.run(Mode::Functional, u64::MAX).ops
        };
        let mut d = SimDriver::new(&w, &MachineConfig::default(), Track::None);
        // Second segment's budget reaches past the halt.
        let mut p = Plan::new(vec![
            Segment::new(Mode::Functional, total - 1_000),
            Segment::new(Mode::DetailedMeasured, 50_000),
            Segment::new(Mode::DetailedMeasured, 50_000),
        ]);
        p.stop_on_halt = true;
        d.run(&mut p);
        assert_eq!(
            p.outcomes.len(),
            2,
            "policy finishes after observing the halt"
        );
        let halted = &p.outcomes[1];
        assert!(halted.halted);
        assert!(!halted.complete());
        assert_eq!(halted.ops, 1_000, "exactly the ops left before the halt");
        assert_eq!(d.retired(), total);
        assert_eq!(d.trace().truncated_segments, 1);
    }

    #[test]
    fn segments_after_halt_are_empty_not_errors() {
        let w = tiny_workload();
        let mut d = SimDriver::new(&w, &MachineConfig::default(), Track::None);
        let mut p = Plan::new(vec![
            Segment::new(Mode::Functional, u64::MAX),
            Segment::new(Mode::DetailedMeasured, 1_000),
        ]);
        d.run(&mut p);
        assert!(p.outcomes[0].halted);
        let after = &p.outcomes[1];
        assert_eq!(after.ops, 0);
        assert!(after.halted);
        assert_eq!(after.retired, p.outcomes[0].retired);
    }

    #[test]
    fn run_to_halt_budget_is_not_counted_truncated() {
        let w = tiny_workload();
        let mut d = SimDriver::new(&w, &MachineConfig::default(), Track::None);
        d.run(&mut Plan::new(vec![Segment::new(
            Mode::Functional,
            u64::MAX,
        )]));
        assert_eq!(d.trace().truncated_segments, 0);
    }

    #[test]
    fn hashed_tracking_spans_segments_until_taken() {
        let w = pgss_workloads::gzip(0.01);
        let mut d = SimDriver::new(&w, &MachineConfig::default(), Track::Hashed(7));
        let mut p = Plan::new(vec![
            // Tracking accumulates across both segments; only the second
            // closes the interval.
            Segment::new(Mode::Functional, 20_000),
            Segment::with_bbv(Mode::Functional, 20_000),
            Segment::with_bbv(Mode::Functional, 20_000),
        ]);
        d.run(&mut p);
        assert!(p.outcomes[0].bbv.is_none());
        let first = p.outcomes[1]
            .bbv
            .as_ref()
            .expect("interval closed")
            .hashed()
            .total_ops();
        let second = p.outcomes[2].bbv.as_ref().unwrap().hashed().total_ops();
        // First vector covers ~two segments of ops, second only one.
        assert!(first > second, "first {first} vs second {second}");
    }

    #[test]
    fn full_tracking_yields_normalized_rows() {
        let w = pgss_workloads::gzip(0.01);
        let mut d = SimDriver::new(&w, &MachineConfig::default(), Track::Full);
        let mut p = Plan::new(vec![Segment::with_bbv(Mode::Functional, 50_000)]);
        d.run(&mut p);
        let row = p.outcomes[0].bbv.as_ref().unwrap().full().to_vec();
        // FullBbv::normalized is L1 (block-execution fractions), as SimPoint
        // defines it.
        let sum: f64 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn mav_tracking_spans_segments_until_taken() {
        let w = pgss_workloads::gzip(0.01);
        let mut d = SimDriver::new(&w, &MachineConfig::default(), Track::Mav);
        let mut p = Plan::new(vec![
            Segment::new(Mode::Functional, 20_000),
            Segment::with_bbv(Mode::Functional, 20_000),
            Segment::with_bbv(Mode::Functional, 20_000),
        ]);
        d.run(&mut p);
        assert!(p.outcomes[0].bbv.is_none());
        let first = p.outcomes[1]
            .bbv
            .as_ref()
            .expect("interval closed")
            .hashed()
            .total_ops();
        let second = p.outcomes[2].bbv.as_ref().unwrap().hashed().total_ops();
        // Accumulates across the untaken first segment, resets on take.
        assert!(first > second, "first {first} vs second {second}");
        assert!(second > 0, "gzip touches data memory every iteration");
    }

    #[test]
    fn mav_snapshot_roundtrip_restores_tracker() {
        let w = pgss_workloads::gzip(0.01);
        let cfg = MachineConfig::default();
        let mut a = SimDriver::new(&w, &cfg, Track::Mav);
        a.execute(Segment::new(Mode::Functional, 25_000));
        let snap = a.snapshot();
        let mut b = SimDriver::from_snapshot(&w, &cfg, Track::Mav, &snap);
        let oa = a.execute(Segment::with_bbv(Mode::Functional, 25_000));
        let ob = b.execute(Segment::with_bbv(Mode::Functional, 25_000));
        assert_eq!(
            oa.bbv.as_ref().unwrap().hashed(),
            ob.bbv.as_ref().unwrap().hashed(),
            "snapshot carries the mid-interval MAV accumulator"
        );
    }

    #[test]
    #[should_panic(expected = "tracks nothing")]
    fn bbv_request_without_tracker_panics() {
        let w = tiny_workload();
        let mut d = SimDriver::new(&w, &MachineConfig::default(), Track::None);
        d.execute(Segment::with_bbv(Mode::Functional, 1_000));
    }

    #[test]
    fn snapshot_roundtrip_resumes_bit_exact() {
        let w = pgss_workloads::gzip(0.01);
        let cfg = MachineConfig::default();
        let plan_tail = || {
            vec![
                Segment::with_bbv(Mode::Functional, 30_000),
                Segment::new(Mode::DetailedWarming, 3_000),
                Segment::new(Mode::DetailedMeasured, 1_000),
                Segment::with_bbv(Mode::Functional, 30_000),
            ]
        };
        // Continuous run: prefix then tail.
        let mut cont = SimDriver::new(&w, &cfg, Track::Hashed(7));
        cont.execute(Segment::new(Mode::Functional, 25_000));
        cont.execute(Segment::with_bbv(Mode::Functional, 25_000));
        cont.execute(Segment::new(Mode::Functional, 10_000));
        let snap = cont.snapshot();
        assert_eq!(snap.retired, 60_000);
        let mut p_cont = Plan::new(plan_tail());
        cont.run(&mut p_cont);
        // Resumed run: restore at 60k, then the same tail.
        let mut resumed = SimDriver::from_snapshot(&w, &cfg, Track::Hashed(7), &snap);
        assert_eq!(resumed.retired(), 60_000);
        let mut p_res = Plan::new(plan_tail());
        resumed.run(&mut p_res);
        assert_eq!(p_cont.outcomes, p_res.outcomes);
        assert_eq!(cont.mode_ops().detailed_measured, 1_000);
    }

    #[test]
    #[should_panic(expected = "lacks the hashed tracker state")]
    fn restoring_untracked_snapshot_into_tracked_driver_panics() {
        let w = tiny_workload();
        let cfg = MachineConfig::default();
        let snap = SimDriver::new(&w, &cfg, Track::None).snapshot();
        let _ = SimDriver::from_snapshot(&w, &cfg, Track::Hashed(1), &snap);
    }

    #[test]
    fn ladder_jumps_preserve_outcomes_and_mode_ops() {
        use crate::ckpt::{CheckpointLadder, LadderSpec};
        let w = pgss_workloads::gzip(0.01);
        let cfg = MachineConfig::default();
        let plan = || {
            Plan::new(vec![
                Segment::with_bbv(Mode::Functional, 40_000),
                Segment::new(Mode::DetailedWarming, 3_000),
                Segment::new(Mode::DetailedMeasured, 1_000),
                Segment::with_bbv(Mode::Functional, 40_000),
                Segment::with_bbv(Mode::Functional, 40_000),
            ])
        };
        let mut plain = SimDriver::new(&w, &cfg, Track::Hashed(7));
        let mut p_plain = plan();
        plain.run(&mut p_plain);

        let spec = LadderSpec {
            stride: 25_000,
            hashed_seeds: vec![7],
            with_full: false,
        };
        let ladder = Arc::new(CheckpointLadder::capture(&w, &cfg, &spec));
        let mut fast = SimDriver::new(&w, &cfg, Track::Hashed(7));
        fast.attach_ladder(Arc::clone(&ladder));
        let mut p_fast = plan();
        fast.run(&mut p_fast);

        assert_eq!(p_plain.outcomes, p_fast.outcomes);
        assert_eq!(plain.mode_ops(), fast.mode_ops());
        assert_eq!(plain.trace(), fast.trace());
        let report = ladder.report();
        assert!(report.jumps > 0, "functional segments should jump");
        assert!(report.skipped_ops > 0);
        assert!(
            report.executed_ops < plain.mode_ops().total(),
            "jumping must execute strictly fewer ops"
        );
        assert_eq!(report.executed_ops + report.skipped_ops, fast.retired());
    }

    #[test]
    fn ladder_attached_midrun_charges_but_never_jumps_tracked_drivers() {
        use crate::ckpt::{CheckpointLadder, LadderSpec};
        let w = pgss_workloads::gzip(0.01);
        let cfg = MachineConfig::default();
        let spec = LadderSpec {
            stride: 20_000,
            hashed_seeds: vec![7],
            with_full: false,
        };
        let ladder = Arc::new(CheckpointLadder::capture(&w, &cfg, &spec));
        let mut d = SimDriver::new(&w, &cfg, Track::Hashed(7));
        d.execute(Segment::new(Mode::Functional, 5_000));
        d.attach_ladder(Arc::clone(&ladder));
        d.execute(Segment::new(Mode::Functional, 50_000));
        let report = ladder.report();
        assert_eq!(report.jumps, 0, "tracker state would be wrong; no jumps");
        assert_eq!(report.executed_ops, 50_000, "post-attach ops still charged");
    }

    #[test]
    fn ladder_jump_covers_run_to_halt_segments() {
        use crate::ckpt::{CheckpointLadder, LadderSpec};
        let w = tiny_workload();
        let cfg = MachineConfig::default();
        let total = {
            let mut m = w.machine();
            m.run(Mode::Functional, u64::MAX).ops
        };
        let ladder = Arc::new(CheckpointLadder::capture(
            &w,
            &cfg,
            &LadderSpec::machine_only(50_000),
        ));
        let mut d = SimDriver::new(&w, &cfg, Track::None);
        d.attach_ladder(Arc::clone(&ladder));
        let out = d.execute(Segment::new(Mode::Functional, u64::MAX));
        assert!(out.halted);
        assert_eq!(out.ops, total);
        assert_eq!(d.retired(), total);
        assert!(ladder.report().jumps > 0);
        assert!(ladder.report().executed_ops < total);
    }

    #[test]
    fn recorder_counts_logical_ops_including_jumped_distance() {
        use crate::ckpt::{CheckpointLadder, LadderSpec};
        use pgss_obs::MetricsRecorder;
        let w = tiny_workload();
        let cfg = MachineConfig::default();
        let ladder = Arc::new(CheckpointLadder::capture(
            &w,
            &cfg,
            &LadderSpec::machine_only(50_000),
        ));
        let rec = Arc::new(MetricsRecorder::new());
        let mut d = SimDriver::new(&w, &cfg, Track::None);
        d.attach_ladder(Arc::clone(&ladder));
        d.attach_recorder(Arc::clone(&rec) as Arc<dyn Recorder>);
        d.execute(Segment::new(Mode::Functional, 120_000));
        d.execute(Segment::new(Mode::DetailedWarming, 3_000));
        d.execute(Segment::new(Mode::DetailedMeasured, 1_000));
        let frame = rec.frame();
        // Logical functional ops include the jumped distance, matching
        // the machine's ModeOps accounting bit for bit.
        assert_eq!(frame.counter("driver.ops.functional"), 120_000);
        assert_eq!(frame.counter("driver.ops.warm"), 3_000);
        assert_eq!(frame.counter("driver.ops.detail"), 1_000);
        assert_eq!(frame.counter("driver.segments.functional"), 1);
        assert_eq!(frame.counter("driver.jumps"), 1);
        let jumped = frame.counter("driver.ops.jumped");
        assert!(jumped >= 100_000, "jumped {jumped}");
        assert_eq!(d.mode_ops().functional, 120_000);
    }

    #[test]
    fn disabled_recorder_is_not_retained() {
        use pgss_obs::NoopRecorder;
        let w = tiny_workload();
        let mut d = SimDriver::new(&w, &MachineConfig::default(), Track::None);
        d.attach_recorder(Arc::new(NoopRecorder));
        assert!(d.recorder.is_none());
    }

    #[test]
    fn trace_merge_accumulates() {
        let mut a = RunTrace {
            segments: [1, 2, 3, 4],
            truncated_segments: 1,
            samples_taken: 5,
            skipped_ci_met: 2,
            skipped_spacing: 1,
            phases_created: 3,
            phase_changes: 7,
        };
        a.merge(&a.clone());
        assert_eq!(a.segments, [2, 4, 6, 8]);
        assert_eq!(a.total_segments(), 20);
        assert_eq!(a.samples_taken, 10);
        assert_eq!(a.samples_skipped(), 6);
        assert_eq!(a.phase_changes, 14);
    }
}
