//! Offline SimPoint: k-means over per-interval basic-block vectors, one
//! large representative interval per phase (Sherwood et al., ASPLOS 2002;
//! Hamerly et al., SimPoint 3.0).

use pgss_cluster::{project, KMeans};
use pgss_cpu::{MachineConfig, Mode, ModeOps};
use pgss_stats::weighted_mean;
use pgss_workloads::Workload;

use crate::ckpt::SimContext;
use crate::driver::{
    Bbv, Directive, RunTrace, SamplingPolicy, Segment, SegmentOutcome, Signature, SimDriver, Track,
};
use crate::estimate::{Estimate, PhaseSummary, Technique};

/// The SimPoint pipeline:
///
/// 1. a functional profiling pass collects one full (per-static-block) BBV
///    per `interval_ops` interval — the offline cost the paper criticises;
/// 2. vectors are randomly projected to `projected_dims` and clustered with
///    k-means (`k` clusters, multiple restarts);
/// 3. the interval closest to each centroid is detail-simulated in a second
///    pass (functional fast-forward to it, then detailed simulation through
///    it);
/// 4. the estimate is the cluster-weighted mean CPI, inverted to IPC.
///
/// The amount of detailed simulation is `k × interval_ops` — two to three
/// orders of magnitude more than PGSS-Sim needs at the paper's parameters.
///
/// # Example
///
/// ```no_run
/// use pgss::{SimPointOffline, Technique};
///
/// let w = pgss_workloads::gzip(0.05);
/// let est = SimPointOffline { interval_ops: 1_000_000, k: 10, ..Default::default() }.run(&w);
/// assert!(est.phases.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimPointOffline {
    /// Interval (sample) size in instructions; the paper tests 1 M, 10 M,
    /// and 100 M.
    pub interval_ops: u64,
    /// Number of clusters; the paper tests 5, 10, 20, 30, and 300.
    pub k: usize,
    /// Random-projection dimensionality (SimPoint 3.0 default: 15).
    pub projected_dims: usize,
    /// Seed for projection and clustering.
    pub seed: u64,
    /// Profile-pass signature: the full per-static-block BBV (default) or
    /// Memory Access Vectors.
    pub signature: Signature,
}

impl Default for SimPointOffline {
    fn default() -> SimPointOffline {
        SimPointOffline {
            interval_ops: 1_000_000,
            k: 10,
            projected_dims: 15,
            seed: 0x5150,
            signature: Signature::Bbv,
        }
    }
}

impl SimPointOffline {
    /// Collects the per-interval full BBVs with a functional profiling
    /// pass. Public so experiments can reuse one collection across many
    /// `(k, interval)` clusterings, as SimPoint itself does.
    pub fn collect_bbvs(
        &self,
        workload: &Workload,
        config: &MachineConfig,
    ) -> (Vec<Vec<f64>>, ModeOps) {
        let (rows, ops, _) = self.collect_bbvs_traced(workload, config, &SimContext::none());
        (rows, ops)
    }

    fn collect_bbvs_traced(
        &self,
        workload: &Workload,
        config: &MachineConfig,
        ctx: &SimContext,
    ) -> (Vec<Vec<f64>>, ModeOps, RunTrace) {
        assert!(self.interval_ops > 0, "interval_ops must be positive");
        let mut driver = SimDriver::new(workload, config, self.signature.full_track());
        ctx.bind(&mut driver);
        let mut policy = ProfilePolicy {
            interval_ops: self.interval_ops,
            rows: Vec::new(),
            done: false,
        };
        driver.run(&mut policy);
        (policy.rows, driver.mode_ops(), *driver.trace())
    }
}

/// The profiling pass: functional execution, one full BBV per interval.
struct ProfilePolicy {
    interval_ops: u64,
    rows: Vec<Vec<f64>>,
    done: bool,
}

impl SamplingPolicy for ProfilePolicy {
    fn next(&mut self, _trace: &mut RunTrace) -> Directive {
        if self.done {
            Directive::Finish
        } else {
            Directive::Run(Segment::with_bbv(Mode::Functional, self.interval_ops))
        }
    }

    fn observe(&mut self, outcome: &SegmentOutcome, _trace: &mut RunTrace) {
        // Keep only complete intervals, as SimPoint does.
        if outcome.complete() {
            let row = match outcome.bbv.as_ref().expect("profile intervals close a BBV") {
                Bbv::Full(v) => v.clone(),
                // MAV intervals arrive hashed-BBV-shaped; L2-normalise so
                // clustering sees rates, not interval lengths.
                Bbv::Hashed(h) => h.normalized().to_vec(),
            };
            self.rows.push(row);
        }
        if outcome.halted || outcome.ops == 0 {
            self.done = true;
        }
    }
}

/// The replay pass: fast-forward to each chosen interval (in program
/// order), detail-simulate through it, record its CPI.
struct ReplayPolicy {
    interval_ops: u64,
    /// Representative interval indices, sorted ascending.
    plan: Vec<usize>,
    /// Index into `plan` of the representative being worked on.
    idx: usize,
    /// Current interval position of the machine.
    cursor: usize,
    cpi_of: Vec<f64>,
    samples: u64,
}

impl SamplingPolicy for ReplayPolicy {
    fn next(&mut self, _trace: &mut RunTrace) -> Directive {
        match self.plan.get(self.idx) {
            None => Directive::Finish,
            Some(&interval) if interval > self.cursor => {
                let skip = (interval - self.cursor) as u64 * self.interval_ops;
                Directive::Run(Segment::new(Mode::Functional, skip))
            }
            Some(_) => Directive::Run(Segment::new(Mode::DetailedMeasured, self.interval_ops)),
        }
    }

    fn observe(&mut self, outcome: &SegmentOutcome, trace: &mut RunTrace) {
        match outcome.segment.mode {
            Mode::Functional => self.cursor = self.plan[self.idx],
            _ => {
                if outcome.ops > 0 {
                    self.cpi_of[self.plan[self.idx]] = outcome.cpi();
                    self.samples += 1;
                    trace.samples_taken += 1;
                }
                self.cursor += 1;
                self.idx += 1;
            }
        }
    }
}

impl Technique for SimPointOffline {
    fn name(&self) -> String {
        format!(
            "SimPoint{}({}x{}M)",
            self.signature.name_suffix(),
            self.k,
            self.interval_ops / 1_000_000
        )
    }

    fn run_with(&self, workload: &Workload, config: &MachineConfig) -> Estimate {
        self.run_traced(workload, config).0
    }

    fn run_traced(&self, workload: &Workload, config: &MachineConfig) -> (Estimate, RunTrace) {
        self.run_traced_ctx(workload, config, &SimContext::none())
    }

    fn tracks(&self) -> Vec<Track> {
        vec![self.signature.full_track(), Track::None]
    }

    fn run_traced_ctx(
        &self,
        workload: &Workload,
        config: &MachineConfig,
        ctx: &SimContext,
    ) -> (Estimate, RunTrace) {
        let (rows, profile_ops, mut trace) = self.collect_bbvs_traced(workload, config, ctx);
        assert!(
            !rows.is_empty(),
            "workload shorter than one SimPoint interval"
        );
        let projected = project(&rows, self.projected_dims, self.seed);
        let clustering = KMeans::new(self.k).with_seed(self.seed).run(&projected);
        let representatives = clustering.representatives(&projected);
        let weights = clustering.weights();

        // Second pass: detail-simulate exactly the representative intervals.
        let mut chosen: Vec<usize> = representatives.iter().flatten().copied().collect();
        chosen.sort_unstable();
        let mut replay = SimDriver::new(workload, config, Track::None);
        ctx.bind(&mut replay);
        let mut policy = ReplayPolicy {
            interval_ops: self.interval_ops,
            plan: chosen,
            idx: 0,
            cursor: 0,
            cpi_of: vec![f64::NAN; rows.len()],
            samples: 0,
        };
        replay.run(&mut policy);
        trace.merge(replay.trace());

        // Weighted CPI over clusters with a simulated representative.
        let pairs: Vec<(f64, f64)> = representatives
            .iter()
            .zip(&weights)
            .filter_map(|(rep, &w)| rep.map(|r| (policy.cpi_of[r], w)))
            .filter(|(cpi, _)| cpi.is_finite())
            .collect();
        let cpi = weighted_mean(&pairs).expect("at least one simulated representative");

        let mut mode_ops = replay.mode_ops();
        // Charge the offline BBV-profiling pass as functional simulation.
        mode_ops.functional += profile_ops.functional;
        let samples_per_phase: Vec<u64> = representatives
            .iter()
            .map(|r| u64::from(r.is_some()))
            .collect();
        let estimate = Estimate {
            ipc: 1.0 / cpi,
            mode_ops,
            samples: policy.samples,
            phases: Some(PhaseSummary {
                phases: clustering.k(),
                changes: count_changes(clustering.assignments()),
                samples_per_phase,
                weights,
            }),
            // SimPoint is deterministic: one representative per cluster,
            // no sampling-error model, so no confidence claim.
            ci: None,
        };
        (estimate, trace)
    }
}

fn count_changes(assignments: &[u32]) -> u64 {
    assignments.windows(2).filter(|w| w[0] != w[1]).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::relative_error;
    use crate::FullDetailed;

    fn small() -> SimPointOffline {
        SimPointOffline {
            interval_ops: 100_000,
            k: 5,
            projected_dims: 15,
            seed: 1,
            ..SimPointOffline::default()
        }
    }

    #[test]
    fn detailed_cost_is_k_intervals() {
        let w = pgss_workloads::gzip(0.01);
        let sp = small();
        let est = sp.run(&w);
        assert!(est.samples <= sp.k as u64);
        assert_eq!(est.detailed_ops(), est.samples * sp.interval_ops);
    }

    #[test]
    fn accurate_on_phased_workload() {
        let w = pgss_workloads::wupwise(0.02);
        let truth = FullDetailed::new().ground_truth(&w);
        let est = small().run(&w);
        let err = relative_error(est.ipc, truth.ipc);
        assert!(err < 0.15, "SimPoint error {err:.4}");
    }

    #[test]
    fn phase_summary_present_and_consistent() {
        let w = pgss_workloads::bzip2(0.01);
        let est = small().run(&w);
        let p = est.phases.expect("SimPoint reports phases");
        assert!(p.phases <= 5);
        let total_w: f64 = p.weights.iter().sum();
        assert!((total_w - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bbv_collection_interval_count() {
        let w = pgss_workloads::mesa(0.01);
        let sp = small();
        let (rows, _) = sp.collect_bbvs(&w, &MachineConfig::default());
        let expected = w.nominal_ops() / sp.interval_ops;
        assert!(
            (rows.len() as i64 - expected as i64).unsigned_abs() <= expected / 5 + 2,
            "{} intervals vs ~{expected}",
            rows.len()
        );
    }

    #[test]
    fn count_changes_counts_transitions() {
        assert_eq!(count_changes(&[0, 0, 1, 1, 0]), 2);
        assert_eq!(count_changes(&[7]), 0);
        assert_eq!(count_changes(&[]), 0);
    }
}
