//! Common result types and the [`Technique`] trait.

use pgss_cpu::{MachineConfig, ModeOps};
use pgss_stats::ConfidenceInterval;
use pgss_workloads::Workload;

use crate::ckpt::SimContext;
use crate::driver::{RunTrace, Track};

/// The exhaustively-simulated reference an [`Estimate`] is judged against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundTruth {
    /// True whole-program IPC (total instructions / total cycles).
    pub ipc: f64,
    /// Total retired instructions.
    pub total_ops: u64,
    /// Total cycles.
    pub cycles: u64,
}

/// Summary of the phase structure a technique discovered (absent for
/// phase-blind techniques).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSummary {
    /// Number of distinct phases.
    pub phases: usize,
    /// Number of interval-to-interval phase transitions observed.
    pub changes: u64,
    /// Detailed samples taken per phase.
    pub samples_per_phase: Vec<u64>,
    /// Instruction weight per phase (fraction of total).
    pub weights: Vec<f64>,
}

/// A sampled-simulation result: the performance prediction plus exactly
/// what it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Predicted whole-program IPC.
    pub ipc: f64,
    /// Retired instructions per simulation mode across every pass the
    /// technique ran; [`ModeOps::detailed`] is the paper's cost metric.
    pub mode_ops: ModeOps,
    /// Number of detailed samples (or simulated phase intervals) behind the
    /// estimate.
    pub samples: u64,
    /// Phase structure, for phase-aware techniques.
    pub phases: Option<PhaseSummary>,
    /// The technique's own 95 % confidence claim on `ipc`
    /// ([`pgss_stats::Z_95`], delta-method mapped from CPI space), when
    /// the technique's statistical model supports one: SMARTS/TurboSMARTS
    /// report the Gaussian interval over their sample population, PGSS
    /// composes per-phase stratified intervals. Deterministic techniques
    /// with no sampling-error model (full detail, SimPoint variants)
    /// report `None`. `tests/statistical_validation.rs` empirically
    /// checks the coverage of these claims against ground truth — the
    /// paper's point is that the SMARTS claim is *unreliable* under
    /// polymodal phase behaviour.
    pub ci: Option<ConfidenceInterval>,
}

impl Estimate {
    /// Instructions that required cycle-level simulation (warming +
    /// measured): the paper's "amount of detailed simulation".
    pub fn detailed_ops(&self) -> u64 {
        self.mode_ops.detailed()
    }

    /// Relative IPC error against `truth` (see [`relative_error`]).
    pub fn error_vs(&self, truth: &GroundTruth) -> f64 {
        relative_error(self.ipc, truth.ipc)
    }
}

/// Maps a CPI-space confidence interval into IPC space via the delta
/// method: for `ipc = 1/cpi` the derivative magnitude is `ipc²`, so
/// `hw_ipc ≈ hw_cpi · ipc²`. Every technique's sampling statistics live in
/// CPI space (the machine reports cycles per retired op), so this is the
/// one place the CPI→IPC error transformation happens.
pub(crate) fn ipc_interval_from_cpi(cpi_ci: ConfidenceInterval) -> ConfidenceInterval {
    let ipc = 1.0 / cpi_ci.mean;
    ConfidenceInterval {
        mean: ipc,
        half_width: cpi_ci.half_width * ipc * ipc,
        n: cpi_ci.n,
    }
}

/// `|estimate − truth| / truth`, the paper's "sampling error as a percent
/// of benchmark IPC" (before the ×100).
///
/// # Panics
///
/// Panics if `truth` is not a positive, finite IPC.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    assert!(
        truth.is_finite() && truth > 0.0,
        "ground-truth IPC must be positive, got {truth}"
    );
    (estimate - truth).abs() / truth
}

/// A sampled-simulation technique: given a workload (and machine
/// configuration), produce an [`Estimate`].
///
/// All techniques in this crate implement the trait, so comparison
/// harnesses can sweep a `Vec<Box<dyn Technique>>`.
pub trait Technique {
    /// Human-readable name including salient parameters, e.g.
    /// `"PGSS(1M/.05)"`.
    fn name(&self) -> String;

    /// Runs the technique against `workload` on a machine built with
    /// `config`.
    fn run_with(&self, workload: &Workload, config: &MachineConfig) -> Estimate;

    /// Like [`Technique::run_with`], additionally returning the
    /// [`RunTrace`] of what the underlying [`crate::driver::SimDriver`]
    /// executed (segments per mode, samples taken vs. skipped and why,
    /// phase-table events). Techniques running several driver passes merge
    /// the passes' traces. The default implementation returns an empty
    /// trace for implementations that predate the driver.
    fn run_traced(&self, workload: &Workload, config: &MachineConfig) -> (Estimate, RunTrace) {
        (self.run_with(workload, config), RunTrace::default())
    }

    /// Like [`Technique::run_traced`], threading a [`SimContext`] to the
    /// technique's driver passes. With a checkpoint ladder in the context,
    /// techniques that override this attach it to every pass, so
    /// functional fast-forwarding is replaced by snapshot restores — the
    /// returned estimate and trace are guaranteed identical to
    /// [`Technique::run_traced`]; only physical work (tracked by the
    /// ladder) shrinks. The default ignores the context.
    fn run_traced_ctx(
        &self,
        workload: &Workload,
        config: &MachineConfig,
        ctx: &SimContext,
    ) -> (Estimate, RunTrace) {
        let _ = ctx;
        self.run_traced(workload, config)
    }

    /// The BBV tracks this technique's driver passes use — the union a
    /// checkpoint ladder must carry (see [`crate::ckpt::LadderSpec`]) for
    /// every pass to be jump-eligible. Techniques that track nothing
    /// report `[Track::None]`.
    fn tracks(&self) -> Vec<Track> {
        vec![Track::None]
    }

    /// Runs with the paper's default machine configuration.
    fn run(&self, workload: &Workload) -> Estimate
    where
        Self: Sized,
    {
        self.run_with(workload, &MachineConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        assert!((relative_error(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(0.9, 1.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(2.0, 2.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_truth_panics() {
        let _ = relative_error(1.0, 0.0);
    }

    #[test]
    fn estimate_cost_is_detailed_modes_only() {
        let e = Estimate {
            ipc: 1.0,
            mode_ops: ModeOps {
                fast_forward: 10,
                functional: 100,
                detailed_warming: 30,
                detailed_measured: 10,
            },
            samples: 10,
            phases: None,
            ci: None,
        };
        assert_eq!(e.detailed_ops(), 40);
    }
}
