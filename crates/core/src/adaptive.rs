//! Automatic per-benchmark threshold selection — the paper's first "future
//! work" item, implemented.
//!
//! Section 7: *"Since the optimal parameters for PGSS-Sim vary between
//! benchmarks, these parameters must be automatically adjusted to each
//! benchmark either in some sort of offline analysis of the benchmark or
//! ideally, the algorithm would adapt at runtime to program
//! characteristics."*
//!
//! [`AdaptivePgss`] does the offline-pilot variant, cheaply: a short
//! *functional-only* pilot pass (no detailed simulation at all) collects the
//! distribution of consecutive-interval hashed-BBV angles, and the threshold
//! is placed between the "within-phase jitter" mass and the "phase change"
//! mass of that distribution using 1-D 2-means clustering. PGSS-Sim then
//! runs with the tuned threshold. The pilot's instructions are charged as
//! functional simulation.

use pgss_bbv::HashedBbv;
use pgss_cluster::KMeans;
use pgss_cpu::{MachineConfig, Mode};
use pgss_workloads::Workload;

use crate::ckpt::SimContext;
use crate::driver::{
    Directive, RunTrace, SamplingPolicy, Segment, SegmentOutcome, SimDriver, Track,
};
use crate::estimate::{Estimate, Technique};
use crate::pgss_sim::PgssSim;

/// PGSS-Sim with a self-tuned phase threshold.
///
/// # Example
///
/// ```no_run
/// use pgss::{AdaptivePgss, Technique};
///
/// let w = pgss_workloads::bzip2(0.25);
/// let est = AdaptivePgss::new().run(&w);
/// println!("tuned estimate: {:.3} IPC", est.ipc);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptivePgss {
    /// The PGSS configuration to run after tuning; its `threshold_rad` is
    /// replaced by the tuned value.
    pub base: PgssSim,
    /// Fraction of the workload's nominal length used for the pilot pass
    /// (default 0.1).
    pub pilot_fraction: f64,
    /// Lower clamp for the tuned threshold, in radians (default 0.02π).
    pub min_threshold: f64,
    /// Upper clamp for the tuned threshold, in radians (default 0.30π).
    pub max_threshold: f64,
}

impl Default for AdaptivePgss {
    fn default() -> AdaptivePgss {
        AdaptivePgss {
            base: PgssSim::default(),
            pilot_fraction: 0.1,
            min_threshold: crate::threshold(0.02),
            max_threshold: crate::threshold(0.30),
        }
    }
}

impl AdaptivePgss {
    /// Tuning over the paper's default PGSS configuration.
    pub fn new() -> AdaptivePgss {
        AdaptivePgss::default()
    }

    /// Runs the functional pilot and returns the tuned threshold in
    /// radians, together with the pilot's retired-instruction count.
    ///
    /// With fewer than four pilot intervals (or an angle distribution with
    /// no separable "change" mass), the base configuration's threshold is
    /// returned unchanged.
    pub fn tune(&self, workload: &Workload, config: &MachineConfig) -> (f64, u64) {
        let (t, spent, _) = self.tune_traced(workload, config, &SimContext::none());
        (t, spent)
    }

    fn tune_traced(
        &self,
        workload: &Workload,
        config: &MachineConfig,
        ctx: &SimContext,
    ) -> (f64, u64, RunTrace) {
        let mut driver = SimDriver::new(workload, config, Track::Hashed(self.base.hash_seed));
        ctx.bind(&mut driver);
        let mut policy = PilotPolicy {
            ff_ops: self.base.ff_ops,
            budget: (workload.nominal_ops() as f64 * self.pilot_fraction) as u64,
            spent: 0,
            angles: Vec::new(),
            prev: None,
            done: false,
        };
        driver.run(&mut policy);
        let PilotPolicy { angles, spent, .. } = policy;
        let trace = *driver.trace();
        if angles.len() < 4 {
            return (self.base.threshold_rad, spent, trace);
        }
        // 1-D 2-means: jitter cluster vs change cluster.
        let rows: Vec<Vec<f64>> = angles.iter().map(|&a| vec![a]).collect();
        let clustering = KMeans::new(2).with_seed(1).run(&rows);
        let mut centroids: Vec<f64> = clustering.centroids().iter().map(|c| c[0]).collect();
        centroids.sort_by(|a, b| a.partial_cmp(b).expect("finite angles"));
        let threshold = if centroids.len() < 2 || centroids[1] - centroids[0] < 1e-3 {
            // No separable change mass: a single stable phase. Any
            // reasonable threshold works; keep the default.
            self.base.threshold_rad
        } else {
            // Place the threshold between the two masses, biased toward the
            // jitter cluster as the paper recommends keeping thresholds
            // tight.
            centroids[0] + 0.35 * (centroids[1] - centroids[0])
        };
        (
            threshold.clamp(self.min_threshold, self.max_threshold),
            spent,
            trace,
        )
    }
}

/// The functional pilot: consume BBV intervals until the op budget is spent
/// (or the program halts), collecting consecutive-interval angles.
struct PilotPolicy {
    ff_ops: u64,
    budget: u64,
    spent: u64,
    angles: Vec<f64>,
    prev: Option<HashedBbv>,
    done: bool,
}

impl SamplingPolicy for PilotPolicy {
    fn next(&mut self, _trace: &mut RunTrace) -> Directive {
        if self.done || self.spent >= self.budget {
            Directive::Finish
        } else {
            Directive::Run(Segment::with_bbv(Mode::Functional, self.ff_ops))
        }
    }

    fn observe(&mut self, outcome: &SegmentOutcome, _trace: &mut RunTrace) {
        self.spent += outcome.ops;
        if outcome.complete() {
            let bbv = outcome
                .bbv
                .as_ref()
                .expect("pilot intervals close a BBV")
                .hashed();
            if let Some(p) = &self.prev {
                self.angles.push(bbv.angle(p));
            }
            self.prev = Some(*bbv);
        }
        if outcome.halted || outcome.ops == 0 {
            self.done = true;
        }
    }
}

impl Technique for AdaptivePgss {
    fn name(&self) -> String {
        format!("AdaptivePGSS({}M)", self.base.ff_ops / 1_000_000)
    }

    fn run_with(&self, workload: &Workload, config: &MachineConfig) -> Estimate {
        self.run_traced(workload, config).0
    }

    fn run_traced(&self, workload: &Workload, config: &MachineConfig) -> (Estimate, RunTrace) {
        self.run_traced_ctx(workload, config, &SimContext::none())
    }

    fn tracks(&self) -> Vec<Track> {
        vec![Track::Hashed(self.base.hash_seed)]
    }

    fn run_traced_ctx(
        &self,
        workload: &Workload,
        config: &MachineConfig,
        ctx: &SimContext,
    ) -> (Estimate, RunTrace) {
        let (threshold_rad, pilot_ops, mut trace) = self.tune_traced(workload, config, ctx);
        let tuned = PgssSim {
            threshold_rad,
            ..self.base
        };
        let (mut est, pgss_trace) = tuned.run_traced_ctx(workload, config, ctx);
        trace.merge(&pgss_trace);
        est.mode_ops.functional += pilot_ops;
        (est, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FullDetailed;

    #[test]
    fn tunes_a_sane_threshold_on_phased_workload() {
        let w = pgss_workloads::wupwise(0.05);
        let a = AdaptivePgss {
            base: PgssSim {
                ff_ops: 100_000,
                spacing_ops: 200_000,
                ..PgssSim::default()
            },
            ..AdaptivePgss::default()
        };
        let (t, pilot_ops) = a.tune(&w, &MachineConfig::default());
        assert!(
            t >= a.min_threshold && t <= a.max_threshold,
            "threshold {t}"
        );
        assert!(pilot_ops > 0);
    }

    #[test]
    fn pilot_cost_is_charged_as_functional() {
        let w = pgss_workloads::gzip(0.02);
        let a = AdaptivePgss {
            base: PgssSim {
                ff_ops: 100_000,
                spacing_ops: 200_000,
                ..PgssSim::default()
            },
            ..AdaptivePgss::default()
        };
        let plain = a.base.run(&w);
        let adaptive = a.run(&w);
        assert!(adaptive.mode_ops.functional > plain.mode_ops.functional);
        // Tuning never adds detailed simulation beyond what PGSS itself
        // chooses to take.
        assert!(adaptive.detailed_ops() <= plain.detailed_ops() * 3);
    }

    #[test]
    fn accuracy_is_competitive_with_default_threshold() {
        let w = pgss_workloads::equake(0.05);
        let truth = FullDetailed::new().ground_truth(&w);
        let base = PgssSim {
            ff_ops: 100_000,
            spacing_ops: 200_000,
            ..PgssSim::default()
        };
        let plain = base.run(&w);
        let adaptive = AdaptivePgss {
            base,
            ..AdaptivePgss::default()
        }
        .run(&w);
        // Tuning must not be catastrophically worse than the paper default.
        assert!(
            adaptive.error_vs(&truth) < plain.error_vs(&truth) + 0.1,
            "adaptive {:.4} vs plain {:.4}",
            adaptive.error_vs(&truth),
            plain.error_vs(&truth)
        );
    }

    #[test]
    fn single_phase_workload_keeps_default() {
        let mut b = pgss_workloads::WorkloadBuilder::new("uniform", 9);
        let seg = b.add_segment(pgss_workloads::Kernel::ComputeInt {
            chains: 4,
            ops_per_chain: 3,
        });
        b.run(seg, 2_000_000);
        let w = b.finish();
        let a = AdaptivePgss {
            base: PgssSim {
                ff_ops: 100_000,
                ..PgssSim::default()
            },
            ..AdaptivePgss::default()
        };
        let (t, _) = a.tune(&w, &MachineConfig::default());
        // Degenerate angle distribution: default threshold retained (up to
        // clamping).
        let expected = a.base.threshold_rad.clamp(a.min_threshold, a.max_threshold);
        assert!(
            (t - expected).abs() < 1e-9,
            "tuned {t} vs expected {expected}"
        );
    }
}
